// auric — command-line front end for the library.
//
//   auric generate  --out DIR [--seed N] [--markets N] [--scale N]
//       Generate a synthetic network + configuration snapshot and save it
//       as a CSV inventory directory (see io/inventory.h for the schema;
//       operators can produce the same files from their own systems).
//
//   auric inspect   --data DIR
//       Inventory summary and per-parameter variability of a snapshot.
//
//   auric evaluate  --data DIR [--global] [--market N]
//       Leave-one-out accuracy of the (local by default) CF learner.
//
//   auric recommend --data DIR --carrier N [--neighbor M]
//       Recommendations with evidence for one carrier, as the SmartLaunch
//       controller would consume them.
//
//   auric rules     --data DIR [--min-support F] [--min-carriers N]
//       Synthesize a human-readable rule-book from the learned peer groups
//       (the paper's "automatically learn the rules" pitch, inverted for
//       review by engineers).
//
//   auric replay    [--data DIR] [--days N] [--robust] [--state-dir DIR]
//                   [--shards N] [--weekly-out FILE] [--state-out DIR]
//                   [--relearn-mode full|incremental] [--relearn-threads N]
//       Replay the paper's two-month operation window day by day (synthetic
//       network by default); weekly Table-5 counters plus rollback and
//       quarantine columns in robust mode. --shards N partitions the EMS by
//       market and runs each day's launches shard-parallel; --weekly-out
//       writes the weekly table as CSV (bit-exact KPI) for CI diffing;
//       --state-out saves the evolved snapshot as an inventory directory
//       (the `auric modeldiff` input). --relearn-mode incremental applies the
//       days' slot deltas to the engine in place instead of rebuilding every
//       table (byte-identical weekly output at the default drift threshold);
//       --relearn-threads fans the per-parameter work out (also byte-exact).
//       With --serve-metrics the live plane
//       additionally exposes /modelz: the ModelWatch model-quality document.
//       SIGTERM/SIGINT drain gracefully: the current day finishes, a final
//       sealed checkpoint commits, and --resume continues bit-identically.
//
//   auric serve     [--data DIR] [--port N] [--workers N] [--queue-high-water N]
//                   [--relearn-mode full|incremental]
//       Long-lived recommendation daemon: /recommend /diff /healthz /metrics
//       over loopback HTTP, with admission control, per-request deadlines,
//       per-market bulkheads, hot engine swap (POST /relearn, optionally
//       ?mode=full|incremental) and graceful drain on SIGTERM/SIGINT or
//       POST /quit.
//
//   auric loadgen   --port N [--clients N] [--requests N] [--fault-prob F]
//       Seeded closed-loop load generator against a serve daemon; exits
//       nonzero if any well-formed request got no terminal response.
//
//   auric tracestats --in FILE [--root NAME] [--top N] [--out FILE]
//       Fold a span JSONL file (--trace-out, /tracez) into per-span-name
//       total/self time and per-trace critical paths, as CSV. Exits nonzero
//       when the input holds no spans — an empty CSV would read as "no slow
//       paths" in CI when the real story is "tracing was never wired".
//
//   auric modeldiff --old DIR --new DIR [--sample N] [--seed S]
//                   [--max-flip-rate F] [--json]
//       The relearn shadow-audit, offline: replay a seeded carrier sample
//       through engines learned from two inventory snapshots (e.g. the
//       `auric generate` output vs. a replay --state-out) and report the
//       disagreement surface. Exits nonzero when the flip rate exceeds
//       --max-flip-rate.
//
// Every subcommand additionally accepts the live-plane flags
// (--serve-metrics[=PORT] --sample-interval-ms --rules FILE --series-out):
// with --serve-metrics the process exposes /metrics /healthz /varz /tracez
// /logz on loopback WHILE it runs.
#include <cstdio>
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <optional>
#include <thread>

#include "config/catalog.h"
#include "config/ground_truth.h"
#include "core/engine.h"
#include "core/engine_diff.h"
#include "core/model_watch.h"
#include "core/rulebook_synthesis.h"
#include "eval/cf_eval.h"
#include "eval/variability.h"
#include "io/fault_fs.h"
#include "io/inventory.h"
#include "netsim/attributes.h"
#include "netsim/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_stats.h"
#include "obs/rules.h"
#include "obs/sampler.h"
#include "serve/daemon.h"
#include "serve/loadgen.h"
#include "smartlaunch/replay.h"
#include "util/args.h"
#include "util/drain.h"
#include "util/obs_flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::cli {
namespace {

struct Snapshot {
  netsim::Topology topology;
  netsim::AttributeSchema schema;
  config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::ConfigAssignment assignment;
};

Snapshot load(const std::string& dir) {
  Snapshot snap;
  snap.topology = io::load_topology(dir);
  snap.schema = netsim::AttributeSchema::standard(snap.topology);
  snap.assignment = io::load_assignment(snap.topology, snap.catalog, dir);
  return snap;
}

int cmd_generate(util::Args& args) {
  const std::string out = args.get_string("out", "", "output inventory directory (required)");
  netsim::TopologyParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1, "random seed"));
  params.num_markets = static_cast<int>(args.get_int("markets", 28, "number of markets"));
  params.base_enodebs_per_market =
      static_cast<int>(args.get_int("scale", 55, "base eNodeBs per market"));
  if (args.help_requested()) return 0;
  args.check_unknown();
  if (out.empty()) throw std::invalid_argument("generate: --out is required");

  const netsim::Topology topology = netsim::generate_topology(params);
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topology);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::GroundTruthParams gt;
  gt.seed = params.seed + 6;
  const config::ConfigAssignment assignment =
      config::GroundTruthModel(topology, schema, catalog, gt).assign();
  io::save_topology(topology, out);
  io::save_assignment(topology, catalog, assignment, out);
  std::printf("wrote %zu carriers, %zu X2 links, %zu configured values to %s\n",
              topology.carrier_count(), topology.edge_count() / 2,
              assignment.total_configured(), out.c_str());
  return 0;
}

int cmd_inspect(util::Args& args) {
  const std::string dir = args.get_string("data", "", "inventory directory (required)");
  const int top = static_cast<int>(args.get_int("top", 10, "parameters to list"));
  if (args.help_requested()) return 0;
  args.check_unknown();
  const Snapshot snap = load(dir);

  std::printf("inventory: %zu markets, %zu eNodeBs, %zu carriers, %zu X2 links\n",
              snap.topology.markets.size(), snap.topology.enodebs.size(),
              snap.topology.carrier_count(), snap.topology.edge_count() / 2);
  std::printf("configuration: %s values across %zu parameters\n\n",
              util::with_commas(static_cast<long long>(snap.assignment.total_configured()))
                  .c_str(),
              snap.catalog.size());

  auto variability = eval::analyze_variability(snap.topology, snap.catalog, snap.assignment);
  std::sort(variability.begin(), variability.end(),
            [](const auto& a, const auto& b) { return a.distinct_overall > b.distinct_overall; });
  util::Table table({"parameter", "distinct values", "configured", "skewness"});
  for (int i = 0; i < top && i < static_cast<int>(variability.size()); ++i) {
    const auto& var = variability[static_cast<std::size_t>(i)];
    table.add_row({snap.catalog.at(var.param).name, std::to_string(var.distinct_overall),
                   util::with_commas(static_cast<long long>(var.configured_values)),
                   util::format_fixed(var.skewness, 2)});
  }
  table.print();
  return 0;
}

int cmd_evaluate(util::Args& args) {
  const std::string dir = args.get_string("data", "", "inventory directory (required)");
  const bool global = args.get_bool("global", false, "use the global learner (no proximity)");
  const std::int64_t market = args.get_int("market", -1, "restrict to one market (-1 = all)");
  if (args.help_requested()) return 0;
  args.check_unknown();
  const Snapshot snap = load(dir);

  eval::CfEvalOptions options;
  options.local = !global;
  const eval::CfEvaluator evaluator(snap.topology, snap.schema, snap.catalog, snap.assignment,
                                    options);
  const std::optional<netsim::MarketId> scope =
      market >= 0 ? std::optional<netsim::MarketId>(static_cast<netsim::MarketId>(market))
                  : std::nullopt;
  const auto results = evaluator.evaluate_all(scope);
  std::size_t rows = 0;
  std::size_t fallbacks = 0;
  for (const auto& r : results) {
    rows += r.rows;
    fallbacks += r.fallback_default;
  }
  std::printf("%s learner: %.2f%% leave-one-out accuracy over %s values"
              " (%.2f%% decided by the rule-book default)\n",
              global ? "global" : "local", 100.0 * eval::overall_accuracy(results),
              util::with_commas(static_cast<long long>(rows)).c_str(),
              rows > 0 ? 100.0 * static_cast<double>(fallbacks) / static_cast<double>(rows)
                       : 0.0);
  return 0;
}

int cmd_recommend(util::Args& args) {
  const std::string dir = args.get_string("data", "", "inventory directory (required)");
  const auto carrier =
      static_cast<netsim::CarrierId>(args.get_int("carrier", -1, "carrier id (required)"));
  const auto neighbor = static_cast<netsim::CarrierId>(
      args.get_int("neighbor", -1, "neighbor carrier id (pair-wise parameters)"));
  if (args.help_requested()) return 0;
  args.check_unknown();
  const Snapshot snap = load(dir);
  if (carrier < 0 || static_cast<std::size_t>(carrier) >= snap.topology.carrier_count()) {
    throw std::invalid_argument("recommend: --carrier must name a carrier in the inventory");
  }

  const core::AuricEngine engine(snap.topology, snap.schema, snap.catalog, snap.assignment);
  if (neighbor == netsim::kInvalidCarrier) {
    for (const core::Recommendation& rec : engine.recommend_singular(carrier)) {
      std::printf("%s\n", engine.explain(rec, carrier).c_str());
    }
    std::printf("\n(pass --neighbor to get the pair-wise relation parameters; X2 neighbors of"
                " %d:", carrier);
    for (netsim::CarrierId n : snap.topology.neighborhood(carrier)) std::printf(" %d", n);
    std::printf(")\n");
  } else {
    for (const core::Recommendation& rec : engine.recommend_pairwise(carrier, neighbor)) {
      std::printf("%s\n", engine.explain(rec, carrier, neighbor).c_str());
    }
  }
  return 0;
}

int cmd_rules(util::Args& args) {
  const std::string dir = args.get_string("data", "", "inventory directory (required)");
  const double min_support =
      args.get_double("min-support", 0.75, "minimum vote support for a rule");
  const std::int64_t min_carriers =
      args.get_int("min-carriers", 8, "minimum carriers behind a rule");
  if (args.help_requested()) return 0;
  args.check_unknown();
  const Snapshot snap = load(dir);

  const core::AuricEngine engine(snap.topology, snap.schema, snap.catalog, snap.assignment);
  core::RulebookSynthesisOptions options;
  options.min_support = min_support;
  options.min_carriers = static_cast<std::int32_t>(min_carriers);
  const core::SynthesizedRulebook book = core::synthesize_rulebook(engine, options);
  std::printf("synthesized %zu non-default rules from the learned peer groups:\n",
              book.rules.size());
  std::fputs(book.render(snap.schema, snap.catalog).c_str(), stdout);
  return 0;
}

int cmd_replay(util::Args& args, util::LivePlaneScope& live) {
  const std::string dir =
      args.get_string("data", "", "inventory directory (default: synthetic network)");
  netsim::TopologyParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1, "random seed (synthetic)"));
  params.num_markets =
      static_cast<int>(args.get_int("markets", 28, "number of markets (synthetic)"));
  params.base_enodebs_per_market =
      static_cast<int>(args.get_int("scale", 55, "base eNodeBs per market (synthetic)"));

  smartlaunch::ReplayOptions options;
  options.days = static_cast<int>(args.get_int("days", 60, "operation window in days"));
  options.launches_per_day =
      static_cast<int>(args.get_int("launches-per-day", 21, "new carriers per day"));
  options.relearn_every_days =
      static_cast<int>(args.get_int("relearn-days", 7, "engine re-learn cadence in days"));
  const std::string relearn_mode = args.get_string(
      "relearn-mode", "full",
      "relearn path: full rebuilds every table; incremental applies the days' slot deltas "
      "in place (byte-identical weekly output at the default drift threshold)");
  options.relearn_threads = static_cast<int>(args.get_int(
      "relearn-threads", 1,
      "per-parameter fan-out width inside a relearn (byte-identical at any width)"));
  options.full_rebuild_every = static_cast<int>(args.get_int(
      "full-rebuild-every", options.full_rebuild_every,
      "incremental mode: every Nth relearn is a full rebuild anyway (0 = never)"));
  options.relearn_drift_threshold = args.get_double(
      "relearn-drift-threshold", 0.0,
      "incremental mode: re-test dependencies only for parameters whose changed-row "
      "fraction reaches this, or whose ModelWatch drift fires (<= 0 = re-test every "
      "touched parameter, which keeps the output exact)");
  options.robust = args.get_bool(
      "robust", true, "push through the fault-tolerant path (chunk/retry/breaker/KPI gate)");
  options.rollback.enabled = args.get_bool(
      "rollback", true, "KPI-gate robust pushes (roll back + quarantine on breach)");
  options.state_dir = args.get_string(
      "state-dir", "", "checkpoint replay state into this directory after every launch");
  options.resume = args.get_bool("resume", false, "restart from the checkpoint in --state-dir");
  options.stop_after_launches = static_cast<int>(
      args.get_int("stop-after-launches", 0, "checkpoint and exit after N launches (0 = all)"));
  options.shards = static_cast<int>(args.get_int(
      "shards", 1, "EMS shards; the launch stream runs shard-parallel (1 = legacy serial)"));
  options.ems.flaky_timeout_prob =
      args.get_double("flaky-timeout-prob", options.ems.flaky_timeout_prob,
                      "per-push transient EMS timeout probability (0 disables fault injection)");
  options.checkpoint.journal = args.get_bool(
      "checkpoint-journal", true,
      "append-only journal checkpoints (false = legacy rewrite-every-file layout)");
  options.checkpoint.fsync = args.get_bool(
      "checkpoint-fsync", true, "fsync checkpoint files + directory at the commit point");
  const std::int64_t faultfs_seed = args.get_int(
      "faultfs-seed", -1,
      "arm a seeded FaultFs crash plan: the process dies mid-checkpoint at a "
      "seed-chosen operation with exit code 86 (-1 = off)");
  const std::int64_t faultfs_ops = args.get_int(
      "faultfs-ops-hint", 512, "operation-index universe the --faultfs-seed crash site is "
      "drawn from (past-the-end seeds complete the run uninterrupted)");
  const std::string weekly_out = args.get_string(
      "weekly-out", "", "also write the weekly summary table to this file as CSV");
  options.model_watch = args.get_bool(
      "model-watch", true,
      "attach per-parameter model telemetry, KPI-gate joins and drift gauges (metrics only; "
      "the weekly output is byte-identical either way)");
  const std::string state_out = args.get_string(
      "state-out", "",
      "save the evolved snapshot (topology + end-of-window configuration) to this inventory "
      "directory — the `auric modeldiff` input");
  if (args.help_requested()) return 0;
  args.check_unknown();

  if (relearn_mode == "incremental") {
    options.relearn_mode = core::RelearnMode::kIncremental;
  } else if (relearn_mode != "full") {
    std::fprintf(stderr, "auric replay: --relearn-mode must be full or incremental\n");
    return 2;
  }

  if (faultfs_seed >= 0) {
    io::FaultFs::FaultPlan plan =
        io::FaultFs::seeded_plan(static_cast<std::uint64_t>(faultfs_seed),
                                 static_cast<std::uint64_t>(std::max<std::int64_t>(1, faultfs_ops)));
    plan.exit_process = true;
    io::FaultFs::global().install(plan);
  }

  Snapshot snap;
  if (dir.empty()) {
    snap.topology = netsim::generate_topology(params);
    snap.schema = netsim::AttributeSchema::standard(snap.topology);
  } else {
    snap = load(dir);
  }
  config::GroundTruthParams gt;
  gt.seed = params.seed + 6;  // matches `auric generate`, so --data round-trips
  const config::GroundTruthModel ground_truth(snap.topology, snap.schema, snap.catalog, gt);
  if (dir.empty()) snap.assignment = ground_truth.assign();

  // SIGTERM/SIGINT drain: finish the in-progress day, seal a final
  // checkpoint, and exit 0 so --resume continues bit-identically.
  util::install_drain_signal_handlers();

  smartlaunch::OperationReplay replay(snap.topology, snap.schema, snap.catalog, ground_truth,
                                      snap.assignment, options);

  // /modelz on the live plane: the watch is owned by the replay (constructed
  // just above), so the endpoint registers here and MUST unregister before
  // the replay goes out of scope — the guard below outlives every return.
  struct ModelzGuard {
    obs::MetricsServer* server = nullptr;
    ~ModelzGuard() {
      if (server != nullptr) server->set_json_source("/modelz", nullptr);
    }
  } modelz_guard;
  if (live.active() && live.plane().server() != nullptr && replay.model_watch() != nullptr) {
    const core::ModelWatch* watch = replay.model_watch();
    live.plane().server()->set_json_source("/modelz",
                                           [watch] { return watch->modelz_json(); });
    modelz_guard.server = live.plane().server();
  }

  const smartlaunch::ReplayReport report = replay.run();

  if (report.drained) {
    std::printf("replay: drain requested; stopped after a completed day%s\n",
                options.state_dir.empty() ? "" : " with a sealed checkpoint (use --resume)");
  }

  util::Table table({"week", "launches", "flagged", "implemented", "fallouts", "rolled back",
                     "quarantined", "params changed", "mean launch KPI"});
  for (const smartlaunch::WeeklySummary& week : report.weeks) {
    table.add_row({std::to_string(week.week), std::to_string(week.launches),
                   std::to_string(week.change_recommended), std::to_string(week.implemented),
                   std::to_string(week.fallouts), std::to_string(week.rolled_back),
                   std::to_string(week.quarantined), std::to_string(week.parameters_changed),
                   util::format_fixed(week.mean_launched_kpi, 3)});
  }
  table.print();

  if (!weekly_out.empty()) {
    // Machine-readable weekly summary for CI determinism checks: a fault-free
    // (--flaky-timeout-prob 0) run must produce byte-identical CSVs at any
    // --shards value. KPI is emitted as a hexfloat so the comparison is
    // bit-exact, not print-rounded.
    std::FILE* out = std::fopen(weekly_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "auric replay: cannot write %s\n", weekly_out.c_str());
      return 1;
    }
    std::fputs(
        "week,launches,flagged,implemented,fallouts,rolled_back,quarantined,params_changed,"
        "mean_launch_kpi\n",
        out);
    for (const smartlaunch::WeeklySummary& week : report.weeks) {
      std::fprintf(out, "%d,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%a\n", week.week, week.launches,
                   week.change_recommended, week.implemented, week.fallouts, week.rolled_back,
                   week.quarantined, week.parameters_changed, week.mean_launched_kpi);
    }
    std::fclose(out);
  }

  const auto& totals = report.totals;
  std::printf("\n%d days: %zu launches, %zu flagged, %zu implemented, %zu fall-outs, %zu"
              " parameters changed;\nnetwork mean KPI %.3f -> %.3f, %d engine re-learns\n",
              options.days, totals.launches, totals.change_recommended, totals.implemented,
              totals.fallout_unlocked + totals.fallout_timeout, totals.parameters_changed,
              report.initial_network_kpi, report.final_network_kpi, report.engine_relearns);
  if (options.robust) {
    const smartlaunch::RobustReplayTotals& r = report.robust;
    std::printf("robust layer: %zu recovered, %zu retries, %d breaker trips, %zu deferred"
                " (%zu drained, %zu queued);\nKPI gate: %zu rolled back, %zu rollback pushes,"
                " %zu reattempts, %zu quarantined\n",
                r.recovered, r.retries, r.breaker_trips, r.queued_degraded, r.drained,
                r.still_queued, r.rolled_back, r.rollbacks, r.reattempts, r.quarantined);
  }

  if (replay.model_watch() != nullptr) {
    const core::ModelWatch& watch = *replay.model_watch();
    std::printf("model watch: %d drift days, PSI %.4f, %zu parameters flagged\n",
                watch.days_rolled(), watch.psi(), watch.drifted_params());
  }

  if (!state_out.empty()) {
    io::save_topology(snap.topology, state_out);
    io::save_assignment(snap.topology, snap.catalog, replay.network_state(), state_out);
    std::printf("evolved snapshot saved to %s\n", state_out.c_str());
  }
  return 0;
}

int cmd_serve(util::Args& args) {
  const std::string dir =
      args.get_string("data", "", "inventory directory (default: synthetic network)");
  netsim::TopologyParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1, "random seed (synthetic)"));
  params.num_markets =
      static_cast<int>(args.get_int("markets", 28, "number of markets (synthetic)"));
  params.base_enodebs_per_market =
      static_cast<int>(args.get_int("scale", 55, "base eNodeBs per market (synthetic)"));

  serve::ServeOptions options;
  options.http.port = static_cast<std::uint16_t>(
      args.get_int("port", 0, "listen port (0 = ephemeral; printed at startup)"));
  options.http.threads = static_cast<int>(args.get_int(
      "http-threads", 8, "connection threads (the data-path concurrency ceiling)"));
  options.workers =
      static_cast<int>(args.get_int("workers", 2, "engine worker threads (the daemon's pool)"));
  options.queue_high_water = static_cast<std::size_t>(args.get_int(
      "queue-high-water", 64, "admission high-water mark; requests past it are shed with 503"));
  options.bulkheads =
      static_cast<int>(args.get_int("bulkheads", 4, "per-market-shard bulkhead lanes"));
  options.bulkhead_width = static_cast<int>(
      args.get_int("bulkhead-width", 8, "concurrent requests per bulkhead lane"));
  options.default_deadline_ms = static_cast<int>(args.get_int(
      "default-deadline-ms", 1000, "deadline when the client sends no X-Auric-Deadline-Ms"));
  options.max_deadline_ms = static_cast<int>(
      args.get_int("max-deadline-ms", 10000, "clamp applied to client deadlines"));
  options.work_delay_ms = static_cast<int>(args.get_int(
      "work-delay-ms", 0, "artificial per-request delay (overload/soak capacity shaping)"));
  options.audit_sample = static_cast<std::size_t>(args.get_int(
      "audit-sample", 48, "carriers shadow-audited through old and new engines on each relearn "
      "(0 = all)"));
  options.max_flip_rate = args.get_double(
      "max-flip-rate", 1.0,
      "refuse a relearn whose audited flip rate exceeds this (1.0 = guard off)");
  const std::string relearn_mode = args.get_string(
      "relearn-mode", "full",
      "default POST /relearn path: full rebuilds from scratch; incremental clones the "
      "serving engine and delta-updates it (per-request override: /relearn?mode=...)");
  const std::string rules_file = args.get_string(
      "serve-rules", "", "alert rules evaluated into /healthz (rules.h CSV dialect)");
  if (args.help_requested()) return 0;
  args.check_unknown();
  options.seed = params.seed;
  if (relearn_mode == "incremental") {
    options.relearn_mode = core::RelearnMode::kIncremental;
  } else if (relearn_mode != "full") {
    std::fprintf(stderr, "auric serve: --relearn-mode must be full or incremental\n");
    return 2;
  }

  Snapshot snap;
  if (dir.empty()) {
    snap.topology = netsim::generate_topology(params);
    snap.schema = netsim::AttributeSchema::standard(snap.topology);
  } else {
    snap = load(dir);
  }
  config::GroundTruthParams gt;
  gt.seed = params.seed + 6;  // matches `auric generate`, so --data round-trips
  const config::GroundTruthModel ground_truth(snap.topology, snap.schema, snap.catalog, gt);
  if (dir.empty()) snap.assignment = ground_truth.assign();

  serve::ServeDaemon daemon(snap.topology, snap.schema, snap.catalog, snap.assignment,
                            ground_truth, options);

  // Optional live health rules: evaluated on a background sampler tick and
  // folded into /healthz ("alerting" when any rule fires).
  std::unique_ptr<obs::Sampler> sampler;
  std::unique_ptr<obs::RuleEngine> rules;
  if (!rules_file.empty()) {
    rules = std::make_unique<obs::RuleEngine>(obs::MetricsRegistry::global());
    rules->load_file(rules_file);
    obs::SamplerOptions sampler_options;
    sampler_options.interval_ms = 250.0;
    sampler = std::make_unique<obs::Sampler>(obs::MetricsRegistry::global(), sampler_options);
    obs::Sampler* raw_sampler = sampler.get();
    obs::RuleEngine* raw_rules = rules.get();
    sampler->set_on_tick([raw_sampler, raw_rules](double t) {
      raw_rules->evaluate(*raw_sampler, t);
    });
    daemon.set_rule_engine(rules.get());
  }

  util::install_drain_signal_handlers();
  daemon.start();  // learns the initial engine, then binds
  if (sampler != nullptr) sampler->start();
  std::printf("auric serve: listening on %s:%u (engine generation %llu, %zu carriers)\n",
              options.http.bind_address.c_str(), daemon.port(),
              static_cast<unsigned long long>(daemon.generation()),
              snap.topology.carrier_count());
  std::fflush(stdout);

  while (!util::drain_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("auric serve: drain requested; finishing in-flight requests\n");
  std::fflush(stdout);
  if (sampler != nullptr) sampler->stop();
  daemon.drain();
  std::printf("auric serve: drained cleanly (%llu requests served)\n",
              static_cast<unsigned long long>(daemon.requests_served()));
  return 0;
}

int cmd_loadgen(util::Args& args) {
  serve::LoadGenOptions options;
  options.port =
      static_cast<std::uint16_t>(args.get_int("port", 0, "serve daemon port (required)"));
  options.clients =
      static_cast<int>(args.get_int("clients", 4, "concurrent closed-loop clients"));
  options.requests_per_client =
      static_cast<int>(args.get_int("requests", 50, "requests per client"));
  options.deadline_ms = static_cast<int>(
      args.get_int("deadline-ms", 1000, "X-Auric-Deadline-Ms sent with data requests"));
  options.fault_prob = args.get_double(
      "fault-prob", 0.0, "probability a request misbehaves on purpose (slam/garbage/trickle)");
  options.carrier_universe = static_cast<int>(
      args.get_int("carrier-universe", 100, "carriers are drawn from [0, N)"));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1, "request-mix seed"));
  options.slowest = static_cast<int>(
      args.get_int("slowest", 5, "report the N slowest requests with their trace ids"));
  if (args.help_requested()) return 0;
  args.check_unknown();
  if (options.port == 0) throw std::invalid_argument("loadgen: --port is required");

  const serve::LoadGenStats stats = serve::run_loadgen(options);
  std::printf("loadgen: %llu sent | %llu ok, %llu shed, %llu expired, %llu client-error,"
              " %llu server-error, %llu refused, %llu no-response | %llu faults injected\n",
              static_cast<unsigned long long>(stats.sent),
              static_cast<unsigned long long>(stats.ok),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.expired),
              static_cast<unsigned long long>(stats.client_error),
              static_cast<unsigned long long>(stats.server_error),
              static_cast<unsigned long long>(stats.refused),
              static_cast<unsigned long long>(stats.no_response),
              static_cast<unsigned long long>(stats.faults_injected));
  std::printf("loadgen: ok latency p50 %.2f ms, p99 %.2f ms, max %.2f ms\n", stats.p50_ms,
              stats.p99_ms, stats.max_ms);
  for (const serve::OutcomeLatency& o : stats.by_outcome) {
    std::printf("loadgen: outcome %-12s n=%-5llu p50 %.2f ms, p99 %.2f ms, max %.2f ms\n",
                o.outcome.c_str(), static_cast<unsigned long long>(o.count), o.p50_ms, o.p99_ms,
                o.max_ms);
  }
  for (const serve::SlowRequest& s : stats.slowest) {
    std::printf("loadgen: slow %8.2f ms  %-12s %s trace=%s\n", s.latency_ms, s.outcome.c_str(),
                s.target.c_str(), s.trace_id.empty() ? "-" : s.trace_id.c_str());
  }
  if (stats.lost() != 0) {
    std::fprintf(stderr,
                 "loadgen: %llu well-formed requests got NO terminal response — the daemon "
                 "dropped admitted work\n",
                 static_cast<unsigned long long>(stats.lost()));
    return 1;
  }
  return 0;
}

int cmd_tracestats(util::Args& args) {
  const std::string in = args.get_string("in", "", "span JSONL file (--trace-out or /tracez)");
  obs::TraceStatsOptions options;
  options.root = args.get_string(
      "root", "", "report critical paths only for roots with this span name (e.g. replay.day)");
  options.top =
      static_cast<std::size_t>(args.get_int("top", 20, "rows per section (0 = all)"));
  const std::string out = args.get_string("out", "", "write the CSV here instead of stdout");
  if (args.help_requested()) return 0;
  args.check_unknown();
  if (in.empty()) throw std::invalid_argument("tracestats: --in is required");

  std::ifstream file(in, std::ios::binary);
  if (!file) throw std::runtime_error("tracestats: cannot read " + in);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string jsonl = buffer.str();

  const obs::TraceStatsReport report = obs::compute_trace_stats(jsonl, options);
  if (report.spans == 0) {
    // An empty CSV would read as "no slow paths" downstream when the real
    // story is "tracing was never wired" (wrong file, disabled recorder).
    std::fprintf(stderr, "tracestats: no spans in %s (%llu non-span lines skipped)\n",
                 in.c_str(), static_cast<unsigned long long>(report.skipped_lines));
    return 1;
  }
  const std::string csv = obs::trace_stats_csv(report);
  if (out.empty()) {
    std::fputs(csv.c_str(), stdout);
  } else {
    std::ofstream sink(out, std::ios::binary);
    if (!sink) throw std::runtime_error("tracestats: cannot write " + out);
    sink << csv;
  }
  std::fprintf(stderr, "tracestats: %llu spans, %llu non-span lines skipped\n",
               static_cast<unsigned long long>(report.spans),
               static_cast<unsigned long long>(report.skipped_lines));
  return 0;
}

int cmd_modeldiff(util::Args& args) {
  const std::string old_dir =
      args.get_string("old", "", "baseline inventory directory (required)");
  const std::string new_dir =
      args.get_string("new", "", "candidate inventory directory (required)");
  const std::size_t sample =
      static_cast<std::size_t>(args.get_int("sample", 0, "carriers to audit (0 = all)"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 2024, "carrier-sample seed"));
  const double max_flip_rate = args.get_double(
      "max-flip-rate", 1.0, "exit nonzero when the flip rate exceeds this (1.0 = report only)");
  const bool json = args.get_bool("json", false, "emit the report as JSON instead of a table");
  if (args.help_requested()) return 0;
  args.check_unknown();
  if (old_dir.empty() || new_dir.empty()) {
    throw std::invalid_argument("modeldiff: --old and --new are required");
  }

  const Snapshot prev = load(old_dir);
  const Snapshot next = load(new_dir);
  const core::AuricEngine prev_engine(prev.topology, prev.schema, prev.catalog,
                                      prev.assignment);
  const core::AuricEngine next_engine(next.topology, next.schema, next.catalog,
                                      next.assignment);
  const core::EngineDiffReport report =
      core::diff_engines(prev_engine, next_engine, sample, seed);
  if (json) {
    std::printf("%s\n", report.json().c_str());
  } else {
    std::fputs(report.text().c_str(), stdout);
  }
  if (report.flip_rate > max_flip_rate) {
    std::fprintf(stderr, "modeldiff: flip rate %.4f exceeds --max-flip-rate %.4f\n",
                 report.flip_rate, max_flip_rate);
    return 1;
  }
  return 0;
}

int usage() {
  std::fputs(
      "usage: auric "
      "<generate|inspect|evaluate|recommend|rules|replay|serve|loadgen|tracestats|modeldiff>"
      " [flags]\n"
      "run a subcommand with --help for its flags\n"
      "every subcommand accepts --metrics-out PATH (.prom/.csv/.json), --trace-out PATH\n"
      "(JSONL spans), and the live-plane flags --serve-metrics[=PORT]\n"
      "--sample-interval-ms N --rules FILE --series-out PATH\n",
      stderr);
  return 2;
}

}  // namespace
}  // namespace auric::cli

int main(int argc, char** argv) {
  using namespace auric;
  if (argc < 2) return cli::usage();
  const std::string command = argv[1];
  try {
    util::Args args(argc - 1, argv + 1);
    // Observability flags are shared by every subcommand: declare them
    // before dispatch so check_unknown() inside the commands accepts them.
    const std::string metrics_out = args.get_string(
        "metrics-out", "", "write a metrics snapshot here on exit (.prom/.csv/.json)");
    const std::string trace_out =
        args.get_string("trace-out", "", "write the span trace here as JSONL on exit");
    const obs::LivePlaneOptions live_options = util::declare_live_plane_flags(args);
    util::LivePlaneScope live(args.help_requested() ? obs::LivePlaneOptions{} : live_options);
    int rc = 0;
    if (command == "generate") rc = cli::cmd_generate(args);
    else if (command == "inspect") rc = cli::cmd_inspect(args);
    else if (command == "evaluate") rc = cli::cmd_evaluate(args);
    else if (command == "recommend") rc = cli::cmd_recommend(args);
    else if (command == "rules") rc = cli::cmd_rules(args);
    else if (command == "replay") rc = cli::cmd_replay(args, live);
    else if (command == "serve") rc = cli::cmd_serve(args);
    else if (command == "loadgen") rc = cli::cmd_loadgen(args);
    else if (command == "tracestats") rc = cli::cmd_tracestats(args);
    else if (command == "modeldiff") rc = cli::cmd_modeldiff(args);
    else return cli::usage();
    if (args.help_requested()) {
      std::fputs(args.usage().c_str(), stdout);
    } else {
      if (!metrics_out.empty()) {
        obs::write_metrics_file(obs::MetricsRegistry::global(), metrics_out);
      }
      if (!trace_out.empty()) obs::write_trace_file(obs::TraceRecorder::global(), trace_out);
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "auric %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
