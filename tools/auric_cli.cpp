// auric — command-line front end for the library.
//
//   auric generate  --out DIR [--seed N] [--markets N] [--scale N]
//       Generate a synthetic network + configuration snapshot and save it
//       as a CSV inventory directory (see io/inventory.h for the schema;
//       operators can produce the same files from their own systems).
//
//   auric inspect   --data DIR
//       Inventory summary and per-parameter variability of a snapshot.
//
//   auric evaluate  --data DIR [--global] [--market N]
//       Leave-one-out accuracy of the (local by default) CF learner.
//
//   auric recommend --data DIR --carrier N [--neighbor M]
//       Recommendations with evidence for one carrier, as the SmartLaunch
//       controller would consume them.
//
//   auric rules     --data DIR [--min-support F] [--min-carriers N]
//       Synthesize a human-readable rule-book from the learned peer groups
//       (the paper's "automatically learn the rules" pitch, inverted for
//       review by engineers).
//
//   auric replay    [--data DIR] [--days N] [--robust] [--state-dir DIR]
//                   [--shards N] [--weekly-out FILE]
//       Replay the paper's two-month operation window day by day (synthetic
//       network by default); weekly Table-5 counters plus rollback and
//       quarantine columns in robust mode. --shards N partitions the EMS by
//       market and runs each day's launches shard-parallel; --weekly-out
//       writes the weekly table as CSV (bit-exact KPI) for CI diffing.
//
// Every subcommand additionally accepts the live-plane flags
// (--serve-metrics[=PORT] --sample-interval-ms --rules FILE --series-out):
// with --serve-metrics the process exposes /metrics /healthz /varz /tracez
// /logz on loopback WHILE it runs.
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <optional>

#include "config/catalog.h"
#include "config/ground_truth.h"
#include "core/engine.h"
#include "core/rulebook_synthesis.h"
#include "eval/cf_eval.h"
#include "eval/variability.h"
#include "io/fault_fs.h"
#include "io/inventory.h"
#include "netsim/attributes.h"
#include "netsim/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smartlaunch/replay.h"
#include "util/args.h"
#include "util/obs_flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::cli {
namespace {

struct Snapshot {
  netsim::Topology topology;
  netsim::AttributeSchema schema;
  config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::ConfigAssignment assignment;
};

Snapshot load(const std::string& dir) {
  Snapshot snap;
  snap.topology = io::load_topology(dir);
  snap.schema = netsim::AttributeSchema::standard(snap.topology);
  snap.assignment = io::load_assignment(snap.topology, snap.catalog, dir);
  return snap;
}

int cmd_generate(util::Args& args) {
  const std::string out = args.get_string("out", "", "output inventory directory (required)");
  netsim::TopologyParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1, "random seed"));
  params.num_markets = static_cast<int>(args.get_int("markets", 28, "number of markets"));
  params.base_enodebs_per_market =
      static_cast<int>(args.get_int("scale", 55, "base eNodeBs per market"));
  if (args.help_requested()) return 0;
  args.check_unknown();
  if (out.empty()) throw std::invalid_argument("generate: --out is required");

  const netsim::Topology topology = netsim::generate_topology(params);
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topology);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::GroundTruthParams gt;
  gt.seed = params.seed + 6;
  const config::ConfigAssignment assignment =
      config::GroundTruthModel(topology, schema, catalog, gt).assign();
  io::save_topology(topology, out);
  io::save_assignment(topology, catalog, assignment, out);
  std::printf("wrote %zu carriers, %zu X2 links, %zu configured values to %s\n",
              topology.carrier_count(), topology.edge_count() / 2,
              assignment.total_configured(), out.c_str());
  return 0;
}

int cmd_inspect(util::Args& args) {
  const std::string dir = args.get_string("data", "", "inventory directory (required)");
  const int top = static_cast<int>(args.get_int("top", 10, "parameters to list"));
  if (args.help_requested()) return 0;
  args.check_unknown();
  const Snapshot snap = load(dir);

  std::printf("inventory: %zu markets, %zu eNodeBs, %zu carriers, %zu X2 links\n",
              snap.topology.markets.size(), snap.topology.enodebs.size(),
              snap.topology.carrier_count(), snap.topology.edge_count() / 2);
  std::printf("configuration: %s values across %zu parameters\n\n",
              util::with_commas(static_cast<long long>(snap.assignment.total_configured()))
                  .c_str(),
              snap.catalog.size());

  auto variability = eval::analyze_variability(snap.topology, snap.catalog, snap.assignment);
  std::sort(variability.begin(), variability.end(),
            [](const auto& a, const auto& b) { return a.distinct_overall > b.distinct_overall; });
  util::Table table({"parameter", "distinct values", "configured", "skewness"});
  for (int i = 0; i < top && i < static_cast<int>(variability.size()); ++i) {
    const auto& var = variability[static_cast<std::size_t>(i)];
    table.add_row({snap.catalog.at(var.param).name, std::to_string(var.distinct_overall),
                   util::with_commas(static_cast<long long>(var.configured_values)),
                   util::format_fixed(var.skewness, 2)});
  }
  table.print();
  return 0;
}

int cmd_evaluate(util::Args& args) {
  const std::string dir = args.get_string("data", "", "inventory directory (required)");
  const bool global = args.get_bool("global", false, "use the global learner (no proximity)");
  const std::int64_t market = args.get_int("market", -1, "restrict to one market (-1 = all)");
  if (args.help_requested()) return 0;
  args.check_unknown();
  const Snapshot snap = load(dir);

  eval::CfEvalOptions options;
  options.local = !global;
  const eval::CfEvaluator evaluator(snap.topology, snap.schema, snap.catalog, snap.assignment,
                                    options);
  const std::optional<netsim::MarketId> scope =
      market >= 0 ? std::optional<netsim::MarketId>(static_cast<netsim::MarketId>(market))
                  : std::nullopt;
  const auto results = evaluator.evaluate_all(scope);
  std::size_t rows = 0;
  std::size_t fallbacks = 0;
  for (const auto& r : results) {
    rows += r.rows;
    fallbacks += r.fallback_default;
  }
  std::printf("%s learner: %.2f%% leave-one-out accuracy over %s values"
              " (%.2f%% decided by the rule-book default)\n",
              global ? "global" : "local", 100.0 * eval::overall_accuracy(results),
              util::with_commas(static_cast<long long>(rows)).c_str(),
              rows > 0 ? 100.0 * static_cast<double>(fallbacks) / static_cast<double>(rows)
                       : 0.0);
  return 0;
}

int cmd_recommend(util::Args& args) {
  const std::string dir = args.get_string("data", "", "inventory directory (required)");
  const auto carrier =
      static_cast<netsim::CarrierId>(args.get_int("carrier", -1, "carrier id (required)"));
  const auto neighbor = static_cast<netsim::CarrierId>(
      args.get_int("neighbor", -1, "neighbor carrier id (pair-wise parameters)"));
  if (args.help_requested()) return 0;
  args.check_unknown();
  const Snapshot snap = load(dir);
  if (carrier < 0 || static_cast<std::size_t>(carrier) >= snap.topology.carrier_count()) {
    throw std::invalid_argument("recommend: --carrier must name a carrier in the inventory");
  }

  const core::AuricEngine engine(snap.topology, snap.schema, snap.catalog, snap.assignment);
  if (neighbor == netsim::kInvalidCarrier) {
    for (const core::Recommendation& rec : engine.recommend_singular(carrier)) {
      std::printf("%s\n", engine.explain(rec, carrier).c_str());
    }
    std::printf("\n(pass --neighbor to get the pair-wise relation parameters; X2 neighbors of"
                " %d:", carrier);
    for (netsim::CarrierId n : snap.topology.neighborhood(carrier)) std::printf(" %d", n);
    std::printf(")\n");
  } else {
    for (const core::Recommendation& rec : engine.recommend_pairwise(carrier, neighbor)) {
      std::printf("%s\n", engine.explain(rec, carrier, neighbor).c_str());
    }
  }
  return 0;
}

int cmd_rules(util::Args& args) {
  const std::string dir = args.get_string("data", "", "inventory directory (required)");
  const double min_support =
      args.get_double("min-support", 0.75, "minimum vote support for a rule");
  const std::int64_t min_carriers =
      args.get_int("min-carriers", 8, "minimum carriers behind a rule");
  if (args.help_requested()) return 0;
  args.check_unknown();
  const Snapshot snap = load(dir);

  const core::AuricEngine engine(snap.topology, snap.schema, snap.catalog, snap.assignment);
  core::RulebookSynthesisOptions options;
  options.min_support = min_support;
  options.min_carriers = static_cast<std::int32_t>(min_carriers);
  const core::SynthesizedRulebook book = core::synthesize_rulebook(engine, options);
  std::printf("synthesized %zu non-default rules from the learned peer groups:\n",
              book.rules.size());
  std::fputs(book.render(snap.schema, snap.catalog).c_str(), stdout);
  return 0;
}

int cmd_replay(util::Args& args) {
  const std::string dir =
      args.get_string("data", "", "inventory directory (default: synthetic network)");
  netsim::TopologyParams params;
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1, "random seed (synthetic)"));
  params.num_markets =
      static_cast<int>(args.get_int("markets", 28, "number of markets (synthetic)"));
  params.base_enodebs_per_market =
      static_cast<int>(args.get_int("scale", 55, "base eNodeBs per market (synthetic)"));

  smartlaunch::ReplayOptions options;
  options.days = static_cast<int>(args.get_int("days", 60, "operation window in days"));
  options.launches_per_day =
      static_cast<int>(args.get_int("launches-per-day", 21, "new carriers per day"));
  options.relearn_every_days =
      static_cast<int>(args.get_int("relearn-days", 7, "engine re-learn cadence in days"));
  options.robust = args.get_bool(
      "robust", true, "push through the fault-tolerant path (chunk/retry/breaker/KPI gate)");
  options.rollback.enabled = args.get_bool(
      "rollback", true, "KPI-gate robust pushes (roll back + quarantine on breach)");
  options.state_dir = args.get_string(
      "state-dir", "", "checkpoint replay state into this directory after every launch");
  options.resume = args.get_bool("resume", false, "restart from the checkpoint in --state-dir");
  options.stop_after_launches = static_cast<int>(
      args.get_int("stop-after-launches", 0, "checkpoint and exit after N launches (0 = all)"));
  options.shards = static_cast<int>(args.get_int(
      "shards", 1, "EMS shards; the launch stream runs shard-parallel (1 = legacy serial)"));
  options.ems.flaky_timeout_prob =
      args.get_double("flaky-timeout-prob", options.ems.flaky_timeout_prob,
                      "per-push transient EMS timeout probability (0 disables fault injection)");
  options.checkpoint.journal = args.get_bool(
      "checkpoint-journal", true,
      "append-only journal checkpoints (false = legacy rewrite-every-file layout)");
  options.checkpoint.fsync = args.get_bool(
      "checkpoint-fsync", true, "fsync checkpoint files + directory at the commit point");
  const std::int64_t faultfs_seed = args.get_int(
      "faultfs-seed", -1,
      "arm a seeded FaultFs crash plan: the process dies mid-checkpoint at a "
      "seed-chosen operation with exit code 86 (-1 = off)");
  const std::int64_t faultfs_ops = args.get_int(
      "faultfs-ops-hint", 512, "operation-index universe the --faultfs-seed crash site is "
      "drawn from (past-the-end seeds complete the run uninterrupted)");
  const std::string weekly_out = args.get_string(
      "weekly-out", "", "also write the weekly summary table to this file as CSV");
  if (args.help_requested()) return 0;
  args.check_unknown();

  if (faultfs_seed >= 0) {
    io::FaultFs::FaultPlan plan =
        io::FaultFs::seeded_plan(static_cast<std::uint64_t>(faultfs_seed),
                                 static_cast<std::uint64_t>(std::max<std::int64_t>(1, faultfs_ops)));
    plan.exit_process = true;
    io::FaultFs::global().install(plan);
  }

  Snapshot snap;
  if (dir.empty()) {
    snap.topology = netsim::generate_topology(params);
    snap.schema = netsim::AttributeSchema::standard(snap.topology);
  } else {
    snap = load(dir);
  }
  config::GroundTruthParams gt;
  gt.seed = params.seed + 6;  // matches `auric generate`, so --data round-trips
  const config::GroundTruthModel ground_truth(snap.topology, snap.schema, snap.catalog, gt);
  if (dir.empty()) snap.assignment = ground_truth.assign();

  smartlaunch::OperationReplay replay(snap.topology, snap.schema, snap.catalog, ground_truth,
                                      snap.assignment, options);
  const smartlaunch::ReplayReport report = replay.run();

  util::Table table({"week", "launches", "flagged", "implemented", "fallouts", "rolled back",
                     "quarantined", "params changed", "mean launch KPI"});
  for (const smartlaunch::WeeklySummary& week : report.weeks) {
    table.add_row({std::to_string(week.week), std::to_string(week.launches),
                   std::to_string(week.change_recommended), std::to_string(week.implemented),
                   std::to_string(week.fallouts), std::to_string(week.rolled_back),
                   std::to_string(week.quarantined), std::to_string(week.parameters_changed),
                   util::format_fixed(week.mean_launched_kpi, 3)});
  }
  table.print();

  if (!weekly_out.empty()) {
    // Machine-readable weekly summary for CI determinism checks: a fault-free
    // (--flaky-timeout-prob 0) run must produce byte-identical CSVs at any
    // --shards value. KPI is emitted as a hexfloat so the comparison is
    // bit-exact, not print-rounded.
    std::FILE* out = std::fopen(weekly_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "auric replay: cannot write %s\n", weekly_out.c_str());
      return 1;
    }
    std::fputs(
        "week,launches,flagged,implemented,fallouts,rolled_back,quarantined,params_changed,"
        "mean_launch_kpi\n",
        out);
    for (const smartlaunch::WeeklySummary& week : report.weeks) {
      std::fprintf(out, "%d,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%a\n", week.week, week.launches,
                   week.change_recommended, week.implemented, week.fallouts, week.rolled_back,
                   week.quarantined, week.parameters_changed, week.mean_launched_kpi);
    }
    std::fclose(out);
  }

  const auto& totals = report.totals;
  std::printf("\n%d days: %zu launches, %zu flagged, %zu implemented, %zu fall-outs, %zu"
              " parameters changed;\nnetwork mean KPI %.3f -> %.3f, %d engine re-learns\n",
              options.days, totals.launches, totals.change_recommended, totals.implemented,
              totals.fallout_unlocked + totals.fallout_timeout, totals.parameters_changed,
              report.initial_network_kpi, report.final_network_kpi, report.engine_relearns);
  if (options.robust) {
    const smartlaunch::RobustReplayTotals& r = report.robust;
    std::printf("robust layer: %zu recovered, %zu retries, %d breaker trips, %zu deferred"
                " (%zu drained, %zu queued);\nKPI gate: %zu rolled back, %zu rollback pushes,"
                " %zu reattempts, %zu quarantined\n",
                r.recovered, r.retries, r.breaker_trips, r.queued_degraded, r.drained,
                r.still_queued, r.rolled_back, r.rollbacks, r.reattempts, r.quarantined);
  }
  return 0;
}

int usage() {
  std::fputs(
      "usage: auric <generate|inspect|evaluate|recommend|rules|replay> [flags]\n"
      "run a subcommand with --help for its flags\n"
      "every subcommand accepts --metrics-out PATH (.prom/.csv/.json), --trace-out PATH\n"
      "(JSONL spans), and the live-plane flags --serve-metrics[=PORT]\n"
      "--sample-interval-ms N --rules FILE --series-out PATH\n",
      stderr);
  return 2;
}

}  // namespace
}  // namespace auric::cli

int main(int argc, char** argv) {
  using namespace auric;
  if (argc < 2) return cli::usage();
  const std::string command = argv[1];
  try {
    util::Args args(argc - 1, argv + 1);
    // Observability flags are shared by every subcommand: declare them
    // before dispatch so check_unknown() inside the commands accepts them.
    const std::string metrics_out = args.get_string(
        "metrics-out", "", "write a metrics snapshot here on exit (.prom/.csv/.json)");
    const std::string trace_out =
        args.get_string("trace-out", "", "write the span trace here as JSONL on exit");
    const obs::LivePlaneOptions live_options = util::declare_live_plane_flags(args);
    util::LivePlaneScope live(args.help_requested() ? obs::LivePlaneOptions{} : live_options);
    int rc = 0;
    if (command == "generate") rc = cli::cmd_generate(args);
    else if (command == "inspect") rc = cli::cmd_inspect(args);
    else if (command == "evaluate") rc = cli::cmd_evaluate(args);
    else if (command == "recommend") rc = cli::cmd_recommend(args);
    else if (command == "rules") rc = cli::cmd_rules(args);
    else if (command == "replay") rc = cli::cmd_replay(args);
    else return cli::usage();
    if (args.help_requested()) {
      std::fputs(args.usage().c_str(), stdout);
    } else {
      if (!metrics_out.empty()) {
        obs::write_metrics_file(obs::MetricsRegistry::global(), metrics_out);
      }
      if (!trace_out.empty()) obs::write_trace_file(obs::TraceRecorder::global(), trace_out);
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "auric %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}
