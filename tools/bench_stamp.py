#!/usr/bin/env python3
"""Stamp runner-hardware metadata into a google-benchmark JSON file.

google-benchmark records num_cpus and per-CPU MHz in its "context" block but
not the CPU model string, and CI logs scroll away. This rewrites the JSON in
place with `context.cpu_model` and `context.num_cpus_online` so a stored
BENCH_ci.json artifact is self-describing and bench_compare.py can refuse a
baseline recorded on a different runner class.

Usage:
    tools/bench_stamp.py BENCH_ci.json
"""

import json
import os
import re
import sys


def cpu_model():
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                m = re.match(r"model name\s*:\s*(.+)", line)
                if m:
                    return m.group(1).strip()
    except OSError:
        pass
    return "unknown"


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    with open(path) as f:
        doc = json.load(f)
    ctx = doc.setdefault("context", {})
    ctx["cpu_model"] = cpu_model()
    ctx["num_cpus_online"] = os.cpu_count()
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"stamped {path}: {ctx.get('num_cpus', '?')} cores ({ctx['cpu_model']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
