#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against the checked-in baseline.

CI gate for the perf-critical arms: exits non-zero if any arm in the current
run is more than --threshold slower (real_time) than the same arm in the
baseline. Arms present in only one of the two files are reported but never
fail the build (new arms land with the PR that adds them; the baseline is
refreshed with --update).

Usage:
    bench_micro --benchmark_filter='BM_Obs|BM_EmsPush|BM_ShardedReplay' \
        --benchmark_out=BENCH_ci.json --benchmark_out_format=json
    tools/bench_compare.py bench/baseline.json BENCH_ci.json
    tools/bench_compare.py bench/baseline.json BENCH_ci.json --update

The threshold is deliberately loose (25% by default): shared CI runners are
noisy, and the gate is meant to catch step-change regressions (an accidental
O(n^2), a lock on the hot path), not single-digit drift. Aggregate arms
(_mean/_median/_stddev and repetition suffixes) are skipped so repeated runs
gate on the same names as single runs.
"""

import argparse
import json
import shutil
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def load_arms(doc):
    arms = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b["name"]
        ns = float(b["real_time"]) * TIME_UNIT_NS[b.get("time_unit", "ns")]
        # Repetitions share a name; keep the fastest run (least noise-prone
        # statistic for a regression gate on shared runners).
        arms[name] = min(arms.get(name, ns), ns)
    return arms


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f}{unit}"
    return f"{ns:.0f}ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in baseline JSON (bench/baseline.json)")
    parser.add_argument("current", help="fresh benchmark JSON to compare")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max tolerated slowdown as a fraction (default 0.25 = 25%%)")
    parser.add_argument("--update", action="store_true",
                        help="copy current over baseline instead of comparing")
    args = parser.parse_args()

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated from {args.current}")
        return 0

    baseline_doc = load_doc(args.baseline)
    current_doc = load_doc(args.current)

    # A wall-clock gate only means something when both runs saw the same
    # machine shape: comparing a 4-core baseline against a 1-core candidate
    # (or vice versa) flags phantom regressions in every parallel arm.
    base_ctx = baseline_doc.get("context", {})
    cur_ctx = current_doc.get("context", {})
    base_cpus, cur_cpus = base_ctx.get("num_cpus"), cur_ctx.get("num_cpus")
    for label, ctx in (("baseline", base_ctx), ("current", cur_ctx)):
        model = ctx.get("cpu_model") or ctx.get("host_name") or "unknown CPU"
        print(f"  {label}: {ctx.get('num_cpus', '?')} cores, {model}")
    if base_cpus is not None and cur_cpus is not None and base_cpus != cur_cpus:
        print(f"\nERROR: baseline was recorded on a {base_cpus}-core runner but this "
              f"run used {cur_cpus} cores; the comparison would be meaningless.\n"
              f"Re-record the baseline on this runner class: tools/bench_compare.py "
              f"{args.baseline} {args.current} --update", file=sys.stderr)
        return 2

    baseline = load_arms(baseline_doc)
    current = load_arms(current_doc)

    regressions = []
    unbaselined = []
    width = max((len(n) for n in current), default=0)
    for name in sorted(current):
        if name not in baseline:
            print(f"  NEW       {name:<{width}}  {fmt_ns(current[name])}")
            unbaselined.append(name)
            continue
        base, cur = baseline[name], current[name]
        ratio = cur / base if base > 0 else 1.0
        flag = "REGRESSED" if ratio > 1.0 + args.threshold else "ok       "
        print(f"  {flag} {name:<{width}}  {fmt_ns(base)} -> {fmt_ns(cur)}"
              f"  ({(ratio - 1.0) * 100.0:+.1f}%)")
        if ratio > 1.0 + args.threshold:
            regressions.append(name)
    for name in sorted(set(baseline) - set(current)):
        print(f"  MISSING   {name} (in baseline, not in current run)")

    if unbaselined:
        # Loud but non-fatal: an arm without a baseline is an arm the gate
        # silently cannot protect, which is how regressions sneak in.
        print(f"\nWARNING: {len(unbaselined)} arm(s) have no baseline and are "
              f"NOT gated: {', '.join(unbaselined)}", file=sys.stderr)
        print(f"WARNING: refresh it with: tools/bench_compare.py "
              f"{args.baseline} {args.current} --update", file=sys.stderr)

    if regressions:
        print(f"\n{len(regressions)} arm(s) regressed more than "
              f"{args.threshold * 100:.0f}%: {', '.join(regressions)}")
        return 1
    print(f"\nno arm regressed more than {args.threshold * 100:.0f}% "
          f"({len(current)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
