// True cold start: configure a carrier that does not exist in the inventory
// yet — the radio planner has decided its attributes and which existing
// cells it will neighbor, and Auric produces the launch configuration before
// the hardware is even installed.
//
// Also demonstrates §6's "bootstrapping the unobserved": a planned carrier
// on a frequency the network has never deployed gets rule-book defaults.
#include <cstdio>

#include "config/catalog.h"
#include "config/ground_truth.h"
#include "core/engine.h"
#include "netsim/attributes.h"
#include "netsim/generator.h"

int main() {
  using namespace auric;

  netsim::TopologyParams topo_params;
  topo_params.seed = 3;
  topo_params.num_markets = 4;
  topo_params.base_enodebs_per_market = 30;
  const netsim::Topology topology = netsim::generate_topology(topo_params);
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topology);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  const config::ConfigAssignment assignment =
      config::GroundTruthModel(topology, schema, catalog).assign();
  const core::AuricEngine auric(topology, schema, catalog, assignment);

  // The planner's intent: add a 1900 MHz capacity layer on eNodeB 12,
  // face 1, inheriting the site's attributes.
  const netsim::ENodeB& site = topology.enodebs[12];
  netsim::Carrier planned;
  planned.id = static_cast<netsim::CarrierId>(topology.carrier_count());  // future id
  planned.enodeb = site.id;
  planned.market = site.market;
  planned.face = 1;
  planned.frequency_mhz = 1900;
  planned.band = netsim::Band::kMid;
  planned.morphology = site.morphology;
  planned.bandwidth_mhz = 20;
  planned.mimo = netsim::MimoMode::k4x4;
  planned.hardware = topology.carrier(site.carriers.front()).hardware;
  planned.cell_size_miles = topology.carrier(site.carriers.front()).cell_size_miles;
  planned.tracking_area_code = topology.carrier(site.carriers.front()).tracking_area_code;
  planned.vendor = topology.carrier(site.carriers.front()).vendor;
  planned.neighbor_channel = 444;
  planned.software_version = topology.carrier(site.carriers.front()).software_version;
  planned.location = site.location;

  // Its planned X2 neighborhood: everything on the same site.
  const std::vector<netsim::CarrierId>& x2 = site.carriers;

  std::printf("planned carrier: %d MHz on eNodeB %d (%s, %s) — %zu planned X2 neighbors\n\n",
              planned.frequency_mhz, site.id, netsim::morphology_name(site.morphology),
              topology.markets[static_cast<std::size_t>(site.market)].name.c_str(), x2.size());

  int from_votes = 0;
  int from_default = 0;
  for (const core::Recommendation& rec : auric.recommend_for_all_singular(planned, x2)) {
    (rec.source == core::RecommendationSource::kRulebookDefault ? from_default : from_votes)++;
  }
  std::printf("launch configuration: %d parameters from peer votes, %d from rule-book"
              " defaults\n",
              from_votes, from_default);

  // Show a few with their evidence.
  std::printf("\nsample recommendations:\n");
  for (const char* name : {"capacityThreshold", "pMax", "inactivityTimer"}) {
    const config::ParamId param = catalog.id_of(name);
    const core::Recommendation rec = auric.recommend_for(planned, x2, param);
    std::printf("  %-18s = %-8.6g [%s, support %.0f%% of %d]\n", name,
                catalog.at(param).domain.value(rec.value),
                core::recommendation_source_name(rec.source), 100.0 * rec.support,
                rec.group_size);
  }

  // Bootstrapping the unobserved: a frequency this network never deployed.
  netsim::Carrier exotic = planned;
  exotic.frequency_mhz = 3500;  // C-band: unseen attribute value
  int defaults = 0;
  const auto recs = auric.recommend_for_all_singular(exotic, x2);
  for (const core::Recommendation& rec : recs) {
    defaults += rec.source == core::RecommendationSource::kRulebookDefault ? 1 : 0;
  }
  std::printf("\nunseen-frequency carrier (3500 MHz): %d of %zu parameters fall back to the\n"
              "rule-book default — Auric abstains rather than guess (§6 of the paper).\n",
              defaults, recs.size());
  return 0;
}
