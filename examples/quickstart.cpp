// Quickstart: generate a small synthetic LTE network, learn from it, and ask
// Auric to configure a "new" carrier.
//
//   $ ./quickstart
//
// This walks the whole public API surface in ~60 lines of user code:
//   1. netsim:   generate a topology (markets, eNodeBs, carriers, X2 graph)
//   2. config:   the 65-parameter catalog + the ground-truth network state
//   3. core:     AuricEngine — learn dependency models and recommend
//   4. explain:  every recommendation carries auditable evidence
#include <cstdio>

#include "config/catalog.h"
#include "config/ground_truth.h"
#include "core/engine.h"
#include "netsim/attributes.h"
#include "netsim/generator.h"

int main() {
  using namespace auric;

  // 1. A small network: 4 markets, ~25 eNodeBs each.
  netsim::TopologyParams topo_params;
  topo_params.seed = 42;
  topo_params.num_markets = 4;
  topo_params.base_enodebs_per_market = 25;
  const netsim::Topology topology = netsim::generate_topology(topo_params);
  std::printf("network: %zu carriers on %zu eNodeBs across %zu markets\n",
              topology.carrier_count(), topology.enodebs.size(), topology.markets.size());

  // 2. The configuration state of the existing network.
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topology);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  const config::GroundTruthModel ground_truth(topology, schema, catalog);
  const config::ConfigAssignment assignment = ground_truth.assign();
  std::printf("existing configuration: %zu parameter values\n", assignment.total_configured());

  // 3. Learn. The engine runs the chi-square dependency scan and aggregates
  //    the voting peer groups for all 65 parameters.
  const core::AuricEngine auric(topology, schema, catalog, assignment);

  // 4. Treat one carrier as newly added and recommend its configuration.
  const netsim::CarrierId new_carrier = 17;
  const netsim::Carrier& carrier = topology.carrier(new_carrier);
  std::printf("\nnew carrier %d: %d MHz / %s / %s / %s\n", new_carrier, carrier.frequency_mhz,
              netsim::band_name(carrier.band), netsim::morphology_name(carrier.morphology),
              topology.markets[static_cast<std::size_t>(carrier.market)].name.c_str());

  std::printf("\nsingular-parameter recommendations (first 10):\n");
  int shown = 0;
  for (const core::Recommendation& rec : auric.recommend_singular(new_carrier)) {
    if (shown++ >= 10) break;
    std::printf("  %s\n", auric.explain(rec, new_carrier).c_str());
  }

  // Pair-wise parameters are configured per X2 relation.
  const netsim::CarrierId neighbor = topology.neighborhood(new_carrier).front();
  std::printf("\npair-wise recommendations toward neighbor %d (first 5):\n", neighbor);
  shown = 0;
  for (const core::Recommendation& rec : auric.recommend_pairwise(new_carrier, neighbor)) {
    if (shown++ >= 5) break;
    std::printf("  %s\n", auric.explain(rec, new_carrier, neighbor).c_str());
  }
  return 0;
}
