// Explainability tour (§3.2, Fig. 8, and the §5 "lessons learned": "trust
// and interpretability are major challenges in adoption").
//
// Shows the two explanation surfaces the system offers engineers:
//   1. Auric's own evidence trail: which attributes a parameter depends on
//      (chi-square scan) and how the peers voted;
//   2. the decision-tree baseline's root-to-leaf rule chain (Fig. 8 style).
#include <cstdio>

#include "config/catalog.h"
#include "config/ground_truth.h"
#include "core/engine.h"
#include "core/param_view.h"
#include "ml/decision_tree.h"
#include "netsim/attributes.h"
#include "netsim/generator.h"
#include "util/strings.h"

int main() {
  using namespace auric;

  netsim::TopologyParams topo_params;
  topo_params.seed = 11;
  topo_params.num_markets = 4;
  topo_params.base_enodebs_per_market = 30;
  const netsim::Topology topology = netsim::generate_topology(topo_params);
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topology);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  const config::GroundTruthModel ground_truth(topology, schema, catalog);
  const config::ConfigAssignment assignment = ground_truth.assign();
  const core::AuricEngine auric(topology, schema, catalog, assignment);

  // --- 1. Dependency models: what did the chi-square scan conclude? ---
  std::printf("dependency models (strongest attributes per parameter):\n");
  for (const char* name : {"capacityThreshold", "pMax", "qRxLevMin", "hysA3Offset"}) {
    const config::ParamId param = catalog.id_of(name);
    const core::DependencyModel& deps = auric.dependencies(param);
    std::string line = std::string(name) + " <- ";
    bool first = true;
    for (const core::AttrRef& ref : deps.dependent) {
      if (!first) line += ", ";
      first = false;
      line += core::attr_ref_name(ref, schema);
    }
    if (deps.dependent.empty()) line += "(no dependent attributes at p=0.01)";
    std::printf("  %s\n", line.c_str());
    // The model also keeps every test for auditability.
    for (const core::DependencyTest& test : deps.tests) {
      if (test.result.dependent(0.01) && test.result.p_value < 1e-30) {
        std::printf("      %-28s chi2=%9.1f df=%3d p<1e-30\n",
                    core::attr_ref_name(test.ref, schema).c_str(), test.result.statistic,
                    test.result.df);
      }
    }
  }

  // --- 2. A recommendation with its evidence, end to end. ---
  const netsim::CarrierId carrier = 33;
  const config::ParamId param = catalog.id_of("capacityThreshold");
  const core::Recommendation rec = auric.recommend(param, carrier);
  std::printf("\nAuric recommendation for carrier %d:\n  %s\n", carrier,
              auric.explain(rec, carrier).c_str());

  // --- 3. Fig. 8 style: the decision-tree baseline's rule chain. ---
  const auto attr_codes = schema.encode_all(topology);
  const core::ParamView view =
      core::build_param_view(topology, catalog, assignment, param);
  const ml::CategoricalDataset data = core::to_categorical_dataset(view, schema, attr_codes);
  std::vector<std::size_t> rows(data.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  ml::DecisionTreeOptions tree_options;
  tree_options.max_depth = 4;  // keep the explanation human-sized
  ml::DecisionTree tree(tree_options);
  tree.fit(data, rows);
  std::printf("\ndecision-tree explanation (depth-capped, Fig. 8 style):\n  %s\n",
              tree.explain(schema.encode(topology.carrier(carrier))).c_str());
  std::printf("\n(tree node count at depth<=4: %zu; an unpruned tree has hundreds — the\n"
              "vote-with-evidence explanation scales better, which is what the paper's\n"
              "engineers ended up trusting)\n",
              tree.node_count());
  return 0;
}
