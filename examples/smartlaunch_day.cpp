// A day of SmartLaunch operations (§5): vendors integrate new carriers with
// their initial configuration, the pipeline pre-checks each carrier, pushes
// Auric's high-confidence corrections while the carrier is still locked,
// unlocks it, and post-checks service KPIs.
#include <cstdio>

#include "config/ground_truth.h"
#include "config/managed_object.h"
#include "config/rulebook.h"
#include "core/engine.h"
#include "netsim/generator.h"
#include "smartlaunch/controller.h"
#include "smartlaunch/ems.h"
#include "smartlaunch/kpi.h"
#include "smartlaunch/pipeline.h"
#include "util/rng.h"

int main() {
  using namespace auric;

  netsim::TopologyParams topo_params;
  topo_params.seed = 23;
  topo_params.num_markets = 5;
  topo_params.base_enodebs_per_market = 30;
  const netsim::Topology topology = netsim::generate_topology(topo_params);
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topology);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  const config::GroundTruthModel ground_truth(topology, schema, catalog);
  const config::ConfigAssignment assignment = ground_truth.assign();

  const core::AuricEngine auric(topology, schema, catalog, assignment);
  const config::Rulebook rulebook(ground_truth, catalog);
  const smartlaunch::LaunchController controller(auric, rulebook, assignment);
  smartlaunch::EmsSimulator ems(topology.carrier_count());
  const smartlaunch::KpiModel kpi(topology, catalog, assignment);
  smartlaunch::SmartLaunchPipeline pipeline(controller, ems, kpi);

  // Today's launch queue: 40 carriers across the network.
  util::Rng rng(5);
  std::vector<netsim::CarrierId> queue;
  for (std::size_t idx : rng.sample_indices(topology.carrier_count(), 40)) {
    queue.push_back(static_cast<netsim::CarrierId>(idx));
  }

  std::printf("launching %zu carriers...\n\n", queue.size());
  for (netsim::CarrierId carrier : queue) {
    // Peek at the planned change set before launching (what an engineer
    // reviewing the queue would see).
    const auto changes = controller.plan_changes(carrier);
    const smartlaunch::LaunchRecord record = pipeline.launch(carrier);
    if (record.outcome == smartlaunch::LaunchOutcome::kNoChangeNeeded) continue;
    std::printf("carrier %5d: %-17s planned=%zu applied=%zu post-KPI=%.2f\n", carrier,
                launch_outcome_name(record.outcome), record.changes_planned,
                record.changes_applied, record.post_quality);
    if (record.outcome == smartlaunch::LaunchOutcome::kImplemented && !changes.empty()) {
      // Show the first vendor CLI command of the change set.
      config::CarrierConfig change_set;
      change_set.carrier = carrier;
      change_set.settings = changes;
      std::printf("              e.g. %s\n",
                  config::render_config_commands(change_set, catalog).front().c_str());
    }
  }

  std::printf("\ndone. (run bench_table5_smartlaunch for the Table 5 totals, or\n"
              "bench_replay_operations for the full two-month day-by-day replay)\n");
  return 0;
}
