// Market expansion scenario: a capacity build-out adds a batch of new
// carriers in one market; Auric configures them and we audit the result
// against the engineering intent.
//
// This is the workload the paper's introduction motivates: carriers are
// added "to keep up with the increasing demand in traffic", and each one
// must be configured accurately across dozens of parameters that local
// engineers have historically tuned by hand.
#include <cstdio>
#include <vector>

#include "config/catalog.h"
#include "config/ground_truth.h"
#include "core/engine.h"
#include "netsim/attributes.h"
#include "netsim/generator.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace auric;

  netsim::TopologyParams topo_params;
  topo_params.seed = 7;
  topo_params.num_markets = 6;
  topo_params.base_enodebs_per_market = 30;
  const netsim::Topology topology = netsim::generate_topology(topo_params);
  const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topology);
  const config::ParamCatalog catalog = config::ParamCatalog::standard();
  const config::GroundTruthModel ground_truth(topology, schema, catalog);
  const config::ConfigAssignment assignment = ground_truth.assign();
  const core::AuricEngine auric(topology, schema, catalog, assignment);

  // The expansion cohort: 25 carriers of market 3, treated as new (their own
  // current observations are excluded from every vote).
  const netsim::MarketId market = 2;
  util::Rng rng(99);
  std::vector<netsim::CarrierId> cohort = topology.carriers_in_market(market);
  rng.shuffle(cohort);
  cohort.resize(25);

  util::Table table({"carrier", "band", "params", "matched intent", "local votes", "defaults"});
  std::size_t total = 0;
  std::size_t matched = 0;
  for (netsim::CarrierId id : cohort) {
    std::size_t params = 0;
    std::size_t hits = 0;
    std::size_t local = 0;
    std::size_t defaults = 0;
    const auto recs = auric.recommend_singular(id);
    for (std::size_t si = 0; si < recs.size(); ++si) {
      // Compare against the engineering intent recorded by the ground truth.
      const config::ValueIndex intent =
          assignment.singular[si].intended[static_cast<std::size_t>(id)];
      if (intent == config::kUnset) continue;
      ++params;
      hits += recs[si].value == intent ? 1 : 0;
      local += recs[si].source == core::RecommendationSource::kLocalVote ? 1 : 0;
      defaults += recs[si].source == core::RecommendationSource::kRulebookDefault ? 1 : 0;
    }
    total += params;
    matched += hits;
    table.add_row({std::to_string(id),
                   netsim::band_name(topology.carrier(id).band),
                   std::to_string(params), std::to_string(hits), std::to_string(local),
                   std::to_string(defaults)});
  }
  table.print();
  std::printf("\ncohort intent match: %zu / %zu singular parameters (%.1f%%)\n", matched, total,
              100.0 * static_cast<double>(matched) / static_cast<double>(total));
  std::printf("(the residue is exactly the locally-tuned knowledge a rule-book cannot carry;\n"
              "compare with the rule-book-only baseline in the paper's §2.4)\n");
  return 0;
}
