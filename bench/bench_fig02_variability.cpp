// Fig. 2 of the paper: "Distinct values across configuration" — the number
// of distinct values each of the 65 range parameters takes network-wide.
//
// Paper findings to reproduce (shape, not absolute values):
//   - several parameters exceed 10 distinct values,
//   - one parameter reaches ~200 distinct values,
//   - the rest sit in the single digits.
// Also prints §2.6's side facts: 65 range parameters = 39 singular + 26
// pair-wise, and the total configured-value count.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "eval/variability.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  const std::string csv_path =
      args.get_string("csv", "", "optional CSV output path for the figure series");
  if (args.help_requested()) return 0;

  std::vector<eval::ParamVariability> variability =
      eval::analyze_variability(ctx.topology, ctx.catalog, ctx.assignment);
  std::sort(variability.begin(), variability.end(),
            [](const auto& a, const auto& b) { return a.distinct_overall > b.distinct_overall; });

  util::Table table({"rank", "parameter", "kind", "distinct values", "configured slots"});
  for (std::size_t i = 0; i < variability.size(); ++i) {
    const auto& var = variability[i];
    const config::ParamDef& def = ctx.catalog.at(var.param);
    table.add_row({std::to_string(i + 1), def.name,
                   def.kind == config::ParamKind::kSingular ? "singular" : "pair-wise",
                   std::to_string(var.distinct_overall),
                   util::with_commas(static_cast<long long>(var.configured_values))});
  }
  table.print();

  std::size_t over_10 = 0;
  std::size_t max_distinct = 0;
  for (const auto& var : variability) {
    if (var.distinct_overall > 10) ++over_10;
    max_distinct = std::max(max_distinct, var.distinct_overall);
  }
  std::printf("\nparameters: %zu total (%zu singular, %zu pair-wise)   [paper: 65 = 39 + 26]\n",
              ctx.catalog.size(), ctx.catalog.singular_ids().size(),
              ctx.catalog.pairwise_ids().size());
  std::printf("parameters with > 10 distinct values: %zu   [paper: \"several\"]\n", over_10);
  std::printf("maximum distinct values on one parameter: %zu   [paper: ~200]\n", max_distinct);
  std::printf("total configured parameter values: %s   [paper: 15M+ at 400K+ carriers]\n",
              util::with_commas(static_cast<long long>(ctx.assignment.total_configured()))
                  .c_str());

  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path, {"parameter", "distinct_values"});
    for (const auto& var : variability) {
      csv.add_row({ctx.catalog.at(var.param).name, std::to_string(var.distinct_overall)});
    }
    std::printf("series written to %s\n", csv_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(argc, argv, "Fig. 2: distinct values across configuration",
                                 auric::bench::body);
}
