// Shared driver for the five-global-learner comparison (§4.2, Fig. 10 and
// Table 4): decision tree, random forest, k-NN, MLP, and collaborative
// filtering with chi-square + voting, evaluated per market per parameter.
#pragma once

#include <string>
#include <vector>

#include "common.h"
#include "util/args.h"

namespace auric::bench {

inline constexpr const char* kLearnerNames[] = {
    "Random forest", "k-Nearest neighbors", "Decision tree", "Deep neural network",
    "Collaborative filtering",
};
inline constexpr int kLearnerCount = 5;

struct LearnerComparisonOptions {
  int deep_dive_markets = 4;
  int folds = 2;            ///< cross-validation folds for the model learners
  std::int64_t train_cap = 1500;
  std::int64_t test_cap = 4000;
  int mlp_epochs = 20;      ///< the paper caps iterations at 10000; see note
  std::string learners = "all";  ///< comma list or "all"
};

/// Declares the comparison flags on `args`.
LearnerComparisonOptions declare_comparison_flags(util::Args& args);

struct ParamAccuracy {
  config::ParamId param = 0;
  std::size_t rows = 0;
  std::size_t distinct_values = 0;
  /// accuracy[learner] in [0,1]; -1 when the learner was skipped.
  double accuracy[kLearnerCount] = {-1, -1, -1, -1, -1};
};

struct MarketComparison {
  netsim::MarketId market = 0;
  std::vector<ParamAccuracy> per_param;  ///< sorted by descending distinct values

  /// Row-weighted average accuracy of one learner across all parameters.
  double average(int learner) const;
};

/// Runs the comparison for the first `options.deep_dive_markets` markets.
std::vector<MarketComparison> run_learner_comparison(const ExperimentContext& ctx,
                                                     const LearnerComparisonOptions& options);

}  // namespace auric::bench
