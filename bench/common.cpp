#include "common.h"

#include <cstdio>
#include <exception>

#include "util/log.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace auric::bench {

ExperimentContext make_context(util::Args& args) {
  ExperimentContext ctx;
  ctx.topo_params.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "master random seed"));
  ctx.topo_params.num_markets =
      static_cast<int>(args.get_int("markets", 28, "number of markets"));
  ctx.topo_params.base_enodebs_per_market = static_cast<int>(
      args.get_int("scale", 55, "base eNodeBs per market (dataset size knob)"));
  if (args.help_requested()) return ctx;  // flags declared; skip the heavy build

  util::Timer timer;
  ctx.topology = netsim::generate_topology(ctx.topo_params);
  ctx.schema = netsim::AttributeSchema::standard(ctx.topology);
  ctx.catalog = config::ParamCatalog::standard();
  ctx.gt_params.seed = ctx.topo_params.seed + 6;
  ctx.ground_truth = std::make_unique<config::GroundTruthModel>(ctx.topology, ctx.schema,
                                                                ctx.catalog, ctx.gt_params);
  ctx.assignment = ctx.ground_truth->assign();

  util::log_info(util::format(
      "context: %zu carriers, %zu eNodeBs, %d markets, %zu X2 edges, %zu configured values "
      "(%.1fs)",
      ctx.topology.carrier_count(), ctx.topology.enodebs.size(), ctx.topo_params.num_markets,
      ctx.topology.edge_count(), ctx.assignment.total_configured(), timer.elapsed_seconds()));
  return ctx;
}

int run_bench(int argc, char** argv, const char* title, int (*body)(util::Args& args)) {
  try {
    util::Args args(argc, argv);
    util::print_banner(title);
    const int rc = body(args);  // bodies return immediately under --help
    if (args.help_requested()) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    args.check_unknown();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", title, e.what());
    return 1;
  }
}

}  // namespace auric::bench
