#include "common.h"

#include <cstdio>
#include <exception>

#include "obs/trace.h"
#include "util/log.h"
#include "util/obs_flags.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {

obs::Histogram& phase_histogram(const std::string& phase) {
  return obs::MetricsRegistry::global().histogram(
      "auric_bench_phase_seconds", obs::default_seconds_bounds(),
      "bench harness phase wall-clock (s)", {{"phase", phase}});
}

ExperimentContext make_context(util::Args& args) {
  ExperimentContext ctx;
  ctx.topo_params.seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1, "master random seed"));
  ctx.topo_params.num_markets =
      static_cast<int>(args.get_int("markets", 28, "number of markets"));
  ctx.topo_params.base_enodebs_per_market = static_cast<int>(
      args.get_int("scale", 55, "base eNodeBs per market (dataset size knob)"));
  if (args.help_requested()) return ctx;  // flags declared; skip the heavy build

  obs::ScopedTimer timer(phase_histogram("context"));
  ctx.topology = netsim::generate_topology(ctx.topo_params);
  ctx.schema = netsim::AttributeSchema::standard(ctx.topology);
  ctx.catalog = config::ParamCatalog::standard();
  ctx.gt_params.seed = ctx.topo_params.seed + 6;
  ctx.ground_truth = std::make_unique<config::GroundTruthModel>(ctx.topology, ctx.schema,
                                                                ctx.catalog, ctx.gt_params);
  ctx.assignment = ctx.ground_truth->assign();

  util::log_info(util::format(
      "context: %zu carriers, %zu eNodeBs, %d markets, %zu X2 edges, %zu configured values "
      "(%.1fs)",
      ctx.topology.carrier_count(), ctx.topology.enodebs.size(), ctx.topo_params.num_markets,
      ctx.topology.edge_count(), ctx.assignment.total_configured(), timer.stop()));
  return ctx;
}

int run_bench(int argc, char** argv, const char* title, int (*body)(util::Args& args)) {
  try {
    util::Args args(argc, argv);
    util::print_banner(title);
    const std::string metrics_out = args.get_string(
        "metrics-out", "", "write a metrics snapshot here after the run (.prom/.csv/.json)");
    const std::string trace_out =
        args.get_string("trace-out", "", "write the span trace here as JSONL after the run");
    const obs::LivePlaneOptions live_options = util::declare_live_plane_flags(args);
    util::LivePlaneScope live(args.help_requested() ? obs::LivePlaneOptions{} : live_options);
    const int rc = body(args);  // bodies return immediately under --help
    if (args.help_requested()) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    args.check_unknown();
    if (!metrics_out.empty()) {
      obs::write_metrics_file(obs::MetricsRegistry::global(), metrics_out);
      util::log_info("metrics snapshot written to " + metrics_out);
    }
    if (!trace_out.empty()) {
      obs::write_trace_file(obs::TraceRecorder::global(), trace_out);
      util::log_info("span trace written to " + trace_out);
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", title, e.what());
    return 1;
  }
}

}  // namespace auric::bench
