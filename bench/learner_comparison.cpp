#include "learner_comparison.h"

#include <algorithm>

#include "core/param_view.h"
#include "eval/cf_eval.h"
#include "eval/model_eval.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "util/log.h"
#include "util/strings.h"
#include "util/timer.h"

namespace auric::bench {

LearnerComparisonOptions declare_comparison_flags(util::Args& args) {
  LearnerComparisonOptions options;
  options.deep_dive_markets = static_cast<int>(
      args.get_int("deep-dive-markets", 4, "markets evaluated (Table 3 deep-dive subset)"));
  options.folds =
      static_cast<int>(args.get_int("folds", 2, "cross-validation folds for model learners"));
  options.train_cap = args.get_int("train-cap", 1500, "training rows per fold (0 = uncapped)");
  options.test_cap = args.get_int("test-cap", 4000, "test rows per fold (0 = uncapped)");
  options.mlp_epochs =
      static_cast<int>(args.get_int("mlp-epochs", 20, "MLP training epochs (paper: <=10000)"));
  options.learners = args.get_string(
      "learners", "all", "comma list of rf,knn,dt,mlp,cf (or \"all\")");
  return options;
}

double MarketComparison::average(int learner) const {
  ml::MeanAccumulator acc;
  for (const ParamAccuracy& p : per_param) {
    if (p.accuracy[learner] >= 0.0) acc.add(p.accuracy[learner], static_cast<double>(p.rows));
  }
  return acc.mean();
}

namespace {

bool learner_enabled(const LearnerComparisonOptions& options, const char* key) {
  if (options.learners == "all") return true;
  for (const std::string& item : util::split(options.learners, ',')) {
    if (util::trim(item) == key) return true;
  }
  return false;
}

}  // namespace

std::vector<MarketComparison> run_learner_comparison(const ExperimentContext& ctx,
                                                     const LearnerComparisonOptions& options) {
  const auto attr_codes = ctx.schema.encode_all(ctx.topology);

  const bool run_rf = learner_enabled(options, "rf");
  const bool run_knn = learner_enabled(options, "knn");
  const bool run_dt = learner_enabled(options, "dt");
  const bool run_mlp = learner_enabled(options, "mlp");
  const bool run_cf = learner_enabled(options, "cf");

  eval::CfEvalOptions cf_options;  // global learner: no proximity
  const eval::CfEvaluator cf_eval(ctx.topology, ctx.schema, ctx.catalog, ctx.assignment,
                                  cf_options);

  std::vector<MarketComparison> out;
  util::Timer timer;
  for (int m = 0; m < options.deep_dive_markets; ++m) {
    MarketComparison comparison;
    comparison.market = static_cast<netsim::MarketId>(m);
    for (std::size_t p = 0; p < ctx.catalog.size(); ++p) {
      const auto param = static_cast<config::ParamId>(p);
      const core::ParamView view = core::build_param_view(
          ctx.topology, ctx.catalog, ctx.assignment, param, comparison.market);
      if (view.rows() == 0) continue;

      ParamAccuracy result;
      result.param = param;
      result.rows = view.rows();
      result.distinct_values = view.labels.size();

      if (run_cf) {
        result.accuracy[4] = cf_eval.evaluate_param(param, comparison.market).accuracy();
      }

      if (run_rf || run_knn || run_dt || run_mlp) {
        const ml::CategoricalDataset data =
            core::to_categorical_dataset(view, ctx.schema, attr_codes);
        eval::ModelEvalOptions eval_options;
        eval_options.folds = options.folds;
        eval_options.train_cap = options.train_cap;
        eval_options.test_cap = options.test_cap;
        eval_options.seed = ctx.topo_params.seed * 1000 + p;

        // Hyper-parameters per §4.2 of the paper.
        if (run_rf) {
          result.accuracy[0] =
              eval::evaluate_model([] { return std::make_unique<ml::RandomForest>(); }, data,
                                   eval_options)
                  .accuracy();
        }
        if (run_knn) {
          result.accuracy[1] =
              eval::evaluate_model([] { return std::make_unique<ml::KNearestNeighbors>(); },
                                   data, eval_options)
                  .accuracy();
        }
        if (run_dt) {
          result.accuracy[2] =
              eval::evaluate_model([] { return std::make_unique<ml::DecisionTree>(); }, data,
                                   eval_options)
                  .accuracy();
        }
        if (run_mlp) {
          const int epochs = options.mlp_epochs;
          result.accuracy[3] = eval::evaluate_model(
                                   [epochs] {
                                     ml::MlpOptions mlp;
                                     mlp.max_epochs = epochs;
                                     mlp.seed = 1;  // "random state of 1"
                                     return std::make_unique<ml::MultilayerPerceptron>(mlp);
                                   },
                                   data, eval_options)
                                   .accuracy();
        }
      }
      comparison.per_param.push_back(result);
    }
    // Fig. 10 presents parameters reverse-sorted by variability.
    std::sort(comparison.per_param.begin(), comparison.per_param.end(),
              [](const ParamAccuracy& a, const ParamAccuracy& b) {
                return a.distinct_values > b.distinct_values;
              });
    util::log_info(util::format("market %d learner comparison done (%.1fs elapsed)", m + 1,
                                timer.elapsed_seconds()));
    out.push_back(std::move(comparison));
  }
  return out;
}

}  // namespace auric::bench
