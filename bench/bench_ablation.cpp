// Ablations of Auric's design choices (DESIGN.md §8). Not a paper table —
// each arm isolates one mechanism so the contribution structure is visible:
//
//   A. voting threshold sweep (the paper fixes 75%)
//   B. chi-square significance sweep (the paper fixes p = 0.01)
//   C. proximity radius: global vs 1-hop vs 2-hop X2
//   D. dependency cap / support backoff (this reproduction's scale
//      refinement) on vs off
//   E. irrelevant-attribute elimination: chi-square-selected attributes vs
//      matching on ALL attributes (what makes CF beat k-NN, §3.2)
//   F. §6 performance-feedback extension: KPI-weighted local voting
#include <cstdio>

#include "common.h"
#include "eval/cf_eval.h"
#include "smartlaunch/kpi.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

double run(const ExperimentContext& ctx, const eval::CfEvalOptions& options, int markets) {
  const eval::CfEvaluator evaluator(ctx.topology, ctx.schema, ctx.catalog, ctx.assignment,
                                    options);
  double sum = 0.0;
  for (int m = 0; m < markets; ++m) {
    sum += eval::overall_accuracy(evaluator.evaluate_all(static_cast<netsim::MarketId>(m)));
  }
  return 100.0 * sum / markets;
}

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  const int markets = static_cast<int>(
      args.get_int("ablation-markets", 4, "markets evaluated per arm (cost knob)"));
  if (args.help_requested()) return 0;

  util::Table table({"arm", "configuration", "local CF accuracy %"});

  // A. Voting threshold sweep.
  for (double threshold : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    eval::CfEvalOptions options;
    options.local = true;
    options.vote_threshold = threshold;
    table.add_row({"A: vote threshold", util::format_fixed(threshold, 2),
                   util::format_fixed(run(ctx, options, markets), 2)});
  }

  // B. Chi-square significance sweep.
  for (double p : {0.05, 0.01, 0.001}) {
    eval::CfEvalOptions options;
    options.local = true;
    options.p_value = p;
    table.add_row({"B: chi-square p", util::format_fixed(p, 3),
                   util::format_fixed(run(ctx, options, markets), 2)});
  }

  // C. Proximity radius.
  {
    eval::CfEvalOptions global;
    table.add_row({"C: proximity", "global",
                   util::format_fixed(run(ctx, global, markets), 2)});
    for (int hops : {1, 2}) {
      eval::CfEvalOptions options;
      options.local = true;
      options.proximity_hops = hops;
      table.add_row({"C: proximity", std::to_string(hops) + "-hop X2",
                     util::format_fixed(run(ctx, options, markets), 2)});
    }
  }

  // D. Dependency cap + backoff (the reproduction's scale refinement). The
  //    effect concentrates in the GLOBAL learner, whose only defense against
  //    fragmented peer groups is the backoff ladder (the local learner's
  //    global fallback already papers over most of it).
  {
    eval::CfEvalOptions off;
    off.max_dependent = 0;   // keep every flagged attribute
    off.backoff_levels = 1;  // no backoff
    table.add_row({"D: cap+backoff (global)", "off (paper-literal exact match)",
                   util::format_fixed(run(ctx, off, markets), 2)});
    eval::CfEvalOptions on;
    table.add_row({"D: cap+backoff (global)", "on (max_dependent=14, 5 levels)",
                   util::format_fixed(run(ctx, on, markets), 2)});
  }

  // E. Attribute elimination: setting p so high that nothing is eliminated
  //    makes CF behave like exact-match-on-everything (k-NN-flavored).
  {
    eval::CfEvalOptions all_attrs;
    all_attrs.local = true;
    all_attrs.p_value = 1.0;  // every attribute "dependent"
    all_attrs.max_dependent = 0;
    all_attrs.backoff_levels = 1;
    table.add_row({"E: attr elimination", "off (match on all attributes)",
                   util::format_fixed(run(ctx, all_attrs, markets), 2)});
    eval::CfEvalOptions selected;
    selected.local = true;
    table.add_row({"E: attr elimination", "on (chi-square selected)",
                   util::format_fixed(run(ctx, selected, markets), 2)});
  }

  // F. Performance-feedback extension (§6): weight voters by KPI quality.
  {
    const smartlaunch::KpiModel kpi(ctx.topology, ctx.catalog, ctx.assignment);
    eval::CfEvalOptions weighted;
    weighted.local = true;
    weighted.carrier_weights = kpi.all_qualities();
    table.add_row({"F: KPI-weighted votes", "on",
                   util::format_fixed(run(ctx, weighted, markets), 2)});
    eval::CfEvalOptions plain;
    plain.local = true;
    table.add_row({"F: KPI-weighted votes", "off",
                   util::format_fixed(run(ctx, plain, markets), 2)});
  }

  table.print();
  std::printf("\nexpected shapes: thresholds beyond ~0.85 starve the vote; p in\n"
              "[0.001, 0.05] barely matters; 1-hop proximity beats both global and 2-hop;\n"
              "the cap+backoff refinement recovers the global learner's fragmentation\n"
              "losses; matching on ALL attributes (no elimination) hurts — the paper's\n"
              "k-NN critique; KPI-weighted voting is near-neutral at the default noise\n"
              "level — its benefit concentrates where mis-configured voters are common\n"
              "(see the weighted-vote unit tests).\n");
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(argc, argv, "Ablations of Auric's design choices",
                                 auric::bench::body);
}
