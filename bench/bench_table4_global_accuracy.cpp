// Table 4 of the paper: average accuracy of the five global learners across
// the four deep-dive markets and all configuration parameters.
//
// Paper values (shape to reproduce: CF wins, RF second, others clustered):
//             RF     k-NN    DT     DNN    CF
//   Market 1  92.58  91.58   91.93  91.94  95.94
//   Market 2  89.27  88.08   88.73  88.39  93.75
//   Market 3  91.43  90.71   91.14  90.98  95.58
//   Market 4  95.15  94.34   94.79  94.57  96.63
//   All four  92.11  91.18   91.68  91.70  95.48
#include <cstdio>

#include "common.h"
#include "learner_comparison.h"
#include "ml/metrics.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

constexpr double kPaper[5][5] = {
    {92.58, 91.58, 91.93, 91.94, 95.94}, {89.27, 88.08, 88.73, 88.39, 93.75},
    {91.43, 90.71, 91.14, 90.98, 95.58}, {95.15, 94.34, 94.79, 94.57, 96.63},
    {92.11, 91.18, 91.68, 91.70, 95.48},
};

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  LearnerComparisonOptions options = declare_comparison_flags(args);
  if (args.help_requested()) return 0;

  const std::vector<MarketComparison> results = run_learner_comparison(ctx, options);

  util::Table table({"", "Random forest", "k-NN", "Decision tree", "Deep neural network",
                     "Collaborative filtering"});
  double grand[kLearnerCount] = {};
  double grand_rows[kLearnerCount] = {};
  for (const MarketComparison& market : results) {
    std::vector<double> row;
    for (int learner = 0; learner < kLearnerCount; ++learner) {
      ml::MeanAccumulator acc;
      for (const ParamAccuracy& p : market.per_param) {
        if (p.accuracy[learner] >= 0.0) {
          acc.add(p.accuracy[learner], static_cast<double>(p.rows));
          grand[learner] += p.accuracy[learner] * static_cast<double>(p.rows);
          grand_rows[learner] += static_cast<double>(p.rows);
        }
      }
      row.push_back(100.0 * acc.mean());
    }
    table.add_row_numeric(
        ctx.topology.markets[static_cast<std::size_t>(market.market)].name, row, 2);
  }
  std::vector<double> all_row;
  for (int learner = 0; learner < kLearnerCount; ++learner) {
    all_row.push_back(grand_rows[learner] > 0 ? 100.0 * grand[learner] / grand_rows[learner]
                                              : -1.0);
  }
  table.add_row_numeric("All four", all_row, 2);
  table.print();

  std::printf("\npaper Table 4 for comparison:\n");
  util::Table paper({"", "Random forest", "k-NN", "Decision tree", "Deep neural network",
                     "Collaborative filtering"});
  const char* row_names[5] = {"Market 1", "Market 2", "Market 3", "Market 4", "All four"};
  for (int r = 0; r < 5; ++r) {
    paper.add_row_numeric(row_names[r],
                          {kPaper[r][0], kPaper[r][1], kPaper[r][2], kPaper[r][3], kPaper[r][4]},
                          2);
  }
  paper.print();
  std::printf(
      "\nnote: model learners use %d-fold CV with train cap %lld rows/fold and MLP capped at %d"
      " epochs\n(run with --train-cap 0 --mlp-epochs 200 for uncapped evaluation).\n",
      options.folds, static_cast<long long>(options.train_cap), options.mlp_epochs);
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(argc, argv, "Table 4: average accuracy of five global learners",
                                 auric::bench::body);
}
