// Shared experiment context for the benchmark harnesses.
//
// Every bench binary reproduces one table or figure of the paper over the
// same synthetic network, built from the same command-line knobs:
//   --seed     master seed (topology + ground truth derive from it)
//   --markets  number of markets (paper: 28)
//   --scale    base eNodeBs per market (sets dataset size; the paper's full
//              400K+ carriers corresponds to roughly --scale 1700)
// Each binary prints the paper's reported numbers next to the measured ones
// so bench_output.txt reads as a self-contained EXPERIMENTS record.
// Every binary also understands --metrics-out and --trace-out: after the
// body returns, the process-wide metrics registry is snapshotted to the
// given path (.prom / .csv / .json by extension) and the span trace is
// dumped as JSONL.
#pragma once

#include <memory>
#include <string>

#include "config/assignment.h"
#include "config/catalog.h"
#include "config/ground_truth.h"
#include "netsim/attributes.h"
#include "netsim/generator.h"
#include "netsim/topology.h"
#include "obs/metrics.h"
#include "util/args.h"

namespace auric::bench {

struct ExperimentContext {
  netsim::TopologyParams topo_params;
  config::GroundTruthParams gt_params;
  netsim::Topology topology;
  netsim::AttributeSchema schema;
  config::ParamCatalog catalog{std::vector<config::ParamDef>{}};
  config::ConfigAssignment assignment;
  std::unique_ptr<config::GroundTruthModel> ground_truth;
};

/// Declares the common flags on `args` and builds the context.
ExperimentContext make_context(util::Args& args);

/// The shared `auric_bench_phase_seconds{phase=...}` histogram for one named
/// bench phase. Time phases with `obs::ScopedTimer timer(phase_histogram("x"))`
/// so the printed number and the exported metric are the same measurement.
obs::Histogram& phase_histogram(const std::string& phase);

/// Standard wrapper: parses args, handles --help, runs `body`, reports
/// errors on stderr with a non-zero exit. Declares --metrics-out/--trace-out
/// and dumps both after the body completes.
int run_bench(int argc, char** argv, const char* title,
              int (*body)(util::Args& args));

}  // namespace auric::bench
