// §4.3.2 of the paper: "Importance of geographical proximity".
//
// Reproduces the headline comparison between collaborative filtering with
// global voting and with local (1-hop X2 neighborhood) voting:
//   4 deep-dive markets:  global 95.48%  ->  local 96.14%
//   all 28 markets:       global 96.5%   ->  local 96.9%
// The expected *shape*: local > global, by a fraction of a percent, with the
// gap explained by geographically local tuning pockets that only the local
// learner can resolve.
#include <cstdio>

#include "common.h"
#include "eval/cf_eval.h"
#include "util/log.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  const int deep_dive = static_cast<int>(
      args.get_int("deep-dive-markets", 4, "number of deep-dive markets (Table 3 subset)"));
  if (args.help_requested()) return 0;

  eval::CfEvalOptions global_opts;
  eval::CfEvalOptions local_opts;
  local_opts.local = true;

  const eval::CfEvaluator global_eval(ctx.topology, ctx.schema, ctx.catalog, ctx.assignment,
                                      global_opts);
  const eval::CfEvaluator local_eval(ctx.topology, ctx.schema, ctx.catalog, ctx.assignment,
                                     local_opts);

  util::Table table({"market", "rows", "global CF acc %", "local CF acc %", "delta"});
  double global_sum = 0.0;
  double local_sum = 0.0;
  double global_deep = 0.0;
  double local_deep = 0.0;
  util::Timer timer;
  for (int m = 0; m < ctx.topo_params.num_markets; ++m) {
    const auto market = static_cast<netsim::MarketId>(m);
    const auto global_results = global_eval.evaluate_all(market);
    const auto local_results = local_eval.evaluate_all(market);
    const double g = 100.0 * eval::overall_accuracy(global_results);
    const double l = 100.0 * eval::overall_accuracy(local_results);
    global_sum += g;
    local_sum += l;
    if (m < deep_dive) {
      global_deep += g;
      local_deep += l;
    }
    std::size_t rows = 0;
    for (const auto& r : global_results) rows += r.rows;
    table.add_row({ctx.topology.markets[static_cast<std::size_t>(m)].name,
                   util::with_commas(static_cast<long long>(rows)), util::format_fixed(g, 2),
                   util::format_fixed(l, 2), util::format_fixed(l - g, 2)});
    util::log_info(util::format("market %d done (%.1fs elapsed)", m + 1,
                                timer.elapsed_seconds()));
  }
  table.print();

  const double markets = ctx.topo_params.num_markets;
  std::printf("\n%d deep-dive markets: global %.2f%% -> local %.2f%%   [paper: 95.48 -> 96.14]\n",
              deep_dive, global_deep / deep_dive, local_deep / deep_dive);
  std::printf("all %d markets:      global %.2f%% -> local %.2f%%   [paper: 96.5 -> 96.9]\n",
              ctx.topo_params.num_markets, global_sum / markets, local_sum / markets);
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(
      argc, argv, "Sec. 4.3.2: global vs local collaborative filtering", auric::bench::body);
}
