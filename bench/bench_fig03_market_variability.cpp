// Fig. 3 of the paper: distinct values per configuration parameter for each
// market (a 65 x 28 heat map).
//
// Shape to reproduce: variability is high for some markets and some
// parameter groups — i.e. strong row AND column structure, not uniform.
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "eval/variability.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

/// Buckets a distinct count for the console heat map.
char heat_char(std::size_t distinct) {
  if (distinct <= 1) return '.';
  if (distinct <= 3) return '1';
  if (distinct <= 6) return '2';
  if (distinct <= 10) return '3';
  if (distinct <= 20) return '4';
  return '#';
}

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  const std::string csv_path =
      args.get_string("csv", "", "optional CSV output path for the full matrix");
  if (args.help_requested()) return 0;

  std::vector<eval::ParamVariability> variability =
      eval::analyze_variability(ctx.topology, ctx.catalog, ctx.assignment);
  std::sort(variability.begin(), variability.end(),
            [](const auto& a, const auto& b) { return a.distinct_overall > b.distinct_overall; });
  const std::size_t markets = ctx.topology.markets.size();

  std::printf("heat map: distinct values per (parameter, market);"
              " . =0/1  1 <=3  2 <=6  3 <=10  4 <=20  # >20\n\n");
  std::printf("%-26s markets 1..%zu\n", "parameter", markets);
  for (const auto& var : variability) {
    std::string row;
    for (std::size_t m = 0; m < markets; ++m) row += heat_char(var.distinct_per_market[m]);
    std::printf("%-26s %s\n", ctx.catalog.at(var.param).name.c_str(), row.c_str());
  }

  // Column structure: per-market totals (which markets tune aggressively).
  std::printf("\n%-26s ", "mean distinct/market:");
  std::vector<double> market_mean(markets, 0.0);
  for (const auto& var : variability) {
    for (std::size_t m = 0; m < markets; ++m) {
      market_mean[m] += static_cast<double>(var.distinct_per_market[m]);
    }
  }
  double lo = 1e18;
  double hi = 0;
  for (std::size_t m = 0; m < markets; ++m) {
    market_mean[m] /= static_cast<double>(variability.size());
    lo = std::min(lo, market_mean[m]);
    hi = std::max(hi, market_mean[m]);
  }
  std::printf("min %.2f, max %.2f (x%.1f spread across markets)\n", lo, hi,
              lo > 0 ? hi / lo : 0.0);
  std::printf("[paper: \"variability is quite high for some markets and for some collections of"
              " configuration parameters\"]\n");

  if (!csv_path.empty()) {
    std::vector<std::string> headers{"parameter"};
    for (std::size_t m = 0; m < markets; ++m) headers.push_back("market_" + std::to_string(m + 1));
    util::CsvWriter csv(csv_path, headers);
    for (const auto& var : variability) {
      std::vector<std::string> row{ctx.catalog.at(var.param).name};
      for (std::size_t m = 0; m < markets; ++m) {
        row.push_back(std::to_string(var.distinct_per_market[m]));
      }
      csv.add_row(row);
    }
    std::printf("matrix written to %s\n", csv_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(
      argc, argv, "Fig. 3: distinct values per configuration parameter per market",
      auric::bench::body);
}
