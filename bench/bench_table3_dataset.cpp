// Table 3 of the paper: the four deep-dive markets, one per US timezone,
// with carrier / eNodeB / configuration-value counts.
//
// Paper values:
//            Timezone  Carriers  eNodeBs  Parameters
//   Market 1 Mountain    24,271    1,791     930,481
//   Market 2 Central     22,809    1,521     676,627
//   Market 3 Eastern     45,127    2,643   2,012,021
//   Market 4 Pacific     23,805    1,679     909,010
//   All four            116,012    7,634   4,528,139
// Absolute counts scale with --scale; the *ratios* (Market 3 ~1.9x the
// others; one market per timezone) are what this bench reproduces. Our
// per-carrier value count runs denser than the paper's ~38/carrier because
// we account every configured pair-wise relation instance (see
// EXPERIMENTS.md).
#include <cstdio>

#include "common.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  const int deep_dive =
      static_cast<int>(args.get_int("deep-dive-markets", 4, "number of deep-dive markets"));
  if (args.help_requested()) return 0;

  // Per-market configured-value counts.
  std::vector<std::size_t> values_per_market(ctx.topology.markets.size(), 0);
  const auto count_column = [&](const config::ParamColumn& col, bool pairwise) {
    for (std::size_t i = 0; i < col.value.size(); ++i) {
      if (col.value[i] == config::kUnset) continue;
      const netsim::CarrierId subject =
          pairwise ? ctx.topology.edges[i].from : static_cast<netsim::CarrierId>(i);
      ++values_per_market[static_cast<std::size_t>(ctx.topology.carrier(subject).market)];
    }
  };
  for (const auto& col : ctx.assignment.singular) count_column(col, false);
  for (const auto& col : ctx.assignment.pairwise) count_column(col, true);

  util::Table table({"", "Timezone", "Carriers", "eNodeBs", "Parameters"});
  long long carriers_total = 0;
  long long enodebs_total = 0;
  long long values_total = 0;
  for (int m = 0; m < deep_dive; ++m) {
    const netsim::Market& market = ctx.topology.markets[static_cast<std::size_t>(m)];
    const auto carriers =
        static_cast<long long>(ctx.topology.carriers_in_market(market.id).size());
    const auto enodebs = static_cast<long long>(ctx.topology.enodeb_count_in_market(market.id));
    const auto values = static_cast<long long>(values_per_market[static_cast<std::size_t>(m)]);
    carriers_total += carriers;
    enodebs_total += enodebs;
    values_total += values;
    table.add_row({market.name, timezone_name(market.timezone), util::with_commas(carriers),
                   util::with_commas(enodebs), util::with_commas(values)});
  }
  table.add_row({"All four", "", util::with_commas(carriers_total),
                 util::with_commas(enodebs_total), util::with_commas(values_total)});
  table.print();

  std::printf("\npaper Table 3 for comparison (absolute counts at production scale):\n");
  util::Table paper({"", "Timezone", "Carriers", "eNodeBs", "Parameters"});
  paper.add_row({"Market 1", "Mountain", "24,271", "1,791", "930,481"});
  paper.add_row({"Market 2", "Central", "22,809", "1,521", "676,627"});
  paper.add_row({"Market 3", "Eastern", "45,127", "2,643", "2,012,021"});
  paper.add_row({"Market 4", "Pacific", "23,805", "1,679", "909,010"});
  paper.add_row({"All four", "", "116,012", "7,634", "4,528,139"});
  paper.print();

  std::printf("\nwhole network: %s carriers, %s eNodeBs, %s configured values across %zu markets"
              "\n[paper: 400K+ carriers, 15M+ values across 28 markets]\n",
              util::with_commas(static_cast<long long>(ctx.topology.carrier_count())).c_str(),
              util::with_commas(static_cast<long long>(ctx.topology.enodebs.size())).c_str(),
              util::with_commas(static_cast<long long>(ctx.assignment.total_configured())).c_str(),
              ctx.topology.markets.size());
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(argc, argv, "Table 3: deep-dive market data set",
                                 auric::bench::body);
}
