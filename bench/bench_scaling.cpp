// Scaling study (not a paper table): how the headline conclusions behave as
// the synthetic network grows toward the paper's production scale.
//
// Checks, at each scale: (a) local CF stays ahead of global CF, (b) both
// stay in the mid-90s accuracy band, (c) learning + LOO evaluation cost
// grows linearly in the number of configured values (the engine is built
// from hash-join group-bys, nothing quadratic).
#include <cstdio>

#include "common.h"
#include "eval/cf_eval.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  // Note: this bench ignores the shared --scale knob and sweeps its own.
  ExperimentContext base = make_context(args);
  const std::string scales_flag =
      args.get_string("scales", "25,55,110", "comma list of eNodeB-per-market scales");
  const int markets_eval = static_cast<int>(
      args.get_int("eval-markets", 4, "markets evaluated per scale (cost knob)"));
  if (args.help_requested()) return 0;

  util::Table table(
      {"scale", "carriers", "values", "global CF %", "local CF %", "delta", "eval s"});
  for (const std::string& token : util::split(scales_flag, ',')) {
    netsim::TopologyParams topo_params = base.topo_params;
    topo_params.base_enodebs_per_market = std::stoi(std::string(util::trim(token)));
    const netsim::Topology topology = netsim::generate_topology(topo_params);
    const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topology);
    const config::GroundTruthModel ground_truth(topology, schema, base.catalog,
                                                base.gt_params);
    const config::ConfigAssignment assignment = ground_truth.assign();

    util::Timer timer;
    double acc[2];
    for (int local = 0; local <= 1; ++local) {
      eval::CfEvalOptions options;
      options.local = local == 1;
      const eval::CfEvaluator evaluator(topology, schema, base.catalog, assignment, options);
      double sum = 0.0;
      for (int m = 0; m < markets_eval; ++m) {
        sum += eval::overall_accuracy(evaluator.evaluate_all(static_cast<netsim::MarketId>(m)));
      }
      acc[local] = 100.0 * sum / markets_eval;
    }
    table.add_row({token, util::with_commas(static_cast<long long>(topology.carrier_count())),
                   util::with_commas(static_cast<long long>(assignment.total_configured())),
                   util::format_fixed(acc[0], 2), util::format_fixed(acc[1], 2),
                   util::format_fixed(acc[1] - acc[0], 2),
                   util::format_fixed(timer.elapsed_seconds(), 1)});
  }
  table.print();
  std::printf("\nexpected shapes: local > global at every scale; accuracy stable in the\n"
              "mid-90s band; evaluation time linear in the configured-value count.\n");
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(argc, argv, "Scaling study: conclusions vs dataset size",
                                 auric::bench::body);
}
