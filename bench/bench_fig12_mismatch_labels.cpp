// Fig. 12 of the paper: labeling of the mismatches between the local
// learner's recommendations and the current network values.
//
// The paper sampled 54,915 mismatches and had market engineers label them:
//   update learner       3,075  (5%)
//   good recommendation 15,241 (28%)  -> pushed as configuration changes
//   inconclusive        36,599 (67%)
// Our stand-in for the engineers is the ground-truth oracle
// (eval::label_mismatches; see DESIGN.md §6 and mismatch.h).
#include <cstdio>

#include "common.h"
#include "eval/cf_eval.h"
#include "eval/mismatch.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  if (args.help_requested()) return 0;

  eval::CfEvalOptions options;
  options.local = true;
  const eval::CfEvaluator evaluator(ctx.topology, ctx.schema, ctx.catalog, ctx.assignment,
                                    options);

  std::vector<eval::CfPrediction> mismatches;
  std::size_t rows = 0;
  std::size_t correct = 0;
  for (std::size_t m = 0; m < ctx.topology.markets.size(); ++m) {
    const auto results =
        evaluator.evaluate_all(static_cast<netsim::MarketId>(m), &mismatches);
    for (const auto& r : results) {
      rows += r.rows;
      correct += r.correct;
    }
  }

  const eval::MismatchBreakdown breakdown =
      eval::label_mismatches(mismatches, ctx.catalog, ctx.assignment);

  std::printf("local learner accuracy: %.2f%% over %s values -> %s mismatches labeled\n",
              100.0 * static_cast<double>(correct) / static_cast<double>(rows),
              util::with_commas(static_cast<long long>(rows)).c_str(),
              util::with_commas(static_cast<long long>(breakdown.total)).c_str());
  std::printf("[paper: ~96%% accuracy; 54,915 sampled mismatches labeled]\n\n");

  util::Table table({"label", "mismatches", "share %", "paper share %"});
  table.add_row({"update learner",
                 util::with_commas(static_cast<long long>(breakdown.update_learner)),
                 util::format_fixed(100.0 * breakdown.fraction(
                                                eval::MismatchLabel::kUpdateLearner), 1),
                 "5.6"});
  table.add_row({"good recommendation",
                 util::with_commas(static_cast<long long>(breakdown.good_recommendation)),
                 util::format_fixed(100.0 * breakdown.fraction(
                                                eval::MismatchLabel::kGoodRecommendation), 1),
                 "27.8"});
  table.add_row({"inconclusive",
                 util::with_commas(static_cast<long long>(breakdown.inconclusive)),
                 util::format_fixed(100.0 * breakdown.fraction(
                                                eval::MismatchLabel::kInconclusive), 1),
                 "66.6"});
  table.print();

  std::printf("\n\"good recommendation\" mismatches are the ones the paper pushed into the"
              " network as changes\n(15K+ parameters); in this reproduction they are exactly the"
              " stale-leftover slots whose\nrecommendation equals the engineering intent.\n");

  // The paper's "added bonus" closed loop: push the good recommendations as
  // configuration changes and re-evaluate — the network converges to intent.
  config::ConfigAssignment improved = ctx.assignment;
  const std::size_t pushed =
      eval::apply_good_recommendations(mismatches, ctx.catalog, improved);
  const eval::CfEvaluator re_evaluator(ctx.topology, ctx.schema, ctx.catalog, improved,
                                       options);
  std::size_t re_rows = 0;
  std::size_t re_correct = 0;
  for (std::size_t m = 0; m < ctx.topology.markets.size(); ++m) {
    for (const auto& r : re_evaluator.evaluate_all(static_cast<netsim::MarketId>(m))) {
      re_rows += r.rows;
      re_correct += r.correct;
    }
  }
  std::printf("\nafter pushing the %s good recommendations into the network"
              " [paper: 15K+ changes],\nlocal accuracy rises %.2f%% -> %.2f%%\n",
              util::with_commas(static_cast<long long>(pushed)).c_str(),
              100.0 * static_cast<double>(correct) / static_cast<double>(rows),
              100.0 * static_cast<double>(re_correct) / static_cast<double>(re_rows));
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(argc, argv, "Fig. 12: engineer labeling of mismatches",
                                 auric::bench::body);
}
