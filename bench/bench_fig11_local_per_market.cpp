// Figs. 11a-11d of the paper: local-learner (geographical proximity)
// accuracy for the four highest-variability parameters, across all markets,
// with each market's distinct-value count on the secondary axis.
//
// Shapes to reproduce:
//   - markets differ in variability and accuracy tracks it;
//   - a few markets under-perform even at comparable variability (hidden
//     attributes — terrain — concentrated there; markets 6/7 in Fig. 11a).
#include <algorithm>
#include <cstdio>

#include "common.h"
#include "eval/cf_eval.h"
#include "eval/variability.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  const int top_params = static_cast<int>(
      args.get_int("top-params", 4, "number of highest-variability parameters to chart"));
  const std::string csv_path =
      args.get_string("csv", "", "optional CSV output prefix (one file per parameter)");
  if (args.help_requested()) return 0;

  std::vector<eval::ParamVariability> variability =
      eval::analyze_variability(ctx.topology, ctx.catalog, ctx.assignment);
  std::sort(variability.begin(), variability.end(),
            [](const auto& a, const auto& b) { return a.distinct_overall > b.distinct_overall; });

  eval::CfEvalOptions options;
  options.local = true;
  const eval::CfEvaluator evaluator(ctx.topology, ctx.schema, ctx.catalog, ctx.assignment,
                                    options);

  for (int i = 0; i < top_params && i < static_cast<int>(variability.size()); ++i) {
    const config::ParamId param = variability[static_cast<std::size_t>(i)].param;
    util::print_banner(util::format("Fig. 11 series %d: %s (%zu distinct network-wide)", i + 1,
                                    ctx.catalog.at(param).name.c_str(),
                                    variability[static_cast<std::size_t>(i)].distinct_overall));
    util::Table table({"market", "rows", "distinct values", "local CF accuracy %"});
    std::unique_ptr<util::CsvWriter> csv;
    if (!csv_path.empty()) {
      csv = std::make_unique<util::CsvWriter>(
          csv_path + "_" + ctx.catalog.at(param).name + ".csv",
          std::vector<std::string>{"market", "distinct", "accuracy"});
    }
    for (std::size_t m = 0; m < ctx.topology.markets.size(); ++m) {
      const auto market = static_cast<netsim::MarketId>(m);
      const eval::CfParamResult result = evaluator.evaluate_param(param, market);
      const std::size_t distinct =
          variability[static_cast<std::size_t>(i)].distinct_per_market[m];
      table.add_row({ctx.topology.markets[m].name, std::to_string(result.rows),
                     std::to_string(distinct), util::format_fixed(100.0 * result.accuracy(), 2)});
      if (csv) {
        csv->add_row({std::to_string(m + 1), std::to_string(distinct),
                      util::format_fixed(result.accuracy(), 4)});
      }
    }
    table.print();
  }
  std::printf("\n[paper: accuracy varies with per-market variability; some markets are lower even"
              " at similar\nvariability, pointing at attributes missing from the learners]\n");
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(
      argc, argv, "Figs. 11a-d: local learner accuracy for high-variability parameters",
      auric::bench::body);
}
