// Micro-benchmarks of the hot paths (google-benchmark). Not a paper
// experiment — these track the cost of the primitives every experiment is
// built from, so performance regressions surface immediately.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "config/ground_truth.h"
#include "io/launch_state.h"
#include "core/dependency.h"
#include "core/engine.h"
#include "core/model_watch.h"
#include "core/param_view.h"
#include "core/voting.h"
#include "ml/chi_square.h"
#include "ml/decision_tree.h"
#include "ml/dataset.h"
#include "netsim/attributes.h"
#include "netsim/generator.h"
#include "obs/metrics.h"
#include "obs/rules.h"
#include "obs/sampler.h"
#include "obs/server.h"
#include "obs/trace.h"
#include "serve/daemon.h"
#include "smartlaunch/ems.h"
#include "smartlaunch/replay.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace auric {
namespace {

/// Shared medium-sized world, built once.
struct World {
  netsim::Topology topo;
  netsim::AttributeSchema schema;
  config::ParamCatalog catalog = config::ParamCatalog::standard();
  config::ConfigAssignment assignment;
  std::vector<std::vector<netsim::AttrCode>> codes;

  explicit World(int num_markets = 4, int enodebs_per_market = 40) {
    netsim::TopologyParams params;
    params.seed = 3;
    params.num_markets = num_markets;
    params.base_enodebs_per_market = enodebs_per_market;
    topo = netsim::generate_topology(params);
    schema = netsim::AttributeSchema::standard(topo);
    assignment = config::GroundTruthModel(topo, schema, catalog).assign();
    codes = schema.encode_all(topo);
  }
};

const World& world() {
  static const World w;
  return w;
}

/// The replay-default window (28 markets x 55 eNodeBs/market, ~13.5K
/// carriers): the relearn acceptance bar — incremental >= 5x cheaper than a
/// full rebuild — is pinned to this world, not the smaller shared one.
const World& relearn_world() {
  static const World w(28, 55);
  return w;
}

void BM_TopologyGeneration(benchmark::State& state) {
  netsim::TopologyParams params;
  params.num_markets = 2;
  params.base_enodebs_per_market = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::generate_topology(params));
  }
  state.SetItemsProcessed(state.iterations() * params.base_enodebs_per_market * 2);
}
BENCHMARK(BM_TopologyGeneration)->Arg(10)->Arg(40);

void BM_GroundTruthAssign(benchmark::State& state) {
  const World& w = world();
  const config::GroundTruthModel model(w.topo, w.schema, w.catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.assign());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.assignment.total_configured()));
}
BENCHMARK(BM_GroundTruthAssign);

void BM_ChiSquareTest(benchmark::State& state) {
  util::Rng rng(1);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> x(n);
  std::vector<std::int32_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<std::int32_t>(rng.uniform_int(0, 9));
    y[i] = static_cast<std::int32_t>(rng.uniform_int(0, 19));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::chi_square_independence(x, y, 10, 20));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ChiSquareTest)->Arg(1000)->Arg(100000);

void BM_DependencyScan(benchmark::State& state) {
  const World& w = world();
  const core::ParamView view =
      core::build_param_view(w.topo, w.catalog, w.assignment, w.catalog.id_of("pMax"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::learn_dependencies(view, w.codes, w.schema, {}));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(view.rows()));
}
BENCHMARK(BM_DependencyScan);

void BM_VotingModelBuild(benchmark::State& state) {
  const World& w = world();
  const config::ParamId param = w.catalog.id_of("pMax");
  const core::ParamView view = core::build_param_view(w.topo, w.catalog, w.assignment, param);
  const core::DependencyModel deps = core::learn_dependencies(view, w.codes, w.schema, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::VotingModel(view, deps.dependent, w.codes));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(view.rows()));
}
BENCHMARK(BM_VotingModelBuild);

void BM_LeaveOneOutVote(benchmark::State& state) {
  const World& w = world();
  const config::ParamId param = w.catalog.id_of("pMax");
  const core::ParamView view = core::build_param_view(w.topo, w.catalog, w.assignment, param);
  const core::DependencyModel deps = core::learn_dependencies(view, w.codes, w.schema, {});
  const core::VotingModel model(view, deps.dependent, w.codes);
  std::size_t row = 0;
  for (auto _ : state) {
    const core::GroupKey key = model.key_for(view.carrier[row], view.neighbor[row]);
    benchmark::DoNotOptimize(model.vote_excluding(key, view.label[row], 0.75));
    row = (row + 1) % view.rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LeaveOneOutVote);

void BM_LocalVote(benchmark::State& state) {
  const World& w = world();
  const config::ParamId param = w.catalog.id_of("pMax");
  const core::ParamView view = core::build_param_view(w.topo, w.catalog, w.assignment, param);
  const core::DependencyModel deps = core::learn_dependencies(view, w.codes, w.schema, {});
  const core::VotingModel model(view, deps.dependent, w.codes);
  std::size_t row = 0;
  for (auto _ : state) {
    const core::GroupKey key = model.key_for(view.carrier[row], view.neighbor[row]);
    benchmark::DoNotOptimize(core::local_vote(view, deps.dependent, w.codes, key,
                                              w.topo.neighborhood(view.carrier[row]),
                                              static_cast<std::int64_t>(row), 0.75));
    row = (row + 1) % view.rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalVote);

void BM_DecisionTreeFit(benchmark::State& state) {
  const World& w = world();
  const config::ParamId param = w.catalog.id_of("pMax");
  const core::ParamView view = core::build_param_view(w.topo, w.catalog, w.assignment, param);
  const ml::CategoricalDataset data = core::to_categorical_dataset(view, w.schema, w.codes);
  std::vector<std::size_t> rows(data.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  for (auto _ : state) {
    ml::DecisionTree tree;
    tree.fit(data, rows);
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_DecisionTreeFit);

void BM_OneHotEncode(benchmark::State& state) {
  const World& w = world();
  const config::ParamId param = w.catalog.id_of("pMax");
  const core::ParamView view = core::build_param_view(w.topo, w.catalog, w.assignment, param);
  const ml::CategoricalDataset data = core::to_categorical_dataset(view, w.schema, w.codes);
  const ml::OneHotEncoder encoder(data);
  std::vector<std::size_t> rows(data.rows());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(data, rows));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(rows.size()));
}
BENCHMARK(BM_OneHotEncode);

void BM_EngineRecommendCarrier(benchmark::State& state) {
  const World& w = world();
  static const core::AuricEngine engine(w.topo, w.schema, w.catalog, w.assignment);
  netsim::CarrierId carrier = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.recommend_singular(carrier));
    carrier = static_cast<netsim::CarrierId>((carrier + 1) %
                                             static_cast<netsim::CarrierId>(
                                                 w.topo.carrier_count()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.catalog.singular_ids().size()));
}
BENCHMARK(BM_EngineRecommendCarrier);

// The same walk with a ModelWatch attached: prices the per-recommendation
// telemetry (pre-resolved instruments, relaxed atomics). The §17 budget is
// <5% over BM_EngineRecommendCarrier — eyeball the pair in any report; CI
// gates both through the shared 25% baseline window.
void BM_ModelWatchRecommend(benchmark::State& state) {
  const World& w = world();
  static obs::MetricsRegistry registry;
  static const core::ModelWatch watch(w.catalog, registry);
  static core::AuricEngine engine(w.topo, w.schema, w.catalog, w.assignment);
  engine.set_watch(&watch);
  netsim::CarrierId carrier = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.recommend_singular(carrier));
    carrier = static_cast<netsim::CarrierId>((carrier + 1) %
                                             static_cast<netsim::CarrierId>(
                                                 w.topo.carrier_count()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.catalog.singular_ids().size()));
}
BENCHMARK(BM_ModelWatchRecommend);

// --- Relearn: full rebuild vs incremental delta-apply ----------------------
//
// BM_RelearnFull prices the from-scratch learn the weekly relearn cadence
// used to pay on every refresh. BM_RelearnIncremental toggles a resident
// engine between the inventory and a day's worth of slot churn (one launch
// cohort's reconfiguration), pricing AuricEngine::incremental_relearn — the
// acceptance bar is >= 5x cheaper than the full rebuild on this world.
// BM_RelearnParallel prices the full learn at 1 and 4 learn threads: output
// is byte-identical at any width (test_relearn), so this arm is purely a
// wall-clock observation (flat on the 1-core CI runner, scaling elsewhere).

/// A day's churn: ~21 carriers re-homed onto another carrier's values across
/// every singular column, plus the leading edges of every pairwise column.
/// Values are copied from existing slots so the label alphabet is stable —
/// the steady-state delta path, not the rebuild escape hatch.
config::ConfigAssignment day_churn(const World& w) {
  config::ConfigAssignment churned = w.assignment;
  for (auto& column : churned.singular) {
    const std::size_t n = column.value.size();
    for (std::size_t c = 0; c < 21 && c < n; ++c) {
      column.value[c] = column.value[(c + 37) % n];
    }
  }
  for (auto& column : churned.pairwise) {
    const std::size_t n = column.value.size();
    for (std::size_t e = 0; e < 21 && e < n; ++e) {
      column.value[e] = column.value[(e + 37) % n];
    }
  }
  return churned;
}

void BM_RelearnFull(benchmark::State& state) {
  const World& w = relearn_world();
  for (auto _ : state) {
    core::AuricEngine engine(w.topo, w.schema, w.catalog, w.assignment);
    benchmark::DoNotOptimize(&engine);
  }
}
BENCHMARK(BM_RelearnFull)->Unit(benchmark::kMillisecond);

void BM_RelearnIncremental(benchmark::State& state) {
  const World& w = relearn_world();
  static core::AuricEngine engine(w.topo, w.schema, w.catalog, w.assignment);
  static const config::ConfigAssignment churned = day_churn(w);
  bool forward = true;
  for (auto _ : state) {
    engine.incremental_relearn(forward ? churned : w.assignment);
    forward = !forward;
  }
}
BENCHMARK(BM_RelearnIncremental)->Unit(benchmark::kMillisecond);

void BM_RelearnParallel(benchmark::State& state) {
  const World& w = relearn_world();
  core::AuricOptions options;
  options.learn_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::AuricEngine engine(w.topo, w.schema, w.catalog, w.assignment, options);
    benchmark::DoNotOptimize(&engine);
  }
}
BENCHMARK(BM_RelearnParallel)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// --- SmartLaunch push / sharded replay -------------------------------------
//
// The push arm prices one EMS round trip (lock, apply, unlock) — the unit
// the launch stream is made of. The sharded-replay arm runs a small but
// complete operation window at 1/4/8 EMS shards on a worker pool forced to
// one thread per shard; on a multi-core runner the N>1 arms must show the
// shard-parallel speedup, and CI fails the build if any arm regresses.

void BM_EmsPush(benchmark::State& state) {
  const World& w = world();
  smartlaunch::EmsOptions options;
  options.flaky_timeout_prob = 0.0;
  smartlaunch::EmsSimulator ems(w.topo.carrier_count(), options);
  const std::vector<config::MoSetting> settings = {
      {"ENodeBFunction", w.catalog.id_of("pMax"), 3},
      {"ENodeBFunction", w.catalog.id_of("crsGain"), 1}};
  netsim::CarrierId carrier = 0;
  for (auto _ : state) {
    ems.lock(carrier);
    benchmark::DoNotOptimize(ems.push(carrier, settings));
    ems.unlock(carrier);
    carrier = static_cast<netsim::CarrierId>(
        (carrier + 1) % static_cast<netsim::CarrierId>(w.topo.carrier_count()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(settings.size()));
}
BENCHMARK(BM_EmsPush);

void BM_ShardedReplay(benchmark::State& state) {
  const auto shards = static_cast<int>(state.range(0));
  // A wider world than the shared one so every shard stays populated (market
  // hashing clusters small topologies onto few shards).
  static const netsim::Topology topo = [] {
    netsim::TopologyParams params;
    params.seed = 11;
    params.num_markets = 16;
    params.base_enodebs_per_market = 4;
    return netsim::generate_topology(params);
  }();
  static const netsim::AttributeSchema schema = netsim::AttributeSchema::standard(topo);
  static const config::ParamCatalog catalog = config::ParamCatalog::standard();
  static const config::GroundTruthModel ground_truth(topo, schema, catalog);
  static const config::ConfigAssignment assignment = ground_truth.assign();

  util::set_worker_count(static_cast<std::size_t>(shards));
  if (shards > 1) util::TaskPool::shared().reserve(static_cast<std::size_t>(shards));

  smartlaunch::ReplayOptions options;
  options.days = 7;
  options.launches_per_day = 16;
  options.robust = true;
  options.shards = shards;
  for (auto _ : state) {
    smartlaunch::OperationReplay replay(topo, schema, catalog, ground_truth, assignment,
                                        options);
    benchmark::DoNotOptimize(replay.run());
  }
  util::set_worker_count(0);
  state.SetItemsProcessed(state.iterations() * options.days * options.launches_per_day);
}
BENCHMARK(BM_ShardedReplay)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// --- Checkpoint persistence -------------------------------------------------
//
// Both arms price one save() of a GROWN state image (a multi-week window's
// accumulated journal/quarantine/slot deltas) after a small per-iteration
// mutation — the shape every post-launch checkpoint has. The journal arm
// appends only the delta; the rewrite arm re-serializes the full image.
// bytes_per_save (from auric_checkpoint_bytes_total) is the honest metric:
// the journal layout must land >= 5x fewer bytes, and wall time follows.
// fsync is off in both arms so the comparison prices serialization + write
// volume, not the (noisy, device-bound) flush cost.

io::LaunchState grown_launch_state() {
  io::LaunchState s;
  for (int c = 0; c < 2000; ++c) {
    s.journal.emplace_back(static_cast<netsim::CarrierId>(c),
                           static_cast<std::uint64_t>(3 + c % 7));
  }
  for (int c = 0; c < 500; ++c) {
    s.quarantine.emplace_back(static_cast<netsim::CarrierId>(c * 4), 1 + c % 3);
  }
  for (int e = 0; e < 1500; ++e) {
    io::LaunchState::SlotWrite w;
    w.param_pos = 0;
    w.entity = static_cast<std::uint64_t>(e);
    w.value = e % 11;
    s.applied_slots.push_back(w);
  }
  s.relearn_applied_slots = s.applied_slots;
  s.ems.pushes_executed = 4000;
  s.progress = {{"day", "42"}, {"launches", "880"}, {"kpi", "0x1.8p-1"}};
  return s;
}

/// One day's worth of churn: a handful of journal offsets, one quarantine
/// bump, a few fresh slot writes and the progress counters.
void mutate_launch_state(io::LaunchState& s, std::uint64_t step) {
  for (int k = 0; k < 4; ++k) {
    auto& entry = s.journal[(step * 97 + static_cast<std::uint64_t>(k) * 13) % s.journal.size()];
    entry.second += 1;
  }
  s.quarantine[step % s.quarantine.size()].second += 1;
  auto& slot = s.applied_slots[(step * 31) % s.applied_slots.size()];
  slot.value = static_cast<std::int32_t>((slot.value + 1) % 11);
  s.ems.pushes_executed += 3;
  s.progress[1].second = std::to_string(880 + step);
}

void run_checkpoint_bench(benchmark::State& state, bool journal) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (journal ? "auric_bench_ckpt_journal" : "auric_bench_ckpt_rewrite"))
          .string();
  std::filesystem::remove_all(dir);
  io::LaunchStateStore::Options options;
  options.journal = journal;
  options.fsync = false;
  const io::LaunchStateStore store(dir, options);
  io::LaunchState image = grown_launch_state();
  store.save(image);  // prime: the baseline snapshot is not what we price
  obs::Counter& bytes =
      obs::MetricsRegistry::global().counter("auric_checkpoint_bytes_total");
  const std::uint64_t bytes_before = bytes.value();
  std::uint64_t step = 0;
  for (auto _ : state) {
    mutate_launch_state(image, ++step);
    store.save(image);
  }
  state.counters["bytes_per_save"] = benchmark::Counter(
      static_cast<double>(bytes.value() - bytes_before) /
      static_cast<double>(state.iterations()));
  std::filesystem::remove_all(dir);
}

void BM_CheckpointJournal(benchmark::State& state) {
  run_checkpoint_bench(state, /*journal=*/true);
}
BENCHMARK(BM_CheckpointJournal)->Unit(benchmark::kMicrosecond);

void BM_CheckpointRewrite(benchmark::State& state) {
  run_checkpoint_bench(state, /*journal=*/false);
}
BENCHMARK(BM_CheckpointRewrite)->Unit(benchmark::kMicrosecond);

// --- Observability primitives ---------------------------------------------
//
// The instrumented hot paths (EMS push, executor retry loop, recommend) pay
// one counter increment or histogram observe per event; these arms price
// that per-event cost so the ≤2% overhead budget is checkable from the
// bench output. The lookup arm prices a full registry resolution, which
// call sites do once and cache — it must stay off hot paths.

void BM_ObsCounterInc(benchmark::State& state) {
  obs::Counter& counter =
      obs::MetricsRegistry::global().counter("bench_micro_counter", "bench arm");
  for (auto _ : state) {
    counter.inc();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsCounterLookupAndInc(benchmark::State& state) {
  auto& registry = obs::MetricsRegistry::global();
  for (auto _ : state) {
    registry.counter("bench_micro_labeled", "bench arm", {{"kind", "lookup"}}).inc();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterLookupAndInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Histogram& histogram = obs::MetricsRegistry::global().histogram(
      "bench_micro_histogram", obs::default_latency_bounds_ms(), "bench arm");
  double v = 0.1;
  for (auto _ : state) {
    histogram.observe(v);
    v = v < 9000.0 ? v * 1.7 : 0.1;
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsScopedSpan(benchmark::State& state) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  recorder.set_enabled(true);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span");
    benchmark::DoNotOptimize(span.id());
  }
  recorder.clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedSpan);

void BM_ObsScopedSpanDisabled(benchmark::State& state) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  recorder.set_enabled(false);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span");
    benchmark::DoNotOptimize(span.id());
  }
  recorder.set_enabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedSpanDisabled);

void BM_ObsTraceContextScope(benchmark::State& state) {
  // The per-task cost TaskPool pays to stitch traces across the fan-out:
  // capture, install, restore.
  const obs::TraceContext ctx{obs::TraceId{1, 2}, 3, 0};
  for (auto _ : state) {
    obs::TraceContextScope scope(ctx);
    benchmark::DoNotOptimize(obs::current_trace_context().span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsTraceContextScope);

void BM_ObsTraceparentParse(benchmark::State& state) {
  // Per-request header cost on the serve plane.
  const std::string header = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
  for (auto _ : state) {
    std::optional<obs::Traceparent> parsed = obs::parse_traceparent(header);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsTraceparentParse);

void BM_ObsHistogramObserveExemplar(benchmark::State& state) {
  // observe() with exemplars on and a live trace context — the extra cost
  // over BM_ObsHistogramObserve is the exemplar spinlock write.
  obs::Histogram& histogram = obs::MetricsRegistry::global().histogram(
      "bench_micro_exemplar_hist", obs::default_latency_bounds_ms(), "bench arm");
  histogram.enable_exemplars();
  obs::TraceContextScope scope(obs::TraceContext{obs::TraceId{0, 99}, 7, 0});
  double v = 0.1;
  for (auto _ : state) {
    histogram.observe(v);
    v = v < 9000.0 ? v * 1.7 : 0.1;
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserveExemplar);

// --- Live plane ------------------------------------------------------------
//
// The live plane adds work per *sample tick*, not per event: one registry
// snapshot, one rule sweep, and (when scraped) one text render. At the
// default 100 ms cadence the per-tick cost below must amortize to <2% of a
// replay step, which these arms make checkable: tick cost × 10/s against
// the replay arm's per-second budget.

void BM_ObsSamplerTick(benchmark::State& state) {
  // A registry about the size a replay run carries (~60 instruments).
  obs::MetricsRegistry registry;
  for (int i = 0; i < 20; ++i) {
    registry.counter("tick_counter", "", {{"k", std::to_string(i)}}).inc(i);
    registry.gauge("tick_gauge", "", {{"k", std::to_string(i)}}).set(i);
    registry.histogram("tick_hist", obs::default_latency_bounds_ms(), "",
                       {{"k", std::to_string(i)}})
        .observe(i + 0.5);
  }
  obs::SamplerOptions options;
  options.capacity = 600;
  obs::Sampler sampler(registry, options);
  double t = 0.0;
  for (auto _ : state) {
    sampler.tick(t);
    t += 0.1;
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(registry.size()));
}
BENCHMARK(BM_ObsSamplerTick);

void BM_ObsRuleEvaluation(benchmark::State& state) {
  obs::MetricsRegistry registry;
  registry.counter("bad_total").inc(1);
  registry.counter("all_total").inc(100);
  registry.gauge("depth").set(3.0);
  obs::RuleEngine engine(registry);
  engine.set_log([](const std::string&) {});
  engine.load_text(
      "depth_high,threshold,depth,>,100\n"
      "bad_rate,rate_over_window,bad_total,>,50,10\n"
      "heartbeat,absence,all_total,>,0\n"
      "burn,burn_rate,bad_total/all_total,>,0.9,5,30\n");
  obs::Sampler sampler(registry);
  double t = 0.0;
  sampler.tick(t);
  for (auto _ : state) {
    t += 0.1;
    sampler.tick(t);
    engine.evaluate(sampler, t);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(engine.size()));
}
BENCHMARK(BM_ObsRuleEvaluation);

void BM_ObsScrapeRender(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 20; ++i) {
    registry.counter("scrape_counter", "a counter", {{"k", std::to_string(i)}}).inc(i);
    registry.histogram("scrape_hist", obs::default_latency_bounds_ms(), "a histogram",
                       {{"k", std::to_string(i)}})
        .observe(i + 0.5);
  }
  obs::MetricsServer server(registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle("GET", "/metrics"));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(registry.size()));
}
BENCHMARK(BM_ObsScrapeRender);

// --- Serve request plane ----------------------------------------------------
//
// BM_ServeRecommend prices the full in-process request path (admission ->
// deadline -> bulkhead -> dispatch -> engine snapshot -> recommend -> JSON)
// against a warmed daemon; wall time is dominated by the worker handoff,
// which is exactly the latency an admitted request pays before its deadline.
// BM_ServeAdmission prices the shed fast path (queue_high_water = 0) — the
// cost every request pays under overload, which must stay near-free (no
// dispatch, no engine work) for shedding to actually protect the daemon.

serve::ServeOptions serve_bench_options() {
  serve::ServeOptions options;
  options.workers = 1;
  return options;
}

void BM_ServeRecommend(benchmark::State& state) {
  const World& w = world();
  static obs::MetricsRegistry registry;
  static const config::GroundTruthModel ground_truth(w.topo, w.schema, w.catalog);
  static serve::ServeDaemon daemon(w.topo, w.schema, w.catalog, w.assignment, ground_truth,
                                   serve_bench_options(), registry);
  daemon.warm_up();
  obs::HttpRequest request;
  request.method = "GET";
  const auto carriers = static_cast<netsim::CarrierId>(w.topo.carrier_count());
  netsim::CarrierId carrier = 0;
  for (auto _ : state) {
    request.target = "/recommend?carrier=" + std::to_string(carrier);
    obs::HttpResponse response = daemon.handle(request);
    if (response.status != 200) state.SkipWithError("recommend returned non-200");
    benchmark::DoNotOptimize(response.body.data());
    carrier = static_cast<netsim::CarrierId>((carrier + 1) % carriers);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeRecommend)->Unit(benchmark::kMicrosecond);

void BM_ServeAdmission(benchmark::State& state) {
  const World& w = world();
  static obs::MetricsRegistry registry;
  static const config::GroundTruthModel ground_truth(w.topo, w.schema, w.catalog);
  static serve::ServeDaemon daemon(w.topo, w.schema, w.catalog, w.assignment, ground_truth,
                                   [] {
                                     serve::ServeOptions options = serve_bench_options();
                                     options.queue_high_water = 0;  // shed everything
                                     return options;
                                   }(),
                                   registry);
  daemon.warm_up();
  obs::HttpRequest request;
  request.method = "GET";
  request.target = "/recommend?carrier=0";
  for (auto _ : state) {
    obs::HttpResponse response = daemon.handle(request);
    if (response.status != 503) state.SkipWithError("expected a shed (503)");
    benchmark::DoNotOptimize(response.body.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeAdmission);

}  // namespace
}  // namespace auric

BENCHMARK_MAIN();
