// Table 5 of the paper: two months of SmartLaunch production experience.
//
// Paper values:
//   New carriers launched              1251
//   Changes recommended by Auric        143 (11.4%)
//   Changes implemented successfully    114 (9%)
// plus, from the §5 text: 1102 parameters changed on the 114 carriers, and
// 29 fall-outs split between premature out-of-band unlocks and EMS timeouts.
#include <cstdio>

#include "common.h"
#include "config/rulebook.h"
#include "core/engine.h"
#include "smartlaunch/controller.h"
#include "smartlaunch/ems.h"
#include "smartlaunch/kpi.h"
#include "smartlaunch/pipeline.h"
#include "smartlaunch/robust_pipeline.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  const auto launches =
      static_cast<std::size_t>(args.get_int("launches", 1251, "new carriers launched"));
  const bool robust_sweep =
      args.get_bool("robust", true, "also compare the naive vs fault-tolerant pipeline");
  if (args.help_requested()) return 0;

  util::Timer timer;
  const core::AuricEngine engine(ctx.topology, ctx.schema, ctx.catalog, ctx.assignment);
  util::log_info(util::format("Auric engine learned in %.1fs", timer.elapsed_seconds()));

  const config::Rulebook rulebook(*ctx.ground_truth, ctx.catalog);
  const smartlaunch::LaunchController controller(engine, rulebook, ctx.assignment);
  smartlaunch::EmsSimulator ems(ctx.topology.carrier_count());
  const smartlaunch::KpiModel kpi(ctx.topology, ctx.catalog, ctx.assignment);
  smartlaunch::SmartLaunchPipeline pipeline(controller, ems, kpi);

  // The launch cohort: a uniform sample of carriers treated as newly
  // integrated (vendor config just applied, still locked).
  util::Rng rng(ctx.topo_params.seed + 0xBEEF);
  std::vector<netsim::CarrierId> cohort;
  for (std::size_t idx :
       rng.sample_indices(ctx.topology.carrier_count(),
                          std::min(launches, ctx.topology.carrier_count()))) {
    cohort.push_back(static_cast<netsim::CarrierId>(idx));
  }

  const smartlaunch::SmartLaunchReport report = pipeline.run(cohort);

  const auto pct = [&](std::size_t n) {
    return util::format_fixed(100.0 * static_cast<double>(n) /
                                  static_cast<double>(report.launches), 1);
  };
  util::Table table({"", "measured", "paper"});
  table.add_row({"New carriers launched", std::to_string(report.launches), "1251"});
  table.add_row({"Changes recommended by Auric",
                 std::to_string(report.change_recommended) + " (" +
                     pct(report.change_recommended) + "%)",
                 "143 (11.4%)"});
  table.add_row({"Changes implemented successfully",
                 std::to_string(report.implemented) + " (" + pct(report.implemented) + "%)",
                 "114 (9%)"});
  table.add_row({"Fall-outs",
                 std::to_string(report.fallout_unlocked + report.fallout_timeout) + " (" +
                     std::to_string(report.fallout_unlocked) + " premature unlock, " +
                     std::to_string(report.fallout_timeout) + " EMS timeout)",
                 "29"});
  table.add_row({"Parameters changed on implemented carriers",
                 std::to_string(report.parameters_changed), "1102"});
  table.print();

  double quality = 0.0;
  for (const auto& record : report.records) quality += record.post_quality;
  std::printf("\nmean post-check KPI quality across the cohort: %.3f (1.0 = perfect)\n",
              quality / static_cast<double>(report.records.size()));

  if (!robust_sweep) return 0;

  // Naive vs fault-tolerant pipeline over the same cohort. Both modes see
  // the same engineer behavior (identical premature-unlock draws) and the
  // same EMS seed; they differ only in how the push layer responds to
  // faults, so the gap is the recovery machinery's contribution.
  std::printf("\nnaive vs fault-tolerant pipeline (same cohort, swept EMS transient-fault"
              " probability):\n");
  util::Table sweep({"flaky prob", "naive impl", "naive fall-out", "robust impl",
                     "recovered", "retries", "robust terminal"});
  for (const double flaky : {0.0, 0.06, 0.12, 0.25}) {
    smartlaunch::EmsOptions ems_options;
    ems_options.flaky_timeout_prob = flaky;

    smartlaunch::EmsSimulator naive_ems(ctx.topology.carrier_count(), ems_options);
    smartlaunch::SmartLaunchPipeline naive(controller, naive_ems, kpi);
    const smartlaunch::SmartLaunchReport naive_report = naive.run(cohort);

    smartlaunch::EmsSimulator robust_ems(ctx.topology.carrier_count(), ems_options);
    smartlaunch::RobustLaunchController robust(controller, robust_ems, kpi);
    const smartlaunch::RobustLaunchReport robust_report = robust.run(cohort);

    const std::size_t naive_fallouts =
        naive_report.fallout_unlocked + naive_report.fallout_timeout;
    sweep.add_row({util::format_fixed(flaky, 2), std::to_string(naive_report.implemented),
                   std::to_string(naive_fallouts), std::to_string(robust_report.implemented),
                   std::to_string(robust_report.recovered),
                   std::to_string(robust_report.retries),
                   std::to_string(robust_report.terminal_fallouts())});
  }
  sweep.print();
  std::printf("(terminal = exhausted retries + clean aborts on out-of-band unlock +"
              " still queued;\n premature unlocks are unrecoverable in both modes and"
              " dominate the residual)\n");

  // Expanded fault model: correlated EMS brown-outs, lock flaps and a few
  // persistently sick carriers on top of the default transient rate. The
  // naive pipeline has no answer to any of these; the robust pipeline
  // retries through bursts, re-locks flapped carriers, trips the breaker on
  // the sick ones and drains the deferred queue when it recovers.
  smartlaunch::EmsOptions stressed;
  stressed.faults.lock_flap_prob = 0.05;
  stressed.faults.persistent_fault_prob = 0.02;
  stressed.faults.burst_every = 40;
  stressed.faults.burst_length = 6;
  stressed.faults.burst_timeout_prob = 0.9;

  smartlaunch::EmsSimulator stressed_naive_ems(ctx.topology.carrier_count(), stressed);
  smartlaunch::SmartLaunchPipeline stressed_naive(controller, stressed_naive_ems, kpi);
  const smartlaunch::SmartLaunchReport stressed_naive_report = stressed_naive.run(cohort);

  smartlaunch::EmsSimulator stressed_robust_ems(ctx.topology.carrier_count(), stressed);
  smartlaunch::RobustLaunchController stressed_robust(controller, stressed_robust_ems, kpi);
  const smartlaunch::RobustLaunchReport r = stressed_robust.run(cohort);

  std::printf("\nexpanded fault model (bursts every 40 pushes, 5%% lock flaps, 2%% sick"
              " carriers):\n");
  std::printf("  naive:  %zu implemented, %zu fall-outs\n", stressed_naive_report.implemented,
              stressed_naive_report.fallout_unlocked + stressed_naive_report.fallout_timeout);
  std::printf("  robust: %zu implemented (%zu recovered, %zu chunked, %zu drained late),"
              " %zu terminal\n          %zu retries, %d breaker trips, %zu queued degraded,"
              " %zu still queued\n",
              r.implemented, r.recovered, r.chunked, r.drained, r.terminal_fallouts(),
              r.retries, r.breaker_trips, r.queued_degraded, r.still_queued);
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(argc, argv, "Table 5: SmartLaunch production experience",
                                 auric::bench::body);
}
