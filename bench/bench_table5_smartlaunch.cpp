// Table 5 of the paper: two months of SmartLaunch production experience.
//
// Paper values:
//   New carriers launched              1251
//   Changes recommended by Auric        143 (11.4%)
//   Changes implemented successfully    114 (9%)
// plus, from the §5 text: 1102 parameters changed on the 114 carriers, and
// 29 fall-outs split between premature out-of-band unlocks and EMS timeouts.
#include <cstdio>

#include "common.h"
#include "config/rulebook.h"
#include "core/engine.h"
#include "smartlaunch/controller.h"
#include "smartlaunch/ems.h"
#include "smartlaunch/kpi.h"
#include "smartlaunch/pipeline.h"
#include "smartlaunch/robust_pipeline.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  const auto launches =
      static_cast<std::size_t>(args.get_int("launches", 1251, "new carriers launched"));
  const bool robust_sweep =
      args.get_bool("robust", true, "also compare the naive vs fault-tolerant pipeline");
  if (args.help_requested()) return 0;

  obs::ScopedTimer timer(phase_histogram("engine_learn"));
  const core::AuricEngine engine(ctx.topology, ctx.schema, ctx.catalog, ctx.assignment);
  util::log_info(util::format("Auric engine learned in %.1fs", timer.stop()));

  const config::Rulebook rulebook(*ctx.ground_truth, ctx.catalog);
  const smartlaunch::LaunchController controller(engine, rulebook, ctx.assignment);
  smartlaunch::EmsSimulator ems(ctx.topology.carrier_count());
  const smartlaunch::KpiModel kpi(ctx.topology, ctx.catalog, ctx.assignment);
  smartlaunch::SmartLaunchPipeline pipeline(controller, ems, kpi);

  // The launch cohort: a uniform sample of carriers treated as newly
  // integrated (vendor config just applied, still locked).
  util::Rng rng(ctx.topo_params.seed + 0xBEEF);
  std::vector<netsim::CarrierId> cohort;
  for (std::size_t idx :
       rng.sample_indices(ctx.topology.carrier_count(),
                          std::min(launches, ctx.topology.carrier_count()))) {
    cohort.push_back(static_cast<netsim::CarrierId>(idx));
  }

  const smartlaunch::SmartLaunchReport report = pipeline.run(cohort);

  const auto pct = [&](std::size_t n) {
    return util::format_fixed(100.0 * static_cast<double>(n) /
                                  static_cast<double>(report.launches), 1);
  };
  util::Table table({"", "measured", "paper"});
  table.add_row({"New carriers launched", std::to_string(report.launches), "1251"});
  table.add_row({"Changes recommended by Auric",
                 std::to_string(report.change_recommended) + " (" +
                     pct(report.change_recommended) + "%)",
                 "143 (11.4%)"});
  table.add_row({"Changes implemented successfully",
                 std::to_string(report.implemented) + " (" + pct(report.implemented) + "%)",
                 "114 (9%)"});
  table.add_row({"Fall-outs",
                 std::to_string(report.fallout_unlocked + report.fallout_timeout) + " (" +
                     std::to_string(report.fallout_unlocked) + " premature unlock, " +
                     std::to_string(report.fallout_timeout) + " EMS timeout)",
                 "29"});
  table.add_row({"Parameters changed on implemented carriers",
                 std::to_string(report.parameters_changed), "1102"});
  table.print();

  double quality = 0.0;
  for (const auto& record : report.records) quality += record.post_quality;
  std::printf("\nmean post-check KPI quality across the cohort: %.3f (1.0 = perfect)\n",
              quality / static_cast<double>(report.records.size()));

  if (!robust_sweep) return 0;

  // Naive vs fault-tolerant pipeline over the same cohort. Both modes see
  // the same engineer behavior (identical premature-unlock draws) and the
  // same EMS seed; they differ only in how the push layer responds to
  // faults, so the gap is the recovery machinery's contribution.
  std::printf("\nnaive vs fault-tolerant pipeline (same cohort, swept EMS transient-fault"
              " probability):\n");
  util::Table sweep({"flaky prob", "naive impl", "naive fall-out", "robust impl",
                     "recovered", "retries", "robust terminal"});
  for (const double flaky : {0.0, 0.06, 0.12, 0.25}) {
    smartlaunch::EmsOptions ems_options;
    ems_options.flaky_timeout_prob = flaky;

    smartlaunch::EmsSimulator naive_ems(ctx.topology.carrier_count(), ems_options);
    smartlaunch::SmartLaunchPipeline naive(controller, naive_ems, kpi);
    const smartlaunch::SmartLaunchReport naive_report = naive.run(cohort);

    smartlaunch::EmsSimulator robust_ems(ctx.topology.carrier_count(), ems_options);
    smartlaunch::RobustLaunchController robust(controller, robust_ems, kpi);
    const smartlaunch::RobustLaunchReport robust_report = robust.run(cohort);

    const std::size_t naive_fallouts =
        naive_report.fallout_unlocked + naive_report.fallout_timeout;
    sweep.add_row({util::format_fixed(flaky, 2), std::to_string(naive_report.implemented),
                   std::to_string(naive_fallouts), std::to_string(robust_report.implemented),
                   std::to_string(robust_report.recovered),
                   std::to_string(robust_report.retries),
                   std::to_string(robust_report.terminal_fallouts())});
  }
  sweep.print();
  std::printf("(terminal = exhausted retries + clean aborts on out-of-band unlock +"
              " still queued;\n premature unlocks are unrecoverable in both modes and"
              " dominate the residual)\n");

  // Expanded fault model: correlated EMS brown-outs, lock flaps and a few
  // persistently sick carriers on top of the default transient rate. The
  // naive pipeline has no answer to any of these; the robust pipeline
  // retries through bursts, re-locks flapped carriers, trips the breaker on
  // the sick ones and drains the deferred queue when it recovers.
  smartlaunch::EmsOptions stressed;
  stressed.faults.lock_flap_prob = 0.05;
  stressed.faults.persistent_fault_prob = 0.02;
  stressed.faults.burst_every = 40;
  stressed.faults.burst_length = 6;
  stressed.faults.burst_timeout_prob = 0.9;

  smartlaunch::EmsSimulator stressed_naive_ems(ctx.topology.carrier_count(), stressed);
  smartlaunch::SmartLaunchPipeline stressed_naive(controller, stressed_naive_ems, kpi);
  const smartlaunch::SmartLaunchReport stressed_naive_report = stressed_naive.run(cohort);

  smartlaunch::EmsSimulator stressed_robust_ems(ctx.topology.carrier_count(), stressed);
  smartlaunch::RobustLaunchController stressed_robust(controller, stressed_robust_ems, kpi);
  const smartlaunch::RobustLaunchReport r = stressed_robust.run(cohort);

  std::printf("\nexpanded fault model (bursts every 40 pushes, 5%% lock flaps, 2%% sick"
              " carriers):\n");
  std::printf("  naive:  %zu implemented, %zu fall-outs\n", stressed_naive_report.implemented,
              stressed_naive_report.fallout_unlocked + stressed_naive_report.fallout_timeout);
  std::printf("  robust: %zu implemented (%zu recovered, %zu chunked, %zu drained late),"
              " %zu terminal\n          %zu retries, %d breaker trips, %zu queued degraded,"
              " %zu still queued\n",
              r.implemented, r.recovered, r.chunked, r.drained, r.terminal_fallouts(),
              r.retries, r.breaker_trips, r.queued_degraded, r.still_queued);

  // KPI-gated rollback under a degraded integration wave: every vendor
  // template is stale (~30% of slots corrupted), thinly-voted corrections
  // are accepted (multi-setting plans), and the EMS serializes commands
  // (concurrency 1) under deterministic burst outages. A 2-attempt budget
  // regularly exhausts mid-plan, leaving KPI-degrading partial applies for
  // the gate to detect and revert. The burst_length 0 arm is the control:
  // with no faults every push lands completely and the gate must stay
  // silent — the plan-relative arming condition makes that structural.
  smartlaunch::VendorFaultOptions degraded;
  degraded.stale_template_prob = 1.0;
  degraded.stale_slot_frac = 0.3;
  degraded.typo_prob = 0.0;
  smartlaunch::PushPolicy thin_votes;
  thin_votes.min_votes = 2;
  const smartlaunch::LaunchController degraded_controller(engine, rulebook, ctx.assignment,
                                                          degraded, thin_votes);
  std::printf("\nKPI-gated rollback vs burst outage length (bursts of B faulted pushes"
              " every 6, serialized EMS,\n2-attempt budget; length 0 = fault-free"
              " control):\n");
  util::Table gate({"burst len", "implemented", "terminal", "rollbacks", "rb retries",
                    "reattempted", "rolled back", "quarantined", "rb failed"});
  for (const int burst_length : {0, 2, 3, 5}) {
    smartlaunch::EmsOptions gate_ems_options;
    gate_ems_options.flaky_timeout_prob = 0.0;
    gate_ems_options.concurrency = 1;
    gate_ems_options.faults.burst_every = 6;
    gate_ems_options.faults.burst_length = burst_length;
    gate_ems_options.faults.burst_timeout_prob = 1.0;
    smartlaunch::EmsSimulator gate_ems(ctx.topology.carrier_count(), gate_ems_options);

    smartlaunch::RobustPipelineOptions gate_options;
    gate_options.premature_unlock_prob = 0.0;  // isolate the gate's contribution
    gate_options.executor.retry.max_attempts = 2;
    gate_options.executor.breaker.failure_threshold = 1000;
    smartlaunch::RobustLaunchController gated(degraded_controller, gate_ems, kpi,
                                              gate_options);
    const smartlaunch::RobustLaunchReport g = gated.run(cohort);
    gate.add_row({std::to_string(burst_length), std::to_string(g.implemented),
                  std::to_string(g.fallout_terminal), std::to_string(g.rollbacks),
                  std::to_string(g.rollback_retries), std::to_string(g.reattempted),
                  std::to_string(g.rolled_back), std::to_string(g.quarantined),
                  std::to_string(g.rollback_failed)});
  }
  gate.print();

  // Retry-policy tuning against the correlated burst model: each extra
  // attempt buys recoveries while a burst is about to end but spends
  // backoff; backoff charged to launches that still ended terminal is pure
  // waste. The frontier of (recovered, wasted backoff) across the grid is
  // recorded in EXPERIMENTS.md.
  std::printf("\nretry-policy tuning vs burst fault model (bursts of 4 every 12 pushes at"
              " p=0.9, 5%% flaky;\nwasted = backoff spent on launches that still fell out"
              " terminally):\n");
  util::Table tuning({"max att", "base ms", "implemented", "recovered", "terminal",
                      "total backoff ms", "wasted ms", "wasted %"});
  for (const int max_attempts : {1, 2, 3, 4, 6}) {
    for (const double base_ms : {50.0, 250.0, 1000.0}) {
      smartlaunch::EmsOptions burst_options;
      burst_options.flaky_timeout_prob = 0.05;
      burst_options.faults.burst_every = 12;
      burst_options.faults.burst_length = 4;
      burst_options.faults.burst_timeout_prob = 0.9;
      smartlaunch::EmsSimulator burst_ems(ctx.topology.carrier_count(), burst_options);

      smartlaunch::RobustPipelineOptions tuning_options;
      tuning_options.executor.retry.max_attempts = max_attempts;
      tuning_options.executor.retry.base_backoff_ms = base_ms;
      smartlaunch::RobustLaunchController tuned(controller, burst_ems, kpi, tuning_options);
      const smartlaunch::RobustLaunchReport t = tuned.run(cohort);

      double wasted_ms = 0.0;
      for (const auto& record : t.records) {
        if (record.outcome == smartlaunch::RobustOutcome::kFalloutTerminal ||
            record.outcome == smartlaunch::RobustOutcome::kRolledBack) {
          wasted_ms += record.backoff_ms;
        }
      }
      const double wasted_pct =
          t.total_backoff_ms > 0.0 ? 100.0 * wasted_ms / t.total_backoff_ms : 0.0;
      tuning.add_row({std::to_string(max_attempts), util::format_fixed(base_ms, 0),
                      std::to_string(t.implemented), std::to_string(t.recovered),
                      std::to_string(t.terminal_fallouts()),
                      util::format_fixed(t.total_backoff_ms, 0),
                      util::format_fixed(wasted_ms, 0), util::format_fixed(wasted_pct, 1)});
    }
  }
  tuning.print();
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(argc, argv, "Table 5: SmartLaunch production experience",
                                 auric::bench::body);
}
