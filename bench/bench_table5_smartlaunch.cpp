// Table 5 of the paper: two months of SmartLaunch production experience.
//
// Paper values:
//   New carriers launched              1251
//   Changes recommended by Auric        143 (11.4%)
//   Changes implemented successfully    114 (9%)
// plus, from the §5 text: 1102 parameters changed on the 114 carriers, and
// 29 fall-outs split between premature out-of-band unlocks and EMS timeouts.
#include <cstdio>

#include "common.h"
#include "config/rulebook.h"
#include "core/engine.h"
#include "smartlaunch/controller.h"
#include "smartlaunch/ems.h"
#include "smartlaunch/kpi.h"
#include "smartlaunch/pipeline.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  const auto launches =
      static_cast<std::size_t>(args.get_int("launches", 1251, "new carriers launched"));
  if (args.help_requested()) return 0;

  util::Timer timer;
  const core::AuricEngine engine(ctx.topology, ctx.schema, ctx.catalog, ctx.assignment);
  util::log_info(util::format("Auric engine learned in %.1fs", timer.elapsed_seconds()));

  const config::Rulebook rulebook(*ctx.ground_truth, ctx.catalog);
  const smartlaunch::LaunchController controller(engine, rulebook, ctx.assignment);
  smartlaunch::EmsSimulator ems(ctx.topology.carrier_count());
  const smartlaunch::KpiModel kpi(ctx.topology, ctx.catalog, ctx.assignment);
  smartlaunch::SmartLaunchPipeline pipeline(controller, ems, kpi);

  // The launch cohort: a uniform sample of carriers treated as newly
  // integrated (vendor config just applied, still locked).
  util::Rng rng(ctx.topo_params.seed + 0xBEEF);
  std::vector<netsim::CarrierId> cohort;
  for (std::size_t idx :
       rng.sample_indices(ctx.topology.carrier_count(),
                          std::min(launches, ctx.topology.carrier_count()))) {
    cohort.push_back(static_cast<netsim::CarrierId>(idx));
  }

  const smartlaunch::SmartLaunchReport report = pipeline.run(cohort);

  const auto pct = [&](std::size_t n) {
    return util::format_fixed(100.0 * static_cast<double>(n) /
                                  static_cast<double>(report.launches), 1);
  };
  util::Table table({"", "measured", "paper"});
  table.add_row({"New carriers launched", std::to_string(report.launches), "1251"});
  table.add_row({"Changes recommended by Auric",
                 std::to_string(report.change_recommended) + " (" +
                     pct(report.change_recommended) + "%)",
                 "143 (11.4%)"});
  table.add_row({"Changes implemented successfully",
                 std::to_string(report.implemented) + " (" + pct(report.implemented) + "%)",
                 "114 (9%)"});
  table.add_row({"Fall-outs",
                 std::to_string(report.fallout_unlocked + report.fallout_timeout) + " (" +
                     std::to_string(report.fallout_unlocked) + " premature unlock, " +
                     std::to_string(report.fallout_timeout) + " EMS timeout)",
                 "29"});
  table.add_row({"Parameters changed on implemented carriers",
                 std::to_string(report.parameters_changed), "1102"});
  table.print();

  double quality = 0.0;
  for (const auto& record : report.records) quality += record.post_quality;
  std::printf("\nmean post-check KPI quality across the cohort: %.3f (1.0 = perfect)\n",
              quality / static_cast<double>(report.records.size()));
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(argc, argv, "Table 5: SmartLaunch production experience",
                                 auric::bench::body);
}
