// §5 operation replay: the paper's two-month production window as a
// day-by-day simulation with weekly engine re-learning.
//
// Beyond Table 5's end-of-window totals (see bench_table5_smartlaunch),
// this bench shows the dynamics the paper describes qualitatively: the
// launch stream flows, fall-outs occur in both modes, the engine re-learns
// from the evolving network, and launched carriers come on air very close
// to engineering intent (high post-check KPI) because Auric's corrections
// ride along with the vendor integration.
#include <cstdio>

#include "common.h"
#include "smartlaunch/replay.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  smartlaunch::ReplayOptions options;
  options.days = static_cast<int>(args.get_int("days", 60, "operation window in days"));
  options.launches_per_day = static_cast<int>(
      args.get_int("launches-per-day", 21, "new carriers per day (~1251 over 60 days)"));
  options.relearn_every_days = static_cast<int>(
      args.get_int("relearn-days", 7, "engine re-learn cadence in days"));
  options.robust = args.get_bool(
      "robust", false, "push through the fault-tolerant path (chunk/retry/breaker)");
  options.rollback.enabled = args.get_bool(
      "rollback", true, "KPI-gate robust pushes (roll back + quarantine on breach)");
  options.state_dir = args.get_string(
      "state-dir", "", "checkpoint replay state into this directory after every launch");
  options.resume =
      args.get_bool("resume", false, "restart from the checkpoint in --state-dir");
  options.stop_after_launches = static_cast<int>(args.get_int(
      "stop-after-launches", 0,
      "simulated kill: checkpoint and exit after N total launches (0 = full window)"));
  options.shards = static_cast<int>(args.get_int(
      "shards", 1, "EMS shards; the launch stream runs shard-parallel (1 = legacy serial)"));
  if (args.help_requested()) return 0;

  smartlaunch::OperationReplay replay(ctx.topology, ctx.schema, ctx.catalog,
                                      *ctx.ground_truth, ctx.assignment, options);
  obs::ScopedTimer timer(phase_histogram("replay"));
  const smartlaunch::ReplayReport report = replay.run();

  util::Table table({"week", "launches", "flagged", "implemented", "fallouts", "rolled back",
                     "quarantined", "params changed", "mean launch KPI"});
  for (const smartlaunch::WeeklySummary& week : report.weeks) {
    table.add_row({std::to_string(week.week), std::to_string(week.launches),
                   std::to_string(week.change_recommended), std::to_string(week.implemented),
                   std::to_string(week.fallouts), std::to_string(week.rolled_back),
                   std::to_string(week.quarantined), std::to_string(week.parameters_changed),
                   util::format_fixed(week.mean_launched_kpi, 3)});
  }
  table.print();

  const auto& totals = report.totals;
  std::printf("\ntotals over %d days: %zu launches, %zu flagged (%.1f%%), %zu implemented,"
              " %zu fall-outs,\n%zu parameters changed; engine re-learned %d times"
              " (%.1fs simulated in %.1fs wall)\n",
              options.days, totals.launches, totals.change_recommended,
              totals.launches > 0
                  ? 100.0 * static_cast<double>(totals.change_recommended) /
                        static_cast<double>(totals.launches)
                  : 0.0,
              totals.implemented, totals.fallout_unlocked + totals.fallout_timeout,
              totals.parameters_changed, report.engine_relearns,
              options.days * 86400.0, timer.stop());
  std::printf("[paper Table 5: 1251 launches, 143 (11.4%%) flagged, 114 implemented, 29"
              " fall-outs, 1102 parameters]\n");
  std::printf("\nnetwork mean KPI %.3f -> %.3f over the window (launched carriers go on air"
              " at intent)\n",
              report.initial_network_kpi, report.final_network_kpi);

  if (options.robust) {
    const smartlaunch::RobustReplayTotals& r = report.robust;
    std::printf("\nfault-tolerant push layer: %zu recovered after retry/resume, %zu chunked,"
                " %zu retries,\n%d breaker trips, %zu queued degraded (%zu drained in"
                " maintenance windows, %zu still queued),\n%zu clean unlock aborts,"
                " %zu terminal EMS fall-outs\n",
                r.recovered, r.chunked, r.retries, r.breaker_trips, r.queued_degraded,
                r.drained, r.still_queued, r.aborted_unlocked, r.fallout_terminal);
    std::printf("KPI gate: %zu launches rolled back (%zu rollback pushes, %zu reattempts,"
                " %zu rollback retries,\n%zu failed rollbacks), %zu carriers quarantined\n",
                r.rolled_back, r.rollbacks, r.reattempts, r.rollback_retries, r.rollback_failed,
                r.quarantined);
  }

  const std::size_t window_launches =
      static_cast<std::size_t>(options.days) * static_cast<std::size_t>(options.launches_per_day);
  if (options.stop_after_launches > 0 && report.totals.launches < window_launches) {
    std::printf("\nstopped after %zu of %zu launches; state checkpointed in %s —\n"
                "rerun with --resume (and without --stop-after-launches) to converge to"
                " the uninterrupted counters bit for bit\n",
                report.totals.launches, window_launches, options.state_dir.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(argc, argv, "Sec. 5 replay: two months of SmartLaunch operations",
                                 auric::bench::body);
}
