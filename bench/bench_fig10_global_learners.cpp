// Figs. 10a-10d of the paper: per-parameter prediction accuracy of the five
// global learners for each deep-dive market, with parameters reverse-sorted
// by variability (distinct-value count on the secondary axis).
//
// Shapes to reproduce:
//   - accuracy decreases as variability increases, for every learner;
//   - learners are correlated across parameters (hard for one = hard for
//     all);
//   - collaborative filtering dominates on the high-variability left side.
#include <cstdio>

#include "common.h"
#include "learner_comparison.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  LearnerComparisonOptions options = declare_comparison_flags(args);
  const std::string csv_path =
      args.get_string("csv", "", "optional CSV output prefix (one file per market)");
  if (args.help_requested()) return 0;

  const std::vector<MarketComparison> results = run_learner_comparison(ctx, options);

  for (const MarketComparison& market : results) {
    const std::string& name =
        ctx.topology.markets[static_cast<std::size_t>(market.market)].name;
    util::print_banner("Fig. 10 series for " + name);
    util::Table table({"parameter", "distinct", "RF %", "k-NN %", "DT %", "DNN %", "CF %"});
    for (const ParamAccuracy& p : market.per_param) {
      std::vector<std::string> row{ctx.catalog.at(p.param).name,
                                   std::to_string(p.distinct_values)};
      for (int learner = 0; learner < kLearnerCount; ++learner) {
        row.push_back(p.accuracy[learner] < 0 ? "-"
                                              : util::format_fixed(100.0 * p.accuracy[learner], 1));
      }
      table.add_row(row);
    }
    table.print();

    // The two qualitative claims of §4.3.1, checked numerically: split the
    // variability-sorted list in half and compare mean accuracy.
    const std::size_t half = market.per_param.size() / 2;
    for (int learner = 0; learner < kLearnerCount; ++learner) {
      double high = 0;
      double low = 0;
      std::size_t nh = 0;
      std::size_t nl = 0;
      for (std::size_t i = 0; i < market.per_param.size(); ++i) {
        const double acc = market.per_param[i].accuracy[learner];
        if (acc < 0) continue;
        if (i < half) {
          high += acc;
          ++nh;
        } else {
          low += acc;
          ++nl;
        }
      }
      if (nh == 0 || nl == 0) continue;
      std::printf("%-24s high-variability half %.2f%%  vs  low-variability half %.2f%%\n",
                  kLearnerNames[learner], 100.0 * high / static_cast<double>(nh),
                  100.0 * low / static_cast<double>(nl));
    }
    std::printf("[paper: accuracy goes down when variability goes up, for all learners]\n");

    if (!csv_path.empty()) {
      const std::string path =
          csv_path + "_market" + std::to_string(market.market + 1) + ".csv";
      util::CsvWriter csv(path, {"parameter", "distinct", "rf", "knn", "dt", "dnn", "cf"});
      for (const ParamAccuracy& p : market.per_param) {
        std::vector<std::string> row{ctx.catalog.at(p.param).name,
                                     std::to_string(p.distinct_values)};
        for (int learner = 0; learner < kLearnerCount; ++learner) {
          row.push_back(util::format_fixed(p.accuracy[learner], 4));
        }
        csv.add_row(row);
      }
      std::printf("series written to %s\n", path.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(
      argc, argv, "Figs. 10a-d: per-parameter accuracy of five global learners",
      auric::bench::body);
}
