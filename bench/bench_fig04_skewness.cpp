// Fig. 4 of the paper: skewness of each configuration parameter's value
// distribution (§2.6 formula).
//
// Paper finding to reproduce: 33 of the 65 parameters highly skewed
// (|skew| > 1), 12 moderately skewed (0.5 < |skew| <= 1).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "eval/variability.h"
#include "ml/metrics.h"
#include "util/csv.h"
#include "util/strings.h"
#include "util/table.h"

namespace auric::bench {
namespace {

int body(util::Args& args) {
  ExperimentContext ctx = make_context(args);
  const std::string csv_path =
      args.get_string("csv", "", "optional CSV output path for the figure series");
  if (args.help_requested()) return 0;

  std::vector<eval::ParamVariability> variability =
      eval::analyze_variability(ctx.topology, ctx.catalog, ctx.assignment);
  std::sort(variability.begin(), variability.end(), [](const auto& a, const auto& b) {
    return std::fabs(a.skewness) > std::fabs(b.skewness);
  });

  util::Table table({"parameter", "skewness", "band"});
  for (const auto& var : variability) {
    table.add_row({ctx.catalog.at(var.param).name, util::format_fixed(var.skewness, 2),
                   ml::skewness_band_name(ml::skewness_band(var.skewness))});
  }
  table.print();

  const eval::SkewnessSummary summary = eval::summarize_skewness(variability);
  std::printf("\nhighly skewed (|skew| > 1):        %d / %zu   [paper: 33 / 65]\n", summary.high,
              variability.size());
  std::printf("moderately skewed (0.5 < |s| <= 1): %d / %zu   [paper: 12 / 65]\n",
              summary.moderate, variability.size());
  std::printf("approximately symmetric:            %d / %zu   [paper: 20 / 65]\n",
              summary.symmetric, variability.size());

  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path, {"parameter", "skewness"});
    for (const auto& var : variability) {
      csv.add_row({ctx.catalog.at(var.param).name, util::format_fixed(var.skewness, 4)});
    }
    std::printf("series written to %s\n", csv_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace auric::bench

int main(int argc, char** argv) {
  return auric::bench::run_bench(
      argc, argv, "Fig. 4: skewness of configuration parameter values", auric::bench::body);
}
