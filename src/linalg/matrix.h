// Dense row-major matrix and the handful of BLAS-like kernels the MLP
// learner needs (GEMM, GEMV, elementwise ops).
//
// The paper's authors used scikit-learn (NumPy/BLAS underneath); the
// reproduction environment has no Eigen or BLAS installed, so this module is
// the substrate substitution documented in DESIGN.md §2. Kernels are written
// for clarity with cache-friendly loop ordering — adequate for the
// evaluation scales this repo runs at.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace auric::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix from row-major data (size must equal rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// View of one row.
  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Sets every element to `value`.
  void fill(double value);

  /// Returns the transpose.
  Matrix transposed() const;

  /// Returns a new matrix containing the selected rows, in order.
  Matrix select_rows(std::span<const std::size_t> indices) const;

  /// Frobenius norm squared (sum of squared elements).
  double squared_norm() const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b. Shapes: (m x k) * (k x n) -> (m x n). Throws on mismatch.
Matrix matmul(const Matrix& a, const Matrix& b);

/// out = a * b^T, computed without materializing the transpose.
/// Shapes: (m x k) * (n x k)^T -> (m x n).
Matrix matmul_transposed(const Matrix& a, const Matrix& b_t);

/// y = M * x. Throws on shape mismatch.
std::vector<double> matvec(const Matrix& m, std::span<const double> x);

/// Adds `bias` (length cols) to every row of `m` in place.
void add_row_vector(Matrix& m, std::span<const double> bias);

/// Dot product; spans must be equal length.
double dot(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean distance between equal-length spans.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// a += scale * b, elementwise over equal-length spans.
void axpy(std::span<double> a, double scale, std::span<const double> b);

/// Column-wise sum of m: returns a length-cols vector.
std::vector<double> column_sums(const Matrix& m);

}  // namespace auric::linalg
