#include "linalg/matrix.h"

#include <cassert>
#include <stdexcept>

namespace auric::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: data size does not match rows*cols");
  }
}

void Matrix::fill(double value) {
  for (double& v : data_) v = value;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_) throw std::out_of_range("select_rows: index out of range");
    const auto src = row(indices[i]);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

double Matrix::squared_norm() const {
  double total = 0.0;
  for (double v : data_) total += v * v;
  return total;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  Matrix out(a.rows(), b.cols());
  // i-k-j order: the inner loop streams both b's row k and out's row i.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto out_row = out.row(i);
    const auto a_row = a.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a_row[k];
      if (aik == 0.0) continue;  // one-hot inputs are mostly zeros
      const auto b_row = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

Matrix matmul_transposed(const Matrix& a, const Matrix& b_t) {
  if (a.cols() != b_t.cols()) throw std::invalid_argument("matmul_transposed: shape mismatch");
  Matrix out(a.rows(), b_t.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto a_row = a.row(i);
    auto out_row = out.row(i);
    for (std::size_t j = 0; j < b_t.rows(); ++j) {
      out_row[j] = dot(a_row, b_t.row(j));
    }
  }
  return out;
}

std::vector<double> matvec(const Matrix& m, std::span<const double> x) {
  if (m.cols() != x.size()) throw std::invalid_argument("matvec: shape mismatch");
  std::vector<double> y(m.rows(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) y[r] = dot(m.row(r), x);
  return y;
}

void add_row_vector(Matrix& m, std::span<const double> bias) {
  if (m.cols() != bias.size()) throw std::invalid_argument("add_row_vector: shape mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

void axpy(std::span<double> a, double scale, std::span<const double> b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += scale * b[i];
}

std::vector<double> column_sums(const Matrix& m) {
  std::vector<double> sums(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) sums[c] += row[c];
  }
  return sums;
}

}  // namespace auric::linalg
