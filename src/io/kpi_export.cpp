#include "io/kpi_export.h"

#include <stdexcept>
#include <vector>

#include "util/csv.h"
#include "util/csv_reader.h"
#include "util/strings.h"

namespace auric::io {

void save_kpi_scores(const std::string& path, const std::vector<double>& qualities) {
  util::CsvWriter csv(path, {"carrier", "quality"});
  for (std::size_t carrier = 0; carrier < qualities.size(); ++carrier) {
    csv.add_row({std::to_string(carrier), util::format("%a", qualities[carrier])});
  }
}

std::vector<double> load_kpi_scores(const std::string& path) {
  const util::CsvTable csv = util::CsvTable::load(path);
  for (const char* column : {"carrier", "quality"}) {
    if (!csv.has_column(column)) {
      throw std::invalid_argument(csv.source() + ": missing required column '" +
                                  std::string(column) + "'");
    }
  }
  std::vector<double> qualities(csv.row_count(), -1.0);
  for (std::size_t r = 0; r < csv.row_count(); ++r) {
    const long long carrier = csv.field_int(r, "carrier");
    if (carrier < 0 || static_cast<std::size_t>(carrier) >= qualities.size()) {
      throw std::invalid_argument(csv.context(r) + ": carrier " + std::to_string(carrier) +
                                  " outside dense range [0, " +
                                  std::to_string(qualities.size()) + ")");
    }
    if (qualities[static_cast<std::size_t>(carrier)] >= 0.0) {
      throw std::invalid_argument(csv.context(r) + ": duplicate carrier " +
                                  std::to_string(carrier));
    }
    const double quality = csv.field_double(r, "quality");
    if (!(quality >= 0.0 && quality <= 1.0)) {
      throw std::invalid_argument(csv.context(r) + ": quality " + std::to_string(quality) +
                                  " outside [0, 1]");
    }
    qualities[static_cast<std::size_t>(carrier)] = quality;
  }
  return qualities;
}

}  // namespace auric::io
