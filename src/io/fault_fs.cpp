#include "io/fault_fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <system_error>

#include "obs/metrics.h"
#include "util/rng.h"

namespace auric::io {

namespace {

obs::Counter& injected_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "auric_faultfs_injected_total", "FaultFs fault plans fired");
  return c;
}

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error("FaultFs: " + what + " " + path + ": " +
                           std::system_category().message(errno));
}

/// RAII fd so an injected crash (exception) never leaks a descriptor.
class Fd {
 public:
  Fd(const std::string& path, int flags, mode_t mode = 0644) : path_(path) {
    do {
      fd_ = ::open(path.c_str(), flags, mode);
    } while (fd_ < 0 && errno == EINTR);
    if (fd_ < 0) throw_errno("cannot open", path);
  }
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  void write_all(const char* data, std::size_t size) const {
    std::size_t written = 0;
    while (written < size) {
      const ssize_t n = ::write(fd_, data + written, size - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write failed on", path_);
      }
      written += static_cast<std::size_t>(n);
    }
  }

  void sync() const {
    if (::fsync(fd_) != 0) throw_errno("fsync failed on", path_);
  }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Byte length of the payload a short-write/torn-tail fault lets land.
/// Short write: a raw prefix. Torn tail: every complete line, plus the
/// final line cut mid-record — the "power died inside the last sector"
/// shape the recovery path must truncate away.
std::size_t torn_length(const std::string& data, FaultFs::Fault fault, double fraction) {
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  if (fault == FaultFs::Fault::kShortWrite) {
    return static_cast<std::size_t>(fraction * static_cast<double>(data.size()));
  }
  // kTornTail: find the final record (text after the last '\n' in the
  // payload minus its terminator) and keep only a fraction of it.
  if (data.empty()) return 0;
  std::size_t body_end = data.size();
  if (data.back() == '\n') --body_end;  // the terminator we will withhold
  const std::size_t last_nl = data.rfind('\n', body_end == 0 ? 0 : body_end - 1);
  const std::size_t line_start = last_nl == std::string::npos ? 0 : last_nl + 1;
  const std::size_t line_len = body_end - line_start;
  return line_start + static_cast<std::size_t>(fraction * static_cast<double>(line_len));
}

}  // namespace

FaultFs& FaultFs::global() {
  static FaultFs fs;
  return fs;
}

void FaultFs::install(const FaultPlan& plan) {
  const std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  armed_ = plan.fault != Fault::kNone;
  matched_ops_ = 0;
  total_ops_ = 0;
}

void FaultFs::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  plan_ = FaultPlan{};
  armed_ = false;
  matched_ops_ = 0;
  total_ops_ = 0;
}

bool FaultFs::armed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

std::uint64_t FaultFs::ops() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_ops_;
}

void FaultFs::enable_trace(bool on) {
  const std::lock_guard<std::mutex> lock(mutex_);
  tracing_ = on;
  if (!on) trace_.clear();
}

std::vector<std::string> FaultFs::take_trace() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.swap(trace_);
  return out;
}

FaultFs::FaultPlan FaultFs::seeded_plan(std::uint64_t seed, std::uint64_t total_ops) {
  util::Rng rng(util::hash_combine({0xFA017F5ULL, seed}));
  FaultPlan plan;
  // Crash faults only: kFailOp is a soft error the caller handles inline,
  // not a crash site the kill-and-resume loop can exercise.
  static constexpr Fault kCrashFaults[] = {Fault::kCrashBefore, Fault::kCrashAfter,
                                           Fault::kShortWrite, Fault::kTornTail};
  plan.fault = kCrashFaults[rng() % 4];
  plan.after_ops = total_ops == 0 ? 0 : rng() % total_ops;
  plan.tear_fraction = 0.25 + 0.5 * rng.uniform();
  return plan;
}

const char* FaultFs::fault_name(Fault fault) {
  switch (fault) {
    case Fault::kNone: return "none";
    case Fault::kFailOp: return "fail_op";
    case Fault::kCrashBefore: return "crash_before";
    case Fault::kCrashAfter: return "crash_after";
    case Fault::kShortWrite: return "short_write";
    case Fault::kTornTail: return "torn_tail";
  }
  return "?";
}

FaultFs::Fault FaultFs::advance(const char* point) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++total_ops_;
  if (tracing_) trace_.emplace_back(point);
  if (!armed_) return Fault::kNone;
  if (!plan_.point.empty() && plan_.point != point) return Fault::kNone;
  if (matched_ops_++ != plan_.after_ops) return Fault::kNone;
  armed_ = false;  // fire exactly once
  return plan_.fault;
}

void FaultFs::crash(const char* point) {
  injected_counter().inc();
  if (plan_.exit_process) std::_Exit(kCrashExitCode);
  throw CrashInjected(point);
}

void FaultFs::write_impl(const char* point, const std::string& path, const std::string& data,
                         bool append) {
  const Fault fault = advance(point);
  if (fault == Fault::kFailOp) throw_errno("injected failure writing", path);
  if (fault == Fault::kCrashBefore) crash(point);
  std::size_t length = data.size();
  if (fault == Fault::kShortWrite || fault == Fault::kTornTail) {
    length = torn_length(data, fault, plan_.tear_fraction);
  }
  {
    const Fd fd(path, O_WRONLY | O_CREAT | O_CLOEXEC | (append ? O_APPEND : O_TRUNC));
    fd.write_all(data.data(), length);
  }
  if (fault != Fault::kNone) crash(point);  // kCrashAfter / kShortWrite / kTornTail
}

void FaultFs::write_file(const char* point, const std::string& path, const std::string& data) {
  write_impl(point, path, data, /*append=*/false);
}

void FaultFs::append_file(const char* point, const std::string& path,
                          const std::string& data) {
  write_impl(point, path, data, /*append=*/true);
}

void FaultFs::sync_file(const char* point, const std::string& path) {
  const Fault fault = advance(point);
  if (fault == Fault::kFailOp) throw_errno("injected failure syncing", path);
  if (fault == Fault::kCrashBefore || fault == Fault::kShortWrite ||
      fault == Fault::kTornTail) {
    crash(point);
  }
  Fd(path, O_RDONLY | O_CLOEXEC).sync();
  if (fault == Fault::kCrashAfter) crash(point);
}

void FaultFs::sync_dir(const char* point, const std::string& dir) {
  const Fault fault = advance(point);
  if (fault == Fault::kFailOp) throw_errno("injected failure syncing dir", dir);
  if (fault == Fault::kCrashBefore || fault == Fault::kShortWrite ||
      fault == Fault::kTornTail) {
    crash(point);
  }
  Fd(dir, O_RDONLY | O_DIRECTORY | O_CLOEXEC).sync();
  if (fault == Fault::kCrashAfter) crash(point);
}

void FaultFs::rename_file(const char* point, const std::string& from, const std::string& to) {
  const Fault fault = advance(point);
  if (fault == Fault::kFailOp) throw_errno("injected failure renaming", from);
  if (fault == Fault::kCrashBefore || fault == Fault::kShortWrite ||
      fault == Fault::kTornTail) {
    crash(point);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) throw_errno("rename failed on", from);
  if (fault == Fault::kCrashAfter) crash(point);
}

void FaultFs::truncate_file(const char* point, const std::string& path, std::uint64_t size) {
  const Fault fault = advance(point);
  if (fault == Fault::kFailOp) throw_errno("injected failure truncating", path);
  if (fault == Fault::kCrashBefore || fault == Fault::kShortWrite ||
      fault == Fault::kTornTail) {
    crash(point);
  }
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    throw_errno("truncate failed on", path);
  }
  if (fault == Fault::kCrashAfter) crash(point);
}

void FaultFs::remove_file(const char* point, const std::string& path) {
  const Fault fault = advance(point);
  if (fault == Fault::kFailOp) throw_errno("injected failure removing", path);
  if (fault == Fault::kCrashBefore || fault == Fault::kShortWrite ||
      fault == Fault::kTornTail) {
    crash(point);
  }
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) throw_errno("unlink failed on", path);
  if (fault == Fault::kCrashAfter) crash(point);
}

}  // namespace auric::io
