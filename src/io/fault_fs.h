// Deterministic fault injection for the durability-critical file I/O path.
//
// The launch-state checkpoint claims to survive crashes at any instant —
// process kills, power loss mid-write, torn sectors. That claim is only
// worth anything if it is exercised: FaultFs is a thin file-operation layer
// (POSIX under the hood, so it can fsync files and directories — something
// <filesystem> cannot express) whose every call is a *named crash point*.
// An installed FaultPlan fires exactly once, deterministically, at a chosen
// operation:
//
//   kFailOp       the operation reports an I/O error (std::runtime_error);
//                 the process lives and the caller must surface it cleanly
//   kCrashBefore  the process "dies" before the operation touches the disk
//   kCrashAfter   the operation completes durably, then the process "dies"
//   kShortWrite   a write lands only a prefix of its payload, then "death"
//   kTornTail     a write lands every complete record but cuts the final
//                 line mid-record, then "death" (the torn-sector model)
//
// "Death" is either a CrashInjected exception (unit tests catch it, then
// reopen the state directory exactly like a restarted process would) or a
// real std::_Exit(kCrashExitCode) — no destructors, no stream flushes — for
// end-to-end kill-and-resume loops driven from the CLI (--faultfs-seed).
//
// Plans address operations two ways: by global operation index (the
// crash-matrix harness records a trace of an uninterrupted run, then
// replays it crashing at every index), or by (point name, occurrence) for
// targeted tests. seeded_plan() derives a plan from a single seed so CI can
// sweep random crash sites reproducibly.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace auric::io {

/// Thrown when a fault plan fires a simulated crash. Everything the faulted
/// operation durably wrote before the crash stays on disk, like a real kill.
class CrashInjected : public std::runtime_error {
 public:
  explicit CrashInjected(const std::string& point)
      : std::runtime_error("FaultFs: injected crash at " + point), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

class FaultFs {
 public:
  enum class Fault { kNone, kFailOp, kCrashBefore, kCrashAfter, kShortWrite, kTornTail };

  struct FaultPlan {
    Fault fault = Fault::kNone;
    /// Crash-point name the plan waits for; empty matches every operation.
    std::string point;
    /// Fire on the (after_ops + 1)-th matching operation (0 = the first).
    std::uint64_t after_ops = 0;
    /// kShortWrite: fraction of the payload that lands before the crash.
    /// kTornTail: fraction of the *final record* that lands.
    double tear_fraction = 0.5;
    /// True: std::_Exit(kCrashExitCode) instead of throwing CrashInjected —
    /// the honest simulation for cross-process kill-and-resume loops.
    bool exit_process = false;
  };

  /// Exit code of an exit_process crash; CI keys resume-vs-abort off it.
  static constexpr int kCrashExitCode = 86;

  /// The process-wide instance every store write routes through.
  static FaultFs& global();

  /// Arms `plan` (replacing any previous one) and zeroes the op counters.
  /// A plan fires at most once, then disarms itself.
  void install(const FaultPlan& plan);

  /// Disarms any plan and zeroes the op counters. Trace mode is untouched.
  void reset();

  /// True while an installed plan has not fired yet.
  bool armed() const;

  /// Operations observed since the last install()/reset() (fired or not).
  std::uint64_t ops() const;

  /// When tracing, every operation appends its crash-point name; the
  /// crash-matrix harness uses the trace of a clean run as its op universe.
  void enable_trace(bool on);
  std::vector<std::string> take_trace();

  /// Deterministic seed -> plan: a crash fault (never kFailOp) at a uniform
  /// operation index in [0, total_ops). Same seed, same plan, every run.
  static FaultPlan seeded_plan(std::uint64_t seed, std::uint64_t total_ops);

  static const char* fault_name(Fault fault);

  // --- Faultable primitives -----------------------------------------------
  // Each call is one operation at crash point `point`. All throw
  // std::runtime_error on real I/O errors (errno text included) and
  // CrashInjected when a throwing plan fires.

  /// Creates/truncates `path` and writes `data` in full.
  void write_file(const char* point, const std::string& path, const std::string& data);

  /// Appends `data` to `path` (creating it if missing).
  void append_file(const char* point, const std::string& path, const std::string& data);

  /// fsync(2) on the file.
  void sync_file(const char* point, const std::string& path);

  /// fsync(2) on the directory (makes renames/creates in it durable).
  void sync_dir(const char* point, const std::string& dir);

  /// rename(2) — the atomic commit primitive.
  void rename_file(const char* point, const std::string& from, const std::string& to);

  /// truncate(2) to `size` — the torn-tail repair primitive.
  void truncate_file(const char* point, const std::string& path, std::uint64_t size);

  /// unlink(2); a missing file is not an error (cleanup is idempotent).
  void remove_file(const char* point, const std::string& path);

 private:
  FaultFs() = default;

  /// Pre-op bookkeeping: counts/traces the op and decides whether the armed
  /// plan fires on it. Returns the fault to enact (kNone = proceed).
  Fault advance(const char* point);
  [[noreturn]] void crash(const char* point);
  void write_impl(const char* point, const std::string& path, const std::string& data,
                  bool append);

  mutable std::mutex mutex_;
  FaultPlan plan_;
  bool armed_ = false;
  std::uint64_t matched_ops_ = 0;
  std::uint64_t total_ops_ = 0;
  bool tracing_ = false;
  std::vector<std::string> trace_;
};

}  // namespace auric::io
