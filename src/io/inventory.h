// Network-inventory and configuration-snapshot I/O.
//
// A production deployment of Auric consumes two feeds (Fig. 5): the carrier
// inventory (attributes + X2 relations) and the current configuration
// snapshot. This module round-trips both as plain CSV directories so that
//   - synthetic experiments can be exported, inspected and re-loaded, and
//   - an operator can run the engine on their own network by producing the
//     same four files from their inventory system.
//
// Directory layout:
//   markets.csv   id,name,timezone,lat,lon,size_multiplier
//   enodebs.csv   id,market,lat,lon,morphology,terrain
//   carriers.csv  id,enodeb,face,frequency_mhz,carrier_type,carrier_info,
//                 bandwidth_mhz,mimo,hardware,cell_size_miles,
//                 tracking_area_code,vendor,neighbor_channel,
//                 software_version
//   x2.csv        from,to            (undirected, one row per link)
//   config.csv    parameter,from,to,value[,intended,cause]
//                 (`to` empty for singular parameters; values in raw vendor
//                  units; intended/cause are optional ground-truth columns)
#pragma once

#include <string>

#include "config/assignment.h"
#include "config/catalog.h"
#include "netsim/topology.h"

namespace auric::io {

/// Writes the five CSV files into `dir` (created if missing).
void save_topology(const netsim::Topology& topology, const std::string& dir);

/// Loads a topology saved by save_topology (or operator-produced files with
/// the same schema). Neighbor bookkeeping is rebuilt and invariants checked;
/// throws std::invalid_argument / std::runtime_error on malformed input.
netsim::Topology load_topology(const std::string& dir);

/// Writes config.csv for `assignment` into `dir`. Raw values are printed in
/// vendor units (domain-decoded); intended/cause ground-truth columns are
/// included so synthetic snapshots round-trip exactly.
void save_assignment(const netsim::Topology& topology, const config::ParamCatalog& catalog,
                     const config::ConfigAssignment& assignment, const std::string& dir);

/// Loads config.csv from `dir` against `topology` + `catalog`. Slots absent
/// from the file are kUnset. When the optional ground-truth columns are
/// missing (operator data), `intended` defaults to the value and `cause` to
/// kDefault.
config::ConfigAssignment load_assignment(const netsim::Topology& topology,
                                         const config::ParamCatalog& catalog,
                                         const std::string& dir);

}  // namespace auric::io
