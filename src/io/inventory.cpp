#include "io/inventory.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string_view>

#include "util/csv.h"
#include "util/csv_reader.h"
#include "util/log.h"
#include "util/strings.h"

namespace auric::io {

namespace {

using netsim::Band;
using netsim::CarrierType;
using netsim::MimoMode;
using netsim::Morphology;
using netsim::Terrain;
using netsim::Timezone;

// --- enum <-> string; serialization reuses the display names so the CSVs
// are the same vocabulary engineers see in reports. ---

template <typename Enum, int N>
Enum parse_enum(std::string_view text, const char* (*name_of)(Enum), const char* what) {
  for (int i = 0; i < N; ++i) {
    const auto candidate = static_cast<Enum>(i);
    if (text == name_of(candidate)) return candidate;
  }
  throw std::invalid_argument(std::string(what) + ": unknown value '" + std::string(text) + "'");
}

Morphology parse_morphology(std::string_view text) {
  return parse_enum<Morphology, 3>(text, netsim::morphology_name, "morphology");
}
Terrain parse_terrain(std::string_view text) {
  return parse_enum<Terrain, 3>(text, netsim::terrain_name, "terrain");
}
CarrierType parse_carrier_type(std::string_view text) {
  return parse_enum<CarrierType, 3>(text, netsim::carrier_type_name, "carrier_type");
}
MimoMode parse_mimo(std::string_view text) {
  return parse_enum<MimoMode, 3>(text, netsim::mimo_mode_name, "mimo");
}
Timezone parse_timezone(std::string_view text) {
  return parse_enum<Timezone, 4>(text, netsim::timezone_name, "timezone");
}

Band band_of_frequency(int mhz) {
  if (mhz <= 850) return Band::kLow;
  if (mhz <= 2100) return Band::kMid;
  return Band::kHigh;
}

std::string path_in(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

/// Header validation for operator-produced files: every required column must
/// exist (error naming the file and the missing columns), and columns we do
/// not understand are skipped with a warning rather than silently ignored —
/// an operator who typo'd "frequencyMhz" should hear about it.
void check_headers(const util::CsvTable& csv, std::initializer_list<const char*> required,
                   std::initializer_list<const char*> optional = {}) {
  std::string missing;
  for (const char* column : required) {
    if (!csv.has_column(column)) missing += (missing.empty() ? "" : ", ") + std::string(column);
  }
  if (!missing.empty()) {
    throw std::invalid_argument(csv.source() + ": missing required column(s): " + missing);
  }
  for (const std::string& header : csv.headers()) {
    const auto known = [&](std::initializer_list<const char*> names) {
      return std::any_of(names.begin(), names.end(),
                         [&](const char* name) { return header == name; });
    };
    if (!known(required) && !known(optional)) {
      util::log_warn(csv.source() + ": ignoring unknown column '" + header + "'");
    }
  }
}

/// Bounds check with file + line context for values whose domain the schema
/// defines (latitudes, faces, ...).
void check_range(const util::CsvTable& csv, std::size_t row, const char* column, double value,
                 double lo, double hi) {
  if (value < lo || value > hi) {
    throw std::invalid_argument(csv.context(row) + ", column " + column + ": value " +
                                util::format("%g", value) + " outside [" +
                                util::format("%g", lo) + ", " + util::format("%g", hi) + "]");
  }
}

}  // namespace

void save_topology(const netsim::Topology& topology, const std::string& dir) {
  std::filesystem::create_directories(dir);

  {
    util::CsvWriter csv(path_in(dir, "markets.csv"),
                        {"id", "name", "timezone", "lat", "lon", "size_multiplier"});
    for (const netsim::Market& m : topology.markets) {
      csv.add_row({std::to_string(m.id), m.name, netsim::timezone_name(m.timezone),
                   util::format("%.6f", m.center.lat_deg), util::format("%.6f", m.center.lon_deg),
                   util::format("%.4f", m.size_multiplier)});
    }
  }
  {
    util::CsvWriter csv(path_in(dir, "enodebs.csv"),
                        {"id", "market", "lat", "lon", "morphology", "terrain"});
    for (const netsim::ENodeB& e : topology.enodebs) {
      csv.add_row({std::to_string(e.id), std::to_string(e.market),
                   util::format("%.6f", e.location.lat_deg),
                   util::format("%.6f", e.location.lon_deg),
                   netsim::morphology_name(e.morphology), netsim::terrain_name(e.terrain)});
    }
  }
  {
    util::CsvWriter csv(
        path_in(dir, "carriers.csv"),
        {"id", "enodeb", "face", "frequency_mhz", "carrier_type", "carrier_info",
         "bandwidth_mhz", "mimo", "hardware", "cell_size_miles", "tracking_area_code", "vendor",
         "neighbor_channel", "software_version"});
    for (const netsim::Carrier& c : topology.carriers) {
      csv.add_row({std::to_string(c.id), std::to_string(c.enodeb), std::to_string(c.face),
                   std::to_string(c.frequency_mhz), netsim::carrier_type_name(c.type),
                   std::to_string(c.carrier_info), std::to_string(c.bandwidth_mhz),
                   netsim::mimo_mode_name(c.mimo), std::to_string(c.hardware),
                   std::to_string(c.cell_size_miles), std::to_string(c.tracking_area_code),
                   std::to_string(c.vendor), std::to_string(c.neighbor_channel),
                   std::to_string(c.software_version)});
    }
  }
  {
    util::CsvWriter csv(path_in(dir, "x2.csv"), {"from", "to"});
    for (const netsim::X2Edge& edge : topology.edges) {
      if (edge.from < edge.to) {  // undirected: store each link once
        csv.add_row({std::to_string(edge.from), std::to_string(edge.to)});
      }
    }
  }
}

netsim::Topology load_topology(const std::string& dir) {
  netsim::Topology topo;

  const util::CsvTable markets = util::CsvTable::load(path_in(dir, "markets.csv"));
  check_headers(markets, {"id", "name", "timezone", "lat", "lon", "size_multiplier"});
  topo.markets.resize(markets.row_count());
  for (std::size_t r = 0; r < markets.row_count(); ++r) {
    const auto id = static_cast<netsim::MarketId>(markets.field_int(r, "id"));
    if (id < 0 || static_cast<std::size_t>(id) >= topo.markets.size()) {
      throw std::invalid_argument(markets.context(r) + ": ids must be dense 0..N-1, got " +
                                  std::to_string(id));
    }
    netsim::Market& m = topo.markets[static_cast<std::size_t>(id)];
    m.id = id;
    m.name = markets.field(r, "name");
    try {
      m.timezone = parse_timezone(markets.field(r, "timezone"));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(markets.context(r) + ": " + e.what());
    }
    check_range(markets, r, "lat", markets.field_double(r, "lat"), -90.0, 90.0);
    check_range(markets, r, "lon", markets.field_double(r, "lon"), -180.0, 180.0);
    m.center = {markets.field_double(r, "lat"), markets.field_double(r, "lon")};
    m.size_multiplier = markets.field_double(r, "size_multiplier");
    check_range(markets, r, "size_multiplier", m.size_multiplier, 0.0, 1000.0);
  }

  const util::CsvTable enodebs = util::CsvTable::load(path_in(dir, "enodebs.csv"));
  check_headers(enodebs, {"id", "market", "lat", "lon", "morphology", "terrain"});
  topo.enodebs.resize(enodebs.row_count());
  for (std::size_t r = 0; r < enodebs.row_count(); ++r) {
    const auto id = static_cast<netsim::ENodeBId>(enodebs.field_int(r, "id"));
    if (id < 0 || static_cast<std::size_t>(id) >= topo.enodebs.size()) {
      throw std::invalid_argument(enodebs.context(r) + ": ids must be dense 0..N-1, got " +
                                  std::to_string(id));
    }
    netsim::ENodeB& e = topo.enodebs[static_cast<std::size_t>(id)];
    e.id = id;
    e.market = static_cast<netsim::MarketId>(enodebs.field_int(r, "market"));
    if (e.market < 0 || static_cast<std::size_t>(e.market) >= topo.markets.size()) {
      throw std::invalid_argument(enodebs.context(r) + ": unknown market " +
                                  std::to_string(e.market));
    }
    check_range(enodebs, r, "lat", enodebs.field_double(r, "lat"), -90.0, 90.0);
    check_range(enodebs, r, "lon", enodebs.field_double(r, "lon"), -180.0, 180.0);
    e.location = {enodebs.field_double(r, "lat"), enodebs.field_double(r, "lon")};
    try {
      e.morphology = parse_morphology(enodebs.field(r, "morphology"));
      e.terrain = parse_terrain(enodebs.field(r, "terrain"));
    } catch (const std::invalid_argument& e2) {
      throw std::invalid_argument(enodebs.context(r) + ": " + e2.what());
    }
    e.faces.resize(3);
  }

  const util::CsvTable carriers = util::CsvTable::load(path_in(dir, "carriers.csv"));
  check_headers(carriers,
                {"id", "enodeb", "face", "frequency_mhz", "carrier_type", "carrier_info",
                 "bandwidth_mhz", "mimo", "hardware", "cell_size_miles", "tracking_area_code",
                 "vendor", "neighbor_channel", "software_version"});
  topo.carriers.resize(carriers.row_count());
  for (std::size_t r = 0; r < carriers.row_count(); ++r) {
    const auto id = static_cast<netsim::CarrierId>(carriers.field_int(r, "id"));
    if (id < 0 || static_cast<std::size_t>(id) >= topo.carriers.size()) {
      throw std::invalid_argument(carriers.context(r) + ": ids must be dense 0..N-1, got " +
                                  std::to_string(id));
    }
    netsim::Carrier& c = topo.carriers[static_cast<std::size_t>(id)];
    c.id = id;
    c.enodeb = static_cast<netsim::ENodeBId>(carriers.field_int(r, "enodeb"));
    if (c.enodeb < 0 || static_cast<std::size_t>(c.enodeb) >= topo.enodebs.size()) {
      throw std::invalid_argument(carriers.context(r) + ": unknown eNodeB " +
                                  std::to_string(c.enodeb) + " for carrier " +
                                  std::to_string(id));
    }
    netsim::ENodeB& site = topo.enodebs[static_cast<std::size_t>(c.enodeb)];
    c.market = site.market;
    c.face = static_cast<int>(carriers.field_int(r, "face"));
    check_range(carriers, r, "face", c.face, 0, static_cast<double>(site.faces.size()) - 1);
    c.frequency_mhz = static_cast<int>(carriers.field_int(r, "frequency_mhz"));
    check_range(carriers, r, "frequency_mhz", c.frequency_mhz, 1.0, 100000.0);
    c.band = band_of_frequency(c.frequency_mhz);
    try {
      c.type = parse_carrier_type(carriers.field(r, "carrier_type"));
      c.mimo = parse_mimo(carriers.field(r, "mimo"));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(carriers.context(r) + ": " + e.what());
    }
    c.carrier_info = static_cast<int>(carriers.field_int(r, "carrier_info"));
    c.morphology = site.morphology;
    c.bandwidth_mhz = static_cast<int>(carriers.field_int(r, "bandwidth_mhz"));
    check_range(carriers, r, "bandwidth_mhz", c.bandwidth_mhz, 1.0, 400.0);
    c.hardware = static_cast<int>(carriers.field_int(r, "hardware"));
    c.cell_size_miles = static_cast<int>(carriers.field_int(r, "cell_size_miles"));
    c.tracking_area_code = static_cast<int>(carriers.field_int(r, "tracking_area_code"));
    c.vendor = static_cast<int>(carriers.field_int(r, "vendor"));
    c.neighbor_channel = static_cast<int>(carriers.field_int(r, "neighbor_channel"));
    c.software_version = static_cast<int>(carriers.field_int(r, "software_version"));
    c.terrain = site.terrain;
    c.location = site.location;
    site.faces.at(static_cast<std::size_t>(c.face)).push_back(id);
    site.carriers.push_back(id);
  }

  const util::CsvTable x2 = util::CsvTable::load(path_in(dir, "x2.csv"));
  check_headers(x2, {"from", "to"});
  topo.neighbors.assign(topo.carriers.size(), {});
  for (std::size_t r = 0; r < x2.row_count(); ++r) {
    const auto from = static_cast<netsim::CarrierId>(x2.field_int(r, "from"));
    const auto to = static_cast<netsim::CarrierId>(x2.field_int(r, "to"));
    if (from < 0 || to < 0 || static_cast<std::size_t>(from) >= topo.carriers.size() ||
        static_cast<std::size_t>(to) >= topo.carriers.size()) {
      throw std::invalid_argument(x2.context(r) + ": X2 edge " + std::to_string(from) +
                                  " -> " + std::to_string(to) +
                                  " references an unknown carrier");
    }
    if (from == to) {
      // A self-relation is meaningless but harmless: skip it rather than
      // reject an otherwise usable operator export.
      util::log_warn(x2.context(r) + ": skipping X2 self-loop on carrier " +
                     std::to_string(from));
      continue;
    }
    topo.neighbors[static_cast<std::size_t>(from)].push_back(to);
    topo.neighbors[static_cast<std::size_t>(to)].push_back(from);
  }

  // Rebuild site adjacency from the carrier graph (inter-site links).
  topo.site_neighbors.assign(topo.enodebs.size(), {});
  for (std::size_t c = 0; c < topo.neighbors.size(); ++c) {
    const netsim::ENodeBId from_site = topo.carriers[c].enodeb;
    for (netsim::CarrierId n : topo.neighbors[c]) {
      const netsim::ENodeBId to_site = topo.carrier(n).enodeb;
      if (from_site != to_site) {
        topo.site_neighbors[static_cast<std::size_t>(from_site)].push_back(to_site);
      }
    }
  }

  topo.finalize_edges();
  topo.check_invariants();
  return topo;
}

namespace {

/// Pretty-prints a domain value the way render_config_commands does.
std::string raw_value_string(const config::ValueDomain& domain, config::ValueIndex index) {
  return util::format("%.6g", domain.value(index));
}

}  // namespace

void save_assignment(const netsim::Topology& topology, const config::ParamCatalog& catalog,
                     const config::ConfigAssignment& assignment, const std::string& dir) {
  std::filesystem::create_directories(dir);
  util::CsvWriter csv(path_in(dir, "config.csv"),
                      {"parameter", "from", "to", "value", "intended", "cause"});
  const auto emit = [&](const config::ParamDef& def, const config::ParamColumn& col,
                        std::size_t slot, netsim::CarrierId from, netsim::CarrierId to) {
    if (col.value[slot] == config::kUnset) return;
    csv.add_row({def.name, std::to_string(from),
                 to == netsim::kInvalidCarrier ? "" : std::to_string(to),
                 raw_value_string(def.domain, col.value[slot]),
                 raw_value_string(def.domain, col.intended[slot]),
                 config::cause_name(col.cause[slot])});
  };
  for (std::size_t si = 0; si < assignment.singular.size(); ++si) {
    const config::ParamDef& def = catalog.at(catalog.singular_ids()[si]);
    for (std::size_t c = 0; c < assignment.singular[si].value.size(); ++c) {
      emit(def, assignment.singular[si], c, static_cast<netsim::CarrierId>(c),
           netsim::kInvalidCarrier);
    }
  }
  for (std::size_t pi = 0; pi < assignment.pairwise.size(); ++pi) {
    const config::ParamDef& def = catalog.at(catalog.pairwise_ids()[pi]);
    for (std::size_t e = 0; e < assignment.pairwise[pi].value.size(); ++e) {
      emit(def, assignment.pairwise[pi], e, topology.edges[e].from, topology.edges[e].to);
    }
  }
}

config::ConfigAssignment load_assignment(const netsim::Topology& topology,
                                         const config::ParamCatalog& catalog,
                                         const std::string& dir) {
  config::ConfigAssignment assignment;
  assignment.singular.resize(catalog.singular_ids().size());
  for (auto& col : assignment.singular) {
    col.value.assign(topology.carrier_count(), config::kUnset);
    col.intended.assign(topology.carrier_count(), config::kUnset);
    col.cause.assign(topology.carrier_count(), config::Cause::kDefault);
  }
  assignment.pairwise.resize(catalog.pairwise_ids().size());
  for (auto& col : assignment.pairwise) {
    col.value.assign(topology.edge_count(), config::kUnset);
    col.intended.assign(topology.edge_count(), config::kUnset);
    col.cause.assign(topology.edge_count(), config::Cause::kDefault);
  }

  // name -> (kind position, param id); cause name -> enum.
  std::map<std::string, std::pair<bool, std::size_t>> param_pos;
  for (std::size_t si = 0; si < catalog.singular_ids().size(); ++si) {
    param_pos[catalog.at(catalog.singular_ids()[si]).name] = {false, si};
  }
  for (std::size_t pi = 0; pi < catalog.pairwise_ids().size(); ++pi) {
    param_pos[catalog.at(catalog.pairwise_ids()[pi]).name] = {true, pi};
  }

  const util::CsvTable csv = util::CsvTable::load(path_in(dir, "config.csv"));
  check_headers(csv, {"parameter", "from", "to", "value"}, {"intended", "cause"});
  const bool has_ground_truth = csv.has_column("intended") && csv.has_column("cause");
  std::size_t unknown_params = 0;
  for (std::size_t r = 0; r < csv.row_count(); ++r) {
    const std::string& name = csv.field(r, "parameter");
    const auto it = param_pos.find(name);
    if (it == param_pos.end()) {
      // A parameter the catalog does not manage (operator feeds routinely
      // carry extra vendor parameters): skip it, keep the rest of the file.
      if (++unknown_params <= 5) {
        util::log_warn(csv.context(r) + ": skipping unknown parameter '" + name + "'");
      }
      continue;
    }
    const auto [pairwise, pos] = it->second;
    const config::ParamDef& def =
        catalog.at(pairwise ? catalog.pairwise_ids()[pos] : catalog.singular_ids()[pos]);
    const auto from = static_cast<netsim::CarrierId>(csv.field_int(r, "from"));
    if (from < 0 || static_cast<std::size_t>(from) >= topology.carrier_count()) {
      throw std::invalid_argument(csv.context(r) + ": unknown carrier " +
                                  std::to_string(from));
    }

    std::size_t slot = 0;
    config::ParamColumn* col = nullptr;
    if (pairwise) {
      if (csv.field(r, "to").empty()) {
        throw std::invalid_argument(csv.context(r) + ": pair-wise parameter " + name +
                                    " needs a 'to' carrier");
      }
      const auto to = static_cast<netsim::CarrierId>(csv.field_int(r, "to"));
      // Locate the directed edge from -> to.
      const std::size_t begin = topology.edge_offsets[static_cast<std::size_t>(from)];
      const std::size_t end = topology.edge_offsets[static_cast<std::size_t>(from) + 1];
      slot = end;
      for (std::size_t e = begin; e < end; ++e) {
        if (topology.edges[e].to == to) {
          slot = e;
          break;
        }
      }
      if (slot == end) {
        throw std::invalid_argument(csv.context(r) + ": no X2 relation " +
                                    std::to_string(from) + " -> " + std::to_string(to));
      }
      col = &assignment.pairwise[pos];
    } else {
      if (!csv.field(r, "to").empty()) {
        throw std::invalid_argument(csv.context(r) + ": singular parameter " + name +
                                    " must not name a 'to' carrier");
      }
      slot = static_cast<std::size_t>(from);
      col = &assignment.singular[pos];
    }

    const double raw = csv.field_double(r, "value");
    if (raw < def.domain.min() || raw > def.domain.max()) {
      // Out-of-domain vendor value: clamp to the nearest domain point (what
      // nearest_index does anyway) but tell the operator their feed and
      // Auric's catalog disagree about this parameter's range.
      util::log_warn(csv.context(r) + ": " + name + " = " + util::format("%g", raw) +
                     " outside domain [" + util::format("%g", def.domain.min()) + ", " +
                     util::format("%g", def.domain.max()) + "]; clamping");
    }
    col->value[slot] = def.domain.nearest_index(raw);
    if (has_ground_truth) {
      col->intended[slot] = def.domain.nearest_index(csv.field_double(r, "intended"));
      const std::string& cause = csv.field(r, "cause");
      bool found = false;
      for (int i = 0; i <= static_cast<int>(config::Cause::kNoise); ++i) {
        if (cause == config::cause_name(static_cast<config::Cause>(i))) {
          col->cause[slot] = static_cast<config::Cause>(i);
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::invalid_argument(csv.context(r) + ": unknown cause '" + cause + "'");
      }
    } else {
      col->intended[slot] = col->value[slot];
    }
  }
  if (unknown_params > 5) {
    util::log_warn(csv.source() + ": skipped " + std::to_string(unknown_params) +
                   " rows with unknown parameters in total");
  }
  return assignment;
}

}  // namespace auric::io
