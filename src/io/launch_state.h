// Crash-safe persistence for the fault-tolerant launch pipeline.
//
// The paper's deployment runs SmartLaunch against nightly inventory feeds;
// a push window that dies mid-run must pick up where it left off instead of
// re-planning launches whose changes are already on air. This module makes
// the pipeline's recovery state durable as a directory of small CSVs
// (matching the nightly-feed deployment model — plain files an operator can
// inspect and an external tool can produce):
//
//   journal.csv     per-carrier apply-journal offsets (settings landed)
//   deferred.csv    the breaker's deferred launch queue, in order
//   quarantine.csv  rolled-back carriers and their rollback counts
//   breaker.csv     circuit-breaker dynamic state (one row)
//   ems.csv         EMS simulator dynamic state (fault-stream positions,
//                   push counter, unlocked/repaired carriers)
//
// A sharded pipeline (smartlaunch::ShardedEms, N EMS instances each with
// its own breaker, journal and deferred queue) persists those five blocks
// per shard instead, as suffixed files journal.0.csv .. journal.N-1.csv and
// so on; the flat single-shard files above are untouched at N = 1, so
// existing checkpoints stay readable byte-for-byte. The shard count rides
// inside progress.csv under the reserved key "__shards", which means the
// layout mode commits atomically with the rest of the checkpoint (see
// below: progress.csv's rename is the single commit point).
//   applied.csv     slot writes applied to the evolving network state since
//                   the run started (delta vs. the initial assignment)
//   relearn.csv     the same delta frozen at the last engine re-learn (the
//                   state the current engine's models were trained on)
//   progress.csv    caller-defined key/value counters (the operation replay
//                   stores its day/launch cursor and report totals here;
//                   doubles are stored as hexfloats so a resumed run's
//                   counters are bit-identical)
//
// Every save() writes each file to a temporary name and renames it into
// place, so a crash mid-checkpoint leaves the previous consistent state on
// disk. load() validates everything it reads and reports malformed state
// with file + line context ("journal.csv line 3: ...") — a corrupt
// checkpoint must fail loudly, never resume partially.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netsim/topology.h"
#include "util/retry.h"

namespace auric::io {

/// Everything the launch pipeline needs to survive a crash, as plain data
/// (no smartlaunch types: the io layer sits below the pipeline).
struct LaunchState {
  /// EMS simulator dynamic state; mirrors smartlaunch::EmsSimulator::Snapshot.
  struct EmsState {
    std::uint64_t pushes_executed = 0;
    std::uint64_t lock_cycles = 0;
    std::uint64_t fault_stream = 0;
    std::uint64_t flap_stream = 0;
    std::uint64_t burst_stream = 0;
    std::vector<netsim::CarrierId> unlocked;
    std::vector<netsim::CarrierId> repaired;
  };

  /// One configuration-slot write relative to the initial assignment (the
  /// replay's delta encoding of its evolving network state).
  struct SlotWrite {
    bool pairwise = false;
    std::uint32_t param_pos = 0;  ///< position in the singular/pairwise column list
    std::uint64_t entity = 0;     ///< carrier id (singular) or edge index (pairwise)
    std::int32_t value = 0;       ///< ValueIndex written (never kUnset)
  };

  /// The per-EMS-shard slice of the recovery state: one apply journal, one
  /// deferred queue, one quarantine, one breaker and one EMS simulator per
  /// shard (launches, retries and rollbacks are shard-local by design).
  struct ShardState {
    std::vector<std::pair<netsim::CarrierId, std::uint64_t>> journal;
    std::vector<netsim::CarrierId> deferred;
    std::vector<std::pair<netsim::CarrierId, int>> quarantine;
    util::CircuitBreaker::Snapshot breaker;
    EmsState ems;
  };

  std::vector<std::pair<netsim::CarrierId, std::uint64_t>> journal;
  std::vector<netsim::CarrierId> deferred;
  std::vector<std::pair<netsim::CarrierId, int>> quarantine;  ///< carrier, rollbacks
  util::CircuitBreaker::Snapshot breaker;
  EmsState ems;
  /// Sharded-pipeline layout: when non-empty, the five blocks above are
  /// persisted per shard (shards[k] -> journal.k.csv, ...) and the flat
  /// fields are ignored; when empty, the legacy flat layout is used. load()
  /// restores whichever layout the checkpoint committed.
  std::vector<ShardState> shards;
  std::vector<SlotWrite> applied_slots;          ///< delta vs. initial assignment
  std::vector<SlotWrite> relearn_applied_slots;  ///< delta at last engine re-learn
  /// Caller-defined counters, persisted in order. Keys must be unique; the
  /// key "__shards" is reserved for the store's sharded-layout marker and
  /// save() rejects states that use it.
  std::vector<std::pair<std::string, std::string>> progress;

  const std::string* find_progress(const std::string& key) const;
};

class LaunchStateStore {
 public:
  explicit LaunchStateStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// True once a checkpoint has been committed (progress.csv exists).
  bool exists() const;

  /// Persists the full state atomically per file (tmp + rename). Creates
  /// the directory if missing; throws std::runtime_error on I/O failure.
  void save(const LaunchState& state) const;

  /// Loads and validates a checkpoint. Malformed state throws
  /// std::invalid_argument naming the file and 1-based line.
  LaunchState load() const;

  /// Removes the checkpoint files (leaves unrelated files alone).
  void clear() const;

 private:
  std::string dir_;
};

}  // namespace auric::io
