// Crash-safe persistence for the fault-tolerant launch pipeline.
//
// The paper's deployment runs SmartLaunch against nightly inventory feeds;
// a push window that dies mid-run must pick up where it left off instead of
// re-planning launches whose changes are already on air. This module makes
// the pipeline's recovery state durable as a directory of small CSVs
// (matching the nightly-feed deployment model — plain files an operator can
// inspect and an external tool can produce).
//
// The recovery state is a set of STREAMS, five of them per EMS shard:
//
//   journal      per-carrier apply-journal offsets (settings landed)
//   deferred     the breaker's deferred launch queue, in order
//   quarantine   rolled-back carriers and their rollback counts
//   breaker      circuit-breaker dynamic state
//   ems          EMS simulator dynamic state (fault-stream positions,
//                push counter, unlocked/repaired carriers)
//
// plus two global ones:
//
//   applied      slot writes applied to the evolving network state since
//                the run started (delta vs. the initial assignment)
//   relearn      the same delta frozen at the last engine re-learn (the
//                state the current engine's models were trained on)
//
// and progress.csv, caller-defined key/value counters whose tmp+rename is
// the checkpoint's single atomic commit point (doubles stored as hexfloats
// so a resumed run's counters are bit-identical).
//
// Persistence comes in two modes (Options::journal):
//
//  * Journal mode (default). Every stream lives in an append-only log
//    (`journal.log3.csv`, `ems.2.log7.csv`, ...) of CSV op records; each
//    save() appends only the ops that transform the previously committed
//    state into the new one, fsyncs the appended logs, and then commits by
//    rewriting progress.csv (tmp + fsync + rename + directory fsync).
//    progress.csv carries one reserved `__log.<stream>` row per log naming
//    the generation and the SEALED byte length — bytes past the seal are an
//    uncommitted tail from a crashed append, and recovery truncates them
//    away before replaying the ops. When a log's appended tail outgrows its
//    last full snapshot (Options::compact_factor) the stream is compacted:
//    a fresh snapshot log at the next generation, tmp+fsync+renamed, with
//    the old generation removed only after the commit that references the
//    new one. Checkpoint cost is therefore O(day's deltas), not O(total
//    state).
//
//  * Rewrite mode (Options::journal = false): the legacy layout — every
//    stream rewritten as a flat CSV (journal.csv / journal.2.csv, ...) per
//    checkpoint, now with the same fsync-before-rename durability. load()
//    auto-detects which mode committed the checkpoint, so journal-mode
//    stores resume from legacy checkpoints (and re-baseline them into logs
//    on the next save).
//
// Every write routes through io::FaultFs, so crash-injection tests can kill
// the store at any named operation; the crash-point catalog below is the
// matrix those tests iterate. load() validates everything it reads and
// reports malformed state with file + line context ("journal.csv line 3:
// ...") — a corrupt checkpoint must fail loudly, never resume partially.
// The one tolerated defect is a torn final record in a legacy CSV (no
// trailing newline): those are dropped with a warning, mirroring the
// journal seal rule.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "netsim/topology.h"
#include "util/retry.h"

namespace auric::io {

/// Everything the launch pipeline needs to survive a crash, as plain data
/// (no smartlaunch types: the io layer sits below the pipeline).
struct LaunchState {
  /// EMS simulator dynamic state; mirrors smartlaunch::EmsSimulator::Snapshot.
  struct EmsState {
    std::uint64_t pushes_executed = 0;
    std::uint64_t lock_cycles = 0;
    std::uint64_t fault_stream = 0;
    std::uint64_t flap_stream = 0;
    std::uint64_t burst_stream = 0;
    std::vector<netsim::CarrierId> unlocked;
    std::vector<netsim::CarrierId> repaired;
  };

  /// One configuration-slot write relative to the initial assignment (the
  /// replay's delta encoding of its evolving network state).
  struct SlotWrite {
    bool pairwise = false;
    std::uint32_t param_pos = 0;  ///< position in the singular/pairwise column list
    std::uint64_t entity = 0;     ///< carrier id (singular) or edge index (pairwise)
    std::int32_t value = 0;       ///< ValueIndex written (never kUnset)
  };

  /// The per-EMS-shard slice of the recovery state: one apply journal, one
  /// deferred queue, one quarantine, one breaker and one EMS simulator per
  /// shard (launches, retries and rollbacks are shard-local by design).
  struct ShardState {
    std::vector<std::pair<netsim::CarrierId, std::uint64_t>> journal;
    std::vector<netsim::CarrierId> deferred;
    std::vector<std::pair<netsim::CarrierId, int>> quarantine;
    util::CircuitBreaker::Snapshot breaker;
    EmsState ems;
  };

  /// Keyed streams (journal, quarantine, applied/relearn) must be sorted by
  /// key: the store persists them as ordered op logs and a resumed store
  /// diffs against the replayed (sorted) image. The pipeline already sorts
  /// its snapshots; save() rejects unsorted or duplicate-keyed input.
  std::vector<std::pair<netsim::CarrierId, std::uint64_t>> journal;
  std::vector<netsim::CarrierId> deferred;
  std::vector<std::pair<netsim::CarrierId, int>> quarantine;  ///< carrier, rollbacks
  util::CircuitBreaker::Snapshot breaker;
  EmsState ems;
  /// Sharded-pipeline layout: when non-empty, the five blocks above are
  /// persisted per shard (shards[k] -> journal.k.*, ...) and the flat
  /// fields are ignored; when empty, the flat single-shard layout is used.
  /// load() restores whichever layout the checkpoint committed.
  std::vector<ShardState> shards;
  std::vector<SlotWrite> applied_slots;          ///< delta vs. initial assignment
  std::vector<SlotWrite> relearn_applied_slots;  ///< delta at last engine re-learn
  /// Caller-defined counters, persisted in order. Keys must be unique; keys
  /// starting with "__" are reserved for the store's own markers (layout,
  /// journal seals) and save() rejects states that use them.
  std::vector<std::pair<std::string, std::string>> progress;

  const std::string* find_progress(const std::string& key) const;
};

class LaunchStateStore {
 public:
  struct Options {
    /// Append-only journal checkpoints (O(delta) per save). False restores
    /// the legacy rewrite-every-file layout (O(total state) per save).
    bool journal = true;
    /// fsync appended logs / temp files before, and the directory after,
    /// the progress.csv commit rename. Off only for benches that price the
    /// serialization path without the (noisy) device-flush cost.
    bool fsync = true;
    /// Compaction trigger: a stream is re-snapshotted once its appended
    /// tail exceeds max(compact_min_bytes, compact_factor x snapshot size).
    std::uint64_t compact_min_bytes = 4096;
    double compact_factor = 4.0;
  };

  /// What the last load() had to repair; zero everywhere on a clean open.
  struct LoadStats {
    std::size_t torn_tails_truncated = 0;  ///< journal logs cut back to their seal
    std::size_t records_replayed = 0;      ///< journal op records applied
    bool legacy_layout = false;            ///< checkpoint predates journal mode
  };

  explicit LaunchStateStore(std::string dir);
  LaunchStateStore(std::string dir, Options options);

  const std::string& dir() const { return dir_; }
  const Options& options() const { return options_; }

  /// True once a checkpoint has been committed (progress.csv exists).
  bool exists() const;

  /// Persists `state`. Journal mode appends per-stream deltas and commits
  /// them via the progress.csv rename; rewrite mode rewrites every file.
  /// Either way a crash at any point leaves the previous committed
  /// checkpoint loadable. Throws std::runtime_error on I/O failure (the
  /// store stays usable: the next save() repairs any uncommitted tails).
  ///
  /// The store keeps the last committed image in memory to diff against;
  /// that cache is primed by load() or by the first save() (which writes
  /// full snapshot logs). Stores are stateful, not bound to one process:
  /// a fresh store over an existing directory re-baselines on first save.
  void save(const LaunchState& state) const;

  /// Loads and validates a checkpoint, repairing (truncating) any journal
  /// tail left unsealed by a crashed append. Malformed state throws
  /// std::invalid_argument naming the file and 1-based line.
  LaunchState load() const;

  /// Repairs performed by the most recent load() on this store.
  const LoadStats& load_stats() const { return load_stats_; }

  /// Removes the checkpoint files (leaves unrelated files alone).
  void clear() const;

  /// Every named FaultFs crash point the store's write paths visit — the
  /// universe the crash-matrix tests iterate. Documented in DESIGN.md §14.
  static const std::vector<std::string>& crash_point_catalog();

 private:
  /// Per-stream journal bookkeeping, keyed by stream id ("journal",
  /// "ems.2", "applied", ...): committed generation, sealed byte length,
  /// and the size of the last full snapshot (the compaction yardstick).
  struct StreamLog {
    std::uint64_t gen = 0;
    std::uint64_t sealed_bytes = 0;
    std::uint64_t snapshot_bytes = 0;
  };

  void save_journal(const LaunchState& state) const;
  void save_rewrite(const LaunchState& state) const;
  void cleanup_unreferenced() const;

  std::string dir_;
  Options options_;
  // Journal-mode commit cache: the last committed image and the per-stream
  // log positions. Mutable because save()/load() are logically const to
  // callers (the checkpoint directory is the real state); guarded by the
  // pipeline's single-writer discipline, not a lock.
  mutable bool primed_ = false;
  mutable LaunchState last_;
  mutable std::map<std::string, StreamLog> logs_;
  mutable LoadStats load_stats_;
};

}  // namespace auric::io
