#include "io/launch_state.h"

#include <cstdint>
#include <filesystem>
#include <limits>
#include <set>
#include <stdexcept>
#include <string_view>

#include "obs/metrics.h"
#include "util/csv.h"
#include "util/csv_reader.h"

namespace auric::io {

namespace {

/// Checkpoint instrumentation: how often the launch state is persisted, how
/// big a checkpoint is, and how long the 8-file write takes end to end.
struct CheckpointMetrics {
  obs::Counter& writes;
  obs::Counter& bytes;
  obs::Histogram& latency_seconds;
};

CheckpointMetrics& checkpoint_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static CheckpointMetrics m{
      reg.counter("auric_checkpoint_writes_total", "launch-state checkpoints committed"),
      reg.counter("auric_checkpoint_bytes_total", "bytes written across all checkpoint files"),
      reg.histogram("auric_checkpoint_write_seconds", obs::default_seconds_bounds(),
                    "end-to-end latency of one launch-state checkpoint (s)")};
  return m;
}

constexpr const char* kJournalFile = "journal.csv";
constexpr const char* kDeferredFile = "deferred.csv";
constexpr const char* kQuarantineFile = "quarantine.csv";
constexpr const char* kBreakerFile = "breaker.csv";
constexpr const char* kEmsFile = "ems.csv";
constexpr const char* kAppliedFile = "applied.csv";
constexpr const char* kRelearnFile = "relearn.csv";
constexpr const char* kProgressFile = "progress.csv";

/// Progress key carrying the shard count of a sharded-layout checkpoint.
/// Living inside progress.csv makes the layout mode part of the atomic
/// commit: a crash between renames can never leave a checkpoint whose
/// committed progress disagrees about which block files to read.
constexpr const char* kShardsKey = "__shards";

/// "journal.csv" with shard suffix 2 -> "journal.2.csv"; shard < 0 keeps the
/// flat single-shard name.
std::string shard_file(const char* file, int shard) {
  if (shard < 0) return file;
  const std::string_view name(file);
  const std::size_t dot = name.rfind('.');
  return std::string(name.substr(0, dot)) + "." + std::to_string(shard) +
         std::string(name.substr(dot));
}

std::string path_in(const std::string& dir, const std::string& file) {
  return (std::filesystem::path(dir) / file).string();
}

/// Writes `rows` under `headers` to `<dir>/<file>` via a temporary name, so
/// a crash mid-write never clobbers the previous consistent checkpoint.
/// Returns the bytes written, for the checkpoint-size counter.
std::uintmax_t write_atomic(const std::string& dir, const std::string& file,
                            const std::vector<std::string>& headers,
                            const std::vector<std::vector<std::string>>& rows) {
  const std::string final_path = path_in(dir, file);
  const std::string tmp_path = final_path + ".tmp";
  {
    util::CsvWriter csv(tmp_path, headers);
    for (const auto& row : rows) csv.add_row(row);
  }
  const std::uintmax_t bytes = std::filesystem::file_size(tmp_path);
  std::filesystem::rename(tmp_path, final_path);
  return bytes;
}

long long checked_int(const util::CsvTable& csv, std::size_t row, const char* column,
                      long long lo, long long hi) {
  const long long value = csv.field_int(row, column);
  if (value < lo || value > hi) {
    throw std::invalid_argument(csv.context(row) + ", column " + column + ": value " +
                                std::to_string(value) + " outside [" + std::to_string(lo) +
                                ", " + std::to_string(hi) + "]");
  }
  return value;
}

std::uint64_t parse_u64(const util::CsvTable& csv, std::size_t row, const char* column) {
  const std::string& text = csv.field(row, column);
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(text, &consumed);
    if (consumed != text.size() || text.empty() || text[0] == '-') {
      throw std::invalid_argument("trailing garbage");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(csv.context(row) + ", column " + column + ": '" + text +
                                "' is not an unsigned 64-bit integer");
  }
}

/// Writes the five per-shard recovery blocks (journal, deferred queue,
/// quarantine, breaker, EMS) under shard-suffixed names; shard < 0 writes
/// the legacy flat names. Returns the bytes written.
std::uintmax_t save_blocks(const std::string& dir, int shard,
                           const std::vector<std::pair<netsim::CarrierId, std::uint64_t>>& journal,
                           const std::vector<netsim::CarrierId>& deferred,
                           const std::vector<std::pair<netsim::CarrierId, int>>& quarantine,
                           const util::CircuitBreaker::Snapshot& breaker,
                           const LaunchState::EmsState& ems) {
  std::uintmax_t bytes = 0;

  std::vector<std::vector<std::string>> rows;
  for (const auto& [carrier, applied] : journal) {
    rows.push_back({std::to_string(carrier), std::to_string(applied)});
  }
  bytes += write_atomic(dir, shard_file(kJournalFile, shard), {"carrier", "applied"}, rows);

  rows.clear();
  for (netsim::CarrierId carrier : deferred) rows.push_back({std::to_string(carrier)});
  bytes += write_atomic(dir, shard_file(kDeferredFile, shard), {"carrier"}, rows);

  rows.clear();
  for (const auto& [carrier, rollbacks] : quarantine) {
    rows.push_back({std::to_string(carrier), std::to_string(rollbacks)});
  }
  bytes += write_atomic(dir, shard_file(kQuarantineFile, shard), {"carrier", "rollbacks"}, rows);

  bytes += write_atomic(
      dir, shard_file(kBreakerFile, shard),
      {"state", "consecutive_failures", "cooldown_remaining", "trips", "refusals"},
      {{util::circuit_state_name(breaker.state), std::to_string(breaker.consecutive_failures),
        std::to_string(breaker.cooldown_remaining), std::to_string(breaker.trips),
        std::to_string(breaker.refusals)}});

  // ems.csv is a typed key/value file: scalar rows carry the counters and
  // stream positions, carrier rows list unlocked / repaired ids.
  rows.clear();
  rows.push_back({"pushes_executed", std::to_string(ems.pushes_executed)});
  rows.push_back({"lock_cycles", std::to_string(ems.lock_cycles)});
  rows.push_back({"fault_stream", std::to_string(ems.fault_stream)});
  rows.push_back({"flap_stream", std::to_string(ems.flap_stream)});
  rows.push_back({"burst_stream", std::to_string(ems.burst_stream)});
  for (netsim::CarrierId c : ems.unlocked) rows.push_back({"unlocked", std::to_string(c)});
  for (netsim::CarrierId c : ems.repaired) rows.push_back({"repaired", std::to_string(c)});
  bytes += write_atomic(dir, shard_file(kEmsFile, shard), {"key", "value"}, rows);

  return bytes;
}

void require_headers(const util::CsvTable& csv, std::initializer_list<const char*> required) {
  std::string missing;
  for (const char* column : required) {
    if (!csv.has_column(column)) missing += (missing.empty() ? "" : ", ") + std::string(column);
  }
  if (!missing.empty()) {
    throw std::invalid_argument(csv.source() + ": missing required column(s): " + missing);
  }
}

/// Loads and validates the five per-shard recovery blocks written by
/// save_blocks(); shard < 0 reads the legacy flat names.
void load_blocks(const std::string& dir, int shard,
                 std::vector<std::pair<netsim::CarrierId, std::uint64_t>>& journal_out,
                 std::vector<netsim::CarrierId>& deferred_out,
                 std::vector<std::pair<netsim::CarrierId, int>>& quarantine_out,
                 util::CircuitBreaker::Snapshot& breaker_out,
                 LaunchState::EmsState& ems_out) {
  const util::CsvTable journal = util::CsvTable::load(path_in(dir, shard_file(kJournalFile, shard)));
  require_headers(journal, {"carrier", "applied"});
  std::set<netsim::CarrierId> seen;
  for (std::size_t r = 0; r < journal.row_count(); ++r) {
    const auto carrier = static_cast<netsim::CarrierId>(
        checked_int(journal, r, "carrier", 0, std::numeric_limits<std::int32_t>::max()));
    if (!seen.insert(carrier).second) {
      throw std::invalid_argument(journal.context(r) + ": duplicate journal entry for carrier " +
                                  std::to_string(carrier));
    }
    journal_out.emplace_back(carrier, parse_u64(journal, r, "applied"));
  }

  const util::CsvTable deferred = util::CsvTable::load(path_in(dir, shard_file(kDeferredFile, shard)));
  require_headers(deferred, {"carrier"});
  for (std::size_t r = 0; r < deferred.row_count(); ++r) {
    deferred_out.push_back(static_cast<netsim::CarrierId>(
        checked_int(deferred, r, "carrier", 0, std::numeric_limits<std::int32_t>::max())));
  }

  const util::CsvTable quarantine =
      util::CsvTable::load(path_in(dir, shard_file(kQuarantineFile, shard)));
  require_headers(quarantine, {"carrier", "rollbacks"});
  for (std::size_t r = 0; r < quarantine.row_count(); ++r) {
    quarantine_out.emplace_back(
        static_cast<netsim::CarrierId>(
            checked_int(quarantine, r, "carrier", 0, std::numeric_limits<std::int32_t>::max())),
        static_cast<int>(checked_int(quarantine, r, "rollbacks", 0, 1 << 20)));
  }

  const util::CsvTable breaker = util::CsvTable::load(path_in(dir, shard_file(kBreakerFile, shard)));
  require_headers(breaker,
                  {"state", "consecutive_failures", "cooldown_remaining", "trips", "refusals"});
  if (breaker.row_count() != 1) {
    throw std::invalid_argument(breaker.source() + ": expected exactly 1 row, got " +
                                std::to_string(breaker.row_count()));
  }
  try {
    breaker_out.state = util::circuit_state_from_name(breaker.field(0, "state"));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(breaker.context(0) + ": " + e.what());
  }
  breaker_out.consecutive_failures =
      static_cast<int>(checked_int(breaker, 0, "consecutive_failures", 0, 1 << 20));
  breaker_out.cooldown_remaining =
      static_cast<int>(checked_int(breaker, 0, "cooldown_remaining", 0, 1 << 20));
  breaker_out.trips = static_cast<int>(checked_int(breaker, 0, "trips", 0, 1 << 30));
  breaker_out.refusals = static_cast<int>(checked_int(breaker, 0, "refusals", 0, 1 << 30));

  const util::CsvTable ems = util::CsvTable::load(path_in(dir, shard_file(kEmsFile, shard)));
  require_headers(ems, {"key", "value"});
  std::set<std::string> scalars_seen;
  for (std::size_t r = 0; r < ems.row_count(); ++r) {
    const std::string& key = ems.field(r, "key");
    if (key == "unlocked" || key == "repaired") {
      auto& list = key == "unlocked" ? ems_out.unlocked : ems_out.repaired;
      list.push_back(static_cast<netsim::CarrierId>(
          checked_int(ems, r, "value", 0, std::numeric_limits<std::int32_t>::max())));
      continue;
    }
    std::uint64_t* slot = nullptr;
    if (key == "pushes_executed") slot = &ems_out.pushes_executed;
    else if (key == "lock_cycles") slot = &ems_out.lock_cycles;
    else if (key == "fault_stream") slot = &ems_out.fault_stream;
    else if (key == "flap_stream") slot = &ems_out.flap_stream;
    else if (key == "burst_stream") slot = &ems_out.burst_stream;
    if (slot == nullptr) {
      throw std::invalid_argument(ems.context(r) + ": unknown key '" + key + "'");
    }
    if (!scalars_seen.insert(key).second) {
      throw std::invalid_argument(ems.context(r) + ": duplicate key '" + key + "'");
    }
    *slot = parse_u64(ems, r, "value");
  }
}

}  // namespace

const std::string* LaunchState::find_progress(const std::string& key) const {
  for (const auto& [k, v] : progress) {
    if (k == key) return &v;
  }
  return nullptr;
}

LaunchStateStore::LaunchStateStore(std::string dir) : dir_(std::move(dir)) {}

bool LaunchStateStore::exists() const {
  return std::filesystem::exists(path_in(dir_, kProgressFile));
}

void LaunchStateStore::save(const LaunchState& state) const {
  if (state.find_progress(kShardsKey) != nullptr) {
    throw std::invalid_argument("LaunchStateStore::save: progress key '" +
                                std::string(kShardsKey) + "' is reserved for the store");
  }
  CheckpointMetrics& metrics = checkpoint_metrics();
  obs::ScopedTimer timer(metrics.latency_seconds);
  std::uintmax_t bytes = 0;
  std::filesystem::create_directories(dir_);

  if (state.shards.empty()) {
    bytes += save_blocks(dir_, -1, state.journal, state.deferred, state.quarantine,
                         state.breaker, state.ems);
  } else {
    for (std::size_t k = 0; k < state.shards.size(); ++k) {
      const LaunchState::ShardState& shard = state.shards[k];
      bytes += save_blocks(dir_, static_cast<int>(k), shard.journal, shard.deferred,
                           shard.quarantine, shard.breaker, shard.ems);
    }
  }

  std::vector<std::vector<std::string>> rows;
  const auto slot_rows = [](const std::vector<LaunchState::SlotWrite>& writes) {
    std::vector<std::vector<std::string>> out;
    out.reserve(writes.size());
    for (const LaunchState::SlotWrite& w : writes) {
      out.push_back({w.pairwise ? "1" : "0", std::to_string(w.param_pos),
                     std::to_string(w.entity), std::to_string(w.value)});
    }
    return out;
  };
  bytes += write_atomic(dir_, kAppliedFile, {"pairwise", "param_pos", "entity", "value"},
                        slot_rows(state.applied_slots));
  bytes += write_atomic(dir_, kRelearnFile, {"pairwise", "param_pos", "entity", "value"},
                        slot_rows(state.relearn_applied_slots));

  // progress.csv is committed LAST: its rename is the checkpoint's commit
  // point. exists() keys off it, so a crash among the earlier renames can
  // at worst leave a newer partial state behind an older committed one —
  // and the next save() overwrites every file again. The sharded-layout
  // marker lives here too, so the commit also decides which block files a
  // later load() reads.
  rows.clear();
  if (!state.shards.empty()) {
    rows.push_back({kShardsKey, std::to_string(state.shards.size())});
  }
  for (const auto& [key, value] : state.progress) rows.push_back({key, value});
  bytes += write_atomic(dir_, kProgressFile, {"key", "value"}, rows);

  metrics.writes.inc();
  metrics.bytes.inc(bytes);
}

LaunchState LaunchStateStore::load() const {
  LaunchState state;

  // progress.csv first: it is the commit record, and its "__shards" marker
  // decides which set of block files belongs to this checkpoint.
  std::size_t shard_count = 0;
  const util::CsvTable progress = util::CsvTable::load(path_in(dir_, kProgressFile));
  require_headers(progress, {"key", "value"});
  std::set<std::string> keys_seen;
  for (std::size_t r = 0; r < progress.row_count(); ++r) {
    const std::string& key = progress.field(r, "key");
    if (!keys_seen.insert(key).second) {
      throw std::invalid_argument(progress.context(r) + ": duplicate progress key '" + key +
                                  "'");
    }
    if (key == kShardsKey) {
      shard_count = static_cast<std::size_t>(checked_int(progress, r, "value", 1, 1 << 16));
      continue;  // store-internal; not surfaced as caller progress
    }
    state.progress.emplace_back(key, progress.field(r, "value"));
  }

  if (shard_count == 0) {
    load_blocks(dir_, -1, state.journal, state.deferred, state.quarantine, state.breaker,
                state.ems);
  } else {
    state.shards.resize(shard_count);
    for (std::size_t k = 0; k < shard_count; ++k) {
      LaunchState::ShardState& shard = state.shards[k];
      load_blocks(dir_, static_cast<int>(k), shard.journal, shard.deferred, shard.quarantine,
                  shard.breaker, shard.ems);
    }
  }

  const auto load_slots = [&](const char* file) {
    std::vector<LaunchState::SlotWrite> writes;
    const util::CsvTable csv = util::CsvTable::load(path_in(dir_, file));
    require_headers(csv, {"pairwise", "param_pos", "entity", "value"});
    for (std::size_t r = 0; r < csv.row_count(); ++r) {
      LaunchState::SlotWrite w;
      w.pairwise = checked_int(csv, r, "pairwise", 0, 1) != 0;
      w.param_pos = static_cast<std::uint32_t>(
          checked_int(csv, r, "param_pos", 0, std::numeric_limits<std::uint32_t>::max()));
      w.entity = parse_u64(csv, r, "entity");
      w.value = static_cast<std::int32_t>(
          checked_int(csv, r, "value", 0, std::numeric_limits<std::int32_t>::max()));
      writes.push_back(w);
    }
    return writes;
  };
  state.applied_slots = load_slots(kAppliedFile);
  state.relearn_applied_slots = load_slots(kRelearnFile);

  return state;
}

void LaunchStateStore::clear() const {
  for (const char* file : {kJournalFile, kDeferredFile, kQuarantineFile, kBreakerFile,
                           kEmsFile, kAppliedFile, kRelearnFile, kProgressFile}) {
    std::filesystem::remove(path_in(dir_, file));
    std::filesystem::remove(path_in(dir_, file) + ".tmp");
  }
  // Shard-suffixed block files: sweep ascending shard indices until a whole
  // index is absent (save() always writes every block of a shard).
  for (int k = 0;; ++k) {
    bool removed_any = false;
    for (const char* file :
         {kJournalFile, kDeferredFile, kQuarantineFile, kBreakerFile, kEmsFile}) {
      removed_any |= std::filesystem::remove(path_in(dir_, shard_file(file, k)));
      std::filesystem::remove(path_in(dir_, shard_file(file, k)) + ".tmp");
    }
    if (!removed_any) break;
  }
}

}  // namespace auric::io
