#include "io/launch_state.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <string_view>
#include <tuple>

#include "io/fault_fs.h"
#include "obs/metrics.h"
#include "util/csv.h"
#include "util/csv_reader.h"
#include "util/log.h"

namespace auric::io {

namespace {

/// Checkpoint instrumentation. writes/bytes/latency cover every committed
/// checkpoint in either mode; appends/compactions are journal-mode internals;
/// torn_tails and replayed_records are the recovery path's evidence trail.
struct CheckpointMetrics {
  obs::Counter& writes;
  obs::Counter& bytes;
  obs::Counter& appends;
  obs::Counter& append_bytes;
  obs::Counter& compactions;
  obs::Counter& torn_tails;
  obs::Counter& replayed_records;
  obs::Histogram& latency_seconds;
};

CheckpointMetrics& checkpoint_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static CheckpointMetrics m{
      reg.counter("auric_checkpoint_writes_total", "launch-state checkpoints committed"),
      reg.counter("auric_checkpoint_bytes_total", "bytes written across all checkpoint files"),
      reg.counter("auric_checkpoint_appends_total", "journal-mode stream appends"),
      reg.counter("auric_checkpoint_append_bytes_total", "bytes appended to stream journals"),
      reg.counter("auric_checkpoint_compactions_total", "stream journals re-snapshotted"),
      reg.counter("auric_checkpoint_torn_tails_total",
                  "uncommitted journal tails truncated at recovery"),
      reg.counter("auric_checkpoint_replayed_records_total",
                  "journal op records replayed by load()"),
      reg.histogram("auric_checkpoint_write_seconds", obs::default_seconds_bounds(),
                    "end-to-end latency of one launch-state checkpoint (s)")};
  return m;
}

constexpr const char* kJournalFile = "journal.csv";
constexpr const char* kDeferredFile = "deferred.csv";
constexpr const char* kQuarantineFile = "quarantine.csv";
constexpr const char* kBreakerFile = "breaker.csv";
constexpr const char* kEmsFile = "ems.csv";
constexpr const char* kAppliedFile = "applied.csv";
constexpr const char* kRelearnFile = "relearn.csv";
constexpr const char* kProgressFile = "progress.csv";

/// Progress key carrying the shard count of a sharded-layout checkpoint.
/// Living inside progress.csv makes the layout mode part of the atomic
/// commit: a crash between renames can never leave a checkpoint whose
/// committed progress disagrees about which block files to read.
constexpr const char* kShardsKey = "__shards";

/// Progress key prefix sealing one stream journal: `__log.<stream id>` with
/// value `<gen>:<sealed bytes>:<snapshot bytes>`. Presence of any such key
/// is what marks a checkpoint as journal-layout.
constexpr const char* kLogKeyPrefix = "__log.";

/// Header row of every stream journal. Ops use up to 1 + 5 operand columns.
constexpr const char* kOpHeader = "op,a,b,c,d,e\n";
constexpr std::size_t kOpArity = 6;

// FaultFs crash points, one per faultable operation the store performs.
// Grouped by path; see LaunchStateStore::crash_point_catalog().
constexpr const char* kPtSnapshotWrite = "checkpoint.snapshot_write";
constexpr const char* kPtSnapshotFsync = "checkpoint.snapshot_fsync";
constexpr const char* kPtSnapshotRename = "checkpoint.snapshot_rename";
constexpr const char* kPtAppend = "checkpoint.append";
constexpr const char* kPtAppendFsync = "checkpoint.append_fsync";
constexpr const char* kPtPredirFsync = "checkpoint.predir_fsync";
constexpr const char* kPtProgressWrite = "checkpoint.progress_write";
constexpr const char* kPtProgressFsync = "checkpoint.progress_fsync";
constexpr const char* kPtProgressRename = "checkpoint.progress_rename";
constexpr const char* kPtDirFsync = "checkpoint.dir_fsync";
constexpr const char* kPtCleanup = "checkpoint.cleanup";
constexpr const char* kPtRewriteWrite = "rewrite.write";
constexpr const char* kPtRewriteFsync = "rewrite.fsync";
constexpr const char* kPtRewriteRename = "rewrite.rename";
constexpr const char* kPtRecoverTruncate = "recover.truncate";

std::string path_in(const std::string& dir, const std::string& file) {
  return (std::filesystem::path(dir) / file).string();
}

/// "journal.csv" with shard suffix 2 -> "journal.2.csv"; shard < 0 keeps the
/// flat single-shard name. (Legacy rewrite-mode layout.)
std::string shard_file(const char* file, int shard) {
  if (shard < 0) return file;
  const std::string_view name(file);
  const std::size_t dot = name.rfind('.');
  return std::string(name.substr(0, dot)) + "." + std::to_string(shard) +
         std::string(name.substr(dot));
}

/// Stream id of a per-shard block: "journal" flat, "journal.2" for shard 2.
std::string block_id(const char* base, int shard) {
  if (shard < 0) return base;
  return std::string(base) + "." + std::to_string(shard);
}

/// Journal file of stream `id` at generation `gen`: "journal.2.log7.csv".
std::string log_file_name(const std::string& id, std::uint64_t gen) {
  return id + ".log" + std::to_string(gen) + ".csv";
}

bool all_digits(std::string_view text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

constexpr const char* kStreamBases[] = {"journal", "deferred", "quarantine", "breaker",
                                        "ems", "applied", "relearn"};

/// True when `id` names a stream this store could own ("ems", "ems.3",
/// "applied"); cleanup only ever touches files whose names parse back to one.
bool valid_stream_id(const std::string& id) {
  std::string_view base(id);
  const std::size_t dot = base.find('.');
  if (dot != std::string_view::npos) {
    const std::string_view shard = base.substr(dot + 1);
    base = base.substr(0, dot);
    if (!all_digits(shard)) return false;
    if (base == "applied" || base == "relearn") return false;  // global streams
  }
  for (const char* known : kStreamBases) {
    if (base == known) return true;
  }
  return false;
}

/// Parses "journal.2.log7.csv" -> ("journal.2", 7). False for anything that
/// is not a stream journal of this store.
bool parse_log_name(const std::string& name, std::string& id, std::uint64_t& gen) {
  const std::string_view view(name);
  if (!view.ends_with(".csv")) return false;
  const std::size_t pos = name.rfind(".log");
  if (pos == std::string::npos || pos == 0) return false;
  const std::string_view digits = view.substr(pos + 4, view.size() - 4 - (pos + 4));
  if (!all_digits(digits)) return false;
  id = name.substr(0, pos);
  if (!valid_stream_id(id)) return false;
  gen = std::stoull(std::string(digits));
  return true;
}

/// True for any file the legacy rewrite layout owns (flat or shard-suffixed).
bool is_legacy_file(const std::string& name) {
  const std::string_view view(name);
  if (!view.ends_with(".csv")) return false;
  std::string_view stem = view.substr(0, view.size() - 4);
  const std::size_t dot = stem.find('.');
  if (dot != std::string_view::npos) {
    const std::string_view shard = stem.substr(dot + 1);
    stem = stem.substr(0, dot);
    if (!all_digits(shard)) return false;
    if (stem == "applied" || stem == "relearn") return false;
  }
  for (const char* known : kStreamBases) {
    if (stem == known) return true;
  }
  return false;
}

std::string csv_body(const std::vector<std::string>& headers,
                     const std::vector<std::vector<std::string>>& rows) {
  std::string body;
  const auto add_row = [&body](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) body += ',';
      body += util::CsvWriter::escape(row[i]);
    }
    body += '\n';
  };
  add_row(headers);
  for (const auto& row : rows) add_row(row);
  return body;
}

// --- Op record serialization ----------------------------------------------
// Every stream journal is a CSV of fixed arity kOpArity; unused operand
// columns stay empty. Operands are integers or breaker-state names, so no
// quoting is ever needed on the append path.

void add_op(std::string& out, std::initializer_list<std::string> fields) {
  std::size_t n = 0;
  for (const std::string& field : fields) {
    if (n > 0) out += ',';
    out += field;
    ++n;
  }
  for (; n < kOpArity; ++n) out += ',';
  out += '\n';
}

/// Ordered-map diff for the sorted keyed streams (apply journal,
/// quarantine): emits `u,<key>,<value>` upserts and `e,<key>` erases that
/// transform `prev` into `next`. With prev == nullptr emits the full
/// snapshot of `next` (the empty-to-next delta).
template <typename V>
std::string diff_map(const std::vector<std::pair<netsim::CarrierId, V>>* prev_p,
                     const std::vector<std::pair<netsim::CarrierId, V>>& next) {
  static const std::vector<std::pair<netsim::CarrierId, V>> kEmpty;
  const auto& prev = prev_p != nullptr ? *prev_p : kEmpty;
  std::string ops;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < prev.size() || j < next.size()) {
    if (j == next.size() || (i < prev.size() && prev[i].first < next[j].first)) {
      add_op(ops, {"e", std::to_string(prev[i].first)});
      ++i;
    } else if (i == prev.size() || next[j].first < prev[i].first) {
      add_op(ops, {"u", std::to_string(next[j].first), std::to_string(next[j].second)});
      ++j;
    } else {
      if (prev[i].second != next[j].second) {
        add_op(ops, {"u", std::to_string(next[j].first), std::to_string(next[j].second)});
      }
      ++i;
      ++j;
    }
  }
  return ops;
}

/// Deferred-queue diff. The breaker pops launches from the front and defers
/// new ones at the back, so the committed queue is almost always
/// `prev[d:] + pushes`: emit `pop,<d>` plus the pushes. Anything else (a
/// resort, a requeue) falls back to `clear` + full re-push.
std::string diff_queue(const std::vector<netsim::CarrierId>* prev_p,
                       const std::vector<netsim::CarrierId>& next) {
  static const std::vector<netsim::CarrierId> kEmpty;
  const auto& prev = prev_p != nullptr ? *prev_p : kEmpty;
  std::string ops;
  for (std::size_t d = 0; d <= prev.size(); ++d) {
    const std::size_t keep = prev.size() - d;
    if (keep > next.size() || !std::equal(prev.begin() + static_cast<std::ptrdiff_t>(d),
                                          prev.end(), next.begin())) {
      continue;
    }
    if (d > 0) add_op(ops, {"pop", std::to_string(d)});
    for (std::size_t k = keep; k < next.size(); ++k) {
      add_op(ops, {"push", std::to_string(next[k])});
    }
    return ops;
  }
  add_op(ops, {"clear"});
  for (const netsim::CarrierId carrier : next) {
    add_op(ops, {"push", std::to_string(carrier)});
  }
  return ops;
}

/// Append-mostly list diff (EMS unlocked/repaired): `cut,<key>,<len>` back
/// to the common prefix, then `add,<key>,<carrier>` for the rest.
std::string diff_list(const char* key, const std::vector<netsim::CarrierId>& prev,
                      const std::vector<netsim::CarrierId>& next) {
  std::size_t common = 0;
  while (common < prev.size() && common < next.size() && prev[common] == next[common]) {
    ++common;
  }
  std::string ops;
  if (common < prev.size()) add_op(ops, {"cut", key, std::to_string(common)});
  for (std::size_t k = common; k < next.size(); ++k) {
    add_op(ops, {"add", key, std::to_string(next[k])});
  }
  return ops;
}

std::string diff_ems(const LaunchState::EmsState* prev_p, const LaunchState::EmsState& next) {
  static const LaunchState::EmsState kEmpty;
  const auto& prev = prev_p != nullptr ? *prev_p : kEmpty;
  std::string ops;
  const auto scalar = [&ops](const char* key, std::uint64_t was, std::uint64_t now) {
    if (was != now) add_op(ops, {"set", key, std::to_string(now)});
  };
  scalar("pushes_executed", prev.pushes_executed, next.pushes_executed);
  scalar("lock_cycles", prev.lock_cycles, next.lock_cycles);
  scalar("fault_stream", prev.fault_stream, next.fault_stream);
  scalar("flap_stream", prev.flap_stream, next.flap_stream);
  scalar("burst_stream", prev.burst_stream, next.burst_stream);
  ops += diff_list("unlocked", prev.unlocked, next.unlocked);
  ops += diff_list("repaired", prev.repaired, next.repaired);
  return ops;
}

std::string diff_breaker(const util::CircuitBreaker::Snapshot* prev_p,
                         const util::CircuitBreaker::Snapshot& next) {
  static const util::CircuitBreaker::Snapshot kDefault;
  const auto& prev = prev_p != nullptr ? *prev_p : kDefault;
  if (prev.state == next.state && prev.consecutive_failures == next.consecutive_failures &&
      prev.cooldown_remaining == next.cooldown_remaining && prev.trips == next.trips &&
      prev.refusals == next.refusals) {
    return {};
  }
  std::string ops;
  add_op(ops, {"set", util::circuit_state_name(next.state),
               std::to_string(next.consecutive_failures),
               std::to_string(next.cooldown_remaining), std::to_string(next.trips),
               std::to_string(next.refusals)});
  return ops;
}

using SlotKey = std::tuple<bool, std::uint32_t, std::uint64_t>;

SlotKey slot_key(const LaunchState::SlotWrite& w) {
  return {w.pairwise, w.param_pos, w.entity};
}

std::string diff_slots(const std::vector<LaunchState::SlotWrite>* prev_p,
                       const std::vector<LaunchState::SlotWrite>& next) {
  static const std::vector<LaunchState::SlotWrite> kEmpty;
  const auto& prev = prev_p != nullptr ? *prev_p : kEmpty;
  std::string ops;
  const auto upsert = [&ops](const LaunchState::SlotWrite& w) {
    add_op(ops, {"u", w.pairwise ? "1" : "0", std::to_string(w.param_pos),
                 std::to_string(w.entity), std::to_string(w.value)});
  };
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < prev.size() || j < next.size()) {
    if (j == next.size() || (i < prev.size() && slot_key(prev[i]) < slot_key(next[j]))) {
      const LaunchState::SlotWrite& w = prev[i];
      add_op(ops, {"e", w.pairwise ? "1" : "0", std::to_string(w.param_pos),
                   std::to_string(w.entity)});
      ++i;
    } else if (i == prev.size() || slot_key(next[j]) < slot_key(prev[i])) {
      upsert(next[j]);
      ++j;
    } else {
      if (prev[i].value != next[j].value) upsert(next[j]);
      ++i;
      ++j;
    }
  }
  return ops;
}

/// One persisted stream: its id and the delta serializer (prev == nullptr
/// produces the full snapshot). The set and order of streams is a pure
/// function of the shard count, which is why the shard count lives in the
/// committed progress.csv.
struct StreamDef {
  std::string id;
  std::function<std::string(const LaunchState*, const LaunchState&)> ops;
};

std::vector<StreamDef> stream_defs(std::size_t shard_count) {
  std::vector<StreamDef> defs;
  const int blocks = shard_count == 0 ? 1 : static_cast<int>(shard_count);
  for (int b = 0; b < blocks; ++b) {
    const int shard = shard_count == 0 ? -1 : b;
    const auto shard_of = [shard](const LaunchState& s) -> const LaunchState::ShardState* {
      return shard < 0 ? nullptr : &s.shards[static_cast<std::size_t>(shard)];
    };
    defs.push_back({block_id("journal", shard),
                    [shard_of](const LaunchState* p, const LaunchState& n) {
                      const auto* block = shard_of(n);
                      const auto& next = block != nullptr ? block->journal : n.journal;
                      const auto* prev =
                          p == nullptr ? nullptr
                                       : (block != nullptr ? &shard_of(*p)->journal : &p->journal);
                      return diff_map(prev, next);
                    }});
    defs.push_back({block_id("deferred", shard),
                    [shard_of](const LaunchState* p, const LaunchState& n) {
                      const auto* block = shard_of(n);
                      const auto& next = block != nullptr ? block->deferred : n.deferred;
                      const auto* prev =
                          p == nullptr
                              ? nullptr
                              : (block != nullptr ? &shard_of(*p)->deferred : &p->deferred);
                      return diff_queue(prev, next);
                    }});
    defs.push_back({block_id("quarantine", shard),
                    [shard_of](const LaunchState* p, const LaunchState& n) {
                      const auto* block = shard_of(n);
                      const auto& next = block != nullptr ? block->quarantine : n.quarantine;
                      const auto* prev =
                          p == nullptr
                              ? nullptr
                              : (block != nullptr ? &shard_of(*p)->quarantine : &p->quarantine);
                      return diff_map(prev, next);
                    }});
    defs.push_back({block_id("breaker", shard),
                    [shard_of](const LaunchState* p, const LaunchState& n) {
                      const auto* block = shard_of(n);
                      const auto& next = block != nullptr ? block->breaker : n.breaker;
                      const auto* prev =
                          p == nullptr ? nullptr
                                       : (block != nullptr ? &shard_of(*p)->breaker : &p->breaker);
                      return diff_breaker(prev, next);
                    }});
    defs.push_back({block_id("ems", shard),
                    [shard_of](const LaunchState* p, const LaunchState& n) {
                      const auto* block = shard_of(n);
                      const auto& next = block != nullptr ? block->ems : n.ems;
                      const auto* prev =
                          p == nullptr ? nullptr
                                       : (block != nullptr ? &shard_of(*p)->ems : &p->ems);
                      return diff_ems(prev, next);
                    }});
  }
  defs.push_back({"applied", [](const LaunchState* p, const LaunchState& n) {
                    return diff_slots(p == nullptr ? nullptr : &p->applied_slots,
                                      n.applied_slots);
                  }});
  defs.push_back({"relearn", [](const LaunchState* p, const LaunchState& n) {
                    return diff_slots(p == nullptr ? nullptr : &p->relearn_applied_slots,
                                      n.relearn_applied_slots);
                  }});
  return defs;
}

// --- Op record replay -----------------------------------------------------

std::uint64_t to_u64(const std::string& ctx, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(text, &consumed);
    if (consumed != text.size() || text.empty() || text[0] == '-') {
      throw std::invalid_argument("trailing garbage");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(ctx + ": '" + text + "' is not an unsigned 64-bit integer");
  }
}

long long to_int(const std::string& ctx, const std::string& text, long long lo, long long hi) {
  long long value = 0;
  try {
    std::size_t consumed = 0;
    value = std::stoll(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument("trailing garbage");
  } catch (const std::exception&) {
    throw std::invalid_argument(ctx + ": '" + text + "' is not an integer");
  }
  if (value < lo || value > hi) {
    throw std::invalid_argument(ctx + ": value " + std::to_string(value) + " outside [" +
                                std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return value;
}

netsim::CarrierId to_carrier(const std::string& ctx, const std::string& text) {
  return static_cast<netsim::CarrierId>(
      to_int(ctx, text, 0, std::numeric_limits<std::int32_t>::max()));
}

/// Enforces that operand columns past the op's arity are empty — a torn or
/// bit-flipped record must not parse as a shorter valid one.
void require_blank(const std::string& ctx, const std::vector<std::string>& f,
                   std::size_t from) {
  for (std::size_t i = from; i < f.size(); ++i) {
    if (!f[i].empty()) {
      throw std::invalid_argument(ctx + ": unexpected operand '" + f[i] + "'");
    }
  }
}

/// Replayed image of one per-shard block, in map form so upserts and erases
/// are O(log n); canonicalized back to the sorted-vector form at the end.
struct BlockBuilder {
  std::map<netsim::CarrierId, std::uint64_t> journal;
  std::vector<netsim::CarrierId> deferred;
  std::map<netsim::CarrierId, int> quarantine;
  util::CircuitBreaker::Snapshot breaker;
  LaunchState::EmsState ems;
};

template <typename V, typename ParseValue>
void apply_map_op(const std::string& ctx, const std::vector<std::string>& f,
                  std::map<netsim::CarrierId, V>& target, ParseValue parse_value) {
  if (f[0] == "u") {
    require_blank(ctx, f, 3);
    target.insert_or_assign(to_carrier(ctx, f[1]), parse_value(ctx, f[2]));
  } else if (f[0] == "e") {
    require_blank(ctx, f, 2);
    if (target.erase(to_carrier(ctx, f[1])) == 0) {
      throw std::invalid_argument(ctx + ": erase of absent key " + f[1]);
    }
  } else {
    throw std::invalid_argument(ctx + ": unknown op '" + f[0] + "'");
  }
}

void apply_queue_op(const std::string& ctx, const std::vector<std::string>& f,
                    std::vector<netsim::CarrierId>& queue) {
  if (f[0] == "push") {
    require_blank(ctx, f, 2);
    queue.push_back(to_carrier(ctx, f[1]));
  } else if (f[0] == "pop") {
    require_blank(ctx, f, 2);
    const auto n = static_cast<std::size_t>(
        to_int(ctx, f[1], 1, static_cast<long long>(queue.size())));
    queue.erase(queue.begin(), queue.begin() + static_cast<std::ptrdiff_t>(n));
  } else if (f[0] == "clear") {
    require_blank(ctx, f, 1);
    queue.clear();
  } else {
    throw std::invalid_argument(ctx + ": unknown op '" + f[0] + "'");
  }
}

void apply_breaker_op(const std::string& ctx, const std::vector<std::string>& f,
                      util::CircuitBreaker::Snapshot& breaker) {
  if (f[0] != "set") throw std::invalid_argument(ctx + ": unknown op '" + f[0] + "'");
  try {
    breaker.state = util::circuit_state_from_name(f[1]);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(ctx + ": " + e.what());
  }
  breaker.consecutive_failures = static_cast<int>(to_int(ctx, f[2], 0, 1 << 20));
  breaker.cooldown_remaining = static_cast<int>(to_int(ctx, f[3], 0, 1 << 20));
  breaker.trips = static_cast<int>(to_int(ctx, f[4], 0, 1 << 30));
  breaker.refusals = static_cast<int>(to_int(ctx, f[5], 0, 1 << 30));
}

void apply_ems_op(const std::string& ctx, const std::vector<std::string>& f,
                  LaunchState::EmsState& ems) {
  const std::string& key = f[1];
  const auto list_of = [&](const std::string& name) -> std::vector<netsim::CarrierId>& {
    if (name == "unlocked") return ems.unlocked;
    if (name == "repaired") return ems.repaired;
    throw std::invalid_argument(ctx + ": unknown list '" + name + "'");
  };
  if (f[0] == "set") {
    require_blank(ctx, f, 3);
    std::uint64_t* slot = nullptr;
    if (key == "pushes_executed") slot = &ems.pushes_executed;
    else if (key == "lock_cycles") slot = &ems.lock_cycles;
    else if (key == "fault_stream") slot = &ems.fault_stream;
    else if (key == "flap_stream") slot = &ems.flap_stream;
    else if (key == "burst_stream") slot = &ems.burst_stream;
    if (slot == nullptr) throw std::invalid_argument(ctx + ": unknown key '" + key + "'");
    *slot = to_u64(ctx, f[2]);
  } else if (f[0] == "add") {
    require_blank(ctx, f, 3);
    list_of(key).push_back(to_carrier(ctx, f[2]));
  } else if (f[0] == "cut") {
    require_blank(ctx, f, 3);
    auto& list = list_of(key);
    const auto len = static_cast<std::size_t>(
        to_int(ctx, f[2], 0, static_cast<long long>(list.size())));
    list.resize(len);
  } else {
    throw std::invalid_argument(ctx + ": unknown op '" + f[0] + "'");
  }
}

void apply_slots_op(const std::string& ctx, const std::vector<std::string>& f,
                    std::map<SlotKey, std::int32_t>& slots) {
  const auto key_of = [&] {
    return SlotKey{to_int(ctx, f[1], 0, 1) != 0,
                   static_cast<std::uint32_t>(
                       to_int(ctx, f[2], 0, std::numeric_limits<std::uint32_t>::max())),
                   to_u64(ctx, f[3])};
  };
  if (f[0] == "u") {
    require_blank(ctx, f, 5);
    slots.insert_or_assign(key_of(), static_cast<std::int32_t>(to_int(
                                         ctx, f[4], 0, std::numeric_limits<std::int32_t>::max())));
  } else if (f[0] == "e") {
    require_blank(ctx, f, 4);
    if (slots.erase(key_of()) == 0) {
      throw std::invalid_argument(ctx + ": erase of absent slot key");
    }
  } else {
    throw std::invalid_argument(ctx + ": unknown op '" + f[0] + "'");
  }
}

/// Base name of a stream id ("journal.2" -> "journal").
std::string_view stream_base(const std::string& id) {
  const std::size_t dot = id.find('.');
  return dot == std::string::npos ? std::string_view(id)
                                  : std::string_view(id).substr(0, dot);
}

// --- Legacy (rewrite-layout) serialization --------------------------------

long long checked_int(const util::CsvTable& csv, std::size_t row, const char* column,
                      long long lo, long long hi) {
  const long long value = csv.field_int(row, column);
  if (value < lo || value > hi) {
    throw std::invalid_argument(csv.context(row) + ", column " + column + ": value " +
                                std::to_string(value) + " outside [" + std::to_string(lo) +
                                ", " + std::to_string(hi) + "]");
  }
  return value;
}

std::uint64_t parse_u64(const util::CsvTable& csv, std::size_t row, const char* column) {
  const std::string& text = csv.field(row, column);
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(text, &consumed);
    if (consumed != text.size() || text.empty() || text[0] == '-') {
      throw std::invalid_argument("trailing garbage");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(csv.context(row) + ", column " + column + ": '" + text +
                                "' is not an unsigned 64-bit integer");
  }
}

void require_headers(const util::CsvTable& csv, std::initializer_list<const char*> required) {
  std::string missing;
  for (const char* column : required) {
    if (!csv.has_column(column)) missing += (missing.empty() ? "" : ", ") + std::string(column);
  }
  if (!missing.empty()) {
    throw std::invalid_argument(csv.source() + ": missing required column(s): " + missing);
  }
}

/// Writes `body` to `<dir>/<file>` via tmp + optional fsync + rename.
/// Returns the bytes written, for the checkpoint-size counter.
std::uintmax_t write_atomic(const std::string& dir, const std::string& file,
                            const std::string& body, bool fsync, const char* point_write,
                            const char* point_fsync, const char* point_rename) {
  FaultFs& fs = FaultFs::global();
  const std::string final_path = path_in(dir, file);
  const std::string tmp_path = final_path + ".tmp";
  fs.write_file(point_write, tmp_path, body);
  if (fsync) fs.sync_file(point_fsync, tmp_path);
  fs.rename_file(point_rename, tmp_path, final_path);
  return body.size();
}

/// Writes the five per-shard recovery blocks in the legacy flat-CSV layout;
/// shard < 0 writes the flat single-shard names. Returns the bytes written.
std::uintmax_t save_blocks(const std::string& dir, int shard, bool fsync,
                           const std::vector<std::pair<netsim::CarrierId, std::uint64_t>>& journal,
                           const std::vector<netsim::CarrierId>& deferred,
                           const std::vector<std::pair<netsim::CarrierId, int>>& quarantine,
                           const util::CircuitBreaker::Snapshot& breaker,
                           const LaunchState::EmsState& ems) {
  std::uintmax_t bytes = 0;
  const auto write = [&](const char* file, const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
    bytes += write_atomic(dir, shard_file(file, shard), csv_body(headers, rows), fsync,
                          kPtRewriteWrite, kPtRewriteFsync, kPtRewriteRename);
  };

  std::vector<std::vector<std::string>> rows;
  for (const auto& [carrier, applied] : journal) {
    rows.push_back({std::to_string(carrier), std::to_string(applied)});
  }
  write(kJournalFile, {"carrier", "applied"}, rows);

  rows.clear();
  for (netsim::CarrierId carrier : deferred) rows.push_back({std::to_string(carrier)});
  write(kDeferredFile, {"carrier"}, rows);

  rows.clear();
  for (const auto& [carrier, rollbacks] : quarantine) {
    rows.push_back({std::to_string(carrier), std::to_string(rollbacks)});
  }
  write(kQuarantineFile, {"carrier", "rollbacks"}, rows);

  write(kBreakerFile,
        {"state", "consecutive_failures", "cooldown_remaining", "trips", "refusals"},
        {{util::circuit_state_name(breaker.state), std::to_string(breaker.consecutive_failures),
          std::to_string(breaker.cooldown_remaining), std::to_string(breaker.trips),
          std::to_string(breaker.refusals)}});

  // ems.csv is a typed key/value file: scalar rows carry the counters and
  // stream positions, carrier rows list unlocked / repaired ids.
  rows.clear();
  rows.push_back({"pushes_executed", std::to_string(ems.pushes_executed)});
  rows.push_back({"lock_cycles", std::to_string(ems.lock_cycles)});
  rows.push_back({"fault_stream", std::to_string(ems.fault_stream)});
  rows.push_back({"flap_stream", std::to_string(ems.flap_stream)});
  rows.push_back({"burst_stream", std::to_string(ems.burst_stream)});
  for (netsim::CarrierId c : ems.unlocked) rows.push_back({"unlocked", std::to_string(c)});
  for (netsim::CarrierId c : ems.repaired) rows.push_back({"repaired", std::to_string(c)});
  write(kEmsFile, {"key", "value"}, rows);

  return bytes;
}

/// Loads and validates the five per-shard recovery blocks written by
/// save_blocks(); shard < 0 reads the legacy flat names.
void load_blocks(const std::string& dir, int shard,
                 std::vector<std::pair<netsim::CarrierId, std::uint64_t>>& journal_out,
                 std::vector<netsim::CarrierId>& deferred_out,
                 std::vector<std::pair<netsim::CarrierId, int>>& quarantine_out,
                 util::CircuitBreaker::Snapshot& breaker_out,
                 LaunchState::EmsState& ems_out) {
  // A torn final line in any legacy CSV is an uncommitted tail: drop it
  // (warning + counter) rather than refuse a checkpoint that a crash
  // already proved survivable.
  const util::CsvParseOptions tolerant{.tolerate_torn_tail = true};
  const util::CsvTable journal =
      util::CsvTable::load(path_in(dir, shard_file(kJournalFile, shard)), tolerant);
  require_headers(journal, {"carrier", "applied"});
  std::set<netsim::CarrierId> seen;
  for (std::size_t r = 0; r < journal.row_count(); ++r) {
    const auto carrier = static_cast<netsim::CarrierId>(
        checked_int(journal, r, "carrier", 0, std::numeric_limits<std::int32_t>::max()));
    if (!seen.insert(carrier).second) {
      throw std::invalid_argument(journal.context(r) + ": duplicate journal entry for carrier " +
                                  std::to_string(carrier));
    }
    journal_out.emplace_back(carrier, parse_u64(journal, r, "applied"));
  }

  const util::CsvTable deferred =
      util::CsvTable::load(path_in(dir, shard_file(kDeferredFile, shard)), tolerant);
  require_headers(deferred, {"carrier"});
  for (std::size_t r = 0; r < deferred.row_count(); ++r) {
    deferred_out.push_back(static_cast<netsim::CarrierId>(
        checked_int(deferred, r, "carrier", 0, std::numeric_limits<std::int32_t>::max())));
  }

  const util::CsvTable quarantine =
      util::CsvTable::load(path_in(dir, shard_file(kQuarantineFile, shard)), tolerant);
  require_headers(quarantine, {"carrier", "rollbacks"});
  for (std::size_t r = 0; r < quarantine.row_count(); ++r) {
    quarantine_out.emplace_back(
        static_cast<netsim::CarrierId>(
            checked_int(quarantine, r, "carrier", 0, std::numeric_limits<std::int32_t>::max())),
        static_cast<int>(checked_int(quarantine, r, "rollbacks", 0, 1 << 20)));
  }

  const util::CsvTable breaker =
      util::CsvTable::load(path_in(dir, shard_file(kBreakerFile, shard)), tolerant);
  require_headers(breaker,
                  {"state", "consecutive_failures", "cooldown_remaining", "trips", "refusals"});
  if (breaker.row_count() != 1) {
    throw std::invalid_argument(breaker.source() + ": expected exactly 1 row, got " +
                                std::to_string(breaker.row_count()));
  }
  try {
    breaker_out.state = util::circuit_state_from_name(breaker.field(0, "state"));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(breaker.context(0) + ": " + e.what());
  }
  breaker_out.consecutive_failures =
      static_cast<int>(checked_int(breaker, 0, "consecutive_failures", 0, 1 << 20));
  breaker_out.cooldown_remaining =
      static_cast<int>(checked_int(breaker, 0, "cooldown_remaining", 0, 1 << 20));
  breaker_out.trips = static_cast<int>(checked_int(breaker, 0, "trips", 0, 1 << 30));
  breaker_out.refusals = static_cast<int>(checked_int(breaker, 0, "refusals", 0, 1 << 30));

  const util::CsvTable ems =
      util::CsvTable::load(path_in(dir, shard_file(kEmsFile, shard)), tolerant);
  require_headers(ems, {"key", "value"});
  std::set<std::string> scalars_seen;
  for (std::size_t r = 0; r < ems.row_count(); ++r) {
    const std::string& key = ems.field(r, "key");
    if (key == "unlocked" || key == "repaired") {
      auto& list = key == "unlocked" ? ems_out.unlocked : ems_out.repaired;
      list.push_back(static_cast<netsim::CarrierId>(
          checked_int(ems, r, "value", 0, std::numeric_limits<std::int32_t>::max())));
      continue;
    }
    std::uint64_t* slot = nullptr;
    if (key == "pushes_executed") slot = &ems_out.pushes_executed;
    else if (key == "lock_cycles") slot = &ems_out.lock_cycles;
    else if (key == "fault_stream") slot = &ems_out.fault_stream;
    else if (key == "flap_stream") slot = &ems_out.flap_stream;
    else if (key == "burst_stream") slot = &ems_out.burst_stream;
    if (slot == nullptr) {
      throw std::invalid_argument(ems.context(r) + ": unknown key '" + key + "'");
    }
    if (!scalars_seen.insert(key).second) {
      throw std::invalid_argument(ems.context(r) + ": duplicate key '" + key + "'");
    }
    *slot = parse_u64(ems, r, "value");
  }
}

// --- save-side validation -------------------------------------------------

template <typename V>
void require_sorted_unique(const char* what,
                           const std::vector<std::pair<netsim::CarrierId, V>>& entries) {
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (!(entries[i - 1].first < entries[i].first)) {
      throw std::invalid_argument(std::string("LaunchStateStore::save: ") + what +
                                  " must be sorted by carrier with unique keys");
    }
  }
}

void require_sorted_slots(const char* what, const std::vector<LaunchState::SlotWrite>& slots) {
  for (std::size_t i = 1; i < slots.size(); ++i) {
    if (!(slot_key(slots[i - 1]) < slot_key(slots[i]))) {
      throw std::invalid_argument(std::string("LaunchStateStore::save: ") + what +
                                  " must be sorted by (pairwise, param_pos, entity)");
    }
  }
}

}  // namespace

const std::string* LaunchState::find_progress(const std::string& key) const {
  for (const auto& [k, v] : progress) {
    if (k == key) return &v;
  }
  return nullptr;
}

LaunchStateStore::LaunchStateStore(std::string dir) : dir_(std::move(dir)) {}

LaunchStateStore::LaunchStateStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {}

bool LaunchStateStore::exists() const {
  return std::filesystem::exists(path_in(dir_, kProgressFile));
}

const std::vector<std::string>& LaunchStateStore::crash_point_catalog() {
  static const std::vector<std::string> kPoints = {
      kPtSnapshotWrite, kPtSnapshotFsync, kPtSnapshotRename,
      kPtAppend,        kPtAppendFsync,   kPtPredirFsync,
      kPtProgressWrite, kPtProgressFsync, kPtProgressRename,
      kPtDirFsync,      kPtCleanup,       kPtRewriteWrite,
      kPtRewriteFsync,  kPtRewriteRename, kPtRecoverTruncate,
  };
  return kPoints;
}

void LaunchStateStore::save(const LaunchState& state) const {
  for (const auto& [key, value] : state.progress) {
    if (key.rfind("__", 0) == 0) {
      throw std::invalid_argument("LaunchStateStore::save: progress key '" + key +
                                  "' uses the reserved '__' prefix");
    }
  }
  {
    std::set<std::string> keys;
    for (const auto& [key, value] : state.progress) {
      if (!keys.insert(key).second) {
        throw std::invalid_argument("LaunchStateStore::save: duplicate progress key '" + key +
                                    "'");
      }
    }
  }
  CheckpointMetrics& metrics = checkpoint_metrics();
  obs::ScopedTimer timer(metrics.latency_seconds);
  std::filesystem::create_directories(dir_);
  if (options_.journal) {
    save_journal(state);
  } else {
    save_rewrite(state);
  }
}

void LaunchStateStore::save_journal(const LaunchState& state) const {
  // Journal replay reconstructs keyed streams through ordered maps, so the
  // diffed input must already be in map order or resume would not be
  // bit-identical.
  require_sorted_unique("journal", state.journal);
  require_sorted_unique("quarantine", state.quarantine);
  for (const LaunchState::ShardState& shard : state.shards) {
    require_sorted_unique("journal", shard.journal);
    require_sorted_unique("quarantine", shard.quarantine);
  }
  require_sorted_slots("applied_slots", state.applied_slots);
  require_sorted_slots("relearn_applied_slots", state.relearn_applied_slots);

  FaultFs& fs = FaultFs::global();
  CheckpointMetrics& metrics = checkpoint_metrics();
  const std::size_t shard_count = state.shards.size();
  const bool rebaseline = !primed_ || last_.shards.size() != shard_count;
  const std::vector<StreamDef> streams = stream_defs(shard_count);

  // All bookkeeping happens on a copy: if a write below throws (injected or
  // real), logs_ still describes the last COMMITTED checkpoint, and the next
  // save() repairs any uncommitted tails against those seals.
  std::map<std::string, StreamLog> logs;
  if (!rebaseline) logs = logs_;
  std::uintmax_t bytes = 0;
  std::uint64_t appends = 0;
  std::uintmax_t append_bytes = 0;
  std::uint64_t compactions = 0;
  bool renamed_any = false;

  std::uint64_t fresh_gen = 0;
  if (rebaseline) {
    // Never reuse a generation: a crashed earlier save may have left
    // same-named files behind, and gens must move forward monotonically.
    std::uint64_t max_gen = 0;
    if (std::filesystem::exists(dir_)) {
      for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
        if (!entry.is_regular_file()) continue;
        std::string id;
        std::uint64_t gen = 0;
        if (parse_log_name(entry.path().filename().string(), id, gen)) {
          max_gen = std::max(max_gen, gen);
        }
      }
    }
    fresh_gen = max_gen + 1;
  }

  const auto snapshot_stream = [&](const StreamDef& s, std::uint64_t gen) {
    const std::string body = std::string(kOpHeader) + s.ops(nullptr, state);
    bytes += write_atomic(dir_, log_file_name(s.id, gen), body, options_.fsync,
                          kPtSnapshotWrite, kPtSnapshotFsync, kPtSnapshotRename);
    logs[s.id] = StreamLog{gen, body.size(), body.size()};
    renamed_any = true;
  };

  for (const StreamDef& s : streams) {
    if (rebaseline) {
      snapshot_stream(s, fresh_gen);
      continue;
    }
    const auto it = logs.find(s.id);
    if (it == logs.end()) {
      throw std::logic_error("LaunchStateStore: no journal bookkeeping for stream " + s.id);
    }
    const std::string ops = s.ops(&last_, state);
    if (ops.empty()) continue;
    StreamLog& lg = it->second;
    const std::uint64_t tail = lg.sealed_bytes - lg.snapshot_bytes + ops.size();
    const auto threshold = std::max<std::uint64_t>(
        options_.compact_min_bytes,
        static_cast<std::uint64_t>(options_.compact_factor *
                                   static_cast<double>(lg.snapshot_bytes)));
    if (tail > threshold) {
      snapshot_stream(s, lg.gen + 1);
      ++compactions;
      continue;
    }
    const std::string path = path_in(dir_, log_file_name(s.id, lg.gen));
    // A crashed earlier save may have left an uncommitted tail past the
    // seal; cut it off so this append lands exactly at the sealed offset.
    std::error_code ec;
    const std::uintmax_t on_disk = std::filesystem::file_size(path, ec);
    if (ec) {
      throw std::runtime_error("LaunchStateStore: cannot stat " + path + ": " + ec.message());
    }
    if (on_disk < lg.sealed_bytes) {
      throw std::runtime_error("LaunchStateStore: " + path + " holds " +
                               std::to_string(on_disk) + " bytes, below its committed seal of " +
                               std::to_string(lg.sealed_bytes));
    }
    if (on_disk > lg.sealed_bytes) {
      fs.truncate_file(kPtRecoverTruncate, path, lg.sealed_bytes);
      metrics.torn_tails.inc();
    }
    fs.append_file(kPtAppend, path, ops);
    if (options_.fsync) fs.sync_file(kPtAppendFsync, path);
    lg.sealed_bytes += ops.size();
    bytes += ops.size();
    ++appends;
    append_bytes += ops.size();
  }

  // Make the renamed snapshot files durable before the commit that starts
  // referencing them (rename durability lives in the directory).
  if (options_.fsync && renamed_any) fs.sync_dir(kPtPredirFsync, dir_);

  // progress.csv is the single atomic commit point: the shard count, every
  // stream's seal, and the caller's counters land in one rename.
  std::vector<std::vector<std::string>> rows;
  if (shard_count > 0) rows.push_back({kShardsKey, std::to_string(shard_count)});
  for (const StreamDef& s : streams) {
    const StreamLog& lg = logs.at(s.id);
    rows.push_back({kLogKeyPrefix + s.id, std::to_string(lg.gen) + ":" +
                                              std::to_string(lg.sealed_bytes) + ":" +
                                              std::to_string(lg.snapshot_bytes)});
  }
  for (const auto& [key, value] : state.progress) rows.push_back({key, value});
  bytes += write_atomic(dir_, kProgressFile, csv_body({"key", "value"}, rows), options_.fsync,
                        kPtProgressWrite, kPtProgressFsync, kPtProgressRename);

  // Committed: from here on the in-memory cache must describe the new
  // checkpoint even if the trailing durability / cleanup steps throw.
  logs_ = std::move(logs);
  last_ = state;
  primed_ = true;
  metrics.writes.inc();
  metrics.bytes.inc(bytes);
  metrics.appends.inc(appends);
  metrics.append_bytes.inc(append_bytes);
  metrics.compactions.inc(compactions);

  if (options_.fsync) fs.sync_dir(kPtDirFsync, dir_);
  cleanup_unreferenced();
}

void LaunchStateStore::save_rewrite(const LaunchState& state) const {
  FaultFs& fs = FaultFs::global();
  CheckpointMetrics& metrics = checkpoint_metrics();
  std::uintmax_t bytes = 0;

  if (state.shards.empty()) {
    bytes += save_blocks(dir_, -1, options_.fsync, state.journal, state.deferred,
                         state.quarantine, state.breaker, state.ems);
  } else {
    for (std::size_t k = 0; k < state.shards.size(); ++k) {
      const LaunchState::ShardState& shard = state.shards[k];
      bytes += save_blocks(dir_, static_cast<int>(k), options_.fsync, shard.journal,
                           shard.deferred, shard.quarantine, shard.breaker, shard.ems);
    }
  }

  const auto slot_rows = [](const std::vector<LaunchState::SlotWrite>& writes) {
    std::vector<std::vector<std::string>> out;
    out.reserve(writes.size());
    for (const LaunchState::SlotWrite& w : writes) {
      out.push_back({w.pairwise ? "1" : "0", std::to_string(w.param_pos),
                     std::to_string(w.entity), std::to_string(w.value)});
    }
    return out;
  };
  bytes += write_atomic(
      dir_, kAppliedFile,
      csv_body({"pairwise", "param_pos", "entity", "value"}, slot_rows(state.applied_slots)),
      options_.fsync, kPtRewriteWrite, kPtRewriteFsync, kPtRewriteRename);
  bytes += write_atomic(dir_, kRelearnFile,
                        csv_body({"pairwise", "param_pos", "entity", "value"},
                                 slot_rows(state.relearn_applied_slots)),
                        options_.fsync, kPtRewriteWrite, kPtRewriteFsync, kPtRewriteRename);

  // Make every block rename durable before committing a progress.csv that
  // promises them.
  if (options_.fsync) fs.sync_dir(kPtPredirFsync, dir_);

  // progress.csv is committed LAST: its rename is the checkpoint's commit
  // point. exists() keys off it, so a crash among the earlier renames can
  // at worst leave a newer partial state behind an older committed one —
  // and the next save() overwrites every file again. The sharded-layout
  // marker lives here too, so the commit also decides which block files a
  // later load() reads.
  std::vector<std::vector<std::string>> rows;
  if (!state.shards.empty()) {
    rows.push_back({kShardsKey, std::to_string(state.shards.size())});
  }
  for (const auto& [key, value] : state.progress) rows.push_back({key, value});
  bytes += write_atomic(dir_, kProgressFile, csv_body({"key", "value"}, rows), options_.fsync,
                        kPtProgressWrite, kPtProgressFsync, kPtProgressRename);

  // A rewrite-mode commit supersedes any journal layout in the directory.
  logs_.clear();
  last_ = LaunchState{};
  primed_ = false;
  metrics.writes.inc();
  metrics.bytes.inc(bytes);

  if (options_.fsync) fs.sync_dir(kPtDirFsync, dir_);
  cleanup_unreferenced();
}

void LaunchStateStore::cleanup_unreferenced() const {
  FaultFs& fs = FaultFs::global();
  std::vector<std::string> doomed;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == kProgressFile) continue;
    if (std::string_view(name).ends_with(".tmp")) {
      doomed.push_back(name);
      continue;
    }
    std::string id;
    std::uint64_t gen = 0;
    if (parse_log_name(name, id, gen)) {
      const auto it = logs_.find(id);
      if (it == logs_.end() || it->second.gen != gen) doomed.push_back(name);
      continue;
    }
    // A journal-mode commit supersedes the legacy flat files the checkpoint
    // may have migrated from; rewrite mode owns them and keeps them.
    if (options_.journal && is_legacy_file(name)) doomed.push_back(name);
  }
  // Directory iteration order is unspecified; sort so the FaultFs op
  // sequence (and thus crash-matrix indices) is reproducible.
  std::sort(doomed.begin(), doomed.end());
  for (const std::string& name : doomed) fs.remove_file(kPtCleanup, path_in(dir_, name));
}

LaunchState LaunchStateStore::load() const {
  CheckpointMetrics& metrics = checkpoint_metrics();
  load_stats_ = LoadStats{};
  primed_ = false;
  logs_.clear();
  last_ = LaunchState{};

  LaunchState state;
  const util::CsvParseOptions tolerant{.tolerate_torn_tail = true};

  // progress.csv first: it is the commit record — its reserved rows decide
  // the layout (journal seals, shard count) everything else is read with.
  std::size_t shard_count = 0;
  std::map<std::string, StreamLog> logs;
  const util::CsvTable progress = util::CsvTable::load(path_in(dir_, kProgressFile), tolerant);
  require_headers(progress, {"key", "value"});
  std::set<std::string> keys_seen;
  for (std::size_t r = 0; r < progress.row_count(); ++r) {
    const std::string& key = progress.field(r, "key");
    if (!keys_seen.insert(key).second) {
      throw std::invalid_argument(progress.context(r) + ": duplicate progress key '" + key +
                                  "'");
    }
    if (key == kShardsKey) {
      shard_count = static_cast<std::size_t>(checked_int(progress, r, "value", 1, 1 << 16));
      continue;
    }
    if (key.rfind(kLogKeyPrefix, 0) == 0) {
      const std::string id = key.substr(std::string_view(kLogKeyPrefix).size());
      const std::string& value = progress.field(r, "value");
      const std::size_t c1 = value.find(':');
      const std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                                     : value.find(':', c1 + 1);
      if (!valid_stream_id(id) || c2 == std::string::npos) {
        throw std::invalid_argument(progress.context(r) + ": malformed journal seal '" + key +
                                    "' = '" + value + "'");
      }
      const std::string ctx = progress.context(r);
      StreamLog lg;
      lg.gen = to_u64(ctx, value.substr(0, c1));
      lg.sealed_bytes = to_u64(ctx, value.substr(c1 + 1, c2 - c1 - 1));
      lg.snapshot_bytes = to_u64(ctx, value.substr(c2 + 1));
      logs[id] = lg;
      continue;
    }
    if (key.rfind("__", 0) == 0) {
      throw std::invalid_argument(progress.context(r) + ": unknown reserved key '" + key + "'");
    }
    state.progress.emplace_back(key, progress.field(r, "value"));
  }

  if (logs.empty()) {
    // Legacy rewrite-layout checkpoint.
    load_stats_.legacy_layout = true;
    if (shard_count == 0) {
      load_blocks(dir_, -1, state.journal, state.deferred, state.quarantine, state.breaker,
                  state.ems);
    } else {
      state.shards.resize(shard_count);
      for (std::size_t k = 0; k < shard_count; ++k) {
        LaunchState::ShardState& shard = state.shards[k];
        load_blocks(dir_, static_cast<int>(k), shard.journal, shard.deferred, shard.quarantine,
                    shard.breaker, shard.ems);
      }
    }
    const auto load_slots = [&](const char* file) {
      std::vector<LaunchState::SlotWrite> writes;
      const util::CsvTable csv = util::CsvTable::load(path_in(dir_, file), tolerant);
      require_headers(csv, {"pairwise", "param_pos", "entity", "value"});
      for (std::size_t r = 0; r < csv.row_count(); ++r) {
        LaunchState::SlotWrite w;
        w.pairwise = checked_int(csv, r, "pairwise", 0, 1) != 0;
        w.param_pos = static_cast<std::uint32_t>(
            checked_int(csv, r, "param_pos", 0, std::numeric_limits<std::uint32_t>::max()));
        w.entity = parse_u64(csv, r, "entity");
        w.value = static_cast<std::int32_t>(
            checked_int(csv, r, "value", 0, std::numeric_limits<std::int32_t>::max()));
        writes.push_back(w);
      }
      return writes;
    };
    state.applied_slots = load_slots(kAppliedFile);
    state.relearn_applied_slots = load_slots(kRelearnFile);
    // Leave the store unprimed: the next save() re-baselines the legacy
    // checkpoint into journal logs (or rewrites it, per the mode).
    return state;
  }

  // Journal-layout checkpoint: replay each sealed stream.
  const std::vector<StreamDef> streams = stream_defs(shard_count);
  if (streams.size() != logs.size()) {
    throw std::invalid_argument(path_in(dir_, kProgressFile) + ": expected " +
                                std::to_string(streams.size()) + " journal seals, found " +
                                std::to_string(logs.size()));
  }

  std::vector<BlockBuilder> blocks(shard_count == 0 ? 1 : shard_count);
  std::map<SlotKey, std::int32_t> applied;
  std::map<SlotKey, std::int32_t> relearn;

  for (const StreamDef& s : streams) {
    const auto it = logs.find(s.id);
    if (it == logs.end()) {
      throw std::invalid_argument(path_in(dir_, kProgressFile) +
                                  ": missing journal seal for stream " + s.id);
    }
    const StreamLog& lg = it->second;
    const std::string path = path_in(dir_, log_file_name(s.id, lg.gen));

    std::string content;
    {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw std::runtime_error("LaunchStateStore: cannot open " + path);
      content.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
    if (content.size() < lg.sealed_bytes) {
      throw std::invalid_argument(path + ": committed seal of " +
                                  std::to_string(lg.sealed_bytes) + " bytes exceeds file size " +
                                  std::to_string(content.size()));
    }
    if (content.size() > lg.sealed_bytes) {
      // Uncommitted tail from a crashed append: cut the file back to its
      // seal so the journal and the commit record agree again.
      FaultFs::global().truncate_file(kPtRecoverTruncate, path, lg.sealed_bytes);
      util::log_warn("launch-state recovery: truncated " + path + " from " +
                     std::to_string(content.size()) + " to sealed " +
                     std::to_string(lg.sealed_bytes) + " bytes");
      content.resize(lg.sealed_bytes);
      ++load_stats_.torn_tails_truncated;
      metrics.torn_tails.inc();
    }
    if (content.empty() || content.back() != '\n') {
      throw std::invalid_argument(path + ": committed journal region is not record-aligned");
    }

    // Which builder this stream replays into.
    const std::string_view base = stream_base(s.id);
    const std::size_t dot = s.id.find('.');
    const std::size_t shard =
        dot == std::string::npos ? 0 : static_cast<std::size_t>(std::stoull(s.id.substr(dot + 1)));
    BlockBuilder& block = blocks[shard < blocks.size() ? shard : 0];

    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos < content.size()) {
      const std::size_t nl = content.find('\n', pos);
      const std::string line = content.substr(pos, nl - pos);
      pos = nl + 1;
      ++line_no;
      const std::string ctx = path + " line " + std::to_string(line_no);
      if (line_no == 1) {
        if (line + "\n" != kOpHeader) {
          throw std::invalid_argument(ctx + ": bad journal header '" + line + "'");
        }
        continue;
      }
      std::vector<std::string> fields;
      try {
        fields = util::parse_csv_line(line);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(ctx + ": " + e.what());
      }
      if (fields.size() != kOpArity) {
        throw std::invalid_argument(ctx + ": expected " + std::to_string(kOpArity) +
                                    " fields, got " + std::to_string(fields.size()));
      }
      if (base == "journal") {
        apply_map_op(ctx, fields, block.journal, to_u64);
      } else if (base == "quarantine") {
        apply_map_op(ctx, fields, block.quarantine,
                     [](const std::string& c, const std::string& t) {
                       return static_cast<int>(to_int(c, t, 0, 1 << 20));
                     });
      } else if (base == "deferred") {
        apply_queue_op(ctx, fields, block.deferred);
      } else if (base == "breaker") {
        apply_breaker_op(ctx, fields, block.breaker);
      } else if (base == "ems") {
        apply_ems_op(ctx, fields, block.ems);
      } else if (base == "applied") {
        apply_slots_op(ctx, fields, applied);
      } else if (base == "relearn") {
        apply_slots_op(ctx, fields, relearn);
      } else {
        throw std::invalid_argument(ctx + ": stream '" + s.id + "' has no replay rule");
      }
      ++load_stats_.records_replayed;
    }
  }

  // Canonicalize the replayed maps back into the sorted-vector state form.
  const auto block_out = [](BlockBuilder& b, LaunchState::ShardState& out) {
    out.journal.assign(b.journal.begin(), b.journal.end());
    out.deferred = std::move(b.deferred);
    out.quarantine.assign(b.quarantine.begin(), b.quarantine.end());
    out.breaker = b.breaker;
    out.ems = std::move(b.ems);
  };
  if (shard_count == 0) {
    LaunchState::ShardState flat;
    block_out(blocks[0], flat);
    state.journal = std::move(flat.journal);
    state.deferred = std::move(flat.deferred);
    state.quarantine = std::move(flat.quarantine);
    state.breaker = flat.breaker;
    state.ems = std::move(flat.ems);
  } else {
    state.shards.resize(shard_count);
    for (std::size_t k = 0; k < shard_count; ++k) block_out(blocks[k], state.shards[k]);
  }
  const auto slots_out = [](const std::map<SlotKey, std::int32_t>& slots) {
    std::vector<LaunchState::SlotWrite> out;
    out.reserve(slots.size());
    for (const auto& [key, value] : slots) {
      out.push_back({std::get<0>(key), std::get<1>(key), std::get<2>(key), value});
    }
    return out;
  };
  state.applied_slots = slots_out(applied);
  state.relearn_applied_slots = slots_out(relearn);

  metrics.replayed_records.inc(load_stats_.records_replayed);

  // Prime the diff cache: subsequent saves append against this image.
  logs_ = std::move(logs);
  last_ = state;
  primed_ = true;
  return state;
}

void LaunchStateStore::clear() const {
  primed_ = false;
  logs_.clear();
  last_ = LaunchState{};
  load_stats_ = LoadStats{};
  if (!std::filesystem::exists(dir_)) return;
  std::vector<std::filesystem::path> doomed;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (std::string_view(name).ends_with(".tmp")) name = name.substr(0, name.size() - 4);
    std::string id;
    std::uint64_t gen = 0;
    if (name == kProgressFile || is_legacy_file(name) || parse_log_name(name, id, gen)) {
      doomed.push_back(entry.path());
    }
  }
  for (const auto& path : doomed) std::filesystem::remove(path);
}

}  // namespace auric::io
