#include "io/launch_state.h"

#include <cstdint>
#include <filesystem>
#include <limits>
#include <set>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/csv.h"
#include "util/csv_reader.h"

namespace auric::io {

namespace {

/// Checkpoint instrumentation: how often the launch state is persisted, how
/// big a checkpoint is, and how long the 8-file write takes end to end.
struct CheckpointMetrics {
  obs::Counter& writes;
  obs::Counter& bytes;
  obs::Histogram& latency_seconds;
};

CheckpointMetrics& checkpoint_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static CheckpointMetrics m{
      reg.counter("auric_checkpoint_writes_total", "launch-state checkpoints committed"),
      reg.counter("auric_checkpoint_bytes_total", "bytes written across all checkpoint files"),
      reg.histogram("auric_checkpoint_write_seconds", obs::default_seconds_bounds(),
                    "end-to-end latency of one launch-state checkpoint (s)")};
  return m;
}

constexpr const char* kJournalFile = "journal.csv";
constexpr const char* kDeferredFile = "deferred.csv";
constexpr const char* kQuarantineFile = "quarantine.csv";
constexpr const char* kBreakerFile = "breaker.csv";
constexpr const char* kEmsFile = "ems.csv";
constexpr const char* kAppliedFile = "applied.csv";
constexpr const char* kRelearnFile = "relearn.csv";
constexpr const char* kProgressFile = "progress.csv";

std::string path_in(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

/// Writes `rows` under `headers` to `<dir>/<file>` via a temporary name, so
/// a crash mid-write never clobbers the previous consistent checkpoint.
/// Returns the bytes written, for the checkpoint-size counter.
std::uintmax_t write_atomic(const std::string& dir, const char* file,
                            const std::vector<std::string>& headers,
                            const std::vector<std::vector<std::string>>& rows) {
  const std::string final_path = path_in(dir, file);
  const std::string tmp_path = final_path + ".tmp";
  {
    util::CsvWriter csv(tmp_path, headers);
    for (const auto& row : rows) csv.add_row(row);
  }
  const std::uintmax_t bytes = std::filesystem::file_size(tmp_path);
  std::filesystem::rename(tmp_path, final_path);
  return bytes;
}

long long checked_int(const util::CsvTable& csv, std::size_t row, const char* column,
                      long long lo, long long hi) {
  const long long value = csv.field_int(row, column);
  if (value < lo || value > hi) {
    throw std::invalid_argument(csv.context(row) + ", column " + column + ": value " +
                                std::to_string(value) + " outside [" + std::to_string(lo) +
                                ", " + std::to_string(hi) + "]");
  }
  return value;
}

std::uint64_t parse_u64(const util::CsvTable& csv, std::size_t row, const char* column) {
  const std::string& text = csv.field(row, column);
  try {
    std::size_t consumed = 0;
    const std::uint64_t value = std::stoull(text, &consumed);
    if (consumed != text.size() || text.empty() || text[0] == '-') {
      throw std::invalid_argument("trailing garbage");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(csv.context(row) + ", column " + column + ": '" + text +
                                "' is not an unsigned 64-bit integer");
  }
}

void require_headers(const util::CsvTable& csv, std::initializer_list<const char*> required) {
  std::string missing;
  for (const char* column : required) {
    if (!csv.has_column(column)) missing += (missing.empty() ? "" : ", ") + std::string(column);
  }
  if (!missing.empty()) {
    throw std::invalid_argument(csv.source() + ": missing required column(s): " + missing);
  }
}

}  // namespace

const std::string* LaunchState::find_progress(const std::string& key) const {
  for (const auto& [k, v] : progress) {
    if (k == key) return &v;
  }
  return nullptr;
}

LaunchStateStore::LaunchStateStore(std::string dir) : dir_(std::move(dir)) {}

bool LaunchStateStore::exists() const {
  return std::filesystem::exists(path_in(dir_, kProgressFile));
}

void LaunchStateStore::save(const LaunchState& state) const {
  CheckpointMetrics& metrics = checkpoint_metrics();
  obs::ScopedTimer timer(metrics.latency_seconds);
  std::uintmax_t bytes = 0;
  std::filesystem::create_directories(dir_);

  std::vector<std::vector<std::string>> rows;
  for (const auto& [carrier, applied] : state.journal) {
    rows.push_back({std::to_string(carrier), std::to_string(applied)});
  }
  bytes += write_atomic(dir_, kJournalFile, {"carrier", "applied"}, rows);

  rows.clear();
  for (netsim::CarrierId carrier : state.deferred) rows.push_back({std::to_string(carrier)});
  bytes += write_atomic(dir_, kDeferredFile, {"carrier"}, rows);

  rows.clear();
  for (const auto& [carrier, rollbacks] : state.quarantine) {
    rows.push_back({std::to_string(carrier), std::to_string(rollbacks)});
  }
  bytes += write_atomic(dir_, kQuarantineFile, {"carrier", "rollbacks"}, rows);

  const util::CircuitBreaker::Snapshot& b = state.breaker;
  bytes += write_atomic(
      dir_, kBreakerFile,
      {"state", "consecutive_failures", "cooldown_remaining", "trips", "refusals"},
      {{util::circuit_state_name(b.state), std::to_string(b.consecutive_failures),
        std::to_string(b.cooldown_remaining), std::to_string(b.trips),
        std::to_string(b.refusals)}});

  // ems.csv is a typed key/value file: scalar rows carry the counters and
  // stream positions, carrier rows list unlocked / repaired ids.
  rows.clear();
  const LaunchState::EmsState& e = state.ems;
  rows.push_back({"pushes_executed", std::to_string(e.pushes_executed)});
  rows.push_back({"lock_cycles", std::to_string(e.lock_cycles)});
  rows.push_back({"fault_stream", std::to_string(e.fault_stream)});
  rows.push_back({"flap_stream", std::to_string(e.flap_stream)});
  rows.push_back({"burst_stream", std::to_string(e.burst_stream)});
  for (netsim::CarrierId c : e.unlocked) rows.push_back({"unlocked", std::to_string(c)});
  for (netsim::CarrierId c : e.repaired) rows.push_back({"repaired", std::to_string(c)});
  bytes += write_atomic(dir_, kEmsFile, {"key", "value"}, rows);

  const auto slot_rows = [](const std::vector<LaunchState::SlotWrite>& writes) {
    std::vector<std::vector<std::string>> out;
    out.reserve(writes.size());
    for (const LaunchState::SlotWrite& w : writes) {
      out.push_back({w.pairwise ? "1" : "0", std::to_string(w.param_pos),
                     std::to_string(w.entity), std::to_string(w.value)});
    }
    return out;
  };
  bytes += write_atomic(dir_, kAppliedFile, {"pairwise", "param_pos", "entity", "value"},
                        slot_rows(state.applied_slots));
  bytes += write_atomic(dir_, kRelearnFile, {"pairwise", "param_pos", "entity", "value"},
                        slot_rows(state.relearn_applied_slots));

  // progress.csv is committed LAST: its rename is the checkpoint's commit
  // point. exists() keys off it, so a crash among the earlier renames can
  // at worst leave a newer partial state behind an older committed one —
  // and the next save() overwrites every file again.
  rows.clear();
  for (const auto& [key, value] : state.progress) rows.push_back({key, value});
  bytes += write_atomic(dir_, kProgressFile, {"key", "value"}, rows);

  metrics.writes.inc();
  metrics.bytes.inc(bytes);
}

LaunchState LaunchStateStore::load() const {
  LaunchState state;

  const util::CsvTable journal = util::CsvTable::load(path_in(dir_, kJournalFile));
  require_headers(journal, {"carrier", "applied"});
  std::set<netsim::CarrierId> seen;
  for (std::size_t r = 0; r < journal.row_count(); ++r) {
    const auto carrier = static_cast<netsim::CarrierId>(
        checked_int(journal, r, "carrier", 0, std::numeric_limits<std::int32_t>::max()));
    if (!seen.insert(carrier).second) {
      throw std::invalid_argument(journal.context(r) + ": duplicate journal entry for carrier " +
                                  std::to_string(carrier));
    }
    state.journal.emplace_back(carrier, parse_u64(journal, r, "applied"));
  }

  const util::CsvTable deferred = util::CsvTable::load(path_in(dir_, kDeferredFile));
  require_headers(deferred, {"carrier"});
  for (std::size_t r = 0; r < deferred.row_count(); ++r) {
    state.deferred.push_back(static_cast<netsim::CarrierId>(
        checked_int(deferred, r, "carrier", 0, std::numeric_limits<std::int32_t>::max())));
  }

  const util::CsvTable quarantine = util::CsvTable::load(path_in(dir_, kQuarantineFile));
  require_headers(quarantine, {"carrier", "rollbacks"});
  for (std::size_t r = 0; r < quarantine.row_count(); ++r) {
    state.quarantine.emplace_back(
        static_cast<netsim::CarrierId>(
            checked_int(quarantine, r, "carrier", 0, std::numeric_limits<std::int32_t>::max())),
        static_cast<int>(checked_int(quarantine, r, "rollbacks", 0, 1 << 20)));
  }

  const util::CsvTable breaker = util::CsvTable::load(path_in(dir_, kBreakerFile));
  require_headers(breaker,
                  {"state", "consecutive_failures", "cooldown_remaining", "trips", "refusals"});
  if (breaker.row_count() != 1) {
    throw std::invalid_argument(breaker.source() + ": expected exactly 1 row, got " +
                                std::to_string(breaker.row_count()));
  }
  try {
    state.breaker.state = util::circuit_state_from_name(breaker.field(0, "state"));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(breaker.context(0) + ": " + e.what());
  }
  state.breaker.consecutive_failures =
      static_cast<int>(checked_int(breaker, 0, "consecutive_failures", 0, 1 << 20));
  state.breaker.cooldown_remaining =
      static_cast<int>(checked_int(breaker, 0, "cooldown_remaining", 0, 1 << 20));
  state.breaker.trips = static_cast<int>(checked_int(breaker, 0, "trips", 0, 1 << 30));
  state.breaker.refusals = static_cast<int>(checked_int(breaker, 0, "refusals", 0, 1 << 30));

  const util::CsvTable ems = util::CsvTable::load(path_in(dir_, kEmsFile));
  require_headers(ems, {"key", "value"});
  std::set<std::string> scalars_seen;
  for (std::size_t r = 0; r < ems.row_count(); ++r) {
    const std::string& key = ems.field(r, "key");
    if (key == "unlocked" || key == "repaired") {
      auto& list = key == "unlocked" ? state.ems.unlocked : state.ems.repaired;
      list.push_back(static_cast<netsim::CarrierId>(
          checked_int(ems, r, "value", 0, std::numeric_limits<std::int32_t>::max())));
      continue;
    }
    std::uint64_t* slot = nullptr;
    if (key == "pushes_executed") slot = &state.ems.pushes_executed;
    else if (key == "lock_cycles") slot = &state.ems.lock_cycles;
    else if (key == "fault_stream") slot = &state.ems.fault_stream;
    else if (key == "flap_stream") slot = &state.ems.flap_stream;
    else if (key == "burst_stream") slot = &state.ems.burst_stream;
    if (slot == nullptr) {
      throw std::invalid_argument(ems.context(r) + ": unknown key '" + key + "'");
    }
    if (!scalars_seen.insert(key).second) {
      throw std::invalid_argument(ems.context(r) + ": duplicate key '" + key + "'");
    }
    *slot = parse_u64(ems, r, "value");
  }

  const auto load_slots = [&](const char* file) {
    std::vector<LaunchState::SlotWrite> writes;
    const util::CsvTable csv = util::CsvTable::load(path_in(dir_, file));
    require_headers(csv, {"pairwise", "param_pos", "entity", "value"});
    for (std::size_t r = 0; r < csv.row_count(); ++r) {
      LaunchState::SlotWrite w;
      w.pairwise = checked_int(csv, r, "pairwise", 0, 1) != 0;
      w.param_pos = static_cast<std::uint32_t>(
          checked_int(csv, r, "param_pos", 0, std::numeric_limits<std::uint32_t>::max()));
      w.entity = parse_u64(csv, r, "entity");
      w.value = static_cast<std::int32_t>(
          checked_int(csv, r, "value", 0, std::numeric_limits<std::int32_t>::max()));
      writes.push_back(w);
    }
    return writes;
  };
  state.applied_slots = load_slots(kAppliedFile);
  state.relearn_applied_slots = load_slots(kRelearnFile);

  const util::CsvTable progress = util::CsvTable::load(path_in(dir_, kProgressFile));
  require_headers(progress, {"key", "value"});
  std::set<std::string> keys_seen;
  for (std::size_t r = 0; r < progress.row_count(); ++r) {
    const std::string& key = progress.field(r, "key");
    if (!keys_seen.insert(key).second) {
      throw std::invalid_argument(progress.context(r) + ": duplicate progress key '" + key +
                                  "'");
    }
    state.progress.emplace_back(key, progress.field(r, "value"));
  }

  return state;
}

void LaunchStateStore::clear() const {
  for (const char* file : {kJournalFile, kDeferredFile, kQuarantineFile, kBreakerFile,
                           kEmsFile, kAppliedFile, kRelearnFile, kProgressFile}) {
    std::filesystem::remove(path_in(dir_, file));
    std::filesystem::remove(path_in(dir_, file) + ".tmp");
  }
}

}  // namespace auric::io
