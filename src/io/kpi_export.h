// Export / import of per-carrier KPI quality scores.
//
// The paper's post-check loop consumes service-KPI feeds produced outside
// the configuration system; this round-trips them as a two-column CSV
// (carrier, quality). The loader enforces the same diagnostics contract as
// the inventory readers: malformed input fails with file + line context,
// never a silent partial import.
#pragma once

#include <string>
#include <vector>

namespace auric::io {

/// Writes one row per carrier: (carrier, quality). Qualities are stored as
/// hexfloats so save/load round-trips are bit-identical.
/// Throws std::runtime_error if the file cannot be opened.
void save_kpi_scores(const std::string& path, const std::vector<double>& qualities);

/// Loads a KPI score file. Carrier ids must be dense 0..n-1 (any order),
/// each appearing exactly once, with qualities in [0, 1]. Violations throw
/// std::invalid_argument naming the file and 1-based line.
std::vector<double> load_kpi_scores(const std::string& path);

}  // namespace auric::io
