#include "util/csv_reader.h"

#include <fstream>
#include <stdexcept>

namespace auric::util {

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        throw std::invalid_argument("CSV: quote in the middle of an unquoted field");
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // tolerate CRLF line endings
    } else {
      current += c;
    }
  }
  if (in_quotes) throw std::invalid_argument("CSV: unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

CsvTable CsvTable::parse(std::istream& in) {
  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) throw std::invalid_argument("CSV: missing header row");
  table.headers_ = parse_csv_line(line);
  for (std::size_t c = 0; c < table.headers_.size(); ++c) {
    table.column_index_[table.headers_[c]] = c;
  }
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    auto fields = parse_csv_line(line);
    if (fields.size() != table.headers_.size()) {
      throw std::invalid_argument("CSV: row arity mismatch at data row " +
                                  std::to_string(table.rows_.size() + 1));
    }
    table.rows_.push_back(std::move(fields));
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("CsvTable: cannot open " + path);
  return parse(in);
}

const std::string& CsvTable::field(std::size_t row, const std::string& column) const {
  const auto it = column_index_.find(column);
  if (it == column_index_.end()) throw std::out_of_range("CSV: unknown column " + column);
  return rows_.at(row).at(it->second);
}

long long CsvTable::field_int(std::size_t row, const std::string& column) const {
  const std::string& raw = field(row, column);
  try {
    return std::stoll(raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("CSV: column " + column + " row " + std::to_string(row) +
                                ": expected integer, got '" + raw + "'");
  }
}

double CsvTable::field_double(std::size_t row, const std::string& column) const {
  const std::string& raw = field(row, column);
  try {
    return std::stod(raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("CSV: column " + column + " row " + std::to_string(row) +
                                ": expected number, got '" + raw + "'");
  }
}

bool CsvTable::has_column(const std::string& column) const {
  return column_index_.find(column) != column_index_.end();
}

}  // namespace auric::util
