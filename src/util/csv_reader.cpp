#include "util/csv_reader.h"

#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/log.h"

namespace auric::util {

namespace {

obs::Counter& torn_tail_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "auric_csv_torn_tail_dropped_total",
      "unterminated final CSV lines dropped by tolerant parses");
  return c;
}

}  // namespace

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        throw std::invalid_argument("CSV: quote in the middle of an unquoted field");
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // tolerate CRLF line endings
    } else {
      current += c;
    }
  }
  if (in_quotes) throw std::invalid_argument("CSV: unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

CsvTable CsvTable::parse(std::istream& in, const std::string& source,
                         const CsvParseOptions& options) {
  CsvTable table;
  table.source_ = source;
  std::string line;
  std::size_t line_number = 0;
  const auto parse_record = [&](const std::string& record) {
    try {
      return parse_csv_line(record);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(source + " line " + std::to_string(line_number) + ": " +
                                  e.what());
    }
  };
  if (!std::getline(in, line)) {
    throw std::invalid_argument(source + ": missing header row");
  }
  ++line_number;
  if (in.eof() && options.tolerate_torn_tail) {
    // An unterminated header was never committed, and without a header
    // nothing else is loadable: fail loudly instead of returning an empty
    // table that would silently read as "no state".
    throw std::invalid_argument(source + ": torn header row (no trailing newline)");
  }
  table.headers_ = parse_record(line);
  for (std::size_t c = 0; c < table.headers_.size(); ++c) {
    table.column_index_[table.headers_[c]] = c;
  }
  while (std::getline(in, line)) {
    ++line_number;
    // getline sets eofbit when the stream ends before a '\n': this line is
    // the file's unterminated tail. Under tolerate_torn_tail that means it
    // was never durably committed — drop it instead of trusting it.
    if (in.eof() && options.tolerate_torn_tail) {
      torn_tail_counter().inc();
      log_warn("CSV " + source + " line " + std::to_string(line_number) +
               ": dropping torn final line (no trailing newline)");
      break;
    }
    if (line.empty() || line == "\r") continue;
    auto fields = parse_record(line);
    if (fields.size() != table.headers_.size()) {
      throw std::invalid_argument(source + " line " + std::to_string(line_number) +
                                  ": expected " + std::to_string(table.headers_.size()) +
                                  " fields, got " + std::to_string(fields.size()));
    }
    table.rows_.push_back(std::move(fields));
    table.line_numbers_.push_back(line_number);
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path, const CsvParseOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("CsvTable: cannot open " + path);
  return parse(in, path, options);
}

std::string CsvTable::context(std::size_t row) const {
  return source_ + " line " + std::to_string(line(row));
}

const std::string& CsvTable::field(std::size_t row, const std::string& column) const {
  const auto it = column_index_.find(column);
  if (it == column_index_.end()) {
    throw std::out_of_range(source_ + ": unknown column " + column);
  }
  return rows_.at(row).at(it->second);
}

long long CsvTable::field_int(std::size_t row, const std::string& column) const {
  const std::string& raw = field(row, column);
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(raw, &consumed);
    if (consumed != raw.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(context(row) + ", column " + column +
                                ": expected integer, got '" + raw + "'");
  }
}

double CsvTable::field_double(std::size_t row, const std::string& column) const {
  const std::string& raw = field(row, column);
  try {
    std::size_t consumed = 0;
    const double value = std::stod(raw, &consumed);
    if (consumed != raw.size()) throw std::invalid_argument("trailing characters");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(context(row) + ", column " + column +
                                ": expected number, got '" + raw + "'");
  }
}

bool CsvTable::has_column(const std::string& column) const {
  return column_index_.find(column) != column_index_.end();
}

}  // namespace auric::util
