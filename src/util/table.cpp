#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/strings.h"

namespace auric::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table row arity mismatch: expected " +
                                std::to_string(headers_.size()) + ", got " +
                                std::to_string(row.size()));
  }
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::string& label, const std::vector<double>& values,
                            int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_fixed(v, digits));
  add_row(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::string rule = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += '|';
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

void print_banner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace auric::util
