// Deterministic pseudo-random number generation for the whole project.
//
// Everything in this repository that involves randomness (topology
// generation, ground-truth configuration assignment, learner seeding,
// cross-validation shuffles) goes through this header so that every
// experiment is exactly reproducible from a single 64-bit seed.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via SplitMix64,
// which is the recommended seeding procedure for the xoshiro family. We do
// not use std::mt19937 because its distributions are not guaranteed to be
// bit-identical across standard-library implementations; all distribution
// logic here is self-contained.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace auric::util {

/// SplitMix64 step: used to expand a 64-bit seed into generator state and
/// to derive independent child seeds. Stateless helper.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic 64-bit hash of a sequence of integers. Used to derive
/// stable pseudo-random decisions from structured keys (e.g. "offset for
/// parameter p under attribute-value v in market m") without threading an
/// RNG through every call site.
std::uint64_t hash_combine(std::span<const std::uint64_t> parts);

/// Convenience overload for small fixed part counts.
std::uint64_t hash_combine(std::initializer_list<std::uint64_t> parts);

/// xoshiro256** pseudo-random generator.
///
/// Satisfies std::uniform_random_bit_generator, so it can also be handed to
/// standard algorithms, but prefer the member distributions below for
/// cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Geometric-ish heavy-tailed positive integer (Zipf via inverse CDF over
  /// [1, n] with exponent s). Used to produce skewed configuration value
  /// populations. Requires n >= 1.
  std::int64_t zipf(std::int64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) (k > n returns all of [0, n)).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derive an independent child generator; children with different tags are
  /// statistically independent of each other and of the parent stream.
  Rng fork(std::uint64_t tag);

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace auric::util
