#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace auric::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string format_fixed(double value, int digits) {
  return format("%.*f", digits, value);
}

std::string with_commas(long long value) {
  const bool neg = value < 0;
  std::string digits = std::to_string(neg ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return {out.rbegin(), out.rend()};
}

}  // namespace auric::util
