#include "util/drain.h"

#include <csignal>

namespace auric::util {

namespace {

volatile std::sig_atomic_t g_drain = 0;

void on_drain_signal(int signum) {
  g_drain = 1;
  // One-shot: restore the default disposition so a second signal is not
  // swallowed by a process wedged in its drain path.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_drain_signal_handlers() {
  std::signal(SIGTERM, on_drain_signal);
  std::signal(SIGINT, on_drain_signal);
}

bool drain_requested() { return g_drain != 0; }

void request_drain() { g_drain = 1; }

void reset_drain_flag() { g_drain = 0; }

}  // namespace auric::util
