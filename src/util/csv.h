// CSV writer for exporting figure series (each bench can dump its series so
// the paper's plots can be regenerated with any external plotting tool).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace auric::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& headers);

  /// Appends one data row (quoted/escaped per RFC 4180 where needed).
  void add_row(const std::vector<std::string>& row);

  /// Flushes and closes; called by the destructor if not called explicitly.
  void close();

  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Escapes one CSV field (exposed for tests).
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t arity_;

  void write_row(const std::vector<std::string>& row);
};

}  // namespace auric::util
