#include "util/obs_flags.h"

#include <stdexcept>

#include "util/log.h"
#include "util/strings.h"

namespace auric::util {

obs::LivePlaneOptions declare_live_plane_flags(Args& args) {
  obs::LivePlaneOptions options;
  const std::string serve = args.get_string(
      "serve-metrics", "",
      "serve /metrics /healthz /varz /tracez /logz on 127.0.0.1 (bare flag or 0 = ephemeral port)");
  options.sample_interval_ms =
      args.get_double("sample-interval-ms", 100.0, "live-plane sampler cadence in ms");
  options.rules_file = args.get_string("rules", "", "alert rules CSV evaluated every sample tick");
  options.series_out =
      args.get_string("series-out", "", "write the sampled time series CSV here at exit");

  if (serve.empty() || serve == "false" || serve == "no") {
    options.serve = false;
    return options;
  }
  options.serve = true;
  if (serve == "true" || serve == "yes") {  // bare --serve-metrics
    options.port = 0;
    return options;
  }
  try {
    const int port = std::stoi(serve);
    if (port < 0 || port > 65535) throw std::out_of_range(serve);
    options.port = static_cast<std::uint16_t>(port);
  } catch (const std::exception&) {
    throw std::invalid_argument("--serve-metrics expects a port (0 = ephemeral), got '" + serve +
                                "'");
  }
  return options;
}

LivePlaneScope::LivePlaneScope(const obs::LivePlaneOptions& options) : plane_(options) {
  if (!options.serve) return;
  plane_.start();
  log_info(format("live plane: http://127.0.0.1:%u/metrics (healthz, varz, tracez, logz)%s%s",
                  static_cast<unsigned>(plane_.port()),
                  options.rules_file.empty() ? "" : ", rules=",
                  options.rules_file.c_str()));
}

LivePlaneScope::~LivePlaneScope() {
  if (!plane_.active()) return;
  const std::string series = plane_.options().series_out;
  plane_.stop();
  if (!series.empty()) log_info("live plane: series written to " + series);
}

}  // namespace auric::util
