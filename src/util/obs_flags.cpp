#include "util/obs_flags.h"

#include <cstdio>
#include <stdexcept>

#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/strings.h"

namespace auric::util {

obs::LivePlaneOptions declare_live_plane_flags(Args& args) {
  obs::LivePlaneOptions options;
  const std::string serve = args.get_string(
      "serve-metrics", "",
      "serve /metrics /healthz /varz /tracez /logz on 127.0.0.1 (bare flag or 0 = ephemeral port)");
  options.sample_interval_ms =
      args.get_double("sample-interval-ms", 100.0, "live-plane sampler cadence in ms");
  options.rules_file = args.get_string("rules", "", "alert rules CSV evaluated every sample tick");
  options.series_out =
      args.get_string("series-out", "", "write the sampled time series CSV here at exit");
  options.profile_out = args.get_string(
      "profile-out", "", "profile the whole run; write flamegraph-collapsed stacks here at exit");
  options.trace_out = args.get_string(
      "trace-out", "", "write the span JSONL (tracestats input) here at exit");

  if (serve.empty() || serve == "false" || serve == "no") {
    options.serve = false;
    return options;
  }
  options.serve = true;
  if (serve == "true" || serve == "yes") {  // bare --serve-metrics
    options.port = 0;
    return options;
  }
  try {
    const int port = std::stoi(serve);
    if (port < 0 || port > 65535) throw std::out_of_range(serve);
    options.port = static_cast<std::uint16_t>(port);
  } catch (const std::exception&) {
    throw std::invalid_argument("--serve-metrics expects a port (0 = ephemeral), got '" + serve +
                                "'");
  }
  return options;
}

LivePlaneScope::LivePlaneScope(const obs::LivePlaneOptions& options)
    : plane_(options), profile_out_(options.profile_out), trace_out_(options.trace_out) {
  if (!profile_out_.empty()) {
    if (!obs::Profiler::supported()) {
      log_warn("--profile-out: profiler unavailable in this build (sanitizer?); ignoring");
      profile_out_.clear();
    } else if (obs::Profiler::global().start()) {
      profiling_ = true;
    } else {
      log_warn("--profile-out: a profile is already running; ignoring");
      profile_out_.clear();
    }
  }
  if (!options.serve) return;
  plane_.start();
  log_info(format(
      "live plane: http://127.0.0.1:%u/metrics (healthz, varz, tracez, logz, profilez)%s%s",
      static_cast<unsigned>(plane_.port()), options.rules_file.empty() ? "" : ", rules=",
      options.rules_file.c_str()));
}

LivePlaneScope::~LivePlaneScope() {
  if (profiling_) {
    const obs::ProfileReport report = obs::Profiler::global().stop();
    std::FILE* f = std::fopen(profile_out_.c_str(), "w");
    if (f == nullptr) {
      log_error("--profile-out: cannot open " + profile_out_);
    } else {
      std::fwrite(report.folded.data(), 1, report.folded.size(), f);
      std::fclose(f);
      log_info(format("profile: %llu samples (%llu dropped) written to %s",
                      static_cast<unsigned long long>(report.samples),
                      static_cast<unsigned long long>(report.dropped), profile_out_.c_str()));
    }
  }
  if (!trace_out_.empty()) {
    try {
      obs::write_trace_file(obs::TraceRecorder::global(), trace_out_);
      log_info("trace: span JSONL written to " + trace_out_);
    } catch (const std::exception& e) {
      log_error(std::string("--trace-out: ") + e.what());
    }
  }
  if (!plane_.active()) return;
  const std::string series = plane_.options().series_out;
  plane_.stop();
  if (!series.empty()) log_info("live plane: series written to " + series);
}

}  // namespace auric::util
