// Leveled stderr logging with wall-clock timestamps.
//
// Kept intentionally tiny: benches and tests want a way to note progress on
// long runs without polluting the stdout report stream.
#pragma once

#include <string>

namespace auric::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void set_log_level(LogLevel level);

LogLevel log_level();

/// Core sink; prefer the level helpers below.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace auric::util
