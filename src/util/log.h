// Leveled stderr logging with wall-clock timestamps.
//
// Kept intentionally tiny: benches and tests want a way to note progress on
// long runs without polluting the stdout report stream.
//
// Thread-safe: each message is formatted into one buffer and emitted with a
// single stderr write, so concurrent loggers never interleave mid-line. The
// minimum level defaults to kInfo and can be overridden by the
// AURIC_LOG_LEVEL environment variable ("debug"/"info"/"warn"/"error" or
// 0-3), read once at first use; set_log_level() still wins afterwards.
// Every WARN/ERROR call increments the obs counter
// auric_log_messages_total{level=...} (even when filtered out), so error
// rates are queryable from the metrics snapshot.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace auric::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive) or "0".."3";
/// nullopt on anything else. Exposed for tests of the env-var path.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Sets the minimum level that is emitted (default kInfo, or
/// AURIC_LOG_LEVEL when set and valid).
void set_log_level(LogLevel level);

LogLevel log_level();

/// Core sink; prefer the level helpers below.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace auric::util
