// Process-wide graceful-drain flag, set from SIGTERM/SIGINT.
//
// Long-running subcommands (`auric serve`, `auric replay`) want the same
// shutdown discipline: on the first SIGTERM or SIGINT, stop taking new work,
// finish what is in flight, persist/respond, and exit 0. The handler here
// only sets a sig_atomic_t flag — everything else happens on normal control
// flow where it is safe. The handlers are one-shot: after the first signal
// the default disposition is restored, so a second Ctrl-C still kills a
// process stuck in its drain path.
#pragma once

namespace auric::util {

/// Installs one-shot SIGTERM/SIGINT handlers that set the drain flag.
/// Idempotent; safe to call more than once.
void install_drain_signal_handlers();

/// True once SIGTERM/SIGINT was received (or request_drain() was called).
bool drain_requested();

/// Sets the flag from normal code — tests and in-process shutdown paths
/// (e.g. a /quit endpoint) share the signal path's semantics.
void request_drain();

/// Clears the flag so a test or a subsequent run starts fresh.
void reset_drain_flag();

}  // namespace auric::util
