// Console table rendering for the benchmark reports.
//
// All bench binaries print the paper's tables/figure series through this
// class so the output layout is uniform and greppable.
#pragma once

#include <string>
#include <vector>

namespace auric::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> row);

  /// Convenience: numeric cells (formatted to `digits` decimals).
  void add_row_numeric(const std::string& label, const std::vector<double>& values, int digits);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with aligned columns, `|` separators and a header rule.
  std::string render() const;

  /// render() + write to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== Table 4: ... ==") so bench output is easy to
/// navigate in bench_output.txt.
void print_banner(const std::string& title);

}  // namespace auric::util
