// Monotonic wall-clock timer for coarse phase timing in benches.
#pragma once

#include <chrono>

namespace auric::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace auric::util
