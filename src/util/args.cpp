#include "util/args.h"

#include <stdexcept>

#include "util/strings.h"

namespace auric::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!starts_with(arg, "--")) {
      throw std::invalid_argument("unexpected positional argument: " + std::string(arg));
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";  // bare boolean flag
    }
  }
}

std::optional<std::string> Args::lookup(const std::string& name,
                                        const std::string& default_value,
                                        const std::string& help) {
  declared_.push_back({name, default_value, help});
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

std::string Args::get_string(const std::string& name, const std::string& default_value,
                             const std::string& help) {
  return lookup(name, default_value, help).value_or(default_value);
}

std::int64_t Args::get_int(const std::string& name, std::int64_t default_value,
                           const std::string& help) {
  const auto raw = lookup(name, std::to_string(default_value), help);
  if (!raw) return default_value;
  try {
    return std::stoll(*raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" + *raw + "'");
  }
}

double Args::get_double(const std::string& name, double default_value, const std::string& help) {
  const auto raw = lookup(name, format_fixed(default_value, 6), help);
  if (!raw) return default_value;
  try {
    return std::stod(*raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" + *raw + "'");
  }
}

bool Args::get_bool(const std::string& name, bool default_value, const std::string& help) {
  const auto raw = lookup(name, default_value ? "true" : "false", help);
  if (!raw) return default_value;
  const std::string lowered = to_lower(*raw);
  if (lowered == "true" || lowered == "1" || lowered == "yes") return true;
  if (lowered == "false" || lowered == "0" || lowered == "no") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + *raw + "'");
}

std::string Args::usage() const {
  std::string out = "usage: " + program_ + " [flags]\n";
  for (const auto& d : declared_) {
    out += format("  --%-28s %s (default: %s)\n", d.name.c_str(), d.help.c_str(),
                  d.default_value.c_str());
  }
  return out;
}

void Args::check_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (consumed_.find(name) == consumed_.end()) {
      throw std::invalid_argument("unknown flag --" + name);
    }
  }
}

}  // namespace auric::util
