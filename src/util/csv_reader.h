// RFC-4180-style CSV parsing, the inverse of CsvWriter.
//
// Used by the io module to load network inventories and configuration
// snapshots produced by export (or by an operator's own tooling). Every
// table remembers its source name and the 1-based file line of each data
// row, so import errors can say "carriers.csv line 17" instead of "row 15".
#pragma once

#include <istream>
#include <map>
#include <string>
#include <vector>

namespace auric::util {

/// Splits one CSV record into fields, honoring double-quote quoting and
/// doubled-quote escapes. Throws std::invalid_argument on malformed quoting.
std::vector<std::string> parse_csv_line(const std::string& line);

struct CsvParseOptions {
  /// Treat an unterminated final DATA line (no trailing newline — the shape
  /// a crash mid-append or a torn sector leaves behind) as an uncommitted
  /// tail: drop it with a warning and a metrics counter
  /// (auric_csv_torn_tail_dropped_total) instead of parsing it. Matches the
  /// launch-state journal's seal rule: a record without its terminator was
  /// never committed. The header row is exempt (without it nothing is
  /// loadable, so a torn header still fails loudly).
  bool tolerate_torn_tail = false;
};

/// A fully parsed CSV file with a header row.
class CsvTable {
 public:
  /// Parses from a stream. Requires a header row; data rows must match its
  /// arity. Empty trailing lines are ignored. `source` names the stream in
  /// error messages (load() passes the file path).
  static CsvTable parse(std::istream& in, const std::string& source = "<csv>",
                        const CsvParseOptions& options = {});

  /// Convenience: opens and parses `path`; throws std::runtime_error if the
  /// file cannot be read.
  static CsvTable load(const std::string& path, const CsvParseOptions& options = {});

  const std::vector<std::string>& headers() const { return headers_; }
  std::size_t row_count() const { return rows_.size(); }

  /// The name errors refer to (file path, or whatever parse() was given).
  const std::string& source() const { return source_; }

  /// 1-based line in the source file holding data row `row` (header and
  /// skipped blank lines included in the count).
  std::size_t line(std::size_t row) const { return line_numbers_.at(row); }

  /// "`source` line N" — the prefix every import diagnostic should carry.
  std::string context(std::size_t row) const;

  /// Field of row `row` in the column named `column`; throws
  /// std::out_of_range for unknown columns.
  const std::string& field(std::size_t row, const std::string& column) const;

  /// Typed accessors; parse failures throw std::invalid_argument naming the
  /// source, line and column.
  long long field_int(std::size_t row, const std::string& column) const;
  double field_double(std::size_t row, const std::string& column) const;

  /// True when the table has a column of this name.
  bool has_column(const std::string& column) const;

 private:
  std::string source_;
  std::vector<std::string> headers_;
  std::map<std::string, std::size_t> column_index_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> line_numbers_;
};

}  // namespace auric::util
