// RFC-4180-style CSV parsing, the inverse of CsvWriter.
//
// Used by the io module to load network inventories and configuration
// snapshots produced by export (or by an operator's own tooling).
#pragma once

#include <istream>
#include <map>
#include <string>
#include <vector>

namespace auric::util {

/// Splits one CSV record into fields, honoring double-quote quoting and
/// doubled-quote escapes. Throws std::invalid_argument on malformed quoting.
std::vector<std::string> parse_csv_line(const std::string& line);

/// A fully parsed CSV file with a header row.
class CsvTable {
 public:
  /// Parses from a stream. Requires a header row; data rows must match its
  /// arity. Empty trailing lines are ignored.
  static CsvTable parse(std::istream& in);

  /// Convenience: opens and parses `path`; throws std::runtime_error if the
  /// file cannot be read.
  static CsvTable load(const std::string& path);

  const std::vector<std::string>& headers() const { return headers_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Field of row `row` in the column named `column`; throws
  /// std::out_of_range for unknown columns.
  const std::string& field(std::size_t row, const std::string& column) const;

  /// Typed accessors with error context in exceptions.
  long long field_int(std::size_t row, const std::string& column) const;
  double field_double(std::size_t row, const std::string& column) const;

  /// True when the table has a column of this name.
  bool has_column(const std::string& column) const;

 private:
  std::vector<std::string> headers_;
  std::map<std::string, std::size_t> column_index_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace auric::util
