// parallel_for over an index range.
//
// The evaluation harness is embarrassingly parallel across configuration
// parameters; this helper chunks [0, n) over a bounded set of worker
// threads. On a single-core host (our CI box) it degrades to a plain serial
// loop with zero thread overhead, so results are deterministic either way —
// callers must still ensure per-index work is independent.
#pragma once

#include <cstddef>
#include <functional>

namespace auric::util {

/// Number of workers parallel_for will use (>= 1).
std::size_t worker_count();

/// Overrides the worker count (0 restores the hardware default). Exposed so
/// tests can force both the serial and the threaded path.
void set_worker_count(std::size_t workers);

/// Invokes fn(i) for every i in [0, n). fn must be thread-safe with respect
/// to distinct indices. Exceptions thrown by fn are rethrown on the calling
/// thread (the first one encountered, by lowest worker id).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace auric::util
