// Worker-pool parallelism: parallel_for over an index range, and a
// persistent TaskPool for heterogeneous task batches.
//
// The evaluation harness is embarrassingly parallel across configuration
// parameters, and the sharded launch stream (smartlaunch::OperationReplay
// with ReplayOptions::shards > 1) is parallel across EMS shards. Both run on
// the shared TaskPool below: a bounded set of persistent worker threads that
// execute submitted task batches with exception propagation back to the
// caller. On a single-core host (our CI box) everything degrades to a plain
// serial loop with zero thread overhead, so results are deterministic either
// way — callers must still ensure per-task work is independent.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace_context.h"

namespace auric::util {

/// Number of workers parallel_for / TaskPool::shared() will use (>= 1).
std::size_t worker_count();

/// Overrides the worker count (0 restores the hardware default). Exposed so
/// tests can force both the serial and the threaded path.
void set_worker_count(std::size_t workers);

/// A pool of persistent worker threads executing batches of tasks.
///
/// run() executes every task of a batch (the calling thread helps, so a
/// pool is never slower than the serial loop), collects per-task exceptions,
/// and rethrows the first one by task index after the whole batch finished —
/// a failed task never silently cancels its siblings, which matters when
/// tasks own disjoint shards of mutable state (the sharded replay).
///
/// Nested-call guard: run() invoked from inside a pool task executes the
/// nested batch inline on the current thread instead of re-entering the
/// queue, so nested parallelism can neither deadlock the pool nor
/// oversubscribe the host.
///
/// Trace propagation: run() and try_submit() capture the submitting
/// thread's obs::TraceContext and every task executes under it, so spans
/// opened inside a pool task join the submitter's trace and parent under
/// the submitter's span — one request (or one replay day) stitches into a
/// single trace tree across the fan-out. The pool also feeds two
/// utilization instruments (auric_pool_tasks_busy,
/// auric_pool_submit_wait_ms) that make queueing delay and real
/// parallelism measurable.
class TaskPool {
 public:
  /// Spawns `workers` persistent threads (0 = no threads; run() executes
  /// batches inline on the calling thread).
  explicit TaskPool(std::size_t workers);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Worker threads currently alive.
  std::size_t size() const;

  /// Grows the pool to at least `workers` threads (never shrinks).
  void reserve(std::size_t workers);

  /// Executes every task in `tasks` (order of completion unspecified; the
  /// calling thread participates). Returns once all tasks finished, then
  /// rethrows the first exception by task index, if any. Safe to call from
  /// inside a task (runs inline, see the nested-call guard above).
  void run(std::vector<std::function<void()>> tasks);

  /// Enqueues one detached task (fire-and-forget; the serve plane's
  /// dispatch primitive). Returns false — shedding to the caller — when the
  /// pending queue is at its limit or the pool is stopping; the task is NOT
  /// queued in that case. On a pool with no threads the task runs inline on
  /// the calling thread (the 1-core degradation path). Detached tasks must
  /// handle their own errors: exceptions escaping one are swallowed so a
  /// throwing request cannot poison the worker.
  bool try_submit(std::function<void()> task);

  /// Bound for the detached-task queue (default 1024). 0 rejects everything.
  void set_pending_limit(std::size_t limit);
  /// Detached tasks queued but not yet started.
  std::size_t pending_count() const;
  /// Blocks until no detached task is queued or running. Batches submitted
  /// via run() are not considered.
  void wait_idle();

  /// True on a pool worker thread, or while the calling thread executes a
  /// task batch (the guard parallel_for uses to serialize nested calls).
  static bool on_worker_thread();

  /// The process-wide pool parallel_for and the sharded replay share. Lazily
  /// created with worker_count() threads on first use and grown on demand;
  /// never created on a host where worker_count() == 1.
  static TaskPool& shared();

 private:
  struct Batch {
    std::vector<std::function<void()>>* tasks = nullptr;
    std::size_t next = 0;              ///< next task index to claim (under mu_)
    std::size_t done = 0;              ///< tasks finished (under mu_)
    std::vector<std::exception_ptr> errors;
    std::condition_variable done_cv;
    obs::TraceContext ctx;             ///< submitter's trace context
    std::chrono::steady_clock::time_point submitted;
  };

  /// One detached task with its submitter's context and submit time (for
  /// the submit-to-start wait histogram).
  struct Pending {
    std::function<void()> task;
    obs::TraceContext ctx;
    std::chrono::steady_clock::time_point submitted;
  };

  void worker_loop();
  /// Claims and runs tasks of `batch` until none remain (the calling
  /// thread's help loop; only the batch owner may use it).
  void work_on(Batch& batch);
  /// Runs task `index` of `batch` with the in-task flag set, capturing any
  /// exception into batch.errors.
  static void execute(Batch& batch, std::size_t index);
  /// Drops `batch` from open_batches_ (caller holds mu_).
  void remove_open(Batch& batch);
  static void run_inline(std::vector<std::function<void()>>& tasks,
                         std::vector<std::exception_ptr>& errors);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::vector<std::thread> threads_;
  std::deque<Batch*> open_batches_;  ///< batches with unclaimed tasks
  std::deque<Pending> pending_;      ///< detached tasks (try_submit)
  std::size_t pending_limit_ = 1024;
  std::size_t detached_running_ = 0;  ///< detached tasks currently executing
  bool stop_ = false;
};

/// Invokes fn(i) for every i in [0, n). fn must be thread-safe with respect
/// to distinct indices. Exceptions thrown by fn are rethrown on the calling
/// thread (the first one encountered, by lowest worker id); once a worker
/// throws, remaining unclaimed indices are skipped so siblings finish
/// promptly. Runs serially when worker_count() is 1, n is 1, or the caller
/// is already inside a TaskPool task (nested-call guard).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace auric::util
