// Minimal command-line flag parser for the bench harnesses and examples.
//
// Accepts flags of the form `--name=value` and `--name value`, plus bare
// `--name` for booleans. Unknown flags are an error so typos in experiment
// sweeps fail loudly instead of silently running the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace auric::util {

class Args {
 public:
  /// Parses argv. Throws std::invalid_argument on malformed input.
  Args(int argc, const char* const* argv);

  /// Declares a flag with a default; returns the parsed or default value.
  /// Declaring is also how flags become "known" for the final validation.
  std::string get_string(const std::string& name, const std::string& default_value,
                         const std::string& help = "");
  std::int64_t get_int(const std::string& name, std::int64_t default_value,
                       const std::string& help = "");
  double get_double(const std::string& name, double default_value,
                    const std::string& help = "");
  bool get_bool(const std::string& name, bool default_value, const std::string& help = "");

  /// True when --help was passed; callers should print usage() and exit 0.
  bool help_requested() const { return help_requested_; }

  /// Usage text assembled from every get_* declaration made so far.
  std::string usage() const;

  /// Throws std::invalid_argument if any provided flag was never declared.
  /// Call after all get_* declarations.
  void check_unknown() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  bool help_requested_ = false;

  struct Declared {
    std::string name;
    std::string default_value;
    std::string help;
  };
  std::vector<Declared> declared_;

  std::optional<std::string> lookup(const std::string& name, const std::string& default_value,
                                    const std::string& help);
};

}  // namespace auric::util
