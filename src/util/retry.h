// Fault-tolerance primitives: bounded retry with deterministic backoff, and
// a consecutive-failure circuit breaker.
//
// The SmartLaunch push path (§5 of the paper) loses launches to transient
// EMS faults; production RAN automation retries those with exponential
// backoff and stops hammering a sick EMS via a circuit breaker. Everything
// here is deterministic — jitter comes from util::splitmix64 seeded by the
// caller, never from wall-clock or a global RNG — so replayed experiments
// are bit-identical across runs.
#pragma once

#include <cstdint>
#include <string_view>

namespace auric::util {

/// Bounded-retry policy with exponential backoff and deterministic jitter.
struct RetryPolicy {
  /// Total attempts, including the first (1 disables retrying).
  int max_attempts = 4;
  /// Backoff before the first retry.
  double base_backoff_ms = 250.0;
  /// Exponential growth factor per retry.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling (pre-jitter).
  double max_backoff_ms = 4000.0;
  /// Jitter amplitude as a fraction of the backoff: the actual wait is
  /// backoff * (1 - jitter_frac + 2 * jitter_frac * u) for a deterministic
  /// u in [0, 1). Zero disables jitter.
  double jitter_frac = 0.25;
  /// Budget for one attempt; 0 means "no per-attempt deadline". Callers
  /// that simulate time (the EMS simulator) compare elapsed_ms against it.
  double attempt_deadline_ms = 0.0;
};

/// Backoff to wait before retry number `retry` (1-based: the wait after the
/// first failed attempt is retry == 1). Jitter is derived from
/// (seed, retry) via SplitMix64, so a fixed seed reproduces the exact wait
/// schedule.
double backoff_ms(const RetryPolicy& policy, int retry, std::uint64_t seed);

/// Sum of backoff_ms over retries 1..n (the total simulated wait a caller
/// incurs after n failed attempts).
double total_backoff_ms(const RetryPolicy& policy, int retries, std::uint64_t seed);

/// Consecutive-failure circuit breaker with a half-open probe.
///
/// States:
///   closed     operations proceed; `failure_threshold` consecutive
///              failures trip the breaker open.
///   open       operations are refused; after `cooldown_ops` refused
///              operations the breaker half-opens.
///   half-open  exactly one probe operation proceeds; success closes the
///              breaker (and the caller should drain whatever it queued),
///              failure re-opens it for another cooldown.
///
/// "Time" is operation count, not wall-clock, which keeps simulated
/// experiments deterministic and makes the breaker usable from both the
/// discrete-event replay and the plain pipeline.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

  struct Options {
    int failure_threshold = 3;  ///< consecutive failures that trip the breaker
    int cooldown_ops = 5;       ///< refused ops before half-opening
    /// EMS shard this breaker protects; stamped as a `shard` label on the
    /// breaker metric series so per-shard breakers stay distinguishable
    /// while unlabeled alert selectors aggregate across all of them.
    int shard = 0;
  };

  /// Full dynamic state, exportable for crash-safe persistence (the
  /// io::LaunchStateStore) and re-importable into a fresh breaker so a
  /// resumed run continues the exact open/half-open/cooldown sequence.
  struct Snapshot {
    State state = State::kClosed;
    int consecutive_failures = 0;
    int cooldown_remaining = 0;
    int trips = 0;
    int refusals = 0;
  };

  /// Shard-labeled instrument set (defined in retry.cpp; public only so the
  /// per-shard interning helper can construct it).
  struct Metrics;

  CircuitBreaker();  // default Options
  explicit CircuitBreaker(Options options);

  State state() const { return state_; }

  Snapshot snapshot() const;
  /// Restores a snapshot taken from a breaker with the same Options. Throws
  /// std::invalid_argument on out-of-range counters (corrupt persisted
  /// state must not be half-loaded).
  void restore(const Snapshot& snapshot);

  /// True when the caller may run the protected operation now. While open,
  /// each refusal advances the cooldown clock; the call that exhausts the
  /// cooldown transitions to half-open and is allowed as the probe.
  bool allow();

  /// Reports the outcome of an allowed operation.
  void record_success();
  void record_failure();

  int consecutive_failures() const { return consecutive_failures_; }
  /// Times the breaker tripped closed -> open (or half-open -> open).
  int trips() const { return trips_; }
  /// Operations refused while open.
  int refusals() const { return refusals_; }

 private:
  Options options_;
  Metrics* metrics_;  ///< shard-labeled instruments, resolved at construction
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int cooldown_remaining_ = 0;
  int trips_ = 0;
  int refusals_ = 0;

  void trip();
};

const char* circuit_state_name(CircuitBreaker::State state);

/// Inverse of circuit_state_name; throws std::invalid_argument on an
/// unknown name (used when loading persisted breaker state).
CircuitBreaker::State circuit_state_from_name(std::string_view name);

}  // namespace auric::util
