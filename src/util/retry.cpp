#include "util/retry.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/rng.h"

namespace auric::util {

/// Per-shard breaker instruments: transition counts by destination state,
/// refusals, and a state gauge reflecting the most recent transition of any
/// breaker on that shard. Every series carries a `shard` label; unlabeled
/// alert selectors aggregate across shards by subset match.
struct CircuitBreaker::Metrics {
  obs::Counter& to_open;
  obs::Counter& to_half_open;
  obs::Counter& to_closed;
  obs::Counter& refusals;
  obs::Gauge& state;
};

namespace {

/// Interns one Metrics per shard so breaker construction resolves its
/// instruments once and the hot path only does relaxed increments.
CircuitBreaker::Metrics& breaker_metrics(int shard) {
  static std::mutex mu;
  static std::unordered_map<int, std::unique_ptr<CircuitBreaker::Metrics>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[shard];
  if (slot == nullptr) {
    auto& reg = obs::MetricsRegistry::global();
    const std::string k = std::to_string(shard);
    const auto transition = [&](const char* to) -> obs::Counter& {
      return reg.counter("auric_breaker_transitions_total", "circuit-breaker state transitions",
                         {{"shard", k}, {"to", to}});
    };
    slot = std::make_unique<CircuitBreaker::Metrics>(CircuitBreaker::Metrics{
        transition("open"),
        transition("half_open"),
        transition("closed"),
        reg.counter("auric_breaker_refusals_total",
                    "operations refused while a breaker was open", {{"shard", k}}),
        reg.gauge("auric_breaker_state",
                  "last-transitioned breaker state (0 closed, 1 open, 2 half-open)",
                  {{"shard", k}})});
  }
  return *slot;
}

}  // namespace

double backoff_ms(const RetryPolicy& policy, int retry, std::uint64_t seed) {
  if (retry < 1) return 0.0;
  const double raw = policy.base_backoff_ms *
                     std::pow(policy.backoff_multiplier, static_cast<double>(retry - 1));
  const double capped = std::min(raw, policy.max_backoff_ms);
  if (policy.jitter_frac <= 0.0) return capped;
  const double u =
      static_cast<double>(hash_combine({seed, 0xBACC0FFULL, static_cast<std::uint64_t>(retry)}) >>
                          11) *
      0x1.0p-53;
  return capped * (1.0 - policy.jitter_frac + 2.0 * policy.jitter_frac * u);
}

double total_backoff_ms(const RetryPolicy& policy, int retries, std::uint64_t seed) {
  double total = 0.0;
  for (int r = 1; r <= retries; ++r) total += backoff_ms(policy, r, seed);
  return total;
}

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options{}) {}

CircuitBreaker::CircuitBreaker(Options options)
    : options_(options), metrics_(&breaker_metrics(options.shard)) {
  options_.failure_threshold = std::max(1, options_.failure_threshold);
  options_.cooldown_ops = std::max(1, options_.cooldown_ops);
}

void CircuitBreaker::trip() {
  state_ = State::kOpen;
  cooldown_remaining_ = options_.cooldown_ops;
  consecutive_failures_ = 0;
  ++trips_;
  metrics_->to_open.inc();
  metrics_->state.set(static_cast<double>(State::kOpen));
}

bool CircuitBreaker::allow() {
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      ++refusals_;
      metrics_->refusals.inc();
      if (--cooldown_remaining_ <= 0) {
        // Cooled down: the *next* operation is the half-open probe.
        state_ = State::kHalfOpen;
        metrics_->to_half_open.inc();
        metrics_->state.set(static_cast<double>(State::kHalfOpen));
      }
      return false;
  }
  return false;
}

void CircuitBreaker::record_success() {
  if (state_ != State::kClosed) {
    metrics_->to_closed.inc();
    metrics_->state.set(static_cast<double>(State::kClosed));
  }
  state_ = State::kClosed;
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_failure() {
  if (state_ == State::kHalfOpen) {
    // The probe failed: straight back to open.
    trip();
    return;
  }
  if (++consecutive_failures_ >= options_.failure_threshold) trip();
}

CircuitBreaker::Snapshot CircuitBreaker::snapshot() const {
  return {state_, consecutive_failures_, cooldown_remaining_, trips_, refusals_};
}

void CircuitBreaker::restore(const Snapshot& snapshot) {
  if (snapshot.consecutive_failures < 0 ||
      snapshot.consecutive_failures >= options_.failure_threshold ||
      snapshot.cooldown_remaining < 0 ||
      snapshot.cooldown_remaining > options_.cooldown_ops || snapshot.trips < 0 ||
      snapshot.refusals < 0) {
    throw std::invalid_argument(
        "CircuitBreaker::restore: counters out of range for this breaker's options");
  }
  state_ = snapshot.state;
  consecutive_failures_ = snapshot.consecutive_failures;
  cooldown_remaining_ = snapshot.cooldown_remaining;
  trips_ = snapshot.trips;
  refusals_ = snapshot.refusals;
}

const char* circuit_state_name(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::State circuit_state_from_name(std::string_view name) {
  for (const auto state :
       {CircuitBreaker::State::kClosed, CircuitBreaker::State::kOpen,
        CircuitBreaker::State::kHalfOpen}) {
    if (name == circuit_state_name(state)) return state;
  }
  throw std::invalid_argument("unknown circuit-breaker state '" + std::string(name) + "'");
}

}  // namespace auric::util
