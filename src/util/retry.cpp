#include "util/retry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "util/rng.h"

namespace auric::util {

namespace {

/// Process-wide breaker metrics, shared by every CircuitBreaker instance:
/// transition counts by destination state, refusals, and a state gauge
/// reflecting the most recent transition of any breaker (single-breaker
/// deployments read it directly; multi-breaker setups use the counters).
struct BreakerMetrics {
  obs::Counter& to_open;
  obs::Counter& to_half_open;
  obs::Counter& to_closed;
  obs::Counter& refusals;
  obs::Gauge& state;
};

BreakerMetrics& breaker_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static BreakerMetrics m{
      reg.counter("auric_breaker_transitions_total", "circuit-breaker state transitions",
                  {{"to", "open"}}),
      reg.counter("auric_breaker_transitions_total", "circuit-breaker state transitions",
                  {{"to", "half_open"}}),
      reg.counter("auric_breaker_transitions_total", "circuit-breaker state transitions",
                  {{"to", "closed"}}),
      reg.counter("auric_breaker_refusals_total", "operations refused while a breaker was open"),
      reg.gauge("auric_breaker_state", "last-transitioned breaker state "
                                       "(0 closed, 1 open, 2 half-open)")};
  return m;
}

}  // namespace

double backoff_ms(const RetryPolicy& policy, int retry, std::uint64_t seed) {
  if (retry < 1) return 0.0;
  const double raw = policy.base_backoff_ms *
                     std::pow(policy.backoff_multiplier, static_cast<double>(retry - 1));
  const double capped = std::min(raw, policy.max_backoff_ms);
  if (policy.jitter_frac <= 0.0) return capped;
  const double u =
      static_cast<double>(hash_combine({seed, 0xBACC0FFULL, static_cast<std::uint64_t>(retry)}) >>
                          11) *
      0x1.0p-53;
  return capped * (1.0 - policy.jitter_frac + 2.0 * policy.jitter_frac * u);
}

double total_backoff_ms(const RetryPolicy& policy, int retries, std::uint64_t seed) {
  double total = 0.0;
  for (int r = 1; r <= retries; ++r) total += backoff_ms(policy, r, seed);
  return total;
}

CircuitBreaker::CircuitBreaker() : CircuitBreaker(Options{}) {}

CircuitBreaker::CircuitBreaker(Options options) : options_(options) {
  options_.failure_threshold = std::max(1, options_.failure_threshold);
  options_.cooldown_ops = std::max(1, options_.cooldown_ops);
}

void CircuitBreaker::trip() {
  state_ = State::kOpen;
  cooldown_remaining_ = options_.cooldown_ops;
  consecutive_failures_ = 0;
  ++trips_;
  BreakerMetrics& m = breaker_metrics();
  m.to_open.inc();
  m.state.set(static_cast<double>(State::kOpen));
}

bool CircuitBreaker::allow() {
  switch (state_) {
    case State::kClosed:
    case State::kHalfOpen:
      return true;
    case State::kOpen:
      ++refusals_;
      breaker_metrics().refusals.inc();
      if (--cooldown_remaining_ <= 0) {
        // Cooled down: the *next* operation is the half-open probe.
        state_ = State::kHalfOpen;
        BreakerMetrics& m = breaker_metrics();
        m.to_half_open.inc();
        m.state.set(static_cast<double>(State::kHalfOpen));
      }
      return false;
  }
  return false;
}

void CircuitBreaker::record_success() {
  if (state_ != State::kClosed) {
    BreakerMetrics& m = breaker_metrics();
    m.to_closed.inc();
    m.state.set(static_cast<double>(State::kClosed));
  }
  state_ = State::kClosed;
  consecutive_failures_ = 0;
}

void CircuitBreaker::record_failure() {
  if (state_ == State::kHalfOpen) {
    // The probe failed: straight back to open.
    trip();
    return;
  }
  if (++consecutive_failures_ >= options_.failure_threshold) trip();
}

CircuitBreaker::Snapshot CircuitBreaker::snapshot() const {
  return {state_, consecutive_failures_, cooldown_remaining_, trips_, refusals_};
}

void CircuitBreaker::restore(const Snapshot& snapshot) {
  if (snapshot.consecutive_failures < 0 ||
      snapshot.consecutive_failures >= options_.failure_threshold ||
      snapshot.cooldown_remaining < 0 ||
      snapshot.cooldown_remaining > options_.cooldown_ops || snapshot.trips < 0 ||
      snapshot.refusals < 0) {
    throw std::invalid_argument(
        "CircuitBreaker::restore: counters out of range for this breaker's options");
  }
  state_ = snapshot.state;
  consecutive_failures_ = snapshot.consecutive_failures;
  cooldown_remaining_ = snapshot.cooldown_remaining;
  trips_ = snapshot.trips;
  refusals_ = snapshot.refusals;
}

const char* circuit_state_name(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::State circuit_state_from_name(std::string_view name) {
  for (const auto state :
       {CircuitBreaker::State::kClosed, CircuitBreaker::State::kOpen,
        CircuitBreaker::State::kHalfOpen}) {
    if (name == circuit_state_name(state)) return state;
  }
  throw std::invalid_argument("unknown circuit-breaker state '" + std::string(name) + "'");
}

}  // namespace auric::util
