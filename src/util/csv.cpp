#include "util/csv.h"

#include <stdexcept>

namespace auric::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& headers)
    : out_(path), arity_(headers.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(headers);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  if (row.size() != arity_) {
    throw std::invalid_argument("CsvWriter: row arity mismatch");
  }
  write_row(row);
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(row[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace auric::util
