// Shared command-line wiring for the live observability plane.
//
// Every entry point that can run for minutes (the auric CLI subcommands,
// both smartlaunch benches, the replay driver) takes the same four flags:
//
//   --serve-metrics[=PORT]   start the embedded HTTP endpoint (/metrics,
//                            /healthz, /varz, /tracez, /logz); bare flag or
//                            PORT 0 picks an ephemeral port, logged at start
//   --sample-interval-ms N   sampler cadence (default 100)
//   --rules FILE             alert rules CSV for the RuleEngine
//   --series-out FILE        dump the sampled time series as CSV at exit
//   --profile-out FILE       profile the whole run (SIGPROF sampler); write
//                            flamegraph-collapsed stacks at exit
//   --trace-out FILE         dump the span ring as JSONL at exit (the
//                            `auric tracestats` input)
//
// declare_live_plane_flags() registers them on a util::Args (so
// check_unknown() accepts them) and returns the parsed LivePlaneOptions;
// LivePlaneScope is the RAII wrapper that starts the plane and logs the
// bound port. Lives in util, not obs, because obs sits below util and must
// not know about Args or the logger.
#pragma once

#include "obs/live.h"
#include "util/args.h"

namespace auric::util {

/// Declares --serve-metrics / --sample-interval-ms / --rules / --series-out
/// on `args` and returns the resulting options. --serve-metrics accepts a
/// bare flag ("true"), yes/no, or a port number; anything else throws
/// std::invalid_argument.
obs::LivePlaneOptions declare_live_plane_flags(Args& args);

/// Starts a LivePlane over the global registry when options.serve is set
/// (logging the bound port) and stops it — dumping --series-out — on
/// destruction. Inactive construction is free, so call sites hold one
/// unconditionally.
class LivePlaneScope {
 public:
  explicit LivePlaneScope(const obs::LivePlaneOptions& options);
  ~LivePlaneScope();
  LivePlaneScope(const LivePlaneScope&) = delete;
  LivePlaneScope& operator=(const LivePlaneScope&) = delete;

  bool active() const { return plane_.active(); }
  obs::LivePlane& plane() { return plane_; }

 private:
  obs::LivePlane plane_;
  std::string profile_out_;
  std::string trace_out_;
  bool profiling_ = false;
};

}  // namespace auric::util
