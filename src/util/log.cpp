#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace auric::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(now).count();
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(now).count() % 1000;
  std::fprintf(stderr, "[%lld.%03lld] %-5s %s\n", static_cast<long long>(secs),
               static_cast<long long>(millis), level_name(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace auric::util
