#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/log_buffer.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace auric::util {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

LogLevel initial_level() {
  if (const char* env = std::getenv("AURIC_LOG_LEVEL")) {
    if (const std::optional<LogLevel> parsed = parse_log_level(env)) return *parsed;
    // A bad value must not silently change verbosity; note it and fall back.
    std::fprintf(stderr, "AURIC_LOG_LEVEL='%s' not recognized; using info\n", env);
  }
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_state() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

/// Emitted-message counters by level; registered once, bumped lock-free.
obs::Counter& message_counter(LogLevel level) {
  static obs::Counter* counters[4] = {
      &obs::MetricsRegistry::global().counter("auric_log_messages_total",
                                              "log calls by level", {{"level", "debug"}}),
      &obs::MetricsRegistry::global().counter("auric_log_messages_total",
                                              "log calls by level", {{"level", "info"}}),
      &obs::MetricsRegistry::global().counter("auric_log_messages_total",
                                              "log calls by level", {{"level", "warn"}}),
      &obs::MetricsRegistry::global().counter("auric_log_messages_total",
                                              "log calls by level", {{"level", "error"}})};
  return *counters[static_cast<int>(level)];
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") return LogLevel::kWarn;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return std::nullopt;
}

void set_log_level(LogLevel level) { level_state().store(level, std::memory_order_relaxed); }

LogLevel log_level() { return level_state().load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& message) {
  // WARN/ERROR rates are operational signals; count them even when the
  // verbosity filter swallows the text.
  if (level == LogLevel::kWarn || level == LogLevel::kError) message_counter(level).inc();
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto secs = std::chrono::duration_cast<std::chrono::seconds>(now).count();
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(now).count() % 1000;
  // One formatted buffer, one stderr write: concurrent log lines never
  // interleave mid-line (stdio locks each fwrite/fprintf call).
  char head[64];
  std::snprintf(head, sizeof(head), "[%lld.%03lld] %-5s ", static_cast<long long>(secs),
                static_cast<long long>(millis), level_name(level));
  std::string line;
  line.reserve(sizeof(head) + message.size() + 48);
  line += head;
  line += message;
  // A line emitted under an active trace names it, so grepping stderr (or
  // /logz) for a kept trace's id finds the request's log lines.
  const obs::TraceContext ctx = obs::current_trace_context();
  if (ctx.trace_id.valid()) {
    line += " trace=";
    line += obs::trace_id_hex(ctx.trace_id);
  }
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  // Mirror every emitted line into the obs ring so GET /logz can show the
  // recent tail of a live run.
  line.pop_back();
  obs::LogBuffer::global().append(std::move(line));
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace auric::util
