#include "util/parallel.h"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace auric::util {

namespace {
std::atomic<std::size_t> g_workers{0};  // 0 = use hardware default
}

std::size_t worker_count() {
  const std::size_t forced = g_workers.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void set_worker_count(std::size_t workers) {
  g_workers.store(workers, std::memory_order_relaxed);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const std::size_t workers = worker_count();
  if (n == 0) return;
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  const std::size_t thread_count = workers < n ? workers : n;
  std::vector<std::exception_ptr> errors(thread_count);
  std::vector<std::thread> pool;
  pool.reserve(thread_count);
  for (std::size_t t = 0; t < thread_count; ++t) {
    pool.emplace_back([&, t] {
      try {
        // Dynamic work stealing over single indices: per-parameter work is
        // highly uneven (domain sizes differ by 100x), so static chunking
        // would idle workers.
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          fn(i);
        }
      } catch (...) {
        errors[t] = std::current_exception();
        // Drain remaining indices so siblings finish promptly.
        next.store(n);
      }
    });
  }
  for (auto& th : pool) th.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace auric::util
