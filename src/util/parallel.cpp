#include "util/parallel.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace auric::util {

namespace {
std::atomic<std::size_t> g_workers{0};  // 0 = use hardware default

// True while the current thread executes a TaskPool task (worker threads and
// calling threads that help drain their own batch). Drives the nested-call
// guard: parallelism requested from inside a task degrades to serial.
thread_local bool t_in_pool_task = false;

using PoolClock = std::chrono::steady_clock;

// Pool utilization instruments, resolved once (references stay valid for the
// registry's lifetime). The busy gauge and the submit-to-start wait
// histogram are what prove — or disprove — multicore speedup: a pool whose
// busy gauge never exceeds 1 or whose wait histogram dwarfs task runtime is
// not buying parallelism.
struct PoolInstruments {
  obs::Gauge& busy;
  obs::Histogram& wait_ms;
};

PoolInstruments& pool_instruments() {
  static PoolInstruments* instruments = new PoolInstruments{
      obs::MetricsRegistry::global().gauge("auric_pool_tasks_busy",
                                           "TaskPool tasks executing right now"),
      obs::MetricsRegistry::global().histogram(
          "auric_pool_submit_wait_ms", obs::default_latency_bounds_ms(),
          "submit-to-start wait of TaskPool tasks")};
  return *instruments;
}

/// RAII busy-gauge increment around one task execution.
struct BusyScope {
  BusyScope() { pool_instruments().busy.add(1.0); }
  ~BusyScope() { pool_instruments().busy.add(-1.0); }
};

double elapsed_ms(PoolClock::time_point since) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(PoolClock::now() -
                                                                               since)
      .count();
}
}  // namespace

std::size_t worker_count() {
  const std::size_t forced = g_workers.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void set_worker_count(std::size_t workers) {
  g_workers.store(workers, std::memory_order_relaxed);
}

TaskPool::TaskPool(std::size_t workers) { reserve(workers); }

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

std::size_t TaskPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

void TaskPool::reserve(std::size_t workers) {
  std::lock_guard<std::mutex> lock(mu_);
  while (threads_.size() < workers) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

bool TaskPool::on_worker_thread() { return t_in_pool_task; }

bool TaskPool::try_submit(std::function<void()> task) {
  const PoolClock::time_point submitted = PoolClock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || pending_.size() >= pending_limit_) {
      return false;
    }
    if (!threads_.empty()) {
      pending_.push_back(Pending{std::move(task), obs::current_trace_context(), submitted});
      work_cv_.notify_one();
      return true;
    }
  }
  // No workers: degrade to inline execution with the same swallow-on-throw
  // contract as the threaded path. The submitter's trace context is already
  // active on this thread.
  pool_instruments().wait_ms.observe(elapsed_ms(submitted));
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  try {
    BusyScope busy;
    task();
  } catch (...) {
    // Detached tasks own their errors; see the header.
  }
  t_in_pool_task = was_in_task;
  return true;
}

void TaskPool::set_pending_limit(std::size_t limit) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_limit_ = limit;
}

std::size_t TaskPool::pending_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void TaskPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return pending_.empty() && detached_running_ == 0; });
}

TaskPool& TaskPool::shared() {
  static TaskPool pool(worker_count() > 1 ? worker_count() : 0);
  return pool;
}

void TaskPool::run_inline(std::vector<std::function<void()>>& tasks,
                          std::vector<std::exception_ptr>& errors) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    try {
      tasks[i]();
    } catch (...) {
      errors[i] = std::current_exception();
    }
  }
}

void TaskPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::vector<std::exception_ptr> errors(tasks.size());

  bool inline_only;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inline_only = threads_.empty();
  }
  if (inline_only || t_in_pool_task || tasks.size() == 1) {
    // No workers, nested call, or nothing to fan out: the calling thread does
    // all the work. Exception semantics are identical to the threaded path.
    const bool was_in_task = t_in_pool_task;
    t_in_pool_task = true;
    run_inline(tasks, errors);
    t_in_pool_task = was_in_task;
  } else {
    Batch batch;
    batch.tasks = &tasks;
    batch.errors.resize(tasks.size());
    batch.ctx = obs::current_trace_context();
    batch.submitted = PoolClock::now();
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_batches_.push_back(&batch);
    }
    work_cv_.notify_all();
    // The calling thread helps drain its own batch, then waits for stragglers
    // claimed by workers. Workers never hold a pointer to a batch without a
    // claimed task (claims happen under mu_, and the batch leaves
    // open_batches_ with its last claim), so waiting for done == n is enough
    // to make destroying the batch safe.
    work_on(batch);
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch.done_cv.wait(lock, [&] { return batch.done == tasks.size(); });
    }
    errors = std::move(batch.errors);
  }

  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

void TaskPool::remove_open(Batch& batch) {
  for (auto it = open_batches_.begin(); it != open_batches_.end(); ++it) {
    if (*it == &batch) {
      open_batches_.erase(it);
      return;
    }
  }
}

void TaskPool::execute(Batch& batch, std::size_t index) {
  pool_instruments().wait_ms.observe(elapsed_ms(batch.submitted));
  const bool was_in_task = t_in_pool_task;
  t_in_pool_task = true;
  try {
    // Re-establish the submitter's trace context: a span opened by this
    // task parents under the submitting thread's span. Restored on exit —
    // also on the submitter's own help loop, where installing its own
    // context is a harmless no-op.
    obs::TraceContextScope trace_scope(batch.ctx);
    BusyScope busy;
    (*batch.tasks)[index]();
  } catch (...) {
    batch.errors[index] = std::current_exception();
  }
  t_in_pool_task = was_in_task;
}

void TaskPool::work_on(Batch& batch) {
  const std::size_t n = batch.tasks->size();
  for (;;) {
    std::size_t i;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (batch.next >= n) return;
      i = batch.next++;
      if (batch.next >= n) remove_open(batch);
    }
    execute(batch, i);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++batch.done;
      if (batch.done == n) batch.done_cv.notify_all();
    }
  }
}

void TaskPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return stop_ || !open_batches_.empty() || !pending_.empty(); });
    if (!open_batches_.empty()) {
      // Claim a task from the oldest open batch in the same critical section
      // that yields the batch pointer — a batch in open_batches_ always has
      // unclaimed work, and claiming keeps it alive until our done increment.
      Batch& batch = *open_batches_.front();
      const std::size_t n = batch.tasks->size();
      const std::size_t i = batch.next++;
      if (batch.next >= n) remove_open(batch);
      lock.unlock();
      execute(batch, i);
      lock.lock();
      ++batch.done;
      if (batch.done == n) batch.done_cv.notify_all();
      // After notifying, `batch` may be destroyed by its owner; don't touch
      // it.
      continue;
    }
    if (!pending_.empty()) {
      Pending pending = std::move(pending_.front());
      pending_.pop_front();
      ++detached_running_;
      lock.unlock();
      pool_instruments().wait_ms.observe(elapsed_ms(pending.submitted));
      const bool was_in_task = t_in_pool_task;
      t_in_pool_task = true;
      try {
        obs::TraceContextScope trace_scope(pending.ctx);
        BusyScope busy;
        pending.task();
      } catch (...) {
        // Detached tasks own their errors; see the header.
      }
      t_in_pool_task = was_in_task;
      lock.lock();
      --detached_running_;
      if (pending_.empty() && detached_running_ == 0) idle_cv_.notify_all();
      continue;
    }
    // stop_ set and no work left: detached tasks admitted before stop have
    // drained, so waiters cannot be stranded.
    return;
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const std::size_t workers = worker_count();
  if (n == 0) return;
  if (workers <= 1 || n == 1 || TaskPool::on_worker_thread()) {
    // Serial fallback; the on_worker_thread() case is the nested-call guard —
    // fanning out again from inside a pool task would oversubscribe the host.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  const std::size_t runner_count = workers < n ? workers : n;
  std::vector<std::exception_ptr> errors(runner_count);
  std::vector<std::function<void()>> runners;
  runners.reserve(runner_count);
  for (std::size_t t = 0; t < runner_count; ++t) {
    runners.emplace_back([&, t] {
      try {
        // Dynamic work stealing over single indices: per-parameter work is
        // highly uneven (domain sizes differ by 100x), so static chunking
        // would idle workers.
        for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          fn(i);
        }
      } catch (...) {
        errors[t] = std::current_exception();
        // Drain remaining indices so siblings finish promptly.
        next.store(n);
      }
    });
  }
  TaskPool& pool = TaskPool::shared();
  pool.reserve(runner_count > 1 ? runner_count - 1 : 0);
  pool.run(std::move(runners));
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace auric::util
