#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <numeric>
#include <stdexcept>

namespace auric::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_combine(std::span<const std::uint64_t> parts) {
  // FNV-style fold of SplitMix64-whitened parts: cheap, stable, and well
  // mixed for the structured small-integer keys we feed it.
  std::uint64_t h = 0x51'7c'c1'b7'27'22'0a'95ULL;
  for (std::uint64_t p : parts) {
    std::uint64_t s = p;
    h ^= splitmix64(s);
    h *= 0x2545f4914f6cdd1dULL;
    h ^= h >> 29;
  }
  return h;
}

std::uint64_t hash_combine(std::initializer_list<std::uint64_t> parts) {
  return hash_combine(std::span<const std::uint64_t>(parts.begin(), parts.size()));
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit span
  // Debiased modulo (Lemire-style rejection on the low part).
  const std::uint64_t limit = (~0ULL) - (~0ULL) % range;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  // Box-Muller; draws two uniforms per sample and discards the spare so the
  // stream consumption per call is constant (resume/fork friendly).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (!(total > 0.0)) throw std::invalid_argument("weighted_index: no positive weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: land on the last bucket
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  if (n < 1) throw std::invalid_argument("zipf: n must be >= 1");
  // Inverse-CDF on the harmonic weights. n is small in our use (value-domain
  // sizes), so the O(n) normalization is fine and exact.
  double norm = 0.0;
  for (std::int64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(static_cast<double>(k), s);
  double target = uniform() * norm;
  for (std::int64_t k = 1; k <= n; ++k) {
    target -= 1.0 / std::pow(static_cast<double>(k), s);
    if (target < 0.0) return k;
  }
  return n;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  if (k >= n) return all;
  // Partial Fisher-Yates: first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the parent's next output with the tag so that forks with distinct
  // tags are independent even when taken from the same parent state.
  const std::uint64_t base = (*this)();
  return Rng(hash_combine({base, tag}));
}

}  // namespace auric::util
