// Small string helpers shared across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace auric::util {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Join items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view text);

/// printf-style formatting into std::string (type-checked by the compiler).
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-point formatting with `digits` decimals (e.g. format_fixed(95.478, 2)
/// -> "95.48"). Used by the report tables so outputs match the paper layout.
std::string format_fixed(double value, int digits);

/// Human-readable integer with thousands separators ("4528139" -> "4,528,139").
std::string with_commas(long long value);

}  // namespace auric::util
