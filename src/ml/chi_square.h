// Chi-square test of independence between two categorical variables.
//
// This is the statistical core of Auric's dependency learning (§3.2, eq. 3-4
// of the paper): for each (carrier attribute, configuration parameter) pair,
// build the contingency table of observed counts, compute
//   chi2 = sum_ab (O_ab - E_ab)^2 / E_ab,  df = (R-1)(C-1),
// and reject independence when the p-value falls below the significance
// level (the paper uses p = 0.01).
//
// The p-value is the survival function of the chi-square distribution,
// computed exactly via the regularized incomplete gamma function
// (Q(df/2, x/2)) rather than a truncated critical-value lookup table.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace auric::ml {

/// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
/// Series expansion for x < a+1, continued fraction otherwise (the standard
/// gammp/gammq construction); absolute accuracy ~1e-12.
double regularized_gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: P(X > x) = Q(df/2, x/2). df must be >= 1.
double chi_square_sf(double x, int df);

struct ContingencyTable {
  /// counts[r][c] = observations with row-variable code r, column code c.
  std::vector<std::vector<std::int64_t>> counts;
  std::int64_t total = 0;

  /// Tallies the paired samples. x[i] in [0, card_x), y[i] in [0, card_y).
  static ContingencyTable build(std::span<const std::int32_t> x,
                                std::span<const std::int32_t> y, std::size_t card_x,
                                std::size_t card_y);

  /// An empty card_x-by-card_y table (all counts zero).
  static ContingencyTable zeros(std::size_t card_x, std::size_t card_y);

  /// Applies a signed count delta at (x, y); `total` tracks the table sum.
  /// This is the incremental re-test primitive: a maintained table fed one
  /// observation at a time holds exactly the integer counts build() would
  /// produce from the full population, so chi_square_test over it is
  /// bit-identical to a from-scratch scan. Throws std::out_of_range outside
  /// the table and std::logic_error when a count would go negative.
  void apply(std::int32_t x, std::int32_t y, std::int64_t delta);
};

struct ChiSquareResult {
  double statistic = 0.0;
  int df = 0;
  double p_value = 1.0;

  /// True when independence is rejected at significance `alpha`.
  bool dependent(double alpha) const { return df > 0 && p_value < alpha; }
};

/// Chi-square test over a prebuilt table. Rows/columns with zero marginal
/// count are dropped before computing the statistic (they carry no
/// information and would make expected counts zero); if fewer than 2 rows or
/// 2 columns remain, the result has df = 0 and p = 1 (no evidence).
ChiSquareResult chi_square_test(const ContingencyTable& table);

/// Convenience: build the table from paired code vectors and test.
ChiSquareResult chi_square_independence(std::span<const std::int32_t> x,
                                        std::span<const std::int32_t> y, std::size_t card_x,
                                        std::size_t card_y);

}  // namespace auric::ml
