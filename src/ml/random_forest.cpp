#include "ml/random_forest.h"

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace auric::ml {

RandomForest::RandomForest(RandomForestOptions options) : options_(options) {
  if (options_.num_trees < 1) throw std::invalid_argument("RandomForest: num_trees must be >= 1");
}

void RandomForest::fit(const CategoricalDataset& data,
                       std::span<const std::size_t> row_indices) {
  if (row_indices.empty()) throw std::invalid_argument("RandomForest::fit: no training rows");
  num_classes_ = data.num_classes();
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(options_.num_trees));

  // sqrt of the one-hot width, matching scikit-learn's max_features="sqrt"
  // over one-hot encoded inputs (the paper trains on the one-hot matrix).
  std::size_t one_hot_width = 0;
  for (std::size_t card : data.cardinality) one_hot_width += card;
  const int max_features = std::max(
      1, static_cast<int>(std::lround(std::sqrt(static_cast<double>(one_hot_width)))));
  util::Rng rng(options_.seed);
  std::vector<std::size_t> bootstrap(row_indices.size());
  for (int t = 0; t < options_.num_trees; ++t) {
    for (auto& slot : bootstrap) {
      slot = row_indices[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(row_indices.size()) - 1))];
    }
    DecisionTreeOptions tree_options;
    tree_options.max_depth = options_.max_depth;
    tree_options.max_features = max_features;
    tree_options.seed = rng();
    DecisionTree tree(tree_options);
    tree.fit(data, bootstrap);
    trees_.push_back(std::move(tree));
  }
}

ClassLabel RandomForest::predict(std::span<const std::int32_t> codes) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::predict before fit");
  std::vector<std::int32_t> votes(num_classes_, 0);
  for (const DecisionTree& tree : trees_) {
    ++votes[static_cast<std::size_t>(tree.predict(codes))];
  }
  std::size_t best = 0;
  for (std::size_t k = 1; k < votes.size(); ++k) {
    if (votes[k] > votes[best]) best = k;
  }
  return static_cast<ClassLabel>(best);
}

}  // namespace auric::ml
