// Cross-validation index plumbing (§4.2: "standard machine learning
// cross-validation approach to compute the accuracy scores").
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace auric::ml {

/// Shuffled k-fold assignment: returns fold id in [0, k) per row.
/// Fold sizes differ by at most one.
std::vector<int> kfold_assignment(std::size_t rows, int k, util::Rng& rng);

/// Splits [0, rows) into (train, test) index lists for fold `fold` of a
/// k-fold assignment.
struct FoldSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};
FoldSplit fold_split(const std::vector<int>& assignment, int fold);

/// Caps `indices` to at most `cap` entries by deterministic subsampling
/// (no-op when cap <= 0 or indices.size() <= cap). Used by the bench
/// harnesses to bound model-learner training cost; every cap is reported.
void cap_indices(std::vector<std::size_t>& indices, std::int64_t cap, util::Rng& rng);

}  // namespace auric::ml
