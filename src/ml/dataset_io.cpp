#include "ml/dataset_io.h"

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/csv_reader.h"

namespace auric::ml {

namespace {

constexpr const char* kLabelColumn = "label";

long long checked_int(const util::CsvTable& csv, std::size_t row, const std::string& column,
                      long long lo, long long hi) {
  const long long value = csv.field_int(row, column);
  if (value < lo || value > hi) {
    throw std::invalid_argument(csv.context(row) + ", column " + column + ": value " +
                                std::to_string(value) + " outside [" + std::to_string(lo) +
                                ", " + std::to_string(hi) + "]");
  }
  return value;
}

}  // namespace

void save_dataset(const std::string& stem, const CategoricalDataset& data) {
  data.check();
  for (const std::string& name : data.column_names) {
    if (name == kLabelColumn) {
      throw std::invalid_argument("save_dataset: attribute column named '" +
                                  std::string(kLabelColumn) + "' collides with the label column");
    }
  }

  {
    util::CsvWriter meta(stem + "_meta.csv", {"kind", "index", "name", "value"});
    for (std::size_t a = 0; a < data.num_attributes(); ++a) {
      meta.add_row({"column", std::to_string(a), data.column_names[a],
                    std::to_string(data.cardinality[a])});
    }
    for (std::size_t c = 0; c < data.num_classes(); ++c) {
      meta.add_row({"class", std::to_string(c), "", std::to_string(data.class_values[c])});
    }
  }

  std::vector<std::string> headers = data.column_names;
  headers.push_back(kLabelColumn);
  util::CsvWriter csv(stem + ".csv", headers);
  std::vector<std::string> row(headers.size());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t a = 0; a < data.num_attributes(); ++a) {
      row[a] = std::to_string(data.columns[a][r]);
    }
    row.back() = std::to_string(data.labels[r]);
    csv.add_row(row);
  }
}

CategoricalDataset load_dataset(const std::string& stem) {
  CategoricalDataset data;

  const util::CsvTable meta = util::CsvTable::load(stem + "_meta.csv");
  for (const char* column : {"kind", "index", "name", "value"}) {
    if (!meta.has_column(column)) {
      throw std::invalid_argument(meta.source() + ": missing required column '" +
                                  std::string(column) + "'");
    }
  }
  // First pass sizes the schema so indices can be bounds-checked on the
  // second, order-independent pass.
  std::size_t columns = 0;
  std::size_t classes = 0;
  for (std::size_t r = 0; r < meta.row_count(); ++r) {
    const std::string& kind = meta.field(r, "kind");
    if (kind == "column") ++columns;
    else if (kind == "class") ++classes;
    else throw std::invalid_argument(meta.context(r) + ": unknown kind '" + kind + "'");
  }
  data.column_names.assign(columns, "");
  data.cardinality.assign(columns, 0);
  data.class_values.assign(classes, -1);
  for (std::size_t r = 0; r < meta.row_count(); ++r) {
    const bool is_column = meta.field(r, "kind") == "column";
    const std::size_t count = is_column ? columns : classes;
    const auto index = static_cast<std::size_t>(
        checked_int(meta, r, "index", 0, static_cast<long long>(count) - 1));
    if (is_column) {
      if (data.cardinality[index] != 0) {
        throw std::invalid_argument(meta.context(r) + ": duplicate column index " +
                                    std::to_string(index));
      }
      data.column_names[index] = meta.field(r, "name");
      data.cardinality[index] = static_cast<std::size_t>(
          checked_int(meta, r, "value", 1, std::numeric_limits<std::int32_t>::max()));
    } else {
      if (data.class_values[index] != -1) {
        throw std::invalid_argument(meta.context(r) + ": duplicate class index " +
                                    std::to_string(index));
      }
      data.class_values[index] = static_cast<config::ValueIndex>(
          checked_int(meta, r, "value", 0, std::numeric_limits<std::int32_t>::max()));
    }
  }

  const util::CsvTable csv = util::CsvTable::load(stem + ".csv");
  for (const std::string& name : data.column_names) {
    if (!csv.has_column(name)) {
      throw std::invalid_argument(csv.source() + ": missing attribute column '" + name +
                                  "' declared in " + meta.source());
    }
  }
  if (!csv.has_column(kLabelColumn)) {
    throw std::invalid_argument(csv.source() + ": missing required column '" +
                                std::string(kLabelColumn) + "'");
  }
  data.columns.assign(columns, {});
  for (std::size_t r = 0; r < csv.row_count(); ++r) {
    for (std::size_t a = 0; a < columns; ++a) {
      data.columns[a].push_back(static_cast<std::int32_t>(
          checked_int(csv, r, data.column_names[a], 0,
                      static_cast<long long>(data.cardinality[a]) - 1)));
    }
    data.labels.push_back(static_cast<ClassLabel>(
        checked_int(csv, r, kLabelColumn, 0, static_cast<long long>(classes) - 1)));
  }

  data.check();
  return data;
}

}  // namespace auric::ml
