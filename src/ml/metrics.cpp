#include "ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace auric::ml {

double accuracy(std::span<const std::int32_t> predicted, std::span<const std::int32_t> actual) {
  if (predicted.size() != actual.size()) throw std::invalid_argument("accuracy: size mismatch");
  if (predicted.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == actual[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

double skewness(std::span<const double> values) {
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(n);
  double m2 = 0.0;
  double m3 = 0.0;
  for (double v : values) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

SkewnessBand skewness_band(double skew) {
  const double a = std::fabs(skew);
  if (a > 1.0) return SkewnessBand::kHighlySkewed;
  if (a > 0.5) return SkewnessBand::kModeratelySkewed;
  return SkewnessBand::kSymmetric;
}

const char* skewness_band_name(SkewnessBand band) {
  switch (band) {
    case SkewnessBand::kSymmetric: return "symmetric";
    case SkewnessBand::kModeratelySkewed: return "moderate";
    case SkewnessBand::kHighlySkewed: return "high";
  }
  return "?";
}

std::size_t distinct_value_count(std::span<const config::ValueIndex> values) {
  std::vector<config::ValueIndex> configured;
  configured.reserve(values.size());
  for (config::ValueIndex v : values) {
    if (v != config::kUnset) configured.push_back(v);
  }
  std::sort(configured.begin(), configured.end());
  configured.erase(std::unique(configured.begin(), configured.end()), configured.end());
  return configured.size();
}

void MeanAccumulator::add(double value, double weight) {
  sum_ += value * weight;
  weight_ += weight;
}

double MeanAccumulator::mean() const { return weight_ > 0.0 ? sum_ / weight_ : 0.0; }

}  // namespace auric::ml
