// Multi-layer perceptron classifier ("deep neural network" learner).
//
// §4.2(4) of the paper: 7 hidden layers sized 100,100,100,50,50,50,10, ReLU
// activations, the Adam stochastic optimizer, L2 penalty 1e-5, fixed random
// state, and an iteration cap. Input is the one-hot expansion of the
// categorical attributes; output is a softmax over the parameter's observed
// value classes trained with cross-entropy.
//
// Training mirrors scikit-learn's MLPClassifier defaults where the paper is
// silent: minibatches of min(200, n), per-epoch shuffling, and early
// stopping when the training loss fails to improve by `tol` for
// `patience` consecutive epochs.
#pragma once

#include <cstdint>

#include "linalg/matrix.h"
#include "ml/classifier.h"
#include "ml/dataset.h"

namespace auric::ml {

struct MlpOptions {
  std::vector<std::size_t> hidden_sizes{100, 100, 100, 50, 50, 50, 10};
  double learning_rate = 1e-3;
  double l2_penalty = 1e-5;  // the paper's "regularization L2 penalty of 1e-5"
  double beta1 = 0.9;
  double beta2 = 0.999;
  double adam_epsilon = 1e-8;
  int max_epochs = 200;  // the paper caps iterations at 10000; benches lower it
  int batch_size = 200;
  double tol = 1e-4;
  int patience = 10;
  std::uint64_t seed = 1;  // "random state of 1"
};

class MultilayerPerceptron final : public Classifier {
 public:
  explicit MultilayerPerceptron(MlpOptions options = {});

  void fit(const CategoricalDataset& data, std::span<const std::size_t> row_indices) override;
  ClassLabel predict(std::span<const std::int32_t> codes) const override;

  /// Mean cross-entropy training loss of the final epoch (diagnostics).
  double final_loss() const { return final_loss_; }
  int epochs_run() const { return epochs_run_; }

 private:
  struct Layer {
    linalg::Matrix weights;  // (out x in)
    std::vector<double> bias;
    // Adam moment estimates, same shapes as the parameters.
    linalg::Matrix m_w, v_w;
    std::vector<double> m_b, v_b;
  };

  MlpOptions options_;
  std::vector<Layer> layers_;
  OneHotEncoder encoder_{CategoricalDataset{}};
  std::size_t num_classes_ = 0;
  double final_loss_ = 0.0;
  int epochs_run_ = 0;
  std::int64_t adam_step_ = 0;

  /// Forward pass over a batch; fills per-layer activations (post-ReLU; the
  /// last entry holds softmax probabilities).
  void forward(const linalg::Matrix& input, std::vector<linalg::Matrix>& activations) const;

  /// One Adam update from a batch; returns the batch's summed CE loss.
  double train_batch(const linalg::Matrix& input, std::span<const ClassLabel> labels);

  void adam_update(Layer& layer, const linalg::Matrix& grad_w, std::span<const double> grad_b);
};

}  // namespace auric::ml
