// k-nearest-neighbors classifier.
//
// §4.2(3) of the paper: "k = 5, equal weighting across neighbors and
// distance metric of Euclidean" over the one-hot encoding. For one-hot
// categorical data, squared Euclidean distance equals twice the Hamming
// distance on attribute codes (each mismatching attribute contributes
// 1^2 + 1^2), so we compute Hamming directly without materializing the
// expansion — bit-identical neighbor ordering at a fraction of the cost.
//
// The paper's critique of k-NN — irrelevant attributes dilute the distance
// and mislabel otherwise-similar carriers (§3.2) — applies unchanged.
#pragma once

#include "ml/classifier.h"

namespace auric::ml {

struct KnnOptions {
  int k = 5;
};

class KNearestNeighbors final : public Classifier {
 public:
  explicit KNearestNeighbors(KnnOptions options = {});

  void fit(const CategoricalDataset& data, std::span<const std::size_t> row_indices) override;
  ClassLabel predict(std::span<const std::int32_t> codes) const override;

 private:
  KnnOptions options_;
  // Training rows stored row-major: codes_[row * num_attrs + attr].
  std::vector<std::int32_t> codes_;
  std::vector<ClassLabel> labels_;
  std::size_t num_attrs_ = 0;
  std::size_t num_classes_ = 0;
};

}  // namespace auric::ml
