#include "ml/decision_tree.h"

#include <algorithm>
#include <stdexcept>

namespace auric::ml {

namespace {

/// Gini impurity of a class-count vector with `total` samples.
double gini(std::span<const std::int64_t> counts, std::int64_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (std::int64_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

ClassLabel majority(std::span<const std::int64_t> counts) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return static_cast<ClassLabel>(best);
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeOptions options) : options_(options) {}

void DecisionTree::fit(const CategoricalDataset& data,
                       std::span<const std::size_t> row_indices) {
  if (row_indices.empty()) throw std::invalid_argument("DecisionTree::fit: no training rows");
  nodes_.clear();
  column_names_ = data.column_names;
  cardinality_ = data.cardinality;
  num_classes_ = data.num_classes();
  std::vector<std::size_t> rows(row_indices.begin(), row_indices.end());
  util::Rng rng(options_.seed);
  build(data, rows, 0, rng);
}

std::int32_t DecisionTree::build(const CategoricalDataset& data, std::vector<std::size_t>& rows,
                                 int depth, util::Rng& rng) {
  // Class distribution at this node.
  std::vector<std::int64_t> counts(num_classes_, 0);
  for (std::size_t r : rows) ++counts[static_cast<std::size_t>(data.labels[r])];
  const auto total = static_cast<std::int64_t>(rows.size());

  const auto make_leaf = [&]() {
    Node leaf;
    leaf.label = majority(counts);
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const double node_gini = gini(counts, total);
  const bool depth_capped = options_.max_depth >= 0 && depth >= options_.max_depth;
  if (node_gini == 0.0 || total < options_.min_samples_split || depth_capped) {
    return make_leaf();
  }

  // Candidate splits are "attribute == value" predicates — exactly the
  // binary features a one-hot encoding exposes.
  //
  // Per-node class counts are computed lazily per attribute: count_attr(a)
  // tallies, for each value of attribute a, the class histogram of the rows
  // at this node.
  std::vector<std::vector<std::int64_t>> value_class(cardinality_.size());
  std::vector<std::vector<std::int64_t>> value_total(cardinality_.size());
  const auto count_attr = [&](std::size_t a) {
    if (!value_total[a].empty()) return;
    value_class[a].assign(cardinality_[a] * num_classes_, 0);
    value_total[a].assign(cardinality_[a], 0);
    const auto& col = data.columns[a];
    for (std::size_t r : rows) {
      const auto v = static_cast<std::size_t>(col[r]);
      ++value_class[a][v * num_classes_ + static_cast<std::size_t>(data.labels[r])];
      ++value_total[a][v];
    }
  };

  double best_score = node_gini - 1e-12;  // require strict impurity decrease
  std::int32_t best_attr = -1;
  std::int32_t best_value = -1;
  std::vector<std::int64_t> right(num_classes_);
  // Returns true when the pair was non-constant at this node (a real
  // candidate split that consumes feature budget).
  const auto evaluate = [&](std::size_t a, std::size_t v) {
    count_attr(a);
    const std::int64_t n_left = value_total[a][v];
    if (n_left == 0 || n_left == total) return false;  // constant at this node
    const std::span<const std::int64_t> left(&value_class[a][v * num_classes_], num_classes_);
    for (std::size_t k = 0; k < num_classes_; ++k) right[k] = counts[k] - left[k];
    const std::int64_t n_right = total - n_left;
    const double score = (static_cast<double>(n_left) * gini(left, n_left) +
                          static_cast<double>(n_right) * gini(right, n_right)) /
                         static_cast<double>(total);
    if (score < best_score) {
      best_score = score;
      best_attr = static_cast<std::int32_t>(a);
      best_value = static_cast<std::int32_t>(v);
    }
    return true;
  };

  std::size_t one_hot_width = 0;
  std::vector<std::size_t> pair_offsets(cardinality_.size());
  for (std::size_t a = 0; a < cardinality_.size(); ++a) {
    pair_offsets[a] = one_hot_width;
    one_hot_width += cardinality_[a];
  }
  if (options_.max_features >= 0 &&
      static_cast<std::size_t>(options_.max_features) < one_hot_width) {
    // Random-forest mode: draw (attribute, value) pairs without replacement
    // until max_features NON-CONSTANT candidates have been examined (or the
    // pairs run out). Node-constant features do not consume the budget —
    // matching scikit-learn, where constant features are skipped and drawing
    // continues.
    std::vector<std::size_t> permutation = rng.sample_indices(one_hot_width, one_hot_width);
    int examined = 0;
    for (std::size_t pair : permutation) {
      const auto a = static_cast<std::size_t>(
          std::upper_bound(pair_offsets.begin(), pair_offsets.end(), pair) -
          pair_offsets.begin() - 1);
      if (evaluate(a, pair - pair_offsets[a])) {
        if (++examined >= options_.max_features) break;
      }
    }
  } else {
    for (std::size_t a = 0; a < cardinality_.size(); ++a) {
      for (std::size_t v = 0; v < cardinality_[a]; ++v) evaluate(a, v);
    }
  }

  if (best_attr < 0) return make_leaf();

  // Partition and recurse. Children are built after the parent is placed so
  // indices stay stable.
  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  const auto& col = data.columns[static_cast<std::size_t>(best_attr)];
  for (std::size_t r : rows) {
    (col[r] == best_value ? left_rows : right_rows).push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();  // recursion can be deep; free before descending

  Node node;
  node.attr = best_attr;
  node.value = best_value;
  nodes_.push_back(node);
  const auto index = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left_child = build(data, left_rows, depth + 1, rng);
  const std::int32_t right_child = build(data, right_rows, depth + 1, rng);
  nodes_[static_cast<std::size_t>(index)].left = left_child;
  nodes_[static_cast<std::size_t>(index)].right = right_child;
  return index;
}

ClassLabel DecisionTree::predict(std::span<const std::int32_t> codes) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::predict before fit");
  std::size_t i = 0;
  while (nodes_[i].attr >= 0) {
    const Node& n = nodes_[i];
    i = static_cast<std::size_t>(codes[static_cast<std::size_t>(n.attr)] == n.value ? n.left
                                                                                    : n.right);
  }
  return nodes_[i].label;
}

std::string DecisionTree::explain(std::span<const std::int32_t> codes) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::explain before fit");
  std::string out;
  std::size_t i = 0;
  while (nodes_[i].attr >= 0) {
    const Node& n = nodes_[i];
    const bool match = codes[static_cast<std::size_t>(n.attr)] == n.value;
    out += column_names_[static_cast<std::size_t>(n.attr)];
    out += match ? " == " : " != ";
    out += "value#" + std::to_string(n.value);
    out += " -> ";
    i = static_cast<std::size_t>(match ? n.left : n.right);
  }
  out += "predict class#" + std::to_string(nodes_[i].label);
  return out;
}

int DecisionTree::depth() const {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, int>> stack{{0, 1}};
  int depth = 0;
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    const Node& n = nodes_[i];
    if (n.attr >= 0) {
      stack.emplace_back(static_cast<std::size_t>(n.left), d + 1);
      stack.emplace_back(static_cast<std::size_t>(n.right), d + 1);
    }
  }
  return depth;
}

}  // namespace auric::ml
