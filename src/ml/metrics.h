// Evaluation metrics: accuracy, skewness (the paper's §2.6 formula) and
// distinct-value counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "config/catalog.h"

namespace auric::ml {

/// Fraction of positions where `predicted == actual`. Spans must be equal
/// length; returns 0 for empty input.
double accuracy(std::span<const std::int32_t> predicted, std::span<const std::int32_t> actual);

/// Sample skewness per §2.6 of the paper:
///   ( (1/n) sum (x - mean)^3 ) / ( (1/n) sum (x - mean)^2 )^{3/2}.
/// Returns 0 when the variance is zero or n < 2.
double skewness(std::span<const double> values);

/// Interpretation bands from §2.6 ("if skewness is between -0.5 and 0.5 the
/// distribution is approximately symmetric", etc.).
enum class SkewnessBand { kSymmetric, kModeratelySkewed, kHighlySkewed };
SkewnessBand skewness_band(double skew);
const char* skewness_band_name(SkewnessBand band);

/// Number of distinct configured values, ignoring config::kUnset slots.
std::size_t distinct_value_count(std::span<const config::ValueIndex> values);

/// Streaming mean/online accumulator used by the report code.
class MeanAccumulator {
 public:
  void add(double value, double weight = 1.0);
  double mean() const;
  double total_weight() const { return weight_; }

 private:
  double sum_ = 0.0;
  double weight_ = 0.0;
};

}  // namespace auric::ml
