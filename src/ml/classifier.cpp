#include "ml/classifier.h"

namespace auric::ml {

std::vector<ClassLabel> Classifier::predict_rows(
    const CategoricalDataset& data, std::span<const std::size_t> row_indices) const {
  std::vector<ClassLabel> out;
  out.reserve(row_indices.size());
  std::vector<std::int32_t> codes(data.num_attributes());
  for (std::size_t row : row_indices) {
    for (std::size_t a = 0; a < data.num_attributes(); ++a) codes[a] = data.columns[a][row];
    out.push_back(predict(codes));
  }
  return out;
}

}  // namespace auric::ml
