#include "ml/knn.h"

#include <algorithm>
#include <stdexcept>

namespace auric::ml {

KNearestNeighbors::KNearestNeighbors(KnnOptions options) : options_(options) {
  if (options_.k < 1) throw std::invalid_argument("KNearestNeighbors: k must be >= 1");
}

void KNearestNeighbors::fit(const CategoricalDataset& data,
                            std::span<const std::size_t> row_indices) {
  if (row_indices.empty()) {
    throw std::invalid_argument("KNearestNeighbors::fit: no training rows");
  }
  num_attrs_ = data.num_attributes();
  num_classes_ = data.num_classes();
  codes_.resize(row_indices.size() * num_attrs_);
  labels_.resize(row_indices.size());
  for (std::size_t i = 0; i < row_indices.size(); ++i) {
    const std::size_t row = row_indices[i];
    for (std::size_t a = 0; a < num_attrs_; ++a) {
      codes_[i * num_attrs_ + a] = data.columns[a][row];
    }
    labels_[i] = data.labels[row];
  }
}

ClassLabel KNearestNeighbors::predict(std::span<const std::int32_t> codes) const {
  if (labels_.empty()) throw std::logic_error("KNearestNeighbors::predict before fit");
  const std::size_t n = labels_.size();
  const auto k = std::min<std::size_t>(static_cast<std::size_t>(options_.k), n);

  // Bounded max-heap of (distance, training index): keeps the k smallest
  // distances; index as tie-break reproduces first-seen neighbor ordering.
  std::vector<std::pair<std::int32_t, std::size_t>> heap;
  heap.reserve(k + 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::int32_t hamming = 0;
    const std::int32_t* row = &codes_[i * num_attrs_];
    for (std::size_t a = 0; a < num_attrs_; ++a) hamming += row[a] != codes[a] ? 1 : 0;
    if (heap.size() < k) {
      heap.emplace_back(hamming, i);
      std::push_heap(heap.begin(), heap.end());
    } else if (std::make_pair(hamming, i) < heap.front()) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {hamming, i};
      std::push_heap(heap.begin(), heap.end());
    }
  }

  std::vector<std::int32_t> votes(num_classes_, 0);
  for (const auto& [dist, idx] : heap) {
    (void)dist;
    ++votes[static_cast<std::size_t>(labels_[idx])];
  }
  std::size_t best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return static_cast<ClassLabel>(best);
}

}  // namespace auric::ml
