#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace auric::ml {

namespace {

/// Numerically stable in-place softmax over each row.
void softmax_rows(linalg::Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    double max_v = row[0];
    for (double v : row) max_v = std::max(max_v, v);
    double total = 0.0;
    for (double& v : row) {
      v = std::exp(v - max_v);
      total += v;
    }
    for (double& v : row) v /= total;
  }
}

}  // namespace

MultilayerPerceptron::MultilayerPerceptron(MlpOptions options) : options_(std::move(options)) {
  if (options_.hidden_sizes.empty()) {
    throw std::invalid_argument("MultilayerPerceptron: need at least one hidden layer");
  }
}

void MultilayerPerceptron::fit(const CategoricalDataset& data,
                               std::span<const std::size_t> row_indices) {
  if (row_indices.empty()) {
    throw std::invalid_argument("MultilayerPerceptron::fit: no training rows");
  }
  encoder_ = OneHotEncoder(data);
  num_classes_ = data.num_classes();
  adam_step_ = 0;

  // Layer dimensions: one-hot width -> hidden sizes -> classes.
  std::vector<std::size_t> dims{encoder_.width()};
  dims.insert(dims.end(), options_.hidden_sizes.begin(), options_.hidden_sizes.end());
  dims.push_back(num_classes_);

  util::Rng rng(options_.seed);
  layers_.clear();
  layers_.reserve(dims.size() - 1);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    Layer layer;
    layer.weights = linalg::Matrix(dims[l + 1], dims[l]);
    // Glorot uniform initialization.
    const double bound = std::sqrt(6.0 / static_cast<double>(dims[l] + dims[l + 1]));
    for (double& w : layer.weights.data()) w = rng.uniform(-bound, bound);
    layer.bias.assign(dims[l + 1], 0.0);
    layer.m_w = linalg::Matrix(dims[l + 1], dims[l]);
    layer.v_w = linalg::Matrix(dims[l + 1], dims[l]);
    layer.m_b.assign(dims[l + 1], 0.0);
    layer.v_b.assign(dims[l + 1], 0.0);
    layers_.push_back(std::move(layer));
  }

  std::vector<std::size_t> order(row_indices.begin(), row_indices.end());
  const std::size_t n = order.size();
  const auto batch_size = std::min<std::size_t>(static_cast<std::size_t>(options_.batch_size), n);

  double best_loss = std::numeric_limits<double>::infinity();
  int stall = 0;
  std::vector<ClassLabel> batch_labels;
  std::vector<std::size_t> batch_rows;
  for (int epoch = 0; epoch < options_.max_epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < n; start += batch_size) {
      const std::size_t end = std::min(n, start + batch_size);
      batch_rows.assign(order.begin() + static_cast<std::ptrdiff_t>(start),
                        order.begin() + static_cast<std::ptrdiff_t>(end));
      batch_labels.clear();
      for (std::size_t row : batch_rows) batch_labels.push_back(data.labels[row]);
      const linalg::Matrix input = encoder_.encode(data, batch_rows);
      epoch_loss += train_batch(input, batch_labels);
    }
    final_loss_ = epoch_loss / static_cast<double>(n);
    epochs_run_ = epoch + 1;
    // scikit-learn-style early stopping on training loss.
    if (final_loss_ > best_loss - options_.tol) {
      if (++stall >= options_.patience) break;
    } else {
      stall = 0;
    }
    best_loss = std::min(best_loss, final_loss_);
  }
}

void MultilayerPerceptron::forward(const linalg::Matrix& input,
                                   std::vector<linalg::Matrix>& activations) const {
  activations.clear();
  activations.reserve(layers_.size() + 1);
  activations.push_back(input);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    linalg::Matrix z = linalg::matmul_transposed(activations.back(), layers_[l].weights);
    linalg::add_row_vector(z, layers_[l].bias);
    if (l + 1 < layers_.size()) {
      for (double& v : z.data()) v = v > 0.0 ? v : 0.0;  // ReLU
    } else {
      softmax_rows(z);
    }
    activations.push_back(std::move(z));
  }
}

double MultilayerPerceptron::train_batch(const linalg::Matrix& input,
                                         std::span<const ClassLabel> labels) {
  std::vector<linalg::Matrix> activations;
  forward(input, activations);
  const std::size_t batch = input.rows();
  const double inv_batch = 1.0 / static_cast<double>(batch);

  // Loss and output delta: (softmax - onehot) / batch.
  double loss = 0.0;
  linalg::Matrix delta = activations.back();
  for (std::size_t r = 0; r < batch; ++r) {
    auto row = delta.row(r);
    const auto y = static_cast<std::size_t>(labels[r]);
    loss += -std::log(std::max(row[y], 1e-15));
    row[y] -= 1.0;
    for (double& v : row) v *= inv_batch;
  }

  for (std::size_t l = layers_.size(); l-- > 0;) {
    Layer& layer = layers_[l];
    const linalg::Matrix& prev_act = activations[l];
    // grad_W = delta^T * prev_act  (+ L2), grad_b = column sums of delta.
    linalg::Matrix grad_w = linalg::matmul(delta.transposed(), prev_act);
    if (options_.l2_penalty > 0.0) {
      auto g = grad_w.data();
      const auto w = layer.weights.data();
      for (std::size_t i = 0; i < g.size(); ++i) g[i] += options_.l2_penalty * inv_batch * w[i];
    }
    const std::vector<double> grad_b = linalg::column_sums(delta);

    if (l > 0) {
      // delta_prev = (delta * W) o relu'(prev_act)
      linalg::Matrix next = linalg::matmul(delta, layer.weights);
      auto nd = next.data();
      const auto pa = prev_act.data();
      for (std::size_t i = 0; i < nd.size(); ++i) {
        if (pa[i] <= 0.0) nd[i] = 0.0;
      }
      adam_update(layer, grad_w, grad_b);
      delta = std::move(next);
    } else {
      adam_update(layer, grad_w, grad_b);
    }
  }
  return loss;
}

void MultilayerPerceptron::adam_update(Layer& layer, const linalg::Matrix& grad_w,
                                       std::span<const double> grad_b) {
  // One shared step counter per batch would be conventional; stepping per
  // layer-update keeps the bias correction valid as well since each
  // parameter tensor sees a monotone step sequence.
  ++adam_step_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double correction1 = 1.0 - std::pow(b1, static_cast<double>(adam_step_));
  const double correction2 = 1.0 - std::pow(b2, static_cast<double>(adam_step_));
  const double lr = options_.learning_rate;

  auto w = layer.weights.data();
  auto m = layer.m_w.data();
  auto v = layer.v_w.data();
  const auto g = grad_w.data();
  for (std::size_t i = 0; i < w.size(); ++i) {
    m[i] = b1 * m[i] + (1.0 - b1) * g[i];
    v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
    w[i] -= lr * (m[i] / correction1) /
            (std::sqrt(v[i] / correction2) + options_.adam_epsilon);
  }
  for (std::size_t i = 0; i < layer.bias.size(); ++i) {
    layer.m_b[i] = b1 * layer.m_b[i] + (1.0 - b1) * grad_b[i];
    layer.v_b[i] = b2 * layer.v_b[i] + (1.0 - b2) * grad_b[i] * grad_b[i];
    layer.bias[i] -= lr * (layer.m_b[i] / correction1) /
                     (std::sqrt(layer.v_b[i] / correction2) + options_.adam_epsilon);
  }
}

ClassLabel MultilayerPerceptron::predict(std::span<const std::int32_t> codes) const {
  if (layers_.empty()) throw std::logic_error("MultilayerPerceptron::predict before fit");
  std::vector<double> x = encoder_.encode_row(codes);
  std::vector<double> next;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    next = linalg::matvec(layers_[l].weights, x);
    for (std::size_t i = 0; i < next.size(); ++i) next[i] += layers_[l].bias[i];
    if (l + 1 < layers_.size()) {
      for (double& v : next) v = v > 0.0 ? v : 0.0;
    }
    x = std::move(next);
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return static_cast<ClassLabel>(best);
}

}  // namespace auric::ml
