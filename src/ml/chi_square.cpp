#include "ml/chi_square.h"

#include <cmath>
#include <stdexcept>

namespace auric::ml {

namespace {
constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

/// Series representation of P(a, x) (converges fast for x < a + 1).
double gamma_p_series(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued-fraction representation of Q(a, x) (for x >= a + 1), using the
/// modified Lentz algorithm.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}
}  // namespace

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) throw std::invalid_argument("regularized_gamma_p: bad arguments");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (!(a > 0.0) || x < 0.0) throw std::invalid_argument("regularized_gamma_q: bad arguments");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double chi_square_sf(double x, int df) {
  if (df < 1) throw std::invalid_argument("chi_square_sf: df must be >= 1");
  if (x <= 0.0) return 1.0;
  return regularized_gamma_q(static_cast<double>(df) / 2.0, x / 2.0);
}

ContingencyTable ContingencyTable::build(std::span<const std::int32_t> x,
                                         std::span<const std::int32_t> y, std::size_t card_x,
                                         std::size_t card_y) {
  if (x.size() != y.size()) throw std::invalid_argument("ContingencyTable: size mismatch");
  ContingencyTable table;
  table.counts.assign(card_x, std::vector<std::int64_t>(card_y, 0));
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < 0 || static_cast<std::size_t>(x[i]) >= card_x || y[i] < 0 ||
        static_cast<std::size_t>(y[i]) >= card_y) {
      throw std::out_of_range("ContingencyTable: code out of range");
    }
    ++table.counts[static_cast<std::size_t>(x[i])][static_cast<std::size_t>(y[i])];
    ++table.total;
  }
  return table;
}

ContingencyTable ContingencyTable::zeros(std::size_t card_x, std::size_t card_y) {
  ContingencyTable table;
  table.counts.assign(card_x, std::vector<std::int64_t>(card_y, 0));
  return table;
}

void ContingencyTable::apply(std::int32_t x, std::int32_t y, std::int64_t delta) {
  if (x < 0 || static_cast<std::size_t>(x) >= counts.size() || y < 0 ||
      (counts.empty() || static_cast<std::size_t>(y) >= counts[0].size())) {
    throw std::out_of_range("ContingencyTable::apply: code out of range");
  }
  std::int64_t& cell = counts[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)];
  cell += delta;
  total += delta;
  if (cell < 0 || total < 0) {
    throw std::logic_error("ContingencyTable::apply: count went negative");
  }
}

ChiSquareResult chi_square_test(const ContingencyTable& table) {
  // Marginals, dropping empty rows/columns.
  const std::size_t raw_rows = table.counts.size();
  const std::size_t raw_cols = raw_rows == 0 ? 0 : table.counts[0].size();
  std::vector<std::int64_t> row_sum(raw_rows, 0);
  std::vector<std::int64_t> col_sum(raw_cols, 0);
  for (std::size_t r = 0; r < raw_rows; ++r) {
    for (std::size_t c = 0; c < raw_cols; ++c) {
      row_sum[r] += table.counts[r][c];
      col_sum[c] += table.counts[r][c];
    }
  }
  int rows = 0;
  int cols = 0;
  for (std::int64_t s : row_sum) rows += s > 0 ? 1 : 0;
  for (std::int64_t s : col_sum) cols += s > 0 ? 1 : 0;

  ChiSquareResult result;
  if (rows < 2 || cols < 2 || table.total == 0) return result;  // df = 0, p = 1

  const double total = static_cast<double>(table.total);
  double stat = 0.0;
  for (std::size_t r = 0; r < raw_rows; ++r) {
    if (row_sum[r] == 0) continue;
    for (std::size_t c = 0; c < raw_cols; ++c) {
      if (col_sum[c] == 0) continue;
      const double expected =
          static_cast<double>(row_sum[r]) * static_cast<double>(col_sum[c]) / total;
      const double diff = static_cast<double>(table.counts[r][c]) - expected;
      stat += diff * diff / expected;
    }
  }
  result.statistic = stat;
  result.df = (rows - 1) * (cols - 1);
  result.p_value = chi_square_sf(stat, result.df);
  return result;
}

ChiSquareResult chi_square_independence(std::span<const std::int32_t> x,
                                        std::span<const std::int32_t> y, std::size_t card_x,
                                        std::size_t card_y) {
  return chi_square_test(ContingencyTable::build(x, y, card_x, card_y));
}

}  // namespace auric::ml
