#include "ml/split.h"

#include <algorithm>
#include <stdexcept>

namespace auric::ml {

std::vector<int> kfold_assignment(std::size_t rows, int k, util::Rng& rng) {
  if (k < 2) throw std::invalid_argument("kfold_assignment: k must be >= 2");
  std::vector<int> assignment(rows);
  for (std::size_t i = 0; i < rows; ++i) assignment[i] = static_cast<int>(i % static_cast<std::size_t>(k));
  rng.shuffle(assignment);
  return assignment;
}

FoldSplit fold_split(const std::vector<int>& assignment, int fold) {
  FoldSplit split;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    (assignment[i] == fold ? split.test : split.train).push_back(i);
  }
  return split;
}

void cap_indices(std::vector<std::size_t>& indices, std::int64_t cap, util::Rng& rng) {
  if (cap <= 0 || static_cast<std::int64_t>(indices.size()) <= cap) return;
  rng.shuffle(indices);
  indices.resize(static_cast<std::size_t>(cap));
  std::sort(indices.begin(), indices.end());
}

}  // namespace auric::ml
