// Random forest classifier.
//
// §4.2(2) of the paper: "100 trees in the forest, and Gini score for
// decision to split. Tree is expanded until all leaves are pure." Standard
// bagging: each tree trains on a bootstrap resample of the training rows
// and examines a sqrt(A)-sized random attribute subset per split;
// prediction is the majority vote across trees (ties break toward the
// lowest class label, matching argmax over summed votes).
#pragma once

#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace auric::ml {

struct RandomForestOptions {
  int num_trees = 100;
  int max_depth = -1;  // pure leaves
  std::uint64_t seed = 1;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions options = {});

  void fit(const CategoricalDataset& data, std::span<const std::size_t> row_indices) override;
  ClassLabel predict(std::span<const std::int32_t> codes) const override;

  std::size_t tree_count() const { return trees_.size(); }

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
  std::size_t num_classes_ = 0;
};

}  // namespace auric::ml
