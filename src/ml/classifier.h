// Common interface for the four baseline learners of §4.2 (decision tree,
// random forest, k-nearest neighbors, deep neural network).
//
// Learners consume the categorical dataset directly. For tree learners and
// k-NN this is mathematically identical to training on the one-hot
// expansion the paper describes (equality splits == one-hot binary splits;
// Euclidean distance on one-hot == sqrt(2 x Hamming) on codes); the MLP
// performs a real one-hot expansion internally.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace auric::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the rows of `data` selected by `row_indices`.
  /// `data` must outlive neither fit nor predict calls — implementations
  /// copy what they need.
  virtual void fit(const CategoricalDataset& data,
                   std::span<const std::size_t> row_indices) = 0;

  /// Predicts the class label for one attribute-code vector (same column
  /// order as the training data).
  virtual ClassLabel predict(std::span<const std::int32_t> codes) const = 0;

  /// Batch prediction over selected rows of a dataset.
  std::vector<ClassLabel> predict_rows(const CategoricalDataset& data,
                                       std::span<const std::size_t> row_indices) const;
};

using ClassifierPtr = std::unique_ptr<Classifier>;

}  // namespace auric::ml
