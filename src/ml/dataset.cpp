#include "ml/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace auric::ml {

std::vector<std::int32_t> CategoricalDataset::row_codes(std::size_t row) const {
  std::vector<std::int32_t> codes(columns.size());
  for (std::size_t a = 0; a < columns.size(); ++a) codes[a] = columns[a][row];
  return codes;
}

void CategoricalDataset::check() const {
  if (columns.size() != cardinality.size() || columns.size() != column_names.size()) {
    throw std::logic_error("CategoricalDataset: column metadata size mismatch");
  }
  for (std::size_t a = 0; a < columns.size(); ++a) {
    if (columns[a].size() != labels.size()) {
      throw std::logic_error("CategoricalDataset: column row count mismatch");
    }
    for (std::int32_t code : columns[a]) {
      if (code < 0 || static_cast<std::size_t>(code) >= cardinality[a]) {
        throw std::logic_error("CategoricalDataset: attribute code out of range");
      }
    }
  }
  for (ClassLabel y : labels) {
    if (y < 0 || static_cast<std::size_t>(y) >= class_values.size()) {
      throw std::logic_error("CategoricalDataset: label out of range");
    }
  }
}

LabelDictionary LabelDictionary::build(std::span<const config::ValueIndex> labels) {
  LabelDictionary dict;
  dict.values.assign(labels.begin(), labels.end());
  std::sort(dict.values.begin(), dict.values.end());
  dict.values.erase(std::unique(dict.values.begin(), dict.values.end()), dict.values.end());
  return dict;
}

ClassLabel LabelDictionary::code_of(config::ValueIndex value) const {
  const auto it = std::lower_bound(values.begin(), values.end(), value);
  if (it == values.end() || *it != value) return -1;
  return static_cast<ClassLabel>(it - values.begin());
}

OneHotEncoder::OneHotEncoder(const CategoricalDataset& data) {
  offsets_.reserve(data.cardinality.size());
  for (std::size_t card : data.cardinality) {
    offsets_.push_back(width_);
    width_ += card;
  }
}

linalg::Matrix OneHotEncoder::encode(const CategoricalDataset& data,
                                     std::span<const std::size_t> indices) const {
  linalg::Matrix out(indices.size(), width_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t row = indices[i];
    for (std::size_t a = 0; a < data.columns.size(); ++a) {
      out.at(i, offsets_[a] + static_cast<std::size_t>(data.columns[a][row])) = 1.0;
    }
  }
  return out;
}

std::vector<double> OneHotEncoder::encode_row(std::span<const std::int32_t> codes) const {
  std::vector<double> out(width_, 0.0);
  for (std::size_t a = 0; a < codes.size(); ++a) {
    if (codes[a] >= 0) out[offsets_[a] + static_cast<std::size_t>(codes[a])] = 1.0;
  }
  return out;
}

}  // namespace auric::ml
