// Categorical learning dataset shared by every learner.
//
// §3.1 of the paper: the predictor matrix X holds A categorical carrier
// attributes for N carriers, the predictee Y^(i) holds one configuration
// parameter's values; both are one-hot encoded before being handed to the
// scikit-learn learners. We keep the pre-one-hot representation (integer
// codes per categorical column) as the canonical form because
//  - the chi-square dependency scan works on contingency tables of codes,
//  - tree learners split on "attribute == value" predicates, which are
//    exactly the one-hot binary features but orders of magnitude cheaper,
//  - Euclidean distance on the one-hot expansion equals 2x Hamming distance
//    on codes, so k-NN needs no expansion either.
// The MLP expands to a real one-hot Matrix internally via OneHotEncoder.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "config/catalog.h"
#include "linalg/matrix.h"

namespace auric::ml {

/// Dictionary-encoded class label (position in CategoricalDataset::class_values).
using ClassLabel = std::int32_t;

struct CategoricalDataset {
  /// columns[a][row] = attribute code in [0, cardinality[a]).
  std::vector<std::vector<std::int32_t>> columns;
  std::vector<std::size_t> cardinality;
  std::vector<std::string> column_names;

  /// labels[row] = class code in [0, class_values.size()).
  std::vector<ClassLabel> labels;
  /// Class dictionary: class code -> configuration ValueIndex.
  std::vector<config::ValueIndex> class_values;

  std::size_t rows() const { return labels.size(); }
  std::size_t num_attributes() const { return columns.size(); }
  std::size_t num_classes() const { return class_values.size(); }

  /// Attribute codes of one row, gathered across columns.
  std::vector<std::int32_t> row_codes(std::size_t row) const;

  /// Validates internal consistency (sizes, code ranges); throws on error.
  void check() const;
};

/// Builds the dictionary for a label vector: maps each distinct ValueIndex to
/// a dense class code. Rows with config::kUnset must be filtered out by the
/// caller before this point.
struct LabelDictionary {
  std::vector<config::ValueIndex> values;  // class code -> value

  static LabelDictionary build(std::span<const config::ValueIndex> labels);
  ClassLabel code_of(config::ValueIndex value) const;  // -1 if absent
  std::size_t size() const { return values.size(); }
};

/// One-hot expansion of the categorical columns.
class OneHotEncoder {
 public:
  explicit OneHotEncoder(const CategoricalDataset& data);

  std::size_t width() const { return width_; }

  /// Encodes the selected rows into an (indices.size() x width) matrix.
  linalg::Matrix encode(const CategoricalDataset& data,
                        std::span<const std::size_t> indices) const;

  /// Encodes a single row of attribute codes.
  std::vector<double> encode_row(std::span<const std::int32_t> codes) const;

 private:
  std::vector<std::size_t> offsets_;  // column -> first one-hot position
  std::size_t width_ = 0;
};

}  // namespace auric::ml
