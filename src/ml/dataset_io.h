// CSV round-trip for CategoricalDataset.
//
// A dataset export is two files: `<stem>.csv` with one row per carrier
// (integer attribute codes plus a `label` column) and `<stem>_meta.csv`
// describing the schema (column names, cardinalities, class dictionary).
// The loader enforces the same diagnostics contract as the inventory
// readers: malformed input fails with file + line context, and the loaded
// dataset must pass CategoricalDataset::check() — never a silent partial
// import.
#pragma once

#include <string>

#include "ml/dataset.h"

namespace auric::ml {

/// Writes `<stem>.csv` and `<stem>_meta.csv`. The dataset must pass check().
/// Throws std::runtime_error if a file cannot be opened.
void save_dataset(const std::string& stem, const CategoricalDataset& data);

/// Loads a dataset written by save_dataset(). Schema violations (unknown
/// meta kinds, out-of-range codes or labels, arity mismatches) throw
/// std::invalid_argument naming the file and 1-based line.
CategoricalDataset load_dataset(const std::string& stem);

}  // namespace auric::ml
