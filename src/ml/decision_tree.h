// CART-style decision tree classifier over categorical attributes.
//
// §4.2(1) of the paper: "Gini score to determine how to split and the tree
// is expanded until all leaves are pure". Splits are binary one-hot
// predicates "attribute a == value v" versus the rest, which is exactly the
// split family a CART tree sees after one-hot encoding. Trees also drive
// the explainability story of Fig. 8: each prediction can be rendered as
// the root-to-leaf chain of attribute tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ml/classifier.h"
#include "util/rng.h"

namespace auric::ml {

struct DecisionTreeOptions {
  /// Maximum depth; -1 = unbounded ("expanded until all leaves are pure").
  int max_depth = -1;
  /// Minimum samples to attempt a split.
  int min_samples_split = 2;
  /// Number of features examined per split; -1 = all. Features are counted
  /// at one-hot granularity — each (attribute, value) pair is one candidate
  /// binary split — matching what scikit-learn's max_features does after
  /// one-hot encoding (random forests pass sqrt(one-hot width)).
  int max_features = -1;
  /// Seed for the feature subsampling (unused when max_features == -1).
  std::uint64_t seed = 1;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {});

  void fit(const CategoricalDataset& data, std::span<const std::size_t> row_indices) override;
  ClassLabel predict(std::span<const std::int32_t> codes) const override;

  /// Root-to-leaf explanation for one input, e.g.
  /// "morphology == urban -> carrier_frequency != 700 MHz -> predict 40".
  /// Column/value names come from the training dataset's metadata.
  std::string explain(std::span<const std::int32_t> codes) const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

 private:
  struct Node {
    // Internal: test columns_[attr] == value; match -> left, else right.
    std::int32_t attr = -1;
    std::int32_t value = -1;
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Leaf payload (attr == -1).
    ClassLabel label = -1;
  };

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<std::string> column_names_;       // for explain()
  std::vector<std::size_t> cardinality_;
  std::size_t num_classes_ = 0;

  std::int32_t build(const CategoricalDataset& data, std::vector<std::size_t>& rows, int depth,
                     util::Rng& rng);
};

}  // namespace auric::ml
