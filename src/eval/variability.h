// Variability and skewness analysis of the configured network (§2.6,
// Figs. 2-4 of the paper).
#pragma once

#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "netsim/topology.h"

namespace auric::eval {

struct ParamVariability {
  config::ParamId param = 0;
  std::size_t configured_values = 0;        ///< configured slots network-wide
  std::size_t distinct_overall = 0;         ///< Fig. 2 series
  std::vector<std::size_t> distinct_per_market;  ///< Fig. 3 series
  double skewness = 0.0;                    ///< Fig. 4 series (§2.6 formula)
};

/// Computes variability for every catalog parameter. Distinct counts ignore
/// unset slots; skewness is over the raw (domain-decoded) values of all
/// configured slots, matching the paper's description of the parameter's
/// value distribution across markets.
std::vector<ParamVariability> analyze_variability(const netsim::Topology& topology,
                                                  const config::ParamCatalog& catalog,
                                                  const config::ConfigAssignment& assignment);

/// Counts of parameters per skewness band (paper: 33 of 65 highly skewed, 12
/// moderately skewed).
struct SkewnessSummary {
  int symmetric = 0;
  int moderate = 0;
  int high = 0;
};
SkewnessSummary summarize_skewness(const std::vector<ParamVariability>& variability);

}  // namespace auric::eval
