#include "eval/mismatch.h"

#include <algorithm>
#include <stdexcept>

namespace auric::eval {

const char* mismatch_label_name(MismatchLabel label) {
  switch (label) {
    case MismatchLabel::kUpdateLearner: return "update learner";
    case MismatchLabel::kGoodRecommendation: return "good recommendation";
    case MismatchLabel::kInconclusive: return "inconclusive";
  }
  return "?";
}

double MismatchBreakdown::fraction(MismatchLabel label) const {
  if (total == 0) return 0.0;
  std::size_t count = 0;
  switch (label) {
    case MismatchLabel::kUpdateLearner: count = update_learner; break;
    case MismatchLabel::kGoodRecommendation: count = good_recommendation; break;
    case MismatchLabel::kInconclusive: count = inconclusive; break;
  }
  return static_cast<double>(count) / static_cast<double>(total);
}

MismatchLabel label_mismatch(config::Cause cause, config::ValueIndex intended,
                             config::ValueIndex predicted) {
  switch (cause) {
    case config::Cause::kTrial:
    case config::Cause::kHiddenTerrain:
      // The engineers stand by the current value: either it is part of an
      // ongoing trial, or it reflects terrain the learner cannot see.
      return MismatchLabel::kUpdateLearner;
    case config::Cause::kStaleLeftover:
      // The network kept a sub-optimal leftover; if Auric recommended the
      // engineering intent, the recommendation improves the network.
      return predicted == intended ? MismatchLabel::kGoodRecommendation
                                   : MismatchLabel::kInconclusive;
    default:
      return MismatchLabel::kInconclusive;
  }
}

namespace {

/// Resolves a prediction's (kind, position) within the assignment.
config::ParamColumn& column_of(const config::ParamCatalog& catalog,
                               config::ConfigAssignment& assignment, config::ParamId param) {
  const config::ParamDef& def = catalog.at(param);
  const bool pairwise = def.kind == config::ParamKind::kPairwise;
  const auto& ids = pairwise ? catalog.pairwise_ids() : catalog.singular_ids();
  const std::size_t pos =
      static_cast<std::size_t>(std::find(ids.begin(), ids.end(), param) - ids.begin());
  return pairwise ? assignment.pairwise.at(pos) : assignment.singular.at(pos);
}

}  // namespace

std::size_t apply_good_recommendations(const std::vector<CfPrediction>& mismatches,
                                       const config::ParamCatalog& catalog,
                                       config::ConfigAssignment& assignment) {
  std::size_t pushed = 0;
  for (const CfPrediction& m : mismatches) {
    config::ParamColumn& col = column_of(catalog, assignment, m.param);
    if (m.entity >= col.value.size() || col.value[m.entity] != m.actual) {
      throw std::logic_error("apply_good_recommendations: stale prediction batch");
    }
    if (label_mismatch(col.cause[m.entity], col.intended[m.entity], m.predicted) !=
        MismatchLabel::kGoodRecommendation) {
      continue;
    }
    col.value[m.entity] = m.predicted;  // == intended, by the label's definition
    col.cause[m.entity] = config::Cause::kDefault;
    ++pushed;
  }
  return pushed;
}

MismatchBreakdown label_mismatches(const std::vector<CfPrediction>& mismatches,
                                   const config::ParamCatalog& catalog,
                                   const config::ConfigAssignment& assignment) {
  MismatchBreakdown breakdown;
  for (const CfPrediction& m : mismatches) {
    const config::ParamDef& def = catalog.at(m.param);
    const bool pairwise = def.kind == config::ParamKind::kPairwise;
    const auto& ids = pairwise ? catalog.pairwise_ids() : catalog.singular_ids();
    const std::size_t pos = static_cast<std::size_t>(
        std::find(ids.begin(), ids.end(), m.param) - ids.begin());
    const config::ParamColumn& col =
        pairwise ? assignment.pairwise.at(pos) : assignment.singular.at(pos);
    if (m.entity >= col.value.size() || col.value[m.entity] != m.actual) {
      throw std::logic_error("label_mismatches: prediction does not match assignment slot");
    }
    switch (label_mismatch(col.cause[m.entity], col.intended[m.entity], m.predicted)) {
      case MismatchLabel::kUpdateLearner: ++breakdown.update_learner; break;
      case MismatchLabel::kGoodRecommendation: ++breakdown.good_recommendation; break;
      case MismatchLabel::kInconclusive: ++breakdown.inconclusive; break;
    }
    ++breakdown.total;
  }
  return breakdown;
}

}  // namespace auric::eval
