#include "eval/variability.h"

#include <algorithm>

#include "ml/metrics.h"

namespace auric::eval {

namespace {

/// Accumulates one parameter column: per-market value vectors (raw units).
void accumulate(const config::ParamColumn& col, const config::ValueDomain& domain,
                const netsim::Topology& topology, bool pairwise, ParamVariability& out,
                std::vector<std::vector<config::ValueIndex>>& per_market,
                std::vector<std::vector<double>>& raw_per_market) {
  for (std::size_t i = 0; i < col.value.size(); ++i) {
    const config::ValueIndex v = col.value[i];
    if (v == config::kUnset) continue;
    const netsim::CarrierId subject = pairwise ? topology.edges[i].from
                                               : static_cast<netsim::CarrierId>(i);
    const auto market = static_cast<std::size_t>(topology.carrier(subject).market);
    per_market[market].push_back(v);
    raw_per_market[market].push_back(domain.value(v));
    ++out.configured_values;
  }
}

}  // namespace

std::vector<ParamVariability> analyze_variability(const netsim::Topology& topology,
                                                  const config::ParamCatalog& catalog,
                                                  const config::ConfigAssignment& assignment) {
  std::vector<ParamVariability> out;
  out.reserve(catalog.size());
  const std::size_t markets = topology.markets.size();

  for (std::size_t p = 0; p < catalog.size(); ++p) {
    const auto param = static_cast<config::ParamId>(p);
    const config::ParamDef& def = catalog.at(param);
    ParamVariability var;
    var.param = param;

    std::vector<std::vector<config::ValueIndex>> per_market(markets);
    std::vector<std::vector<double>> raw_per_market(markets);
    if (def.kind == config::ParamKind::kSingular) {
      const auto& ids = catalog.singular_ids();
      const std::size_t pos = static_cast<std::size_t>(
          std::find(ids.begin(), ids.end(), param) - ids.begin());
      accumulate(assignment.singular[pos], def.domain, topology, false, var, per_market,
                 raw_per_market);
    } else {
      const auto& ids = catalog.pairwise_ids();
      const std::size_t pos = static_cast<std::size_t>(
          std::find(ids.begin(), ids.end(), param) - ids.begin());
      accumulate(assignment.pairwise[pos], def.domain, topology, true, var, per_market,
                 raw_per_market);
    }

    std::vector<config::ValueIndex> all;
    var.distinct_per_market.resize(markets);
    for (std::size_t m = 0; m < markets; ++m) {
      var.distinct_per_market[m] = ml::distinct_value_count(per_market[m]);
      all.insert(all.end(), per_market[m].begin(), per_market[m].end());
    }
    var.distinct_overall = ml::distinct_value_count(all);

    // §2.6: skewness "of the distribution of the configuration parameter
    // values around its mean ... across 28 markets". Each market's team
    // tunes around its own baseline, so the meaningful asymmetry is within
    // markets; we compute per-market skewness and aggregate weighted by
    // market sample size (signed, so one-sided tuning shows through).
    double weighted = 0.0;
    double weight = 0.0;
    for (std::size_t m = 0; m < markets; ++m) {
      if (raw_per_market[m].size() < 2) continue;
      weighted += ml::skewness(raw_per_market[m]) * static_cast<double>(raw_per_market[m].size());
      weight += static_cast<double>(raw_per_market[m].size());
    }
    var.skewness = weight > 0 ? weighted / weight : 0.0;
    out.push_back(std::move(var));
  }
  return out;
}

SkewnessSummary summarize_skewness(const std::vector<ParamVariability>& variability) {
  SkewnessSummary summary;
  for (const ParamVariability& var : variability) {
    switch (ml::skewness_band(var.skewness)) {
      case ml::SkewnessBand::kSymmetric: ++summary.symmetric; break;
      case ml::SkewnessBand::kModeratelySkewed: ++summary.moderate; break;
      case ml::SkewnessBand::kHighlySkewed: ++summary.high; break;
    }
  }
  return summary;
}

}  // namespace auric::eval
