#include "eval/cf_eval.h"

namespace auric::eval {

using core::BackoffVoting;
using core::DependencyModel;
using core::ParamView;

CfEvaluator::CfEvaluator(const netsim::Topology& topology, const netsim::AttributeSchema& schema,
                         const config::ParamCatalog& catalog,
                         const config::ConfigAssignment& assignment, CfEvalOptions options)
    : topology_(&topology),
      schema_(&schema),
      catalog_(&catalog),
      assignment_(&assignment),
      options_(options) {
  attr_codes_ = schema.encode_all(topology);
}

CfParamResult CfEvaluator::evaluate_param(config::ParamId param,
                                          std::optional<netsim::MarketId> market,
                                          std::vector<CfPrediction>* mismatches) const {
  const ParamView view =
      core::build_param_view(*topology_, *catalog_, *assignment_, param, market);
  core::DependencyOptions dep_options;
  dep_options.p_value = options_.p_value;
  dep_options.max_dependent = options_.max_dependent;
  const DependencyModel deps = core::learn_dependencies(view, attr_codes_, *schema_, dep_options);
  const BackoffVoting model(view, deps.dependent, attr_codes_, options_.backoff_levels);
  const config::ValueIndex default_value = catalog_->at(param).default_index;

  CfParamResult result;
  result.param = param;
  result.rows = view.rows();

  for (std::size_t r = 0; r < view.rows(); ++r) {
    const netsim::CarrierId carrier = view.carrier[r];

    config::ValueIndex predicted = config::kUnset;
    bool decided_locally = false;
    if (options_.local) {
      std::optional<BackoffVoting::Decision> decision;
      if (options_.proximity_hops == 1) {
        decision = model.local(view, topology_->neighborhood(carrier), carrier,
                               view.neighbor[r], static_cast<std::int64_t>(r),
                               options_.vote_threshold, options_.carrier_weights);
      } else {
        const auto hood = topology_->neighborhood_hops(carrier, options_.proximity_hops);
        decision = model.local(view, hood, carrier, view.neighbor[r],
                               static_cast<std::int64_t>(r), options_.vote_threshold,
                               options_.carrier_weights);
      }
      if (decision) {
        predicted = view.labels.values[static_cast<std::size_t>(decision->vote.label)];
        decided_locally = true;
      }
    }
    if (predicted == config::kUnset && (!options_.local || options_.fallback_global)) {
      const auto decision = model.vote_excluding(carrier, view.neighbor[r], view.label[r],
                                                 options_.vote_threshold);
      if (decision) {
        predicted = view.labels.values[static_cast<std::size_t>(decision->vote.label)];
      }
    }
    if (predicted == config::kUnset) {
      predicted = default_value;
      ++result.fallback_default;
    }
    if (decided_locally) ++result.local_decided;

    if (predicted == view.value[r]) {
      ++result.correct;
    } else if (mismatches != nullptr) {
      mismatches->push_back({param, view.entity[r], predicted, view.value[r], carrier});
    }
  }
  return result;
}

std::vector<CfParamResult> CfEvaluator::evaluate_all(
    std::optional<netsim::MarketId> market, std::vector<CfPrediction>* mismatches) const {
  std::vector<CfParamResult> out;
  out.reserve(catalog_->size());
  for (std::size_t p = 0; p < catalog_->size(); ++p) {
    out.push_back(evaluate_param(static_cast<config::ParamId>(p), market, mismatches));
  }
  return out;
}

double overall_accuracy(const std::vector<CfParamResult>& results) {
  std::size_t rows = 0;
  std::size_t correct = 0;
  for (const CfParamResult& r : results) {
    rows += r.rows;
    correct += r.correct;
  }
  return rows == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(rows);
}

}  // namespace auric::eval
