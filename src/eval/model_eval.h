// Cross-validated evaluation of the baseline model learners (decision tree,
// random forest, k-NN, MLP) per §4.2's protocol.
//
// Model learners cannot do exact leave-one-out at dataset scale, so — like
// the paper — we use standard k-fold cross-validation: train on k-1 folds,
// predict the held-out fold, and report row-weighted accuracy. Training and
// test rows can be capped to bound wall-clock cost on large populations;
// caps are part of the options so every report can state them.
#pragma once

#include <functional>
#include <optional>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace auric::eval {

using ClassifierFactory = std::function<ml::ClassifierPtr()>;

struct ModelEvalOptions {
  int folds = 3;
  /// Maximum training rows per fold (<= 0 disables the cap).
  std::int64_t train_cap = 2500;
  /// Maximum evaluated test rows per fold (<= 0 disables the cap).
  std::int64_t test_cap = 5000;
  std::uint64_t seed = 17;
};

struct ModelEvalResult {
  std::size_t evaluated_rows = 0;
  std::size_t correct = 0;

  double accuracy() const {
    return evaluated_rows == 0 ? 0.0
                               : static_cast<double>(correct) /
                                     static_cast<double>(evaluated_rows);
  }
};

/// k-fold evaluation of one classifier family on one parameter's dataset.
/// Degenerate datasets short-circuit: a single observed class is trivially
/// predicted ("very low variability has similar accuracy for all global
/// learners", §4.3.1); fewer than 2*folds rows are evaluated with a single
/// 50/50 holdout.
ModelEvalResult evaluate_model(const ClassifierFactory& factory,
                               const ml::CategoricalDataset& data, ModelEvalOptions options);

}  // namespace auric::eval
