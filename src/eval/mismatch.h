// Mismatch-labeling oracle (stands in for the paper's network engineers,
// §4.3.3 / Fig. 12).
//
// The paper sampled 54,915 recommendation-vs-network mismatches and had
// market engineers label them:
//   5%  "update learner"       — the current value is right; the learner is
//                                missing an attribute (terrain, propagation)
//                                or the carrier is in an ongoing trial;
//   28% "good recommendation"  — the network carried a sub-optimal leftover;
//                                the recommendation was pushed as a change;
//   67% "inconclusive"         — needs a field trial to adjudicate.
// Our ground-truth model records *why* every slot has its value, so the
// oracle can reproduce this labeling deterministically: trial and
// hidden-terrain slots are "update learner"; stale-leftover slots where the
// recommendation equals the engineering intent are "good recommendation";
// everything else (noise, genuine learner errors) is "inconclusive".
#pragma once

#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "eval/cf_eval.h"

namespace auric::eval {

enum class MismatchLabel { kUpdateLearner = 0, kGoodRecommendation, kInconclusive };

const char* mismatch_label_name(MismatchLabel label);

struct MismatchBreakdown {
  std::size_t total = 0;
  std::size_t update_learner = 0;
  std::size_t good_recommendation = 0;
  std::size_t inconclusive = 0;

  double fraction(MismatchLabel label) const;
};

/// Labels one mismatch given its ground-truth cause and intended value.
MismatchLabel label_mismatch(config::Cause cause, config::ValueIndex intended,
                             config::ValueIndex predicted);

/// Labels a batch of CF mismatches against the assignment's ground truth.
MismatchBreakdown label_mismatches(const std::vector<CfPrediction>& mismatches,
                                   const config::ParamCatalog& catalog,
                                   const config::ConfigAssignment& assignment);

/// The paper's "added bonus" (§1, §4.3.3): the mismatches labeled "good
/// recommendation" were implemented as configuration changes in the network
/// (15K+ parameters). This applies exactly those changes to `assignment`
/// (slot value := recommended value) and returns how many were pushed.
/// Re-evaluating afterwards shows the network converging toward intent.
std::size_t apply_good_recommendations(const std::vector<CfPrediction>& mismatches,
                                       const config::ParamCatalog& catalog,
                                       config::ConfigAssignment& assignment);

}  // namespace auric::eval
