#include "eval/model_eval.h"

#include <stdexcept>

#include "ml/metrics.h"
#include "ml/split.h"
#include "util/rng.h"

namespace auric::eval {

ModelEvalResult evaluate_model(const ClassifierFactory& factory,
                               const ml::CategoricalDataset& data, ModelEvalOptions options) {
  if (options.folds < 2) throw std::invalid_argument("evaluate_model: folds must be >= 2");
  ModelEvalResult result;
  const std::size_t rows = data.rows();
  if (rows == 0) return result;

  // Single observed class: every learner predicts it; score it exactly.
  if (data.num_classes() < 2) {
    result.evaluated_rows = rows;
    result.correct = rows;
    return result;
  }

  util::Rng rng(options.seed);
  const int folds = rows >= 2 * static_cast<std::size_t>(options.folds) ? options.folds : 2;
  const std::vector<int> assignment = ml::kfold_assignment(rows, folds, rng);

  for (int fold = 0; fold < folds; ++fold) {
    ml::FoldSplit split = ml::fold_split(assignment, fold);
    if (split.train.empty() || split.test.empty()) continue;
    ml::cap_indices(split.train, options.train_cap, rng);
    ml::cap_indices(split.test, options.test_cap, rng);

    const ml::ClassifierPtr model = factory();
    model->fit(data, split.train);
    const std::vector<ml::ClassLabel> predicted = model->predict_rows(data, split.test);
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      if (predicted[i] == data.labels[split.test[i]]) ++result.correct;
    }
    result.evaluated_rows += split.test.size();
  }
  return result;
}

}  // namespace auric::eval
