// Leave-one-out evaluation of the collaborative-filtering learners
// (§4.2: "treats each carrier like a new carrier of interest and uses the
// rest as the existing carriers for learning and recommendation").
//
// For CF + voting this protocol is exact and cheap: the peer groups are
// aggregated once, and each row's own observation is subtracted from its
// group before voting. The local learner restricts the voters to the 1-hop
// X2 neighborhood and — like the production engine — falls back to the
// global vote and then the rule-book default.
#pragma once

#include <optional>
#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "core/dependency.h"
#include "core/param_view.h"
#include "core/voting.h"
#include "netsim/attributes.h"
#include "netsim/topology.h"

namespace auric::eval {

struct CfEvalOptions {
  double p_value = 0.01;
  double vote_threshold = 0.75;
  int max_dependent = 14;  ///< see core::DependencyOptions
  int backoff_levels = 5;  ///< see core::BackoffVoting
  bool local = false;  ///< geographical proximity (1-hop X2) first
  int proximity_hops = 1;
  bool fallback_global = true;  ///< local learner falls back to global vote

  /// §6 performance-feedback extension: per-carrier voting weights (empty =
  /// plain counting). Only affects the local vote path.
  std::vector<double> carrier_weights;
};

/// Per-row evaluation record (kept only when a sink is provided).
struct CfPrediction {
  config::ParamId param = 0;
  std::size_t entity = 0;                      ///< carrier id / edge index
  config::ValueIndex predicted = config::kUnset;
  config::ValueIndex actual = config::kUnset;
  netsim::CarrierId carrier = netsim::kInvalidCarrier;
};

struct CfParamResult {
  config::ParamId param = 0;
  std::size_t rows = 0;
  std::size_t correct = 0;
  std::size_t fallback_default = 0;  ///< rows decided by the rule-book default
  std::size_t local_decided = 0;     ///< rows decided by the local vote

  double accuracy() const {
    return rows == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(rows);
  }
};

class CfEvaluator {
 public:
  /// `attr_codes` must be schema.encode_all(topology).
  CfEvaluator(const netsim::Topology& topology, const netsim::AttributeSchema& schema,
              const config::ParamCatalog& catalog, const config::ConfigAssignment& assignment,
              CfEvalOptions options);

  /// Evaluates one parameter; when `market` is set, both learning and
  /// evaluation are scoped to that market's carriers (the paper's per-market
  /// protocol). `mismatches`, when non-null, receives the rows whose
  /// prediction differs from the current value (Fig. 12 input).
  CfParamResult evaluate_param(config::ParamId param,
                               std::optional<netsim::MarketId> market = std::nullopt,
                               std::vector<CfPrediction>* mismatches = nullptr) const;

  /// Evaluates every catalog parameter; results are in catalog-id order.
  /// Accuracy across parameters is row-weighted.
  std::vector<CfParamResult> evaluate_all(std::optional<netsim::MarketId> market = std::nullopt,
                                          std::vector<CfPrediction>* mismatches = nullptr) const;

  const CfEvalOptions& options() const { return options_; }

 private:
  const netsim::Topology* topology_;
  const netsim::AttributeSchema* schema_;
  const config::ParamCatalog* catalog_;
  const config::ConfigAssignment* assignment_;
  CfEvalOptions options_;
  std::vector<std::vector<netsim::AttrCode>> attr_codes_;
};

/// Row-weighted accuracy over a set of per-parameter results.
double overall_accuracy(const std::vector<CfParamResult>& results);

}  // namespace auric::eval
