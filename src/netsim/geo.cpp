#include "netsim/geo.h"

#include <cmath>
#include <numbers>

namespace auric::netsim {

namespace {
constexpr double kEarthRadiusKm = 6371.0088;

double to_rad(double deg) { return deg * std::numbers::pi / 180.0; }
double to_deg(double rad) { return rad * 180.0 / std::numbers::pi; }
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = to_rad(a.lat_deg);
  const double lat2 = to_rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = to_rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h > 1.0 ? 1.0 : h));
}

GeoPoint offset_km(const GeoPoint& origin, double north_km, double east_km) {
  const double dlat = to_deg(north_km / kEarthRadiusKm);
  const double cos_lat = std::cos(to_rad(origin.lat_deg));
  const double dlon =
      cos_lat > 1e-9 ? to_deg(east_km / (kEarthRadiusKm * cos_lat)) : 0.0;
  return {origin.lat_deg + dlat, origin.lon_deg + dlon};
}

}  // namespace auric::netsim
