#include "netsim/attributes.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/strings.h"

namespace auric::netsim {

namespace {

std::string market_label(std::int64_t raw) { return "Market " + std::to_string(raw + 1); }

std::string software_label(std::int64_t raw) {
  // RAN release naming: RAN20Q1, RAN20Q2, ... (four quarters per year).
  const std::int64_t year = 20 + raw / 4;
  const std::int64_t quarter = 1 + raw % 4;
  return util::format("RAN%lldQ%lld", static_cast<long long>(year),
                      static_cast<long long>(quarter));
}

std::string carrier_info_label(std::int64_t raw) {
  switch (raw) {
    case 0: return "plain";
    case 1: return "5G-colocated";
    case 2: return "border";
    case 3: return "5G-colocated+border";
  }
  return "info" + std::to_string(raw);
}

}  // namespace

AttributeSchema AttributeSchema::standard(const Topology& topology) {
  AttributeSchema schema;
  auto& defs = schema.defs_;

  const auto add = [&defs](std::string name, std::function<std::int64_t(const Carrier&)> raw,
                           std::function<std::string(std::int64_t)> label) {
    defs.push_back({std::move(name), std::move(raw), std::move(label), {}});
  };

  add("carrier_frequency", [](const Carrier& c) { return std::int64_t{c.frequency_mhz}; },
      [](std::int64_t v) { return std::to_string(v) + " MHz"; });
  add("carrier_type", [](const Carrier& c) { return static_cast<std::int64_t>(c.type); },
      [](std::int64_t v) { return std::string(carrier_type_name(static_cast<CarrierType>(v))); });
  add("carrier_info", [](const Carrier& c) { return std::int64_t{c.carrier_info}; },
      carrier_info_label);
  add("morphology", [](const Carrier& c) { return static_cast<std::int64_t>(c.morphology); },
      [](std::int64_t v) { return std::string(morphology_name(static_cast<Morphology>(v))); });
  add("channel_bandwidth", [](const Carrier& c) { return std::int64_t{c.bandwidth_mhz}; },
      [](std::int64_t v) { return std::to_string(v) + " MHz"; });
  add("dl_mimo_mode", [](const Carrier& c) { return static_cast<std::int64_t>(c.mimo); },
      [](std::int64_t v) { return std::string(mimo_mode_name(static_cast<MimoMode>(v))); });
  add("hardware", [](const Carrier& c) { return std::int64_t{c.hardware}; },
      [](std::int64_t v) { return "RRH" + std::to_string(v + 1); });
  add("cell_size", [](const Carrier& c) { return std::int64_t{c.cell_size_miles}; },
      [](std::int64_t v) { return std::to_string(v) + " mi"; });
  add("tracking_area_code", [](const Carrier& c) { return std::int64_t{c.tracking_area_code}; },
      [](std::int64_t v) { return std::to_string(v); });
  add("market", [](const Carrier& c) { return std::int64_t{c.market}; }, market_label);
  add("vendor", [](const Carrier& c) { return std::int64_t{c.vendor}; },
      [](std::int64_t v) { return "Vendor" + std::string(1, static_cast<char>('A' + v)); });
  add("neighbor_channel", [](const Carrier& c) { return std::int64_t{c.neighbor_channel}; },
      [](std::int64_t v) { return std::to_string(v); });
  // The same-eNodeB neighbor count is bucketed (4 / 6 / 8 / 10 / 12+): it is
  // a dynamic attribute whose exact value wobbles as layers are added, and
  // what matters for configuration is the site's layer-density class.
  add("neighbors_same_enodeb",
      [](const Carrier& c) {
        const int n = c.neighbors_same_enodeb;
        if (n <= 4) return std::int64_t{4};
        if (n <= 6) return std::int64_t{6};
        if (n <= 8) return std::int64_t{8};
        if (n <= 10) return std::int64_t{10};
        return std::int64_t{12};
      },
      [](std::int64_t v) { return (v >= 12 ? "12+" : std::to_string(v)); });
  add("software_version", [](const Carrier& c) { return std::int64_t{c.software_version}; },
      software_label);

  // Populate value dictionaries from the topology.
  for (auto& def : defs) {
    std::set<std::int64_t> seen;
    for (const Carrier& c : topology.carriers) seen.insert(def.raw(c));
    def.values.assign(seen.begin(), seen.end());
  }
  return schema;
}

std::string AttributeSchema::value_label(std::size_t attr, AttrCode code) const {
  const Def& def = defs_.at(attr);
  if (code < 0 || static_cast<std::size_t>(code) >= def.values.size()) return "<unseen>";
  return def.label(def.values[static_cast<std::size_t>(code)]);
}

std::size_t AttributeSchema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name) return i;
  }
  throw std::out_of_range("AttributeSchema: unknown attribute " + name);
}

AttrCode AttributeSchema::code_of(const Def& def, std::int64_t raw_value) const {
  const auto it = std::lower_bound(def.values.begin(), def.values.end(), raw_value);
  if (it == def.values.end() || *it != raw_value) return kUnseen;
  return static_cast<AttrCode>(it - def.values.begin());
}

std::vector<AttrCode> AttributeSchema::encode(const Carrier& carrier) const {
  std::vector<AttrCode> codes(defs_.size());
  for (std::size_t a = 0; a < defs_.size(); ++a) {
    codes[a] = code_of(defs_[a], defs_[a].raw(carrier));
  }
  return codes;
}

std::vector<std::vector<AttrCode>> AttributeSchema::encode_all(const Topology& topology) const {
  std::vector<std::vector<AttrCode>> columns(defs_.size());
  for (auto& col : columns) col.resize(topology.carrier_count());
  for (const Carrier& c : topology.carriers) {
    for (std::size_t a = 0; a < defs_.size(); ++a) {
      columns[a][static_cast<std::size_t>(c.id)] = code_of(defs_[a], defs_[a].raw(c));
    }
  }
  return columns;
}

std::size_t AttributeSchema::one_hot_width() const {
  std::size_t width = 0;
  for (const Def& def : defs_) width += def.values.size();
  return width;
}

}  // namespace auric::netsim
