#include "netsim/topology.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace auric::netsim {

const char* band_name(Band band) {
  switch (band) {
    case Band::kLow: return "LB";
    case Band::kMid: return "MB";
    case Band::kHigh: return "HB";
  }
  return "?";
}

const char* morphology_name(Morphology morphology) {
  switch (morphology) {
    case Morphology::kUrban: return "urban";
    case Morphology::kSuburban: return "suburban";
    case Morphology::kRural: return "rural";
  }
  return "?";
}

const char* carrier_type_name(CarrierType type) {
  switch (type) {
    case CarrierType::kStandard: return "standard";
    case CarrierType::kFirstNet: return "FirstNet";
    case CarrierType::kNbIot: return "NB-IoT";
  }
  return "?";
}

const char* mimo_mode_name(MimoMode mode) {
  switch (mode) {
    case MimoMode::kClosedLoop2x2: return "CL-2x2";
    case MimoMode::kOpenLoop2x2: return "OL-2x2";
    case MimoMode::k4x4: return "4x4";
  }
  return "?";
}

const char* terrain_name(Terrain terrain) {
  switch (terrain) {
    case Terrain::kFlat: return "flat";
    case Terrain::kMountain: return "mountain";
    case Terrain::kDenseHighRise: return "high-rise";
  }
  return "?";
}

const char* timezone_name(Timezone timezone) {
  switch (timezone) {
    case Timezone::kEastern: return "Eastern";
    case Timezone::kCentral: return "Central";
    case Timezone::kMountain: return "Mountain";
    case Timezone::kPacific: return "Pacific";
  }
  return "?";
}

std::vector<CarrierId> Topology::carriers_in_market(MarketId market) const {
  std::vector<CarrierId> out;
  for (const Carrier& c : carriers) {
    if (c.market == market) out.push_back(c.id);
  }
  return out;
}

std::size_t Topology::enodeb_count_in_market(MarketId market) const {
  std::size_t count = 0;
  for (const ENodeB& e : enodebs) {
    if (e.market == market) ++count;
  }
  return count;
}

std::vector<CarrierId> Topology::neighborhood_hops(CarrierId id, int hops) const {
  if (hops < 1) throw std::invalid_argument("neighborhood_hops: hops must be >= 1");
  std::unordered_set<CarrierId> seen{id};
  std::vector<CarrierId> frontier{id};
  std::vector<CarrierId> out;
  for (int h = 0; h < hops; ++h) {
    std::vector<CarrierId> next;
    for (CarrierId f : frontier) {
      for (CarrierId n : neighborhood(f)) {
        if (seen.insert(n).second) {
          next.push_back(n);
          out.push_back(n);
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Topology::finalize_edges() {
  edges.clear();
  edge_offsets.assign(carriers.size() + 1, 0);
  for (auto& list : neighbors) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  if (site_neighbors.size() != enodebs.size()) site_neighbors.assign(enodebs.size(), {});
  for (auto& list : site_neighbors) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  for (std::size_t c = 0; c < neighbors.size(); ++c) {
    edge_offsets[c] = edges.size();
    for (CarrierId n : neighbors[c]) {
      edges.push_back({static_cast<CarrierId>(c), n});
    }
  }
  edge_offsets[carriers.size()] = edges.size();
  // Keep the dynamic "neighbors on same eNodeB" attribute in sync.
  for (Carrier& c : carriers) {
    int same = 0;
    for (CarrierId n : neighbors[static_cast<std::size_t>(c.id)]) {
      if (carrier(n).enodeb == c.enodeb) ++same;
    }
    c.neighbors_same_enodeb = same;
  }
}

void Topology::check_invariants() const {
  for (std::size_t i = 0; i < carriers.size(); ++i) {
    const Carrier& c = carriers[i];
    if (c.id != static_cast<CarrierId>(i)) throw std::logic_error("carrier ids not dense");
    if (c.enodeb < 0 || static_cast<std::size_t>(c.enodeb) >= enodebs.size()) {
      throw std::logic_error("carrier references unknown eNodeB");
    }
    if (c.face < 0 || c.face > 2) throw std::logic_error("carrier face out of range");
    if (c.market < 0 || static_cast<std::size_t>(c.market) >= markets.size()) {
      throw std::logic_error("carrier references unknown market");
    }
  }
  for (std::size_t i = 0; i < enodebs.size(); ++i) {
    const ENodeB& e = enodebs[i];
    if (e.id != static_cast<ENodeBId>(i)) throw std::logic_error("eNodeB ids not dense");
    if (e.faces.size() != 3) throw std::logic_error("eNodeB must have exactly 3 faces");
    std::size_t face_total = 0;
    for (const auto& face : e.faces) {
      face_total += face.size();
      for (CarrierId c : face) {
        if (carrier(c).enodeb != e.id) throw std::logic_error("face carrier not on eNodeB");
      }
    }
    if (face_total != e.carriers.size()) throw std::logic_error("face/carrier list mismatch");
  }
  if (neighbors.size() != carriers.size()) throw std::logic_error("neighbor list size mismatch");
  for (std::size_t c = 0; c < neighbors.size(); ++c) {
    if (!std::is_sorted(neighbors[c].begin(), neighbors[c].end())) {
      throw std::logic_error("neighbor list not sorted");
    }
    for (CarrierId n : neighbors[c]) {
      if (n == static_cast<CarrierId>(c)) throw std::logic_error("self loop in X2 graph");
      if (n < 0 || static_cast<std::size_t>(n) >= carriers.size()) {
        throw std::logic_error("X2 edge to unknown carrier");
      }
      // X2 relations are symmetric in LTE.
      const auto& back = neighbors[static_cast<std::size_t>(n)];
      if (!std::binary_search(back.begin(), back.end(), static_cast<CarrierId>(c))) {
        throw std::logic_error("X2 graph not symmetric");
      }
    }
  }
  if (edge_offsets.size() != carriers.size() + 1) {
    throw std::logic_error("edge_offsets size mismatch");
  }
  for (std::size_t c = 0; c < carriers.size(); ++c) {
    if (edge_offsets[c + 1] - edge_offsets[c] != neighbors[c].size()) {
      throw std::logic_error("edge_offsets inconsistent with neighbor lists");
    }
    for (std::size_t e = edge_offsets[c]; e < edge_offsets[c + 1]; ++e) {
      if (edges[e].from != static_cast<CarrierId>(c)) {
        throw std::logic_error("edge list from-id mismatch");
      }
    }
  }
}

}  // namespace auric::netsim
