#include "netsim/generator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "util/rng.h"
#include "util/strings.h"

namespace auric::netsim {

namespace {

using util::Rng;

/// LTE frequency plan used by the generator: two low-band, two mid-band and
/// one high-band layer, with their EARFCN-style "channel numbers" (the
/// Table 1 "Neighbor channel" examples 444/555/666 are anonymized channel
/// numbers; we keep the same flavor).
struct FrequencyPlan {
  int mhz;
  Band band;
  int channel;
};
constexpr FrequencyPlan kFreqPlan[] = {
    {700, Band::kLow, 444},  {850, Band::kLow, 555},  {1900, Band::kMid, 666},
    {2100, Band::kMid, 777}, {2600, Band::kHigh, 888},
};

int channel_of(int mhz) {
  for (const auto& f : kFreqPlan) {
    if (f.mhz == mhz) return f.channel;
  }
  throw std::logic_error("unknown frequency " + std::to_string(mhz));
}

Band band_of(int mhz) {
  for (const auto& f : kFreqPlan) {
    if (f.mhz == mhz) return f.band;
  }
  throw std::logic_error("unknown frequency " + std::to_string(mhz));
}

Timezone timezone_of_longitude(double lon_deg) {
  if (lon_deg > -85.0) return Timezone::kEastern;
  if (lon_deg > -97.0) return Timezone::kCentral;
  if (lon_deg > -112.0) return Timezone::kMountain;
  return Timezone::kPacific;
}

std::vector<Market> make_markets(const TopologyParams& params, Rng& rng) {
  std::vector<Market> markets;
  markets.reserve(static_cast<std::size_t>(params.num_markets));
  // Deep-dive markets of Table 3: Market 1 Mountain, 2 Central, 3 Eastern,
  // 4 Pacific, with relative sizes 1.07 : 0.91 : 1.58 : 1.0 (eNodeB counts
  // 1791 : 1521 : 2643 : 1679 in the paper).
  struct Fixed {
    double lon;
    double size;
  };
  constexpr Fixed kFixed[] = {{-106.0, 1.07}, {-93.0, 0.91}, {-80.0, 1.58}, {-120.0, 1.0}};

  const int cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(params.num_markets))));
  for (int m = 0; m < params.num_markets; ++m) {
    Market market;
    market.id = m;
    market.name = "Market " + std::to_string(m + 1);
    if (m < 4) {
      market.center = {35.0 + 2.5 * m, kFixed[m].lon};
      market.size_multiplier = kFixed[m].size;
    } else {
      const int row = m / cols;
      const int col = m % cols;
      market.center = {31.0 + 16.0 * row / std::max(1, cols - 1) + rng.uniform(-1.0, 1.0),
                       -118.0 + 40.0 * col / std::max(1, cols - 1) + rng.uniform(-2.0, 2.0)};
      market.size_multiplier = rng.uniform(0.75, 1.3);
    }
    market.timezone = timezone_of_longitude(market.center.lon_deg);
    markets.push_back(market);
  }
  return markets;
}

Morphology morphology_of_radius(double r_frac) {
  if (r_frac < 0.25) return Morphology::kUrban;
  if (r_frac < 0.60) return Morphology::kSuburban;
  return Morphology::kRural;
}

/// The carrier layers deployed on one eNodeB (same set on every face, as is
/// standard practice). Frequencies picked by morphology: urban sites carry
/// more capacity layers, rural sites are coverage-driven.
std::vector<int> site_frequencies(Morphology morphology, Rng& rng) {
  std::vector<int> freqs{700};  // low-band coverage layer everywhere
  switch (morphology) {
    case Morphology::kUrban:
      freqs.push_back(1900);
      if (rng.bernoulli(0.7)) freqs.push_back(2100);
      if (rng.bernoulli(0.8)) freqs.push_back(2600);
      break;
    case Morphology::kSuburban:
      if (rng.bernoulli(0.35)) freqs.push_back(850);
      freqs.push_back(1900);
      if (rng.bernoulli(0.35)) freqs.push_back(2600);
      break;
    case Morphology::kRural:
      if (rng.bernoulli(0.5)) freqs.push_back(850);
      if (rng.bernoulli(0.5)) freqs.push_back(1900);
      break;
  }
  return freqs;
}

/// Downlink bandwidth of each layer is a market-level spectrum-plan decision
/// (how much spectrum the provider holds in that market), never a
/// per-carrier coin flip: all carriers of a frequency in a market share it.
int bandwidth_for(int mhz, MarketId market) {
  switch (mhz) {
    case 700: return 10;
    case 850: return market % 2 == 0 ? 5 : 10;
    case 1900: return (market * 3) % 5 < 3 ? 20 : 15;
    case 2100: return (market * 7) % 5 < 3 ? 20 : 15;
    case 2600: return 20;
  }
  return 10;
}

/// Expected cell size is a radio-planning attribute determined by the
/// environment and the layer's reach: deterministic in (morphology, band).
int cell_size_for(Morphology morphology, Band band) {
  switch (morphology) {
    case Morphology::kUrban: return band == Band::kLow ? 2 : 1;
    case Morphology::kSuburban: return band == Band::kLow ? 3 : 2;
    case Morphology::kRural: return band == Band::kLow ? 8 : 5;
  }
  return 2;
}

}  // namespace

Topology generate_topology(const TopologyParams& params) {
  if (params.num_markets < 1) throw std::invalid_argument("num_markets must be >= 1");
  if (params.base_enodebs_per_market < 1) {
    throw std::invalid_argument("base_enodebs_per_market must be >= 1");
  }

  Rng rng(params.seed);
  Topology topo;
  topo.markets = make_markets(params, rng);

  // --- eNodeBs and carriers ---
  for (const Market& market : topo.markets) {
    Rng market_rng = rng.fork(util::hash_combine({0xE0DEB5ULL, static_cast<std::uint64_t>(market.id)}));
    const int enodeb_count = std::max(
        1, static_cast<int>(std::lround(params.base_enodebs_per_market * market.size_multiplier)));

    // Per-market engineering context: dominant vendor, hardware refresh
    // level and software rollout quarter. These drive real cross-market
    // attribute variation, which is exactly what the chi-square dependency
    // scan must pick up.
    const int dominant_vendor = market.id % 3;
    const double hw_mean = 0.8 + 1.4 * ((market.id * 7) % 10) / 9.0;
    const int sw_base = (market.id * 5) % 5;
    const double market_mountain =
        params.mountain_fraction * ((market.id % 7 == 5) ? 4.0 : 1.0);

    for (int e = 0; e < enodeb_count; ++e) {
      ENodeB enodeb;
      enodeb.id = static_cast<ENodeBId>(topo.enodebs.size());
      enodeb.market = market.id;

      const double angle = market_rng.uniform(0.0, 2.0 * std::numbers::pi);
      const double r_frac = std::pow(market_rng.uniform(), 0.8);
      const double r_km = r_frac * params.market_radius_km;
      enodeb.location = offset_km(market.center, r_km * std::cos(angle), r_km * std::sin(angle));
      enodeb.morphology = morphology_of_radius(r_frac);

      if (enodeb.morphology == Morphology::kUrban && market_rng.bernoulli(params.highrise_fraction * 4.5)) {
        enodeb.terrain = Terrain::kDenseHighRise;
      } else if (market_rng.bernoulli(market_mountain *
                                      (enodeb.morphology == Morphology::kRural ? 2.0 : 0.5))) {
        enodeb.terrain = Terrain::kMountain;
      }

      const int hardware = static_cast<int>(std::clamp<std::int64_t>(
          std::llround(market_rng.normal(hw_mean, 0.8)), 0, 3));
      const int software = std::min<int>(6, sw_base + (market_rng.bernoulli(0.3) ? 1 : 0));
      // Sites are single-vendor installations; most of a market belongs to
      // its dominant RAN vendor, with a minority of legacy sites.
      const int site_vendor = market_rng.bernoulli(0.85)
                                  ? dominant_vendor
                                  : static_cast<int>(market_rng.uniform_int(0, 2));
      // Tracking areas partition the market into 8 contiguous zones
      // (4 azimuth sectors x 2 radial rings) — several sites per TA, as in
      // production paging-area planning.
      const int quadrant = static_cast<int>(angle / (std::numbers::pi / 2.0)) % 4;
      const int ring = r_frac < 0.45 ? 0 : 1;
      const int tac = market.id * 8 + quadrant * 2 + ring;
      const bool border = r_frac > 0.85;
      const bool nr_colocated = hardware >= 2 && market_rng.bernoulli(0.35);

      std::vector<int> freqs = site_frequencies(enodeb.morphology, market_rng);
      if (enodeb.morphology != Morphology::kRural && market_rng.bernoulli(0.30)) {
        freqs.push_back(-700);  // marker: FirstNet layer on 700 MHz (band 14)
      }
      if (market_rng.bernoulli(0.10)) {
        freqs.push_back(-850);  // marker: NB-IoT layer anchored at 850 MHz
      }

      enodeb.faces.resize(3);
      for (int face = 0; face < 3; ++face) {
        for (int freq_marker : freqs) {
          Carrier c;
          c.id = static_cast<CarrierId>(topo.carriers.size());
          c.enodeb = enodeb.id;
          c.market = market.id;
          c.face = face;
          if (freq_marker == -700) {
            c.frequency_mhz = 700;
            c.type = CarrierType::kFirstNet;
            c.bandwidth_mhz = 10;
          } else if (freq_marker == -850) {
            c.frequency_mhz = 850;
            c.type = CarrierType::kNbIot;
            c.bandwidth_mhz = 1;  // NB-IoT narrowband anchor
          } else {
            c.frequency_mhz = freq_marker;
            c.type = CarrierType::kStandard;
            c.bandwidth_mhz = bandwidth_for(freq_marker, market.id);
          }
          c.band = band_of(c.frequency_mhz);
          c.morphology = enodeb.morphology;
          c.terrain = enodeb.terrain;
          c.location = enodeb.location;
          c.hardware = hardware;
          c.software_version = software;
          c.tracking_area_code = tac;
          c.cell_size_miles = cell_size_for(enodeb.morphology, c.band);
          c.vendor = site_vendor;
          c.carrier_info = (nr_colocated ? 1 : 0) + (border ? 2 : 0);
          // MIMO capability follows the radio hardware and the layer: modern
          // RRHs run 4x4 on capacity layers, coverage layers stay 2x2.
          if (c.band != Band::kLow && hardware >= 2) {
            c.mimo = MimoMode::k4x4;
          } else if (c.band == Band::kLow) {
            c.mimo = hardware == 0 ? MimoMode::kOpenLoop2x2 : MimoMode::kClosedLoop2x2;
          } else {
            c.mimo = MimoMode::kClosedLoop2x2;
          }
          enodeb.faces[static_cast<std::size_t>(face)].push_back(c.id);
          enodeb.carriers.push_back(c.id);
          topo.carriers.push_back(c);
        }
      }
      topo.enodebs.push_back(std::move(enodeb));
    }
  }

  // "Neighbor channel": the channel number of the next carrier layer on the
  // same face that users are steered to (lowest other frequency = the
  // coverage layer users fall back to). Falls back to the carrier's own
  // channel on single-layer faces.
  for (const ENodeB& e : topo.enodebs) {
    for (const auto& face : e.faces) {
      for (CarrierId cid : face) {
        Carrier& c = topo.carriers[static_cast<std::size_t>(cid)];
        int best_mhz = c.frequency_mhz;
        for (CarrierId other : face) {
          if (other == cid) continue;
          const Carrier& o = topo.carriers[static_cast<std::size_t>(other)];
          if (o.frequency_mhz != c.frequency_mhz &&
              (best_mhz == c.frequency_mhz || o.frequency_mhz < best_mhz)) {
            best_mhz = o.frequency_mhz;
          }
        }
        c.neighbor_channel = channel_of(best_mhz);
      }
    }
  }

  // --- X2 neighbor graph ---
  topo.neighbors.assign(topo.carriers.size(), {});
  topo.site_neighbors.assign(topo.enodebs.size(), {});

  // Intra-eNodeB: complete relations between all carriers of a site (this is
  // what makes the "neighbors on same eNodeB" attribute land in the 8-10
  // range Table 1 quotes for typical multi-layer sites).
  for (const ENodeB& e : topo.enodebs) {
    for (CarrierId a : e.carriers) {
      for (CarrierId b : e.carriers) {
        if (a != b) topo.neighbors[static_cast<std::size_t>(a)].push_back(b);
      }
    }
  }

  // Inter-eNodeB: same-frequency relations to the x2_enodeb_degree nearest
  // sites in the same market (handover continuity along the coverage layer).
  std::vector<std::vector<ENodeBId>> market_sites(topo.markets.size());
  for (const ENodeB& e : topo.enodebs) {
    market_sites[static_cast<std::size_t>(e.market)].push_back(e.id);
  }
  for (const auto& sites : market_sites) {
    for (ENodeBId id : sites) {
      const ENodeB& e = topo.enodebs[static_cast<std::size_t>(id)];
      std::vector<std::pair<double, ENodeBId>> dists;
      dists.reserve(sites.size());
      for (ENodeBId other : sites) {
        if (other == id) continue;
        dists.emplace_back(
            haversine_km(e.location, topo.enodebs[static_cast<std::size_t>(other)].location),
            other);
      }
      const std::size_t degree =
          std::min<std::size_t>(dists.size(), static_cast<std::size_t>(params.x2_enodeb_degree));
      std::partial_sort(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(degree),
                        dists.end());
      for (std::size_t d = 0; d < degree; ++d) {
        const ENodeB& other = topo.enodebs[static_cast<std::size_t>(dists[d].second)];
        topo.site_neighbors[static_cast<std::size_t>(e.id)].push_back(other.id);
        topo.site_neighbors[static_cast<std::size_t>(other.id)].push_back(e.id);
        for (CarrierId a : e.carriers) {
          const Carrier& ca = topo.carriers[static_cast<std::size_t>(a)];
          for (CarrierId b : other.carriers) {
            const Carrier& cb = topo.carriers[static_cast<std::size_t>(b)];
            if (ca.frequency_mhz == cb.frequency_mhz && ca.type == cb.type) {
              topo.neighbors[static_cast<std::size_t>(a)].push_back(b);
              topo.neighbors[static_cast<std::size_t>(b)].push_back(a);  // X2 is symmetric
            }
          }
        }
      }
    }
  }

  topo.finalize_edges();
  topo.check_invariants();
  return topo;
}

}  // namespace auric::netsim
