// The synthetic LTE radio access network: markets, eNodeBs (3 faces each),
// carriers, and the X2 neighbor graph.
//
// This is the data-substrate substitution for the paper's proprietary AT&T
// carrier inventory (DESIGN.md §2): the learners only ever consume carrier
// attributes, configuration values and the X2 neighbor graph, all of which
// this module provides with the statistical structure the paper reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/geo.h"

namespace auric::netsim {

using CarrierId = std::int32_t;
using ENodeBId = std::int32_t;
using MarketId = std::int32_t;

inline constexpr CarrierId kInvalidCarrier = -1;

/// LTE frequency layer. Carrier layer management steers users HB -> MB -> LB
/// (§2.1 of the paper).
enum class Band : std::uint8_t { kLow = 0, kMid = 1, kHigh = 2 };

/// Deployment environment of the serving area (Table 1 "Morphology").
enum class Morphology : std::uint8_t { kUrban = 0, kSuburban = 1, kRural = 2 };

/// Carrier service type (Table 1 "Carrier type").
enum class CarrierType : std::uint8_t { kStandard = 0, kFirstNet = 1, kNbIot = 2 };

/// Downlink MIMO configuration (Table 1 "Downlink MIMO mode").
enum class MimoMode : std::uint8_t { kClosedLoop2x2 = 0, kOpenLoop2x2 = 1, k4x4 = 2 };

/// Terrain class of the site. This attribute is deliberately NOT part of the
/// learner-visible schema (netsim::AttributeSchema): it models the "missing
/// carrier attribute — e.g. terrain type and signal propagation" cause of
/// mismatches reported in §4.3.3 of the paper.
enum class Terrain : std::uint8_t { kFlat = 0, kMountain = 1, kDenseHighRise = 2 };

const char* band_name(Band band);
const char* morphology_name(Morphology morphology);
const char* carrier_type_name(CarrierType type);
const char* mimo_mode_name(MimoMode mode);
const char* terrain_name(Terrain terrain);

/// US timezone of a market (Table 3 reports one deep-dive market per zone).
enum class Timezone : std::uint8_t { kEastern = 0, kCentral = 1, kMountain = 2, kPacific = 3 };

const char* timezone_name(Timezone timezone);

struct Market {
  MarketId id = 0;
  std::string name;
  Timezone timezone = Timezone::kEastern;
  GeoPoint center;
  /// Relative deployment density (drives eNodeB count; market 3 in Table 3
  /// is roughly twice the size of the other deep-dive markets).
  double size_multiplier = 1.0;
};

/// One carrier (radio channel) on one face of one eNodeB, carrying the full
/// attribute set of Table 1.
struct Carrier {
  CarrierId id = kInvalidCarrier;
  ENodeBId enodeb = -1;
  MarketId market = 0;
  int face = 0;  // 0..2, azimuth face*120 degrees

  // --- Static attributes (Table 1) ---
  int frequency_mhz = 0;         // e.g. 700, 1900
  Band band = Band::kLow;        // derived layer of frequency_mhz
  CarrierType type = CarrierType::kStandard;
  int carrier_info = 0;          // e.g. 0=plain, 1=5G-colocated, 2=border
  Morphology morphology = Morphology::kUrban;
  int bandwidth_mhz = 10;        // downlink channel bandwidth
  MimoMode mimo = MimoMode::kClosedLoop2x2;
  int hardware = 0;              // remote radio head model index (RRH1, RRH2, ...)
  int cell_size_miles = 2;       // expected cell size, quantized
  int tracking_area_code = 0;
  int vendor = 0;                // VendorA/B/C
  int neighbor_channel = 0;      // dominant overlapping channel number

  // --- Dynamic attributes (Table 1) ---
  int neighbors_same_enodeb = 0;  // filled in after X2 construction
  int software_version = 0;       // RAN release index (RAN20Q1 = 0, ...)

  // --- Hidden ground-truth state (never exposed to learners) ---
  Terrain terrain = Terrain::kFlat;

  GeoPoint location;  // site location (same for all carriers of an eNodeB)
};

struct ENodeB {
  ENodeBId id = -1;
  MarketId market = 0;
  GeoPoint location;
  Morphology morphology = Morphology::kUrban;
  Terrain terrain = Terrain::kFlat;
  /// Carriers grouped by face; faces[f] lists carrier ids on face f.
  std::vector<std::vector<CarrierId>> faces;
  /// All carrier ids on this eNodeB (flattened faces).
  std::vector<CarrierId> carriers;
};

/// A directed X2 neighbor relation (j, k): carrier k is a handover neighbor
/// of carrier j. Pair-wise configuration parameters Y_{j,k} live on these.
struct X2Edge {
  CarrierId from = kInvalidCarrier;
  CarrierId to = kInvalidCarrier;
};

class Topology {
 public:
  std::vector<Market> markets;
  std::vector<ENodeB> enodebs;
  std::vector<Carrier> carriers;

  /// neighbors[c] = sorted X2 neighbor carrier ids of carrier c.
  std::vector<std::vector<CarrierId>> neighbors;

  /// site_neighbors[e] = sorted adjacent eNodeB ids (the sites eNodeB e has
  /// inter-site X2 relations with). Used for geographic clustering (local
  /// tuning pockets in the ground-truth model).
  std::vector<std::vector<ENodeBId>> site_neighbors;

  /// Flattened directed edge list, ordered by (from, to). Pair-wise
  /// configuration values are indexed by position in this list.
  std::vector<X2Edge> edges;

  /// edge_offsets[c] .. edge_offsets[c+1] indexes `edges` rows with from==c.
  std::vector<std::size_t> edge_offsets;

  std::size_t carrier_count() const { return carriers.size(); }
  std::size_t edge_count() const { return edges.size(); }

  const Carrier& carrier(CarrierId id) const { return carriers[static_cast<std::size_t>(id)]; }
  const ENodeB& enodeb_of(const Carrier& c) const {
    return enodebs[static_cast<std::size_t>(c.enodeb)];
  }

  /// Carrier ids belonging to `market`, in id order.
  std::vector<CarrierId> carriers_in_market(MarketId market) const;

  /// eNodeB count in `market`.
  std::size_t enodeb_count_in_market(MarketId market) const;

  /// 1-hop X2 neighborhood of `id` (its neighbors; excludes `id` itself).
  const std::vector<CarrierId>& neighborhood(CarrierId id) const {
    return neighbors[static_cast<std::size_t>(id)];
  }

  /// Carriers within `hops` X2 hops of `id` (excludes `id`). hops >= 1.
  std::vector<CarrierId> neighborhood_hops(CarrierId id, int hops) const;

  /// Rebuilds edges/edge_offsets/neighbors bookkeeping from `neighbors`.
  /// Called by the generator; exposed for tests that hand-build topologies.
  void finalize_edges();

  /// Validates internal invariants (ids dense, edges sorted, neighbor lists
  /// symmetric-free of self loops, faces populated). Throws on violation.
  void check_invariants() const;
};

}  // namespace auric::netsim
