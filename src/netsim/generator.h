// Synthetic LTE RAN topology generator.
//
// Produces a national multi-market network whose structure mirrors the
// inventory described in §2 and Table 3 of the paper: 28 markets across four
// US timezones, eNodeBs with 3 faces, multi-band carriers per face (carrier
// layer management HB -> MB -> LB), and an X2 neighbor graph combining
// complete intra-eNodeB relations with same-frequency relations to the
// geographically nearest eNodeBs.
//
// All counts scale linearly with `base_enodebs_per_market`, so experiments
// can run anywhere from unit-test size (2 markets x 4 eNodeBs) to the
// paper's full 400K+ carriers, budget permitting.
#pragma once

#include <cstdint>

#include "netsim/topology.h"

namespace auric::netsim {

struct TopologyParams {
  std::uint64_t seed = 1;

  /// Number of markets (the paper's network has 28).
  int num_markets = 28;

  /// eNodeBs in a market with size_multiplier 1.0. The four deep-dive
  /// markets of Table 3 get fixed multipliers (1.07, 0.91, 1.58, 1.0) so the
  /// relative market sizes match the paper; others draw from [0.75, 1.3].
  int base_enodebs_per_market = 55;

  /// Market radius in km; morphology is urban within 25% of the radius,
  /// suburban within 60%, rural beyond.
  double market_radius_km = 60.0;

  /// Number of nearest eNodeBs each eNodeB gets inter-site X2 links to.
  int x2_enodeb_degree = 2;

  /// Fraction of sites with mountainous terrain / dense high-rise terrain
  /// (hidden attribute; see AttributeSchema docs).
  double mountain_fraction = 0.04;
  double highrise_fraction = 0.04;
};

/// Generates the topology. Deterministic in `params.seed`. The result
/// passes Topology::check_invariants().
Topology generate_topology(const TopologyParams& params);

}  // namespace auric::netsim
