// Geographic primitives for the synthetic LTE RAN.
//
// eNodeBs live at real (latitude, longitude) coordinates so geographic
// proximity — the heart of Auric's local learner — is computed with the
// same great-circle semantics a production RAN inventory would use.
#pragma once

namespace auric::netsim {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  bool operator==(const GeoPoint&) const = default;
};

/// Great-circle distance in kilometers (haversine formula, mean Earth
/// radius 6371.0088 km).
double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// Offsets `origin` by (north_km, east_km) using the local-tangent-plane
/// approximation — accurate to well under 1% at the tens-of-km offsets the
/// topology generator uses.
GeoPoint offset_km(const GeoPoint& origin, double north_km, double east_km);

}  // namespace auric::netsim
