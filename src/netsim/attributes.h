// Learner-visible carrier attribute schema (Table 1 of the paper).
//
// Every attribute is dictionary-encoded to a dense integer code so the ML
// layer can work uniformly with categorical columns. The encoding is built
// by scanning a topology, which keeps the schema in lock-step with whatever
// value universe the generator (or a test fixture) produced.
//
// Deliberately ABSENT from this schema: Carrier::terrain. The paper's
// engineers attributed part of Auric's mismatches to attributes "missing"
// from the model (terrain type, signal propagation, §4.3.3); we reproduce
// that by letting the ground-truth model use terrain while hiding it here.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netsim/topology.h"

namespace auric::netsim {

/// Code type for dictionary-encoded attribute values.
using AttrCode = std::int32_t;

class AttributeSchema {
 public:
  /// Builds the standard 14-attribute schema of Table 1 over `topology`,
  /// with value dictionaries populated from the carriers present.
  static AttributeSchema standard(const Topology& topology);

  std::size_t attribute_count() const { return defs_.size(); }

  const std::string& name(std::size_t attr) const { return defs_[attr].name; }

  /// Number of distinct codes for attribute `attr`.
  std::size_t cardinality(std::size_t attr) const { return defs_[attr].values.size(); }

  /// Human-readable label of code `code` of attribute `attr`.
  std::string value_label(std::size_t attr, AttrCode code) const;

  /// Index of the attribute named `name`; throws if absent.
  std::size_t index_of(const std::string& name) const;

  /// Encodes one carrier: codes[attr] for every attribute. Raw values that
  /// were not present when the schema was built get a fresh code appended?
  /// No — they map to kUnseen (-1); Auric treats unseen values via its
  /// bootstrap fallback (§6 of the paper).
  std::vector<AttrCode> encode(const Carrier& carrier) const;

  static constexpr AttrCode kUnseen = -1;

  /// Encodes every carrier of `topology`: result[attr][carrier_id] = code.
  /// Column-major (per-attribute vectors) because the chi-square dependency
  /// scan iterates attribute-by-attribute.
  std::vector<std::vector<AttrCode>> encode_all(const Topology& topology) const;

  /// Sum of cardinalities = width of the one-hot expansion.
  std::size_t one_hot_width() const;

 private:
  struct Def {
    std::string name;
    std::function<std::int64_t(const Carrier&)> raw;        // raw attribute value
    std::function<std::string(std::int64_t)> label;         // raw -> display
    std::vector<std::int64_t> values;                       // code -> raw (sorted)
  };
  std::vector<Def> defs_;

  AttrCode code_of(const Def& def, std::int64_t raw_value) const;
};

}  // namespace auric::netsim
