#include "smartlaunch/sharded_ems.h"

#include <stdexcept>

#include "util/rng.h"

namespace auric::smartlaunch {
namespace {

/// Salt separating the shard-mapping / shard-seed hash domain from every
/// other hash_combine user in the codebase.
constexpr std::uint64_t kShardSalt = 0x5A2DED;

}  // namespace

int shard_of_market(netsim::MarketId market, int shards) {
  if (shards <= 1) return 0;
  const std::uint64_t h =
      util::hash_combine({kShardSalt, static_cast<std::uint64_t>(static_cast<std::uint32_t>(market))});
  return static_cast<int>(h % static_cast<std::uint64_t>(shards));
}

std::uint64_t ShardedEms::shard_seed(std::uint64_t seed, int shard) {
  if (shard == 0) return seed;
  return util::hash_combine({seed, kShardSalt, static_cast<std::uint64_t>(shard)});
}

ShardedEms::ShardedEms(const netsim::Topology& topology, int shards, EmsOptions options) {
  if (shards < 1) shards = 1;
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    EmsOptions shard_options = options;
    shard_options.seed = shard_seed(options.seed, k);
    shard_options.shard = k;
    shards_.emplace_back(topology.carrier_count(), shard_options);
  }
  carrier_shard_.resize(topology.carrier_count());
  for (std::size_t c = 0; c < topology.carrier_count(); ++c) {
    carrier_shard_[c] =
        shard_of_market(topology.carrier(static_cast<netsim::CarrierId>(c)).market, shards);
  }
}

std::size_t ShardedEms::lock_cycles() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.lock_cycles();
  return total;
}

std::size_t ShardedEms::pushes_executed() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard.pushes_executed();
  return total;
}

std::vector<EmsSimulator::Snapshot> ShardedEms::snapshot() const {
  std::vector<EmsSimulator::Snapshot> snapshots;
  snapshots.reserve(shards_.size());
  for (const auto& shard : shards_) snapshots.push_back(shard.snapshot());
  return snapshots;
}

void ShardedEms::restore(const std::vector<EmsSimulator::Snapshot>& snapshots) {
  if (snapshots.size() != shards_.size()) {
    throw std::invalid_argument("ShardedEms::restore: snapshot count " +
                                std::to_string(snapshots.size()) + " does not match shard count " +
                                std::to_string(shards_.size()));
  }
  for (std::size_t k = 0; k < shards_.size(); ++k) shards_[k].restore(snapshots[k]);
}

}  // namespace auric::smartlaunch
