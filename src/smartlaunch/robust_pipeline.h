// Fault-tolerant launch pipeline (robust counterpart of SmartLaunchPipeline).
//
// The paper's production run (Table 5, §5) loses 29 of 143 flagged launches
// to EMS timeouts and premature out-of-band unlocks; the naive pipeline
// reproduces those fall-outs but treats every fault as terminal. This module
// adds the recovery paths a production push layer needs:
//
//   chunking        change sets are split so each push fits the EMS deadline
//                   (command_count / concurrency * command_ms <= deadline),
//                   eliminating structural timeouts;
//   retry/backoff   transient EMS timeouts are retried under a bounded
//                   util::RetryPolicy with deterministic exponential
//                   backoff; carrier lock state is re-checked between
//                   attempts and the push aborts cleanly if an engineer
//                   unlocked the carrier out-of-band;
//   apply journal   per-carrier count of settings already written, so a
//                   retried or resumed push continues after the last landed
//                   setting instead of re-pushing from scratch (pushes are
//                   idempotent at the setting level — re-writing a value is
//                   harmless — but the journal keeps retries inside the
//                   deadline and makes partial progress durable);
//   circuit breaker consecutive EMS faults trip a util::CircuitBreaker;
//                   while open, launches degrade to "vendor config only,
//                   queue for later" and the queue is drained once the
//                   half-open probe succeeds (re-locking each queued carrier
//                   in a maintenance window — the simulator counts those
//                   disruptive lock cycles);
//   KPI gate        after the unlock step the launch quality is re-checked
//                   against a degradation threshold (absolute floor plus
//                   relative drop vs. the pre-push quality); on breach the
//                   applied settings are rolled back to the vendor values by
//                   reverse-replaying the apply journal through the same
//                   executor, the launch is re-attempted once, and a carrier
//                   that breaches again is quarantined for the run;
//   persistence     with RobustPipelineOptions::state_dir set, the apply
//                   journal, deferred queue, quarantine list, breaker state
//                   and EMS state are checkpointed through an
//                   io::LaunchStateStore after every launch, so a run killed
//                   mid-cohort resumes its recovery state.
//
// Everything is deterministic under a fixed seed: two runs over the same
// cohort produce identical counters.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/launch_state.h"
#include "smartlaunch/controller.h"
#include "smartlaunch/ems.h"
#include "smartlaunch/kpi.h"
#include "util/retry.h"

namespace auric::smartlaunch {

enum class RobustOutcome : std::uint8_t {
  kNoChangeNeeded = 0,  ///< Auric agreed with the vendor configuration
  kImplemented,         ///< all changes pushed, no recovery needed
  kRecovered,           ///< implemented, but only after retry/resume/re-lock
  kQueuedDegraded,      ///< breaker open: on air vendor-only, queued for later
  kAbortedUnlocked,     ///< out-of-band unlock observed; aborted cleanly
  kFalloutTerminal,     ///< retries exhausted or persistent EMS fault
  kRolledBack,          ///< KPI breach: changes reverted to vendor values
};

const char* robust_outcome_name(RobustOutcome outcome);

/// Converts between the EMS simulator snapshot and its io-layer mirror
/// (io::LaunchState::EmsState), shared by the pipeline and replay
/// persistence paths.
io::LaunchState::EmsState ems_state_to_io(const EmsSimulator::Snapshot& snapshot);
EmsSimulator::Snapshot ems_state_from_io(const io::LaunchState::EmsState& state);

/// Executes one change set against the EMS with chunking, retry/backoff, an
/// apply journal, and circuit-breaker accounting. Shared by the robust
/// pipeline and the operation replay so both report identical semantics.
class RobustPushExecutor {
 public:
  struct Options {
    util::RetryPolicy retry;
    util::CircuitBreaker::Options breaker;
    /// Settings held back from each chunk as safety margin below the EMS
    /// structural limit (guards against command_ms jitter in a real EMS).
    std::size_t chunk_margin = 0;
    std::uint64_t seed = 31337;
    /// EMS shard this executor pushes to; stamped as a `shard` label on the
    /// executor metric series and propagated to the breaker's label.
    int shard = 0;
  };

  struct Result {
    RobustOutcome outcome = RobustOutcome::kImplemented;
    std::size_t applied = 0;   ///< settings landed in total (journal included)
    int attempts = 0;          ///< pushes issued this call
    int chunks = 0;            ///< chunks the plan was split into
    int retries = 0;           ///< failed pushes that were retried/resumed
    double backoff_ms = 0.0;   ///< simulated backoff waited this call
  };

  /// Shard-labeled instrument set (defined in robust_pipeline.cpp; public
  /// only so the per-shard interning helper can construct it).
  struct Metrics;

  explicit RobustPushExecutor(EmsSimulator& ems);  // default Options
  RobustPushExecutor(EmsSimulator& ems, Options options);

  /// Circuit-breaker admission for one launch. True when the breaker is
  /// open (the launch should go vendor-only and be deferred); advances the
  /// open-state cooldown, so call exactly once per launch.
  bool should_defer();

  /// Pushes `settings` to a locked carrier, chunked and retried. Resumes
  /// from the carrier's journal entry if a previous call partially applied.
  /// Records success/failure with the breaker (clean unlock aborts are not
  /// EMS health signals and leave the breaker untouched).
  Result execute(netsim::CarrierId carrier, const std::vector<config::MoSetting>& settings);

  /// Largest chunk the executor will push at once: the EMS structural limit
  /// (optionally tightened by RetryPolicy::attempt_deadline_ms) minus the
  /// configured margin, floored at one setting.
  std::size_t chunk_size() const;

  /// Settings already landed for `carrier` (0 when fully applied/unknown).
  std::size_t journal_applied(netsim::CarrierId carrier) const;

  /// The full apply journal (for persistence; iteration order unspecified).
  const std::unordered_map<netsim::CarrierId, std::size_t>& journal() const { return journal_; }

  /// Drops `carrier`'s journal entry so the next execute() starts from
  /// scratch (used by the rollback path and by terminal-fall-out cleanup).
  void clear_journal(netsim::CarrierId carrier) { journal_.erase(carrier); }

  /// Replaces the journal / breaker state with persisted values (resume).
  void restore_journal(const std::vector<std::pair<netsim::CarrierId, std::uint64_t>>& entries);
  void restore_breaker(const util::CircuitBreaker::Snapshot& snapshot) {
    breaker_.restore(snapshot);
  }

  const util::CircuitBreaker& breaker() const { return breaker_; }
  const Options& options() const { return options_; }

 private:
  EmsSimulator* ems_;
  Options options_;
  Metrics* metrics_;  ///< shard-labeled instruments, resolved at construction
  util::CircuitBreaker breaker_;
  std::unordered_map<netsim::CarrierId, std::size_t> journal_;
};

struct RobustLaunchRecord {
  netsim::CarrierId carrier = netsim::kInvalidCarrier;
  RobustOutcome outcome = RobustOutcome::kNoChangeNeeded;
  std::size_t changes_planned = 0;
  std::size_t changes_applied = 0;
  int attempts = 0;
  int chunks = 0;
  int retries = 0;
  double backoff_ms = 0.0;
  bool drained_late = false;  ///< queued-degraded launch completed on drain
  double pre_quality = 1.0;   ///< launch quality of the vendor configuration
  double post_quality = 1.0;
  int rollbacks = 0;           ///< KPI-breach rollbacks completed this launch
  int rollback_retries = 0;    ///< transient faults retried inside rollbacks
  int reattempts = 0;          ///< forward pushes re-issued after a rollback
  bool rollback_failed = false;   ///< a rollback push itself faulted terminally
  bool quarantined = false;       ///< hit the rollback cap; no more attempts
  bool quarantine_skipped = false;  ///< launch skipped: carrier in quarantine
};

/// Table-5-style aggregate with the recovery modes broken out.
struct RobustLaunchReport {
  std::size_t launches = 0;
  std::size_t change_recommended = 0;
  std::size_t implemented = 0;       ///< includes recovered and drained
  std::size_t recovered = 0;         ///< needed >= 1 retry/resume/re-lock
  std::size_t chunked = 0;           ///< plan split into > 1 chunk
  std::size_t queued_degraded = 0;   ///< deferred while the breaker was open
  std::size_t drained = 0;           ///< deferred launches later implemented
  std::size_t still_queued = 0;      ///< deferrals unresolved at end of run
  std::size_t aborted_unlocked = 0;  ///< clean aborts on out-of-band unlock
  std::size_t fallout_terminal = 0;  ///< unrecoverable EMS fall-outs
  std::size_t rolled_back = 0;       ///< launches ending in kRolledBack
  std::size_t rollbacks = 0;         ///< rollback pushes completed
  std::size_t rollback_retries = 0;  ///< transient faults retried in rollbacks
  std::size_t rollback_failed = 0;   ///< rollback pushes that faulted terminally
  std::size_t reattempted = 0;       ///< forward pushes re-issued after rollback
  std::size_t quarantined = 0;       ///< carriers that hit the rollback cap
  std::size_t parameters_changed = 0;
  std::size_t retries = 0;
  int breaker_trips = 0;
  double total_backoff_ms = 0.0;
  std::vector<RobustLaunchRecord> records;

  /// Launches that ended without their changes on air: terminal EMS
  /// fall-outs, clean unlock aborts, KPI-gated rollbacks, and still-queued
  /// deferrals. The invariant
  /// change_recommended == implemented + terminal_fallouts() holds after
  /// run().
  std::size_t terminal_fallouts() const {
    return fallout_terminal + aborted_unlocked + rolled_back + still_queued;
  }
};

/// The KPI degradation gate evaluated after the unlock step.
///
/// The gate arms only when the post-push quality sits below BOTH the
/// pre-push quality and the quality the plan itself promised (all changes
/// applied). A clean full apply reproduces the planned quality exactly and
/// therefore never rolls back — at fault rate zero the gate is silent by
/// construction — while a fault-damaged partial apply underperforms its
/// plan and is judged against the floors below.
struct RollbackOptions {
  bool enabled = true;
  /// Absolute floor: post-push quality below this is a breach.
  double min_quality = 0.70;
  /// Relative floor: post-push quality below pre_quality * (1 - drop) is a
  /// breach. Either floor triggers, but only when the push actually degraded
  /// the carrier (post < pre), so a carrier that was already below the floor
  /// is not punished for a push that helped or was neutral.
  double max_relative_drop = 0.05;
  /// KPI model parameters used for the pre/post launch-quality oracle.
  KpiOptions kpi;
  /// Rollbacks allowed per carrier per run: with the default of 2, a
  /// rolled-back carrier is re-attempted exactly once, and a second breach
  /// quarantines it.
  int max_rollbacks = 2;
};

struct RobustPipelineOptions {
  /// Same out-of-band unlock fault environment as the naive pipeline (and
  /// the same per-carrier hash draw, so naive/robust runs see identical
  /// engineer behavior and differ only in how they respond).
  double premature_unlock_prob = 0.14;
  std::uint64_t seed = 31337;
  /// EMS shard this controller drives; stamped as a `shard` label on the
  /// controller metric series and propagated to executor.shard (which in
  /// turn labels the breaker), so one knob labels the whole stack.
  int shard = 0;
  RobustPushExecutor::Options executor;
  RollbackOptions rollback;
  /// When non-empty, recovery state (apply journal, deferred queue,
  /// quarantine list, breaker and EMS state) is checkpointed into this
  /// directory after every launch; with `resume` set, run() restores it
  /// before launching.
  std::string state_dir;
  bool resume = false;
};

/// Drop-in robust counterpart of SmartLaunchPipeline: same launch flow
/// (pre-check -> plan -> push -> unlock -> post-check), with the fault
/// tolerance described above.
class RobustLaunchController {
 public:
  /// Shard-labeled instrument set (defined in robust_pipeline.cpp; public
  /// only so the per-shard interning helper can construct it).
  struct Metrics;

  RobustLaunchController(const LaunchController& controller, EmsSimulator& ems,
                         const KpiModel& kpi, RobustPipelineOptions options = {});

  /// Launches one carrier; does not drain the deferred queue.
  RobustLaunchRecord launch(netsim::CarrierId carrier);

  /// KPI-gated push of an externally planned change set. The caller owns the
  /// launch flow (lock, plan, fault injection, deferral) and hands over a
  /// LOCKED carrier; this runs the quarantine check, the pre-quality oracle,
  /// the forward push and the rollback loop, and unlocks before returning.
  /// OperationReplay routes its day-by-day pushes through here so replayed
  /// launches get the same rollback/quarantine semantics as run().
  RobustLaunchRecord push_gated_launch(netsim::CarrierId carrier,
                                       const std::vector<LaunchController::PlannedChange>& changes);

  /// Points the gate at a rebuilt recommendation engine (weekly relearn in
  /// replay); executor, breaker, quarantine and deferred state carry over.
  void rebind(const LaunchController& controller) { controller_ = &controller; }

  /// Mutable executor access for callers that drive their own deferral /
  /// resume bookkeeping (replay persistence restores the journal + breaker).
  RobustPushExecutor& executor_mutable() { return executor_; }

  /// Replaces the quarantine map from persisted state (replay resume).
  void restore_quarantine(const std::vector<std::pair<netsim::CarrierId, int>>& entries);

  /// Launches a batch; drains the deferred queue whenever the breaker
  /// closes after a successful half-open probe, and once more at the end.
  RobustLaunchReport run(std::span<const netsim::CarrierId> carriers);

  std::size_t deferred_count() const { return deferred_.size(); }
  const RobustPushExecutor& executor() const { return executor_; }

  /// Rollback counts per carrier; a carrier whose count has reached
  /// RollbackOptions::max_rollbacks is quarantined for the run.
  const std::unordered_map<netsim::CarrierId, int>& quarantine() const { return quarantine_; }

 private:
  const LaunchController* controller_;
  EmsSimulator* ems_;
  const KpiModel* kpi_;
  RobustPipelineOptions options_;
  Metrics* metrics_;  ///< shard-labeled instruments, resolved at construction
  RobustPushExecutor executor_;
  std::vector<netsim::CarrierId> deferred_;
  std::unordered_map<netsim::CarrierId, int> quarantine_;

  /// Forward push plus the KPI gate: on breach, reverse-replays the applied
  /// prefix with vendor values and re-attempts or quarantines. The carrier
  /// is unlocked when this returns.
  void push_gated(netsim::CarrierId carrier,
                  const std::vector<LaunchController::PlannedChange>& changes,
                  RobustLaunchRecord& record);

  /// Re-locks queued carriers in a maintenance window and pushes their
  /// (re-planned) changes. Stops and re-queues the remainder if the breaker
  /// trips again mid-drain.
  void drain(RobustLaunchReport& report,
             std::unordered_map<netsim::CarrierId, std::size_t>& record_index);

  void tally(const RobustLaunchRecord& record, RobustLaunchReport& report) const;

  void save_state(const io::LaunchStateStore& store) const;
  void restore_state(const io::LaunchState& state);
};

}  // namespace auric::smartlaunch
