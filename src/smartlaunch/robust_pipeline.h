// Fault-tolerant launch pipeline (robust counterpart of SmartLaunchPipeline).
//
// The paper's production run (Table 5, §5) loses 29 of 143 flagged launches
// to EMS timeouts and premature out-of-band unlocks; the naive pipeline
// reproduces those fall-outs but treats every fault as terminal. This module
// adds the recovery paths a production push layer needs:
//
//   chunking        change sets are split so each push fits the EMS deadline
//                   (command_count / concurrency * command_ms <= deadline),
//                   eliminating structural timeouts;
//   retry/backoff   transient EMS timeouts are retried under a bounded
//                   util::RetryPolicy with deterministic exponential
//                   backoff; carrier lock state is re-checked between
//                   attempts and the push aborts cleanly if an engineer
//                   unlocked the carrier out-of-band;
//   apply journal   per-carrier count of settings already written, so a
//                   retried or resumed push continues after the last landed
//                   setting instead of re-pushing from scratch (pushes are
//                   idempotent at the setting level — re-writing a value is
//                   harmless — but the journal keeps retries inside the
//                   deadline and makes partial progress durable);
//   circuit breaker consecutive EMS faults trip a util::CircuitBreaker;
//                   while open, launches degrade to "vendor config only,
//                   queue for later" and the queue is drained once the
//                   half-open probe succeeds (re-locking each queued carrier
//                   in a maintenance window — the simulator counts those
//                   disruptive lock cycles).
//
// Everything is deterministic under a fixed seed: two runs over the same
// cohort produce identical counters.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "smartlaunch/controller.h"
#include "smartlaunch/ems.h"
#include "smartlaunch/kpi.h"
#include "util/retry.h"

namespace auric::smartlaunch {

enum class RobustOutcome : std::uint8_t {
  kNoChangeNeeded = 0,  ///< Auric agreed with the vendor configuration
  kImplemented,         ///< all changes pushed, no recovery needed
  kRecovered,           ///< implemented, but only after retry/resume/re-lock
  kQueuedDegraded,      ///< breaker open: on air vendor-only, queued for later
  kAbortedUnlocked,     ///< out-of-band unlock observed; aborted cleanly
  kFalloutTerminal,     ///< retries exhausted or persistent EMS fault
};

const char* robust_outcome_name(RobustOutcome outcome);

/// Executes one change set against the EMS with chunking, retry/backoff, an
/// apply journal, and circuit-breaker accounting. Shared by the robust
/// pipeline and the operation replay so both report identical semantics.
class RobustPushExecutor {
 public:
  struct Options {
    util::RetryPolicy retry;
    util::CircuitBreaker::Options breaker;
    /// Settings held back from each chunk as safety margin below the EMS
    /// structural limit (guards against command_ms jitter in a real EMS).
    std::size_t chunk_margin = 0;
    std::uint64_t seed = 31337;
  };

  struct Result {
    RobustOutcome outcome = RobustOutcome::kImplemented;
    std::size_t applied = 0;   ///< settings landed in total (journal included)
    int attempts = 0;          ///< pushes issued this call
    int chunks = 0;            ///< chunks the plan was split into
    int retries = 0;           ///< failed pushes that were retried/resumed
    double backoff_ms = 0.0;   ///< simulated backoff waited this call
  };

  explicit RobustPushExecutor(EmsSimulator& ems);  // default Options
  RobustPushExecutor(EmsSimulator& ems, Options options);

  /// Circuit-breaker admission for one launch. True when the breaker is
  /// open (the launch should go vendor-only and be deferred); advances the
  /// open-state cooldown, so call exactly once per launch.
  bool should_defer();

  /// Pushes `settings` to a locked carrier, chunked and retried. Resumes
  /// from the carrier's journal entry if a previous call partially applied.
  /// Records success/failure with the breaker (clean unlock aborts are not
  /// EMS health signals and leave the breaker untouched).
  Result execute(netsim::CarrierId carrier, const std::vector<config::MoSetting>& settings);

  /// Largest chunk the executor will push at once: the EMS structural limit
  /// (optionally tightened by RetryPolicy::attempt_deadline_ms) minus the
  /// configured margin, floored at one setting.
  std::size_t chunk_size() const;

  /// Settings already landed for `carrier` (0 when fully applied/unknown).
  std::size_t journal_applied(netsim::CarrierId carrier) const;

  const util::CircuitBreaker& breaker() const { return breaker_; }
  const Options& options() const { return options_; }

 private:
  EmsSimulator* ems_;
  Options options_;
  util::CircuitBreaker breaker_;
  std::unordered_map<netsim::CarrierId, std::size_t> journal_;
};

struct RobustLaunchRecord {
  netsim::CarrierId carrier = netsim::kInvalidCarrier;
  RobustOutcome outcome = RobustOutcome::kNoChangeNeeded;
  std::size_t changes_planned = 0;
  std::size_t changes_applied = 0;
  int attempts = 0;
  int chunks = 0;
  int retries = 0;
  double backoff_ms = 0.0;
  bool drained_late = false;  ///< queued-degraded launch completed on drain
  double post_quality = 1.0;
};

/// Table-5-style aggregate with the recovery modes broken out.
struct RobustLaunchReport {
  std::size_t launches = 0;
  std::size_t change_recommended = 0;
  std::size_t implemented = 0;       ///< includes recovered and drained
  std::size_t recovered = 0;         ///< needed >= 1 retry/resume/re-lock
  std::size_t chunked = 0;           ///< plan split into > 1 chunk
  std::size_t queued_degraded = 0;   ///< deferred while the breaker was open
  std::size_t drained = 0;           ///< deferred launches later implemented
  std::size_t still_queued = 0;      ///< deferrals unresolved at end of run
  std::size_t aborted_unlocked = 0;  ///< clean aborts on out-of-band unlock
  std::size_t fallout_terminal = 0;  ///< unrecoverable EMS fall-outs
  std::size_t parameters_changed = 0;
  std::size_t retries = 0;
  int breaker_trips = 0;
  double total_backoff_ms = 0.0;
  std::vector<RobustLaunchRecord> records;

  /// Launches that ended without their changes on air: terminal EMS
  /// fall-outs, clean unlock aborts, and still-queued deferrals. The
  /// invariant change_recommended == implemented + terminal_fallouts()
  /// holds after run().
  std::size_t terminal_fallouts() const {
    return fallout_terminal + aborted_unlocked + still_queued;
  }
};

struct RobustPipelineOptions {
  /// Same out-of-band unlock fault environment as the naive pipeline (and
  /// the same per-carrier hash draw, so naive/robust runs see identical
  /// engineer behavior and differ only in how they respond).
  double premature_unlock_prob = 0.14;
  std::uint64_t seed = 31337;
  RobustPushExecutor::Options executor;
};

/// Drop-in robust counterpart of SmartLaunchPipeline: same launch flow
/// (pre-check -> plan -> push -> unlock -> post-check), with the fault
/// tolerance described above.
class RobustLaunchController {
 public:
  RobustLaunchController(const LaunchController& controller, EmsSimulator& ems,
                         const KpiModel& kpi, RobustPipelineOptions options = {});

  /// Launches one carrier; does not drain the deferred queue.
  RobustLaunchRecord launch(netsim::CarrierId carrier);

  /// Launches a batch; drains the deferred queue whenever the breaker
  /// closes after a successful half-open probe, and once more at the end.
  RobustLaunchReport run(std::span<const netsim::CarrierId> carriers);

  std::size_t deferred_count() const { return deferred_.size(); }
  const RobustPushExecutor& executor() const { return executor_; }

 private:
  const LaunchController* controller_;
  EmsSimulator* ems_;
  const KpiModel* kpi_;
  RobustPipelineOptions options_;
  RobustPushExecutor executor_;
  std::vector<netsim::CarrierId> deferred_;

  /// Re-locks queued carriers in a maintenance window and pushes their
  /// (re-planned) changes. Stops and re-queues the remainder if the breaker
  /// trips again mid-drain.
  void drain(RobustLaunchReport& report,
             std::unordered_map<netsim::CarrierId, std::size_t>& record_index);

  void tally(const RobustLaunchRecord& record, RobustLaunchReport& report) const;
};

}  // namespace auric::smartlaunch
