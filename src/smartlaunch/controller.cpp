#include "smartlaunch/controller.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/rng.h"

namespace auric::smartlaunch {

using config::CarrierConfig;
using config::MoSetting;
using config::ValueIndex;
using config::cell_mo_path;
using config::cell_relation_mo_path;
using config::freq_relation_mo_path;

std::vector<SlotRef> applicable_slots(const netsim::Topology& topology,
                                      const config::ParamCatalog& catalog,
                                      const config::ConfigAssignment& assignment,
                                      netsim::CarrierId carrier) {
  std::vector<SlotRef> slots;
  const netsim::Carrier& c = topology.carrier(carrier);

  const auto& singular_ids = catalog.singular_ids();
  for (std::size_t si = 0; si < singular_ids.size(); ++si) {
    const auto entity = static_cast<std::size_t>(carrier);
    if (assignment.singular[si].value[entity] == config::kUnset) continue;
    slots.push_back({singular_ids[si], entity, netsim::kInvalidCarrier, cell_mo_path(c)});
  }

  const auto& pairwise_ids = catalog.pairwise_ids();
  const std::size_t begin = topology.edge_offsets[static_cast<std::size_t>(carrier)];
  const std::size_t end = topology.edge_offsets[static_cast<std::size_t>(carrier) + 1];
  for (std::size_t e = begin; e < end; ++e) {
    const netsim::Carrier& neighbor = topology.carrier(topology.edges[e].to);
    for (std::size_t pi = 0; pi < pairwise_ids.size(); ++pi) {
      if (assignment.pairwise[pi].value[e] == config::kUnset) continue;
      const config::ParamDef& def = catalog.at(pairwise_ids[pi]);
      slots.push_back({pairwise_ids[pi], e, neighbor.id,
                       def.scope == config::PairScope::kPerEdge
                           ? cell_relation_mo_path(c, neighbor)
                           : freq_relation_mo_path(c, neighbor)});
    }
  }
  return slots;
}

LaunchController::LaunchController(const core::AuricEngine& engine,
                                   const config::Rulebook& rulebook,
                                   const config::ConfigAssignment& assignment,
                                   VendorFaultOptions vendor_faults, PushPolicy push_policy,
                                   std::uint64_t seed)
    : engine_(&engine),
      rulebook_(&rulebook),
      assignment_(&assignment),
      vendor_faults_(vendor_faults),
      push_policy_(push_policy),
      seed_(seed) {}

CarrierConfig LaunchController::slots_to_config(
    netsim::CarrierId carrier,
    const std::function<ValueIndex(const SlotRef&)>& value_of) const {
  CarrierConfig out;
  out.carrier = carrier;
  for (const SlotRef& slot : applicable_slots(engine_->topology(), engine_->catalog(),
                                              *assignment_, carrier)) {
    const ValueIndex value = value_of(slot);
    if (value == config::kUnset) continue;
    out.settings.push_back({slot.mo_path, slot.param, value});
  }
  config::canonicalize(out);
  return out;
}

namespace {

/// Intended value of a slot (the engineering-practice target).
ValueIndex intended_of(const config::ParamCatalog& catalog,
                       const config::ConfigAssignment& assignment, const SlotRef& slot) {
  const config::ParamDef& def = catalog.at(slot.param);
  const auto& ids = def.kind == config::ParamKind::kSingular ? catalog.singular_ids()
                                                             : catalog.pairwise_ids();
  const std::size_t pos =
      static_cast<std::size_t>(std::find(ids.begin(), ids.end(), slot.param) - ids.begin());
  const config::ParamColumn& col = def.kind == config::ParamKind::kSingular
                                       ? assignment.singular[pos]
                                       : assignment.pairwise[pos];
  return col.intended[slot.entity];
}

}  // namespace

namespace {

/// The vendor's value for one slot, with faults injected deterministically.
ValueIndex vendor_value_of(const netsim::Topology& topology,
                           const config::ParamCatalog& catalog,
                           const config::ConfigAssignment& assignment,
                           const config::Rulebook& rulebook,
                           const VendorFaultOptions& faults, std::uint64_t seed,
                           netsim::CarrierId carrier, const SlotRef& slot) {
  const netsim::Carrier& c = topology.carrier(carrier);
  const bool stale_template =
      static_cast<double>(
          util::hash_combine({seed, 0x57A1EULL, static_cast<std::uint64_t>(carrier)}) >> 11) *
          0x1.0p-53 <
      faults.stale_template_prob;
  const std::uint64_t slot_hash = util::hash_combine(
      {seed, 0xF4B1ULL, static_cast<std::uint64_t>(carrier),
       static_cast<std::uint64_t>(slot.param), static_cast<std::uint64_t>(slot.entity)});
  const double u = static_cast<double>(slot_hash >> 11) * 0x1.0p-53;

  if (stale_template && u < faults.stale_slot_frac) {
    // Out-of-date template: the codified rule-book value, which misses the
    // market team's newer tuning.
    return slot.neighbor == netsim::kInvalidCarrier
               ? rulebook.lookup(slot.param, c)
               : rulebook.lookup(slot.param, c, topology.carrier(slot.neighbor));
  }
  ValueIndex value = intended_of(catalog, assignment, slot);
  if (u > 1.0 - faults.typo_prob) {
    // Data-entry typo: off by one tuning step.
    const config::ParamDef& def = catalog.at(slot.param);
    const int step_scale = std::max(1, def.domain.size() / 48);
    value = def.domain.clamp(static_cast<std::int64_t>(value) +
                             ((slot_hash >> 60) & 1 ? step_scale : -step_scale));
  }
  return value;
}

}  // namespace

CarrierConfig LaunchController::vendor_config(netsim::CarrierId carrier) const {
  return slots_to_config(carrier, [&](const SlotRef& slot) {
    return vendor_value_of(engine_->topology(), engine_->catalog(), *assignment_, *rulebook_,
                           vendor_faults_, seed_, carrier, slot);
  });
}

std::vector<LaunchController::PlannedChange> LaunchController::plan_changes_detailed(
    netsim::CarrierId carrier, std::vector<PlannedChange>* vendor) const {
  std::vector<PlannedChange> changes;
  for (const SlotRef& slot : applicable_slots(engine_->topology(), engine_->catalog(),
                                              *assignment_, carrier)) {
    const ValueIndex from_vendor =
        vendor_value_of(engine_->topology(), engine_->catalog(), *assignment_, *rulebook_,
                        vendor_faults_, seed_, carrier, slot);
    if (vendor != nullptr) vendor->push_back({slot, from_vendor, from_vendor});
    const core::Recommendation rec =
        engine_->recommend(slot.param, carrier, slot.neighbor, /*exclude_self=*/true);
    if (rec.source == core::RecommendationSource::kRulebookDefault) continue;
    if (rec.support < push_policy_.min_support || rec.votes < push_policy_.min_votes) continue;
    if (rec.value == from_vendor) continue;
    changes.push_back({slot, from_vendor, rec.value});
  }
  return changes;
}

double LaunchController::launch_quality(netsim::CarrierId carrier,
                                        const std::vector<PlannedChange>& changes,
                                        std::size_t applied, const KpiOptions& kpi) const {
  applied = std::min(applied, changes.size());
  const config::ParamCatalog& catalog = engine_->catalog();
  double quality = 1.0;
  for (const SlotRef& slot :
       applicable_slots(engine_->topology(), catalog, *assignment_, carrier)) {
    ValueIndex value = vendor_value_of(engine_->topology(), catalog, *assignment_, *rulebook_,
                                       vendor_faults_, seed_, carrier, slot);
    // The applied prefix of the plan overrides the vendor value. Slot
    // identity is (param, entity): MO paths can collide across freq
    // relations, slots cannot.
    for (std::size_t i = 0; i < applied; ++i) {
      if (changes[i].slot.param == slot.param && changes[i].slot.entity == slot.entity) {
        value = changes[i].new_value;
        break;
      }
    }
    const ValueIndex intended = intended_of(catalog, *assignment_, slot);
    if (value == config::kUnset || value == intended) continue;
    const config::ParamDef& def = catalog.at(slot.param);
    const int step_scale = std::max(1, def.domain.size() / 48);
    const double deviation =
        std::fabs(static_cast<double>(value - intended)) / static_cast<double>(step_scale);
    quality -= kpi.penalty_per_deviation * std::min(3.0, deviation);
  }
  if (applied > 0 && applied < changes.size()) {
    quality -= kpi.partial_apply_penalty * static_cast<double>(changes.size() - applied);
  }
  return std::max(kpi.min_quality, quality);
}

CarrierConfig LaunchController::intent_config(netsim::CarrierId carrier) const {
  return slots_to_config(carrier, [&](const SlotRef& slot) {
    return intended_of(engine_->catalog(), *assignment_, slot);
  });
}

CarrierConfig LaunchController::auric_config(netsim::CarrierId carrier) const {
  return slots_to_config(carrier, [&](const SlotRef& slot) {
    const core::Recommendation rec =
        engine_->recommend(slot.param, carrier, slot.neighbor, /*exclude_self=*/true);
    // Only strongly vote-backed recommendations are push candidates: default
    // fallbacks carry no information the vendor config lacks, and thin or
    // contested votes do not justify touching a carrier (PushPolicy).
    if (rec.source == core::RecommendationSource::kRulebookDefault) return config::kUnset;
    if (rec.support < push_policy_.min_support || rec.votes < push_policy_.min_votes) {
      return config::kUnset;
    }
    return rec.value;
  });
}

std::vector<MoSetting> LaunchController::plan_changes(netsim::CarrierId carrier) const {
  return config::diff_config(vendor_config(carrier), auric_config(carrier));
}

}  // namespace auric::smartlaunch
