// SmartLaunch configuration controller (§5).
//
// For a newly launched carrier the controller
//   1. obtains the vendor-generated initial configuration (rule-book driven,
//      with realistic faults: stale rule-book templates and typos),
//   2. obtains Auric's recommendations and keeps the vote-backed ones
//      (rule-book-default fallbacks are never pushed — the vendor config
//      already encodes the rule-book, so pushing defaults could only undo
//      local knowledge),
//   3. diffs the two and emits only the mismatching settings, rendered as
//      managed-object writes for the EMS.
#pragma once

#include <cstdint>
#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "config/managed_object.h"
#include "config/rulebook.h"
#include "core/engine.h"
#include "netsim/topology.h"
#include "smartlaunch/kpi.h"
#include "util/rng.h"

namespace auric::smartlaunch {

/// One configurable slot of a carrier: a singular parameter, or a pair-wise
/// parameter toward one neighbor relation.
struct SlotRef {
  config::ParamId param = 0;
  std::size_t entity = 0;  ///< carrier id (singular) or edge index (pairwise)
  netsim::CarrierId neighbor = netsim::kInvalidCarrier;
  std::string mo_path;
};

/// Enumerates the configured slots of `carrier` (its activation profile),
/// with vendor MO paths, in canonical order.
std::vector<SlotRef> applicable_slots(const netsim::Topology& topology,
                                      const config::ParamCatalog& catalog,
                                      const config::ConfigAssignment& assignment,
                                      netsim::CarrierId carrier);

struct VendorFaultOptions {
  /// Probability the integrating vendor used an out-of-date rule-book
  /// template for this carrier (affects a block of parameters).
  double stale_template_prob = 0.10;
  /// Fraction of the carrier's slots a stale template corrupts.
  double stale_slot_frac = 0.50;
  /// Independent per-slot typo probability (off-by-one step-scale error).
  double typo_prob = 0.002;
};

/// Production push policy: a change is only pushed when its recommendation
/// carries strong evidence. §5 of the paper describes the conservative
/// stance ("we conservatively avoid ... to prevent any potential service
/// disruption"); a thinly supported vote that merely disagrees with the
/// vendor is not worth touching a carrier for.
struct PushPolicy {
  double min_support = 0.90;
  std::int32_t min_votes = 8;
};

class LaunchController {
 public:
  LaunchController(const core::AuricEngine& engine, const config::Rulebook& rulebook,
                   const config::ConfigAssignment& assignment,
                   VendorFaultOptions vendor_faults = {}, PushPolicy push_policy = {},
                   std::uint64_t seed = 4242);

  /// The vendor's initial configuration for `carrier` (faults injected
  /// deterministically per carrier).
  config::CarrierConfig vendor_config(netsim::CarrierId carrier) const;

  /// The engineering-intent configuration (ground-truth oracle; used by the
  /// pipeline's post-check KPI verdict, never by the controller's decision).
  config::CarrierConfig intent_config(netsim::CarrierId carrier) const;

  /// Auric's vote-backed desired configuration for `carrier`. Slots whose
  /// recommendation fell back to the rule-book default are omitted.
  config::CarrierConfig auric_config(netsim::CarrierId carrier) const;

  /// Settings to push: auric_config minus vendor_config.
  std::vector<config::MoSetting> plan_changes(netsim::CarrierId carrier) const;

  /// One planned change with its slot identity (so callers can write the
  /// value back into a ConfigAssignment — see OperationReplay).
  struct PlannedChange {
    SlotRef slot;
    config::ValueIndex vendor_value = config::kUnset;
    config::ValueIndex new_value = config::kUnset;
  };

  /// Slot-resolved variant of plan_changes: the vendor value of every
  /// applicable slot plus the push-policy-approved Auric corrections.
  /// `vendor` receives every slot's vendor value when non-null (the launch
  /// configuration the carrier goes on air with).
  std::vector<PlannedChange> plan_changes_detailed(
      netsim::CarrierId carrier, std::vector<PlannedChange>* vendor = nullptr) const;

  /// Service quality `carrier` would show on air with its vendor
  /// configuration overlaid by the first `applied` of `changes` (the state a
  /// faulted push leaves behind). The score uses the KpiModel deviation math
  /// against engineering intent, plus KpiOptions::partial_apply_penalty per
  /// unapplied change when 0 < applied < changes.size() — the post-check
  /// oracle behind the KPI-gated rollback.
  double launch_quality(netsim::CarrierId carrier, const std::vector<PlannedChange>& changes,
                        std::size_t applied, const KpiOptions& kpi = {}) const;

 private:
  const core::AuricEngine* engine_;
  const config::Rulebook* rulebook_;
  const config::ConfigAssignment* assignment_;
  VendorFaultOptions vendor_faults_;
  PushPolicy push_policy_;
  std::uint64_t seed_;

  config::CarrierConfig slots_to_config(
      netsim::CarrierId carrier,
      const std::function<config::ValueIndex(const SlotRef&)>& value_of) const;
};

}  // namespace auric::smartlaunch
