// Two-month operation replay (§5 of the paper).
//
// The paper reports "two months of experience of running Auric for very
// large operational LTE networks". This module replays that window as a
// discrete-time simulation:
//   - every day a batch of new carriers launches through the SmartLaunch
//     pipeline (vendor integration -> Auric diff -> push -> unlock);
//   - the launch configuration (vendor values + successfully pushed Auric
//     corrections) REPLACES the carrier's configuration in the network
//     snapshot — the network state evolves as operations run;
//   - on a fixed cadence (weekly by default) the Auric engine re-learns
//     from the evolved snapshot, exactly as a production deployment would
//     refresh its models from the nightly inventory feed.
//
// The replay exposes the weekly operational counters (Table 5 sliced over
// time) and the mean post-launch KPI quality, which trends upward as the
// pushed corrections accumulate.
//
// Crash-safe resume: with ReplayOptions::state_dir set, the replay
// checkpoints its full dynamic state (EMS streams, apply journal, deferred
// queue, breaker, evolving-state delta, day/launch cursor and every report
// counter) through an io::LaunchStateStore after every launch, every
// drained carrier and every completed day. A replay killed mid-window and
// restarted with ReplayOptions::resume converges to final counters
// bit-identical with an uninterrupted run — all randomness is either
// stateless (per-carrier hashes) or carried in the persisted stream
// positions, and doubles are persisted as hexfloats.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "config/rulebook.h"
#include "core/engine.h"
#include "io/launch_state.h"
#include "netsim/attributes.h"
#include "netsim/topology.h"
#include "smartlaunch/controller.h"
#include "smartlaunch/ems.h"
#include "smartlaunch/pipeline.h"
#include "smartlaunch/robust_pipeline.h"

namespace auric::core {
class ModelWatch;
}

namespace auric::smartlaunch {

struct ReplayOptions {
  int days = 60;                  ///< the paper's two-month window
  int launches_per_day = 21;      ///< ~1251 launches over 60 days
  int relearn_every_days = 7;     ///< engine refresh cadence
  VendorFaultOptions vendor_faults;
  PushPolicy push_policy;
  PipelineOptions pipeline;
  EmsOptions ems;
  /// When true, pushes go through the fault-tolerant path (chunking,
  /// retry/backoff, apply journal, circuit breaker with a deferred queue
  /// drained at end of day) instead of the naive one-shot push.
  bool robust = false;
  RobustPushExecutor::Options robust_executor;
  /// KPI gate applied to every robust push (replayed launches route through
  /// RobustLaunchController::push_gated_launch): a fault-damaged apply that
  /// breaches the quality floors is rolled back, re-attempted once, and the
  /// carrier quarantined on a second breach. Ignored in naive mode.
  RollbackOptions rollback;
  std::uint64_t seed = 2024;
  /// EMS shards: carriers are partitioned across this many independent
  /// EmsSimulators (keyed by market; see smartlaunch::ShardedEms), each with
  /// its own fault streams, circuit breaker, apply journal and deferred
  /// queue, and each day's launch stream executes shard-parallel on the
  /// process worker pool. 1 keeps the legacy single-EMS serial path,
  /// byte-identical to earlier releases. With fault injection disabled the
  /// weekly summaries are invariant in the shard count (all remaining
  /// randomness is stateless per-carrier hashing); fault streams are
  /// shard-local by design, so fault-enabled runs are deterministic for a
  /// given N but not comparable across different N.
  int shards = 1;
  /// When non-empty, checkpoint the replay state into this directory after
  /// every launch, drained carrier and completed day (see header comment).
  /// Sharded runs (shards > 1) checkpoint at day granularity instead: the
  /// parallel launch stream has no serializable mid-day cursor.
  std::string state_dir;
  /// Checkpoint durability knobs (journal vs. legacy rewrite layout, fsync,
  /// compaction thresholds), passed to the io::LaunchStateStore.
  io::LaunchStateStore::Options checkpoint;
  /// Restart from the checkpoint in state_dir (requires the replay to be
  /// constructed with the same inputs and options as the killed run).
  bool resume = false;
  /// Simulated kill switch: checkpoint and stop once this many launches
  /// have executed in total, counting resumed progress (0 = full window).
  /// Sharded runs round the stop up to the end of the day that crosses the
  /// threshold (day granularity matches the sharded checkpoint cadence).
  int stop_after_launches = 0;
  /// Attach a core::ModelWatch to the engine: per-parameter recommendation
  /// telemetry, KPI-gate outcome joins and day-over-day drift gauges
  /// (DESIGN.md §17). Metrics only — weekly output stays byte-identical
  /// with the watch on or off. Watch state is in-memory (not checkpointed):
  /// a resumed run's drift gauges restart from its resume day.
  bool model_watch = true;
  /// How the relearn cadence refreshes the engine. kIncremental applies the
  /// days' slot deltas in place (AuricEngine::incremental_relearn) instead
  /// of rebuilding every parameter table — O(delta) per relearn, and with
  /// relearn_drift_threshold <= 0 byte-identical to kFull (CI-enforced, at
  /// any shard/thread count, including kill-and-resume: a resumed run
  /// rebuilds its engine from the checkpointed state, which the exactness
  /// guarantee makes indistinguishable from the maintained one).
  core::RelearnMode relearn_mode = core::RelearnMode::kFull;
  /// Width of the per-parameter fan-out inside a relearn (full build and
  /// delta application both); 1 = the serial loop, byte-identical at any
  /// width.
  int relearn_threads = 1;
  /// Incremental mode's escape hatch: every Nth relearn is a full rebuild
  /// anyway (0 = never), bounding any divergence an approximate
  /// relearn_drift_threshold > 0 could accumulate. Irrelevant for exactness
  /// at the default threshold, but kept on so a production-style window
  /// never drifts unboundedly far from the from-scratch model.
  int full_rebuild_every = 4;
  /// Re-test gate forwarded to IncrementalRelearnOptions::drift_threshold:
  /// <= 0 re-tests every touched parameter (exact); > 0 re-tests only
  /// parameters whose changed-row fraction reaches it OR whose ModelWatch
  /// drift p-value (when model_watch is on) falls below the engine's alpha.
  double relearn_drift_threshold = 0.0;
};

///// Recovery-mode counters (populated when ReplayOptions::robust).
struct RobustReplayTotals {
  std::size_t recovered = 0;         ///< implemented only after retry/resume
  std::size_t chunked = 0;           ///< plans split into > 1 push chunk
  std::size_t queued_degraded = 0;   ///< deferred while the breaker was open
  std::size_t drained = 0;           ///< deferred launches later implemented
  std::size_t still_queued = 0;      ///< deferrals unresolved at end of window
  std::size_t aborted_unlocked = 0;  ///< clean aborts on out-of-band unlock
  std::size_t fallout_terminal = 0;  ///< unrecoverable EMS fall-outs
  std::size_t rolled_back = 0;       ///< launches ending in kRolledBack
  std::size_t rollbacks = 0;         ///< rollback pushes completed
  std::size_t rollback_retries = 0;  ///< transient faults retried in rollbacks
  std::size_t rollback_failed = 0;   ///< rollback pushes that faulted terminally
  std::size_t reattempts = 0;        ///< forward pushes re-issued after rollback
  std::size_t quarantined = 0;       ///< carriers that hit the rollback cap
  std::size_t retries = 0;
  int breaker_trips = 0;
};

struct WeeklySummary {
  int week = 0;
  std::size_t launches = 0;
  std::size_t change_recommended = 0;
  std::size_t implemented = 0;
  std::size_t fallouts = 0;
  std::size_t rolled_back = 0;   ///< KPI-gated rollbacks this week (robust mode)
  std::size_t quarantined = 0;   ///< carriers quarantined this week (robust mode)
  std::size_t parameters_changed = 0;
  double mean_launched_kpi = 0.0;  ///< post-check quality of this week's cohort
};

struct ReplayReport {
  std::vector<WeeklySummary> weeks;
  SmartLaunchReport totals;       ///< Table 5 aggregate over the window
  RobustReplayTotals robust;      ///< recovery breakdown (robust mode only)
  double initial_network_kpi = 0.0;
  double final_network_kpi = 0.0;
  int engine_relearns = 0;
  /// True when the window stopped early on a drain request (SIGTERM/SIGINT
  /// via util::drain): the in-progress day finished, the final checkpoint
  /// sealed, and --resume continues bit-identically.
  bool drained = false;
};

class OperationReplay {
 public:
  /// One slot write as recorded by a parallel shard worker. Workers write
  /// the network state directly (launches touch disjoint slots) but must
  /// not touch the delta map; the main thread folds recorded writes into it
  /// during the per-day merge.
  struct RecordedWrite {
    bool pairwise = false;
    std::size_t pos = 0;     ///< position in the singular/pairwise column list
    std::size_t entity = 0;  ///< carrier id (singular) or edge index (pairwise)
    config::ValueIndex value = 0;
  };

  /// Copies `assignment` as the evolving network state. `topology`,
  /// `schema`, `catalog` and `rulebook_model` must outlive the replay.
  OperationReplay(const netsim::Topology& topology, const netsim::AttributeSchema& schema,
                  const config::ParamCatalog& catalog,
                  const config::GroundTruthModel& ground_truth,
                  config::ConfigAssignment assignment, ReplayOptions options = {});
  ~OperationReplay();  // out-of-line: ModelWatch is forward-declared here

  /// Runs the full window and returns the report. Each carrier launches at
  /// most once; the launch order is a seeded shuffle of the inventory.
  ReplayReport run();

  /// The evolved snapshot (valid after run()).
  const config::ConfigAssignment& network_state() const { return state_; }

  /// The attached model watch (null when ReplayOptions::model_watch is
  /// false). Live during run() — the /modelz endpoint reads it mid-window.
  const core::ModelWatch* model_watch() const { return watch_.get(); }

 private:
  /// Slot identity for the evolving-state delta: (pairwise, column position,
  /// entity). Ordered so checkpoints serialize deterministically.
  using SlotKey = std::tuple<bool, std::size_t, std::size_t>;

  const netsim::Topology* topology_;
  const netsim::AttributeSchema* schema_;
  const config::ParamCatalog* catalog_;
  const config::GroundTruthModel* ground_truth_;
  config::ConfigAssignment state_;
  ReplayOptions options_;
  std::unique_ptr<core::ModelWatch> watch_;

  /// Slot writes since construction (delta vs. the initial assignment),
  /// tracked only when checkpointing is enabled.
  bool track_delta_ = false;
  std::map<SlotKey, config::ValueIndex> delta_;
  /// The delta frozen at the last engine re-learn (what the engine saw).
  std::map<SlotKey, config::ValueIndex> relearn_delta_;

  /// Writes a slot value into the evolving state. With `record` set the
  /// write is appended there instead of the delta map (thread-safe: shard
  /// workers only ever touch their own carriers' cells and their own record
  /// vector); without it the delta map is updated directly (serial path).
  void apply_slot(const SlotRef& slot, config::ValueIndex value,
                  std::vector<RecordedWrite>* record = nullptr);

  double mean_network_kpi() const;
};

}  // namespace auric::smartlaunch
