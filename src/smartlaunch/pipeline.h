// The SmartLaunch pipeline (§5): pre-checks -> Auric configuration push ->
// unlock -> post-checks, with the fall-out modes the paper reports
// (premature out-of-band unlocks and EMS timeouts).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "smartlaunch/controller.h"
#include "smartlaunch/ems.h"
#include "smartlaunch/kpi.h"

namespace auric::smartlaunch {

enum class LaunchOutcome : std::uint8_t {
  kNoChangeNeeded = 0,   ///< Auric agreed with the vendor configuration
  kImplemented,          ///< changes pushed successfully before unlock
  kFalloutUnlocked,      ///< engineer unlocked out-of-band; push refused
  kFalloutTimeout,       ///< EMS timed out on the change set
};

const char* launch_outcome_name(LaunchOutcome outcome);

struct LaunchRecord {
  netsim::CarrierId carrier = netsim::kInvalidCarrier;
  LaunchOutcome outcome = LaunchOutcome::kNoChangeNeeded;
  std::size_t changes_planned = 0;
  std::size_t changes_applied = 0;
  double post_quality = 1.0;  ///< post-check KPI score
};

/// Table 5 aggregate.
struct SmartLaunchReport {
  std::size_t launches = 0;
  std::size_t change_recommended = 0;  ///< carriers with >= 1 planned change
  std::size_t implemented = 0;
  std::size_t fallout_unlocked = 0;
  std::size_t fallout_timeout = 0;
  std::size_t parameters_changed = 0;  ///< settings applied on implemented carriers
  std::vector<LaunchRecord> records;
};

struct PipelineOptions {
  /// Probability an engineer unlocks the carrier out-of-band before the
  /// controller gets to push (fall-out reason (a) of §5).
  double premature_unlock_prob = 0.14;
  std::uint64_t seed = 31337;
};

class SmartLaunchPipeline {
 public:
  SmartLaunchPipeline(const LaunchController& controller, EmsSimulator& ems,
                      const KpiModel& kpi, PipelineOptions options = {});

  /// Launches one carrier through pre-check -> push -> unlock -> post-check.
  LaunchRecord launch(netsim::CarrierId carrier);

  /// Launches a batch and aggregates the Table 5 counters.
  SmartLaunchReport run(std::span<const netsim::CarrierId> carriers);

 private:
  const LaunchController* controller_;
  EmsSimulator* ems_;
  const KpiModel* kpi_;
  PipelineOptions options_;
};

}  // namespace auric::smartlaunch
