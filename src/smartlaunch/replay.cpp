#include "smartlaunch/replay.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/engine.h"
#include "core/model_watch.h"
#include "io/launch_state.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smartlaunch/kpi.h"
#include "smartlaunch/sharded_ems.h"
#include "util/drain.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/strings.h"

namespace auric::smartlaunch {

namespace {

/// Replay-level instruments: how often a run resumed from a checkpoint, how
/// many launches replayed, and how long each weekly re-learn took.
struct ReplayMetrics {
  obs::Counter& resumes;
  obs::Counter& launches;
  obs::Histogram& relearn_seconds;
};

ReplayMetrics& replay_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static ReplayMetrics m{
      reg.counter("auric_replay_resumes_total", "replay runs resumed from a checkpoint"),
      reg.counter("auric_replay_launches_total", "carrier launches replayed"),
      reg.histogram("auric_engine_relearn_seconds", obs::default_seconds_bounds(),
                    "wall-clock duration of one engine re-learn (s)")};
  return m;
}

}  // namespace

OperationReplay::OperationReplay(const netsim::Topology& topology,
                                 const netsim::AttributeSchema& schema,
                                 const config::ParamCatalog& catalog,
                                 const config::GroundTruthModel& ground_truth,
                                 config::ConfigAssignment assignment, ReplayOptions options)
    : topology_(&topology),
      schema_(&schema),
      catalog_(&catalog),
      ground_truth_(&ground_truth),
      state_(std::move(assignment)),
      options_(options) {
  if (options_.model_watch) {
    watch_ = std::make_unique<core::ModelWatch>(catalog);
  }
}

OperationReplay::~OperationReplay() = default;

void OperationReplay::apply_slot(const SlotRef& slot, config::ValueIndex value,
                                 std::vector<RecordedWrite>* record) {
  const config::ParamDef& def = catalog_->at(slot.param);
  const bool pairwise = def.kind == config::ParamKind::kPairwise;
  const auto& ids = pairwise ? catalog_->pairwise_ids() : catalog_->singular_ids();
  const std::size_t pos =
      static_cast<std::size_t>(std::find(ids.begin(), ids.end(), slot.param) - ids.begin());
  config::ParamColumn& col = pairwise ? state_.pairwise[pos] : state_.singular[pos];
  col.value[slot.entity] = value;
  // Intent is unchanged: the launch config is what the network RUNS, not
  // what engineering ultimately wants; cause tracking is reset to neutral.
  col.cause[slot.entity] = config::Cause::kDefault;
  if (record != nullptr) {
    record->push_back({pairwise, pos, slot.entity, value});
  } else if (track_delta_) {
    delta_[{pairwise, pos, slot.entity}] = value;
  }
}

namespace {

/// Quality of one carrier under `state` — same math as KpiModel, computed
/// over the carrier's own slots only (KpiModel scans the whole network,
/// which would be quadratic across a launch stream).
double carrier_quality(const netsim::Topology& topology, const config::ParamCatalog& catalog,
                       const config::ConfigAssignment& state, netsim::CarrierId carrier,
                       const KpiOptions& options = {}) {
  double quality = 1.0;
  const auto penalize = [&](const config::ParamColumn& col, const config::ParamDef& def,
                            std::size_t slot) {
    if (col.value[slot] == config::kUnset || col.value[slot] == col.intended[slot]) return;
    const int step_scale = std::max(1, def.domain.size() / 48);
    const double deviation = std::fabs(static_cast<double>(col.value[slot] - col.intended[slot])) /
                             static_cast<double>(step_scale);
    quality -= options.penalty_per_deviation * std::min(3.0, deviation);
  };
  for (std::size_t si = 0; si < state.singular.size(); ++si) {
    penalize(state.singular[si], catalog.at(catalog.singular_ids()[si]),
             static_cast<std::size_t>(carrier));
  }
  const std::size_t begin = topology.edge_offsets[static_cast<std::size_t>(carrier)];
  const std::size_t end = topology.edge_offsets[static_cast<std::size_t>(carrier) + 1];
  for (std::size_t pi = 0; pi < state.pairwise.size(); ++pi) {
    const config::ParamDef& def = catalog.at(catalog.pairwise_ids()[pi]);
    for (std::size_t e = begin; e < end; ++e) penalize(state.pairwise[pi], def, e);
  }
  return std::max(options.min_quality, quality);
}

/// Per-launch facts a shard worker records for the main-thread merge. The
/// merge replays the serial counter arithmetic in global launch order, so
/// the aggregate report/week counters (and the FP-summed weekly KPI) come
/// out identical to a single serial stream over the same per-launch facts.
struct ShardLaunchResult {
  bool change_recommended = false;
  bool deferred_now = false;  ///< breaker open: launched vendor-only, queued
  bool robust_used = false;   ///< outcome derives from `rec`, not `outcome`
  LaunchOutcome outcome = LaunchOutcome::kNoChangeNeeded;
  std::size_t applied = 0;
  RobustLaunchRecord rec;
  double quality = 0.0;
  std::vector<OperationReplay::RecordedWrite> writes;
};

/// Per-drained-carrier facts from one shard's end-of-day drain.
struct ShardDrainResult {
  bool no_change = false;  ///< queue entry resolved with nothing to push
  RobustLaunchRecord rec;
  std::vector<OperationReplay::RecordedWrite> writes;
};

}  // namespace

double OperationReplay::mean_network_kpi() const {
  const KpiModel kpi(*topology_, *catalog_, state_);
  double total = 0.0;
  for (double q : kpi.all_qualities()) total += q;
  return total / static_cast<double>(topology_->carrier_count());
}

ReplayReport OperationReplay::run() {
  obs::ScopedSpan run_span("replay.run");
  ReplayMetrics& metrics = replay_metrics();
  ReplayReport report;

  const bool persist = !options_.state_dir.empty();
  track_delta_ = persist;
  const io::LaunchStateStore store(options_.state_dir.empty() ? "." : options_.state_dir,
                                   options_.checkpoint);

  // Launch order: a seeded shuffle; each carrier launches at most once.
  util::Rng rng(options_.seed);
  std::vector<netsim::CarrierId> queue;
  queue.reserve(topology_->carrier_count());
  for (std::size_t c = 0; c < topology_->carrier_count(); ++c) {
    queue.push_back(static_cast<netsim::CarrierId>(c));
  }
  rng.shuffle(queue);
  std::size_t cursor = 0;

  // One EMS per shard (shard 0 of a single-shard run is byte-identical to
  // the legacy single-EMS stream), one executor and one deferred queue per
  // shard: retries, breaker state and queued launches stay shard-local.
  const int shard_count = std::max(1, options_.shards);
  ShardedEms sharded(*topology_, shard_count, options_.ems);
  EmsSimulator& ems = sharded.shard(0);  // the single-shard path's instance
  std::vector<std::vector<netsim::CarrierId>> deferred(static_cast<std::size_t>(shard_count));
  const config::Rulebook rulebook(*ground_truth_, *catalog_);

  // Robust pushes route through a RobustLaunchController so replayed
  // launches share the KPI gate / rollback / quarantine semantics with the
  // pipeline. The gates own the executors in that mode; `executors[k]`
  // points at whichever instance is live for shard k so the
  // checkpoint/resume plumbing below is mode-agnostic.
  std::unique_ptr<KpiModel> gate_kpi;
  std::vector<std::unique_ptr<RobustLaunchController>> gates;
  std::vector<std::unique_ptr<RobustPushExecutor>> naive_executors;
  std::vector<RobustPushExecutor*> executors;
  for (int k = 0; k < shard_count; ++k) {
    RobustPushExecutor::Options exec_options = options_.robust_executor;
    exec_options.shard = k;
    naive_executors.push_back(
        std::make_unique<RobustPushExecutor>(sharded.shard(k), exec_options));
    executors.push_back(naive_executors.back().get());
  }

  // Engine + controller are rebuilt on the re-learn cadence so Auric keeps
  // learning from the evolving network.
  std::unique_ptr<core::AuricEngine> engine;
  std::unique_ptr<LaunchController> controller;
  core::AuricOptions engine_options;
  engine_options.learn_threads = std::max(1, options_.relearn_threads);
  // The controller captures engine state at construction, so BOTH relearn
  // modes rebuild it; only the engine itself is refreshed in place in
  // incremental mode.
  const auto bind_controller = [&] {
    controller = std::make_unique<LaunchController>(*engine, rulebook, state_,
                                                    options_.vendor_faults,
                                                    options_.push_policy, options_.seed);
    if (options_.robust) {
      if (gates.empty()) {
        // The gates' KPI oracle is controller->launch_quality (per carrier);
        // the model reference the constructor wants is only consulted on
        // paths the replay never takes (empty plans, internal deferral), so
        // one build at window start suffices — shared by every shard.
        gate_kpi = std::make_unique<KpiModel>(*topology_, *catalog_, state_);
        for (int k = 0; k < shard_count; ++k) {
          RobustPipelineOptions gate_options;
          gate_options.premature_unlock_prob = 0.0;  // the replay draws its own
          gate_options.seed = options_.seed;
          gate_options.executor = options_.robust_executor;
          gate_options.rollback = options_.rollback;
          gate_options.shard = k;
          gates.push_back(std::make_unique<RobustLaunchController>(
              *controller, sharded.shard(k), *gate_kpi, gate_options));
          executors[static_cast<std::size_t>(k)] = &gates.back()->executor_mutable();
        }
      } else {
        for (auto& gate : gates) gate->rebind(*controller);
      }
    }
  };
  const auto rebuild_engine = [&] {
    engine = std::make_unique<core::AuricEngine>(*topology_, *schema_, *catalog_, state_,
                                                 engine_options);
    if (watch_ != nullptr) engine->set_watch(watch_.get());
    bind_controller();
  };
  const auto relearn = [&] {
    obs::ScopedSpan relearn_span("replay.relearn");
    obs::ScopedTimer relearn_timer(metrics.relearn_seconds);
    // Incremental mode's escape hatch: every full_rebuild_every-th relearn
    // (counting the window-opening build as relearn 0) rebuilds from
    // scratch. engine_relearns is checkpointed, so a resumed run lands on
    // the same cadence position as an uninterrupted one.
    const bool forced_full = options_.full_rebuild_every > 0 &&
                             report.engine_relearns % options_.full_rebuild_every == 0;
    if (engine != nullptr && options_.relearn_mode == core::RelearnMode::kIncremental &&
        !forced_full) {
      core::IncrementalRelearnOptions inc;
      inc.drift_threshold = options_.relearn_drift_threshold;
      inc.watch = watch_.get();
      inc.threads = std::max(1, options_.relearn_threads);
      engine->incremental_relearn(state_, inc);
      bind_controller();
    } else {
      rebuild_engine();
    }
    relearn_delta_ = delta_;
    ++report.engine_relearns;
  };

  // Joins the KPI-gate verdict back to every parameter the launch planned
  // to change (DESIGN.md §17). Lock-free on the watch, so shard workers
  // call it directly; only terminal accept/rollback verdicts count.
  const auto record_gate_outcomes =
      [&](const RobustLaunchRecord& rec,
          const std::vector<LaunchController::PlannedChange>& changes) {
        if (watch_ == nullptr) return;
        const bool accepted = rec.outcome == RobustOutcome::kImplemented ||
                              rec.outcome == RobustOutcome::kRecovered;
        if (!accepted && rec.outcome != RobustOutcome::kRolledBack) return;
        for (const auto& change : changes) {
          watch_->record_gate_outcome(change.slot.param, accepted);
        }
      };

  WeeklySummary week;
  week.week = 1;
  double week_quality = 0.0;
  std::size_t week_quality_n = 0;
  const auto flush_week = [&] {
    week.mean_launched_kpi =
        week_quality_n > 0 ? week_quality / static_cast<double>(week_quality_n) : 0.0;
    report.weeks.push_back(week);
    week = WeeklySummary{};
    week.week = static_cast<int>(report.weeks.size()) + 1;
    week_quality = 0.0;
    week_quality_n = 0;
  };

  // Writes one delta cell back into the evolving state (resume path).
  const auto write_cell = [&](const io::LaunchState::SlotWrite& w) {
    auto& columns = w.pairwise ? state_.pairwise : state_.singular;
    if (w.param_pos >= columns.size()) {
      throw std::invalid_argument(store.dir() + ": persisted slot write names column " +
                                  std::to_string(w.param_pos) + " of " +
                                  std::to_string(columns.size()));
    }
    config::ParamColumn& col = columns[w.param_pos];
    if (w.entity >= col.value.size()) {
      throw std::invalid_argument(store.dir() + ": persisted slot write names entity " +
                                  std::to_string(w.entity) + " of " +
                                  std::to_string(col.value.size()));
    }
    col.value[w.entity] = w.value;
    col.cause[w.entity] = config::Cause::kDefault;
  };

  int start_day = 0;
  int start_launch = 0;
  if (persist && options_.resume && store.exists()) {
    metrics.resumes.inc();
    const io::LaunchState state = store.load();
    const auto progress_value = [&](const std::string& key) -> const std::string& {
      const std::string* value = state.find_progress(key);
      if (value == nullptr) {
        throw std::invalid_argument(store.dir() + "/progress.csv: missing key '" + key + "'");
      }
      return *value;
    };
    const auto p_int = [&](const std::string& key) {
      return std::stoll(progress_value(key));
    };
    const auto p_size = [&](const std::string& key) {
      return static_cast<std::size_t>(p_int(key));
    };
    const auto p_double = [&](const std::string& key) {
      return std::stod(progress_value(key));  // hexfloat: bit-exact round trip
    };

    // Rebuild the engine from the state it actually learned from (the delta
    // frozen at the last re-learn), then fast-forward the evolving state to
    // the checkpoint. The re-learn counter comes from the checkpoint, so the
    // rebuild is not double-counted.
    for (const io::LaunchState::SlotWrite& w : state.relearn_applied_slots) {
      write_cell(w);
      relearn_delta_[{w.pairwise, w.param_pos, static_cast<std::size_t>(w.entity)}] = w.value;
    }
    rebuild_engine();
    for (const io::LaunchState::SlotWrite& w : state.applied_slots) {
      write_cell(w);
      delta_[{w.pairwise, w.param_pos, static_cast<std::size_t>(w.entity)}] = w.value;
    }

    // The checkpoint's shard layout must match the options: a sharded
    // checkpoint encodes per-shard fault-stream positions that cannot be
    // re-partitioned into a different shard count.
    if (shard_count == 1) {
      if (!state.shards.empty()) {
        throw std::invalid_argument(store.dir() + ": checkpoint was written with " +
                                    std::to_string(state.shards.size()) +
                                    " shards; resume requested 1");
      }
      ems.restore(ems_state_from_io(state.ems));
      executors[0]->restore_journal(state.journal);
      executors[0]->restore_breaker(state.breaker);
      if (!gates.empty()) gates[0]->restore_quarantine(state.quarantine);
      deferred[0] = state.deferred;
    } else {
      if (state.shards.size() != static_cast<std::size_t>(shard_count)) {
        throw std::invalid_argument(store.dir() + ": checkpoint was written with " +
                                    std::to_string(state.shards.size()) +
                                    " shards; resume requested " + std::to_string(shard_count));
      }
      for (int k = 0; k < shard_count; ++k) {
        const io::LaunchState::ShardState& shard = state.shards[static_cast<std::size_t>(k)];
        sharded.shard(k).restore(ems_state_from_io(shard.ems));
        executors[static_cast<std::size_t>(k)]->restore_journal(shard.journal);
        executors[static_cast<std::size_t>(k)]->restore_breaker(shard.breaker);
        if (!gates.empty()) gates[static_cast<std::size_t>(k)]->restore_quarantine(shard.quarantine);
        deferred[static_cast<std::size_t>(k)] = shard.deferred;
      }
    }

    start_day = static_cast<int>(p_int("day"));
    start_launch = static_cast<int>(p_int("launch"));
    cursor = p_size("cursor");
    report.engine_relearns = static_cast<int>(p_int("relearns"));
    report.initial_network_kpi = p_double("initial_network_kpi");
    report.totals.launches = p_size("totals.launches");
    report.totals.change_recommended = p_size("totals.change_recommended");
    report.totals.implemented = p_size("totals.implemented");
    report.totals.fallout_unlocked = p_size("totals.fallout_unlocked");
    report.totals.fallout_timeout = p_size("totals.fallout_timeout");
    report.totals.parameters_changed = p_size("totals.parameters_changed");
    report.robust.recovered = p_size("robust.recovered");
    report.robust.chunked = p_size("robust.chunked");
    report.robust.queued_degraded = p_size("robust.queued_degraded");
    report.robust.drained = p_size("robust.drained");
    report.robust.aborted_unlocked = p_size("robust.aborted_unlocked");
    report.robust.fallout_terminal = p_size("robust.fallout_terminal");
    report.robust.rolled_back = p_size("robust.rolled_back");
    report.robust.rollbacks = p_size("robust.rollbacks");
    report.robust.rollback_retries = p_size("robust.rollback_retries");
    report.robust.rollback_failed = p_size("robust.rollback_failed");
    report.robust.reattempts = p_size("robust.reattempts");
    report.robust.quarantined = p_size("robust.quarantined");
    report.robust.retries = p_size("robust.retries");
    const std::size_t weeks_done = p_size("weeks");
    for (std::size_t wk = 0; wk < weeks_done; ++wk) {
      const std::string prefix = "week." + std::to_string(wk + 1) + ".";
      WeeklySummary done;
      done.week = static_cast<int>(wk) + 1;
      done.launches = p_size(prefix + "launches");
      done.change_recommended = p_size(prefix + "change_recommended");
      done.implemented = p_size(prefix + "implemented");
      done.fallouts = p_size(prefix + "fallouts");
      done.rolled_back = p_size(prefix + "rolled_back");
      done.quarantined = p_size(prefix + "quarantined");
      done.parameters_changed = p_size(prefix + "parameters_changed");
      done.mean_launched_kpi = p_double(prefix + "kpi");
      report.weeks.push_back(done);
    }
    week.week = static_cast<int>(p_int("week.number"));
    week.launches = p_size("week.launches");
    week.change_recommended = p_size("week.change_recommended");
    week.implemented = p_size("week.implemented");
    week.fallouts = p_size("week.fallouts");
    week.rolled_back = p_size("week.rolled_back");
    week.quarantined = p_size("week.quarantined");
    week.parameters_changed = p_size("week.parameters_changed");
    week_quality = p_double("week.quality");
    week_quality_n = p_size("week.quality_n");
  } else {
    report.initial_network_kpi = mean_network_kpi();
    relearn();
  }

  const auto checkpoint = [&](int day, int launch_in_day) {
    io::LaunchState state;
    const auto sorted_journal = [](const RobustPushExecutor& exec) {
      std::vector<std::pair<netsim::CarrierId, std::uint64_t>> journal;
      for (const auto& [carrier, applied] : exec.journal()) {
        journal.emplace_back(carrier, static_cast<std::uint64_t>(applied));
      }
      std::sort(journal.begin(), journal.end());
      return journal;
    };
    const auto sorted_quarantine = [&](int k) {
      std::vector<std::pair<netsim::CarrierId, int>> quarantine;
      if (!gates.empty()) {
        const auto& q = gates[static_cast<std::size_t>(k)]->quarantine();
        quarantine.assign(q.begin(), q.end());
        std::sort(quarantine.begin(), quarantine.end());
      }
      return quarantine;
    };
    if (shard_count == 1) {
      state.journal = sorted_journal(*executors[0]);
      state.deferred = deferred[0];
      state.quarantine = sorted_quarantine(0);
      state.breaker = executors[0]->breaker().snapshot();
      state.ems = ems_state_to_io(ems.snapshot());
    } else {
      state.shards.resize(static_cast<std::size_t>(shard_count));
      for (int k = 0; k < shard_count; ++k) {
        io::LaunchState::ShardState& shard = state.shards[static_cast<std::size_t>(k)];
        shard.journal = sorted_journal(*executors[static_cast<std::size_t>(k)]);
        shard.deferred = deferred[static_cast<std::size_t>(k)];
        shard.quarantine = sorted_quarantine(k);
        shard.breaker = executors[static_cast<std::size_t>(k)]->breaker().snapshot();
        shard.ems = ems_state_to_io(sharded.shard(k).snapshot());
      }
    }
    const auto to_writes = [](const std::map<SlotKey, config::ValueIndex>& delta) {
      std::vector<io::LaunchState::SlotWrite> writes;
      writes.reserve(delta.size());
      for (const auto& [key, value] : delta) {
        writes.push_back({std::get<0>(key), static_cast<std::uint32_t>(std::get<1>(key)),
                          static_cast<std::uint64_t>(std::get<2>(key)), value});
      }
      return writes;
    };
    state.applied_slots = to_writes(delta_);
    state.relearn_applied_slots = to_writes(relearn_delta_);

    auto& p = state.progress;
    const auto put = [&](const std::string& key, std::size_t value) {
      p.emplace_back(key, std::to_string(value));
    };
    p.emplace_back("day", std::to_string(day));
    p.emplace_back("launch", std::to_string(launch_in_day));
    put("cursor", cursor);
    p.emplace_back("relearns", std::to_string(report.engine_relearns));
    p.emplace_back("initial_network_kpi", util::format("%a", report.initial_network_kpi));
    put("totals.launches", report.totals.launches);
    put("totals.change_recommended", report.totals.change_recommended);
    put("totals.implemented", report.totals.implemented);
    put("totals.fallout_unlocked", report.totals.fallout_unlocked);
    put("totals.fallout_timeout", report.totals.fallout_timeout);
    put("totals.parameters_changed", report.totals.parameters_changed);
    put("robust.recovered", report.robust.recovered);
    put("robust.chunked", report.robust.chunked);
    put("robust.queued_degraded", report.robust.queued_degraded);
    put("robust.drained", report.robust.drained);
    put("robust.aborted_unlocked", report.robust.aborted_unlocked);
    put("robust.fallout_terminal", report.robust.fallout_terminal);
    put("robust.rolled_back", report.robust.rolled_back);
    put("robust.rollbacks", report.robust.rollbacks);
    put("robust.rollback_retries", report.robust.rollback_retries);
    put("robust.rollback_failed", report.robust.rollback_failed);
    put("robust.reattempts", report.robust.reattempts);
    put("robust.quarantined", report.robust.quarantined);
    put("robust.retries", report.robust.retries);
    put("weeks", report.weeks.size());
    for (const WeeklySummary& done : report.weeks) {
      const std::string prefix = "week." + std::to_string(done.week) + ".";
      put(prefix + "launches", done.launches);
      put(prefix + "change_recommended", done.change_recommended);
      put(prefix + "implemented", done.implemented);
      put(prefix + "fallouts", done.fallouts);
      put(prefix + "rolled_back", done.rolled_back);
      put(prefix + "quarantined", done.quarantined);
      put(prefix + "parameters_changed", done.parameters_changed);
      p.emplace_back(prefix + "kpi", util::format("%a", done.mean_launched_kpi));
    }
    p.emplace_back("week.number", std::to_string(week.week));
    put("week.launches", week.launches);
    put("week.change_recommended", week.change_recommended);
    put("week.implemented", week.implemented);
    put("week.fallouts", week.fallouts);
    put("week.rolled_back", week.rolled_back);
    put("week.quarantined", week.quarantined);
    put("week.parameters_changed", week.parameters_changed);
    p.emplace_back("week.quality", util::format("%a", week_quality));
    put("week.quality_n", week_quality_n);
    store.save(state);
  };

  bool stopped = false;

  // Serial window: the exact legacy single-EMS loop, kept verbatim so a
  // --shards 1 run stays byte-identical to earlier releases (per-launch
  // checkpoint cadence included).
  const auto run_serial_window = [&] {
    RobustLaunchController* gate = gates.empty() ? nullptr : gates[0].get();
    RobustPushExecutor* executor = executors[0];
    std::vector<netsim::CarrierId>& dq = deferred[0];
    for (int day = start_day; day < options_.days && !stopped; ++day) {
      obs::ScopedSpan day_span("replay.day");
      const int first_launch = day == start_day ? start_launch : 0;
      // A checkpoint taken mid-day (first_launch > 0) implies this day's
      // re-learn already happened before the checkpoint.
      if (first_launch == 0 && day > 0 && day % options_.relearn_every_days == 0) relearn();

      for (int l = first_launch; l < options_.launches_per_day && cursor < queue.size(); ++l) {
        obs::ScopedSpan launch_span("replay.launch");
        metrics.launches.inc();
        const netsim::CarrierId carrier = queue[cursor++];

        // Vendor integration: the carrier goes on air with the vendor config
        // plus whatever Auric corrections land before unlock.
        std::vector<LaunchController::PlannedChange> vendor;
        const std::vector<LaunchController::PlannedChange> changes =
            controller->plan_changes_detailed(carrier, &vendor);

        ++report.totals.launches;
        ++week.launches;

        ems.lock(carrier);
        LaunchOutcome outcome = LaunchOutcome::kNoChangeNeeded;
        std::size_t applied = 0;
        if (!changes.empty()) {
          ++report.totals.change_recommended;
          ++week.change_recommended;
          if (options_.robust && executor->should_defer()) {
            // Breaker open: the carrier goes on air vendor-only and its
            // corrections wait in the deferred queue (outcome stays
            // kNoChangeNeeded so it counts as neither implemented nor
            // fall-out until the drain resolves it).
            dq.push_back(carrier);
            ++report.robust.queued_degraded;
          } else {
            const double u =
                static_cast<double>(util::hash_combine({options_.seed, 0x0B0BULL,
                                                        static_cast<std::uint64_t>(carrier)}) >>
                                    11) *
                0x1.0p-53;
            if (u < options_.pipeline.premature_unlock_prob) ems.unlock_out_of_band(carrier);
            if (options_.robust) {
              // KPI-gated push: the gate runs the quarantine check, forward
              // push, rollback loop and unlock, and owns the journal cleanup
              // for terminal outcomes.
              const RobustLaunchRecord rec = gate->push_gated_launch(carrier, changes);
              record_gate_outcomes(rec, changes);
              applied = rec.changes_applied;
              report.robust.retries += static_cast<std::size_t>(rec.retries);
              if (rec.chunks > 1) ++report.robust.chunked;
              report.robust.rollbacks += static_cast<std::size_t>(rec.rollbacks);
              report.robust.rollback_retries += static_cast<std::size_t>(rec.rollback_retries);
              report.robust.reattempts += static_cast<std::size_t>(rec.reattempts);
              if (rec.rollback_failed) ++report.robust.rollback_failed;
              if (rec.quarantined) {
                ++report.robust.quarantined;
                ++week.quarantined;
              }
              switch (rec.outcome) {
                case RobustOutcome::kRecovered: ++report.robust.recovered; [[fallthrough]];
                case RobustOutcome::kImplemented:
                  outcome = LaunchOutcome::kImplemented;
                  break;
                case RobustOutcome::kAbortedUnlocked:
                  ++report.robust.aborted_unlocked;
                  outcome = LaunchOutcome::kFalloutUnlocked;
                  break;
                case RobustOutcome::kFalloutTerminal:
                  ++report.robust.fallout_terminal;
                  outcome = LaunchOutcome::kFalloutTimeout;
                  break;
                case RobustOutcome::kRolledBack:
                  // Reverted to vendor values (or quarantine-skipped): neither
                  // implemented nor an EMS fall-out — the gate withdrew the
                  // changes on purpose. Counted in its own column.
                  ++report.robust.rolled_back;
                  ++week.rolled_back;
                  break;
                case RobustOutcome::kNoChangeNeeded:
                case RobustOutcome::kQueuedDegraded:  // gate never returns this
                  break;
              }
            } else {
              std::vector<config::MoSetting> settings;
              settings.reserve(changes.size());
              for (const auto& change : changes) {
                settings.push_back({change.slot.mo_path, change.slot.param, change.new_value});
              }
              const PushResult push = ems.push(carrier, settings);
              applied = push.applied;
              switch (push.status) {
                case PushStatus::kApplied: outcome = LaunchOutcome::kImplemented; break;
                case PushStatus::kRejectedUnlocked:
                case PushStatus::kAbortedLockFlap:
                  outcome = LaunchOutcome::kFalloutUnlocked;
                  break;
                case PushStatus::kTimeout: outcome = LaunchOutcome::kFalloutTimeout; break;
              }
            }
          }
        }
        ems.unlock(carrier);

        // The network state evolves: vendor values everywhere, plus the
        // corrections that actually landed (settings apply in order).
        for (const auto& slot_value : vendor) apply_slot(slot_value.slot, slot_value.new_value);
        for (std::size_t i = 0; i < applied && i < changes.size(); ++i) {
          apply_slot(changes[i].slot, changes[i].new_value);
        }

        switch (outcome) {
          case LaunchOutcome::kImplemented:
            ++report.totals.implemented;
            ++week.implemented;
            report.totals.parameters_changed += applied;
            week.parameters_changed += applied;
            break;
          case LaunchOutcome::kFalloutUnlocked:
            ++report.totals.fallout_unlocked;
            ++week.fallouts;
            break;
          case LaunchOutcome::kFalloutTimeout:
            ++report.totals.fallout_timeout;
            ++week.fallouts;
            break;
          case LaunchOutcome::kNoChangeNeeded: break;
        }

        // Post-check KPI of the launched carrier under the evolved state.
        week_quality += carrier_quality(*topology_, *catalog_, state_, carrier);
        ++week_quality_n;

        if (persist) checkpoint(day, l + 1);
        if (options_.stop_after_launches > 0 &&
            report.totals.launches >= static_cast<std::size_t>(options_.stop_after_launches)) {
          stopped = true;
          break;
        }
      }
      if (stopped) break;

      // End-of-day maintenance window: once the breaker has closed again,
      // drain the deferred queue — re-lock each queued carrier (the simulator
      // counts the disruptive cycle), re-plan against the current engine, and
      // push with the same chunk/retry/journal machinery.
      std::optional<obs::ScopedSpan> drain_span;
      if (options_.robust && !dq.empty() &&
          executor->breaker().state() == util::CircuitBreaker::State::kClosed) {
        drain_span.emplace("replay.drain");
      }
      while (options_.robust && !dq.empty() &&
             executor->breaker().state() == util::CircuitBreaker::State::kClosed) {
        const netsim::CarrierId carrier = dq.front();
        dq.erase(dq.begin());
        ems.lock(carrier);
        const std::vector<LaunchController::PlannedChange> changes =
            controller->plan_changes_detailed(carrier);
        if (changes.empty()) {
          // The engine re-learned since the deferral and no longer flags the
          // carrier: the queue entry resolves with nothing to push.
          ems.unlock(carrier);
          ++report.robust.drained;
          ++report.totals.implemented;
          ++week.implemented;
          if (persist) checkpoint(day, options_.launches_per_day);
          continue;
        }
        // Same KPI-gated path as the main launch stream (unlocks internally).
        const RobustLaunchRecord rec = gate->push_gated_launch(carrier, changes);
        record_gate_outcomes(rec, changes);
        report.robust.retries += static_cast<std::size_t>(rec.retries);
        report.robust.rollbacks += static_cast<std::size_t>(rec.rollbacks);
        report.robust.rollback_retries += static_cast<std::size_t>(rec.rollback_retries);
        report.robust.reattempts += static_cast<std::size_t>(rec.reattempts);
        if (rec.rollback_failed) ++report.robust.rollback_failed;
        if (rec.quarantined) {
          ++report.robust.quarantined;
          ++week.quarantined;
        }
        for (std::size_t i = 0; i < rec.changes_applied && i < changes.size(); ++i) {
          apply_slot(changes[i].slot, changes[i].new_value);
        }
        if (rec.outcome == RobustOutcome::kImplemented ||
            rec.outcome == RobustOutcome::kRecovered) {
          if (rec.outcome == RobustOutcome::kRecovered) ++report.robust.recovered;
          ++report.robust.drained;
          ++report.totals.implemented;
          ++week.implemented;
          report.totals.parameters_changed += rec.changes_applied;
          week.parameters_changed += rec.changes_applied;
        } else if (rec.outcome == RobustOutcome::kFalloutTerminal) {
          ++report.robust.fallout_terminal;
          ++report.totals.fallout_timeout;
          ++week.fallouts;
        } else if (rec.outcome == RobustOutcome::kAbortedUnlocked) {
          ++report.robust.aborted_unlocked;
          ++report.totals.fallout_unlocked;
          ++week.fallouts;
        } else if (rec.outcome == RobustOutcome::kRolledBack) {
          ++report.robust.rolled_back;
          ++week.rolled_back;
        }
        if (persist) checkpoint(day, options_.launches_per_day);
      }
      drain_span.reset();

      // Close the telemetry day: day-over-day drift (chi-square + PSI) and
      // coverage gauges. Metrics only — never part of the replay output.
      if (watch_ != nullptr) watch_->roll_day();

      if ((day + 1) % 7 == 0 || day + 1 == options_.days) flush_week();
      if (persist) checkpoint(day + 1, 0);
      if (util::drain_requested()) {
        // Graceful drain: the day just completed and (when persisting) its
        // sealed checkpoint committed, so --resume continues bit-identically
        // — the same stopping point stop_after_launches would produce.
        stopped = true;
        report.drained = true;
      }
    }
  };

  // Sharded window: each day's launch batch partitions by shard (market
  // keyed, so every slot a launch touches is shard-local) and executes in
  // parallel — one task per shard, serial within the shard because each
  // shard's EMS fault streams are serial devices. Workers write the network
  // state directly (disjoint slices) and record per-launch facts; the main
  // thread then folds those into the report in global launch order, which
  // keeps counters and the FP-summed weekly KPI deterministic for any
  // worker count. Checkpoints are day-granular: the parallel stream has no
  // serializable mid-day cursor.
  const auto run_sharded_window = [&] {
    util::TaskPool& pool = util::TaskPool::shared();
    for (int day = start_day; day < options_.days && !stopped; ++day) {
      obs::ScopedSpan day_span("replay.day");
      if (day > 0 && day % options_.relearn_every_days == 0) relearn();

      const std::size_t batch = std::min(static_cast<std::size_t>(options_.launches_per_day),
                                         queue.size() - cursor);
      const std::size_t first = cursor;
      cursor += batch;

      std::vector<std::vector<std::size_t>> by_shard(static_cast<std::size_t>(shard_count));
      for (std::size_t i = 0; i < batch; ++i) {
        by_shard[static_cast<std::size_t>(sharded.shard_of(queue[first + i]))].push_back(i);
      }

      std::vector<ShardLaunchResult> results(batch);
      std::vector<std::vector<ShardDrainResult>> drains(static_cast<std::size_t>(shard_count));

      const auto run_shard = [&](int k) {
        EmsSimulator& shard_ems = sharded.shard(k);
        RobustPushExecutor& executor = *executors[static_cast<std::size_t>(k)];
        RobustLaunchController* gate =
            gates.empty() ? nullptr : gates[static_cast<std::size_t>(k)].get();
        std::vector<netsim::CarrierId>& dq = deferred[static_cast<std::size_t>(k)];

        for (std::size_t i : by_shard[static_cast<std::size_t>(k)]) {
          obs::ScopedSpan launch_span("replay.launch");
          metrics.launches.inc();
          const netsim::CarrierId carrier = queue[first + i];
          ShardLaunchResult& r = results[i];

          std::vector<LaunchController::PlannedChange> vendor;
          const std::vector<LaunchController::PlannedChange> changes =
              controller->plan_changes_detailed(carrier, &vendor);

          shard_ems.lock(carrier);
          if (!changes.empty()) {
            r.change_recommended = true;
            if (options_.robust && executor.should_defer()) {
              dq.push_back(carrier);
              r.deferred_now = true;
            } else {
              const double u =
                  static_cast<double>(util::hash_combine({options_.seed, 0x0B0BULL,
                                                          static_cast<std::uint64_t>(carrier)}) >>
                                      11) *
                  0x1.0p-53;
              if (u < options_.pipeline.premature_unlock_prob) {
                shard_ems.unlock_out_of_band(carrier);
              }
              if (options_.robust) {
                r.rec = gate->push_gated_launch(carrier, changes);
                record_gate_outcomes(r.rec, changes);
                r.robust_used = true;
                r.applied = r.rec.changes_applied;
              } else {
                std::vector<config::MoSetting> settings;
                settings.reserve(changes.size());
                for (const auto& change : changes) {
                  settings.push_back({change.slot.mo_path, change.slot.param, change.new_value});
                }
                const PushResult push = shard_ems.push(carrier, settings);
                r.applied = push.applied;
                switch (push.status) {
                  case PushStatus::kApplied: r.outcome = LaunchOutcome::kImplemented; break;
                  case PushStatus::kRejectedUnlocked:
                  case PushStatus::kAbortedLockFlap:
                    r.outcome = LaunchOutcome::kFalloutUnlocked;
                    break;
                  case PushStatus::kTimeout:
                    r.outcome = LaunchOutcome::kFalloutTimeout;
                    break;
                }
              }
            }
          }
          shard_ems.unlock(carrier);

          for (const auto& slot_value : vendor) {
            apply_slot(slot_value.slot, slot_value.new_value, &r.writes);
          }
          for (std::size_t s = 0; s < r.applied && s < changes.size(); ++s) {
            apply_slot(changes[s].slot, changes[s].new_value, &r.writes);
          }
          r.quality = carrier_quality(*topology_, *catalog_, state_, carrier);
        }

        // Shard-local end-of-day drain: same machinery as the serial path,
        // with the counter arithmetic deferred to the merge.
        while (options_.robust && !dq.empty() &&
               executor.breaker().state() == util::CircuitBreaker::State::kClosed) {
          const netsim::CarrierId carrier = dq.front();
          dq.erase(dq.begin());
          shard_ems.lock(carrier);
          const std::vector<LaunchController::PlannedChange> changes =
              controller->plan_changes_detailed(carrier);
          ShardDrainResult d;
          if (changes.empty()) {
            shard_ems.unlock(carrier);
            d.no_change = true;
          } else {
            d.rec = gate->push_gated_launch(carrier, changes);
            record_gate_outcomes(d.rec, changes);
            for (std::size_t s = 0; s < d.rec.changes_applied && s < changes.size(); ++s) {
              apply_slot(changes[s].slot, changes[s].new_value, &d.writes);
            }
          }
          drains[static_cast<std::size_t>(k)].push_back(std::move(d));
        }
      };

      std::vector<std::function<void()>> tasks;
      for (int k = 0; k < shard_count; ++k) {
        const bool has_launches = !by_shard[static_cast<std::size_t>(k)].empty();
        const bool has_drain = options_.robust && !deferred[static_cast<std::size_t>(k)].empty();
        if (has_launches || has_drain) tasks.push_back([&run_shard, k] { run_shard(k); });
      }
      pool.run(std::move(tasks));

      // Ordered merge. merge_robust_record mirrors the serial per-record
      // bookkeeping shared by launches and drains.
      const auto merge_robust_record = [&](const RobustLaunchRecord& rec) {
        report.robust.retries += static_cast<std::size_t>(rec.retries);
        report.robust.rollbacks += static_cast<std::size_t>(rec.rollbacks);
        report.robust.rollback_retries += static_cast<std::size_t>(rec.rollback_retries);
        report.robust.reattempts += static_cast<std::size_t>(rec.reattempts);
        if (rec.rollback_failed) ++report.robust.rollback_failed;
        if (rec.quarantined) {
          ++report.robust.quarantined;
          ++week.quarantined;
        }
      };
      const auto merge_writes = [&](const std::vector<RecordedWrite>& writes) {
        if (!track_delta_) return;
        for (const RecordedWrite& w : writes) delta_[{w.pairwise, w.pos, w.entity}] = w.value;
      };

      for (std::size_t i = 0; i < batch; ++i) {
        const ShardLaunchResult& r = results[i];
        ++report.totals.launches;
        ++week.launches;
        if (r.change_recommended) {
          ++report.totals.change_recommended;
          ++week.change_recommended;
        }
        if (r.deferred_now) ++report.robust.queued_degraded;
        LaunchOutcome outcome = r.outcome;
        if (r.robust_used) {
          merge_robust_record(r.rec);
          if (r.rec.chunks > 1) ++report.robust.chunked;
          switch (r.rec.outcome) {
            case RobustOutcome::kRecovered: ++report.robust.recovered; [[fallthrough]];
            case RobustOutcome::kImplemented:
              outcome = LaunchOutcome::kImplemented;
              break;
            case RobustOutcome::kAbortedUnlocked:
              ++report.robust.aborted_unlocked;
              outcome = LaunchOutcome::kFalloutUnlocked;
              break;
            case RobustOutcome::kFalloutTerminal:
              ++report.robust.fallout_terminal;
              outcome = LaunchOutcome::kFalloutTimeout;
              break;
            case RobustOutcome::kRolledBack:
              ++report.robust.rolled_back;
              ++week.rolled_back;
              outcome = LaunchOutcome::kNoChangeNeeded;
              break;
            case RobustOutcome::kNoChangeNeeded:
            case RobustOutcome::kQueuedDegraded:  // gate never returns this
              outcome = LaunchOutcome::kNoChangeNeeded;
              break;
          }
        }
        merge_writes(r.writes);
        switch (outcome) {
          case LaunchOutcome::kImplemented:
            ++report.totals.implemented;
            ++week.implemented;
            report.totals.parameters_changed += r.applied;
            week.parameters_changed += r.applied;
            break;
          case LaunchOutcome::kFalloutUnlocked:
            ++report.totals.fallout_unlocked;
            ++week.fallouts;
            break;
          case LaunchOutcome::kFalloutTimeout:
            ++report.totals.fallout_timeout;
            ++week.fallouts;
            break;
          case LaunchOutcome::kNoChangeNeeded: break;
        }
        week_quality += r.quality;
        ++week_quality_n;
      }

      for (int k = 0; k < shard_count; ++k) {
        for (const ShardDrainResult& d : drains[static_cast<std::size_t>(k)]) {
          if (d.no_change) {
            ++report.robust.drained;
            ++report.totals.implemented;
            ++week.implemented;
            continue;
          }
          merge_robust_record(d.rec);
          merge_writes(d.writes);
          if (d.rec.outcome == RobustOutcome::kImplemented ||
              d.rec.outcome == RobustOutcome::kRecovered) {
            if (d.rec.outcome == RobustOutcome::kRecovered) ++report.robust.recovered;
            ++report.robust.drained;
            ++report.totals.implemented;
            ++week.implemented;
            report.totals.parameters_changed += d.rec.changes_applied;
            week.parameters_changed += d.rec.changes_applied;
          } else if (d.rec.outcome == RobustOutcome::kFalloutTerminal) {
            ++report.robust.fallout_terminal;
            ++report.totals.fallout_timeout;
            ++week.fallouts;
          } else if (d.rec.outcome == RobustOutcome::kAbortedUnlocked) {
            ++report.robust.aborted_unlocked;
            ++report.totals.fallout_unlocked;
            ++week.fallouts;
          } else if (d.rec.outcome == RobustOutcome::kRolledBack) {
            ++report.robust.rolled_back;
            ++week.rolled_back;
          }
        }
      }

      // Close the telemetry day after the merge (workers are quiescent).
      if (watch_ != nullptr) watch_->roll_day();

      if (options_.stop_after_launches > 0 &&
          report.totals.launches >= static_cast<std::size_t>(options_.stop_after_launches)) {
        stopped = true;  // day granularity: the whole day ran, then we stop
      }
      if ((day + 1) % 7 == 0 || day + 1 == options_.days) flush_week();
      if (persist) checkpoint(day + 1, 0);
      if (util::drain_requested()) {
        stopped = true;  // same day-granular stopping point as the serial window
        report.drained = true;
      }
    }
  };

  if (shard_count == 1) {
    run_serial_window();
  } else {
    run_sharded_window();
  }

  for (int k = 0; k < shard_count; ++k) {
    report.robust.breaker_trips += executors[static_cast<std::size_t>(k)]->breaker().trips();
    report.robust.still_queued += deferred[static_cast<std::size_t>(k)].size();
  }

  report.final_network_kpi = mean_network_kpi();
  return report;
}

}  // namespace auric::smartlaunch
