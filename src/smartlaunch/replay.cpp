#include "smartlaunch/replay.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/engine.h"
#include "io/launch_state.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smartlaunch/kpi.h"
#include "util/rng.h"
#include "util/strings.h"

namespace auric::smartlaunch {

namespace {

/// Replay-level instruments: how often a run resumed from a checkpoint, how
/// many launches replayed, and how long each weekly re-learn took.
struct ReplayMetrics {
  obs::Counter& resumes;
  obs::Counter& launches;
  obs::Histogram& relearn_seconds;
};

ReplayMetrics& replay_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static ReplayMetrics m{
      reg.counter("auric_replay_resumes_total", "replay runs resumed from a checkpoint"),
      reg.counter("auric_replay_launches_total", "carrier launches replayed"),
      reg.histogram("auric_engine_relearn_seconds", obs::default_seconds_bounds(),
                    "wall-clock duration of one engine re-learn (s)")};
  return m;
}

}  // namespace

OperationReplay::OperationReplay(const netsim::Topology& topology,
                                 const netsim::AttributeSchema& schema,
                                 const config::ParamCatalog& catalog,
                                 const config::GroundTruthModel& ground_truth,
                                 config::ConfigAssignment assignment, ReplayOptions options)
    : topology_(&topology),
      schema_(&schema),
      catalog_(&catalog),
      ground_truth_(&ground_truth),
      state_(std::move(assignment)),
      options_(options) {}

void OperationReplay::apply_slot(const SlotRef& slot, config::ValueIndex value) {
  const config::ParamDef& def = catalog_->at(slot.param);
  const bool pairwise = def.kind == config::ParamKind::kPairwise;
  const auto& ids = pairwise ? catalog_->pairwise_ids() : catalog_->singular_ids();
  const std::size_t pos =
      static_cast<std::size_t>(std::find(ids.begin(), ids.end(), slot.param) - ids.begin());
  config::ParamColumn& col = pairwise ? state_.pairwise[pos] : state_.singular[pos];
  col.value[slot.entity] = value;
  // Intent is unchanged: the launch config is what the network RUNS, not
  // what engineering ultimately wants; cause tracking is reset to neutral.
  col.cause[slot.entity] = config::Cause::kDefault;
  if (track_delta_) delta_[{pairwise, pos, slot.entity}] = value;
}

namespace {

/// Quality of one carrier under `state` — same math as KpiModel, computed
/// over the carrier's own slots only (KpiModel scans the whole network,
/// which would be quadratic across a launch stream).
double carrier_quality(const netsim::Topology& topology, const config::ParamCatalog& catalog,
                       const config::ConfigAssignment& state, netsim::CarrierId carrier,
                       const KpiOptions& options = {}) {
  double quality = 1.0;
  const auto penalize = [&](const config::ParamColumn& col, const config::ParamDef& def,
                            std::size_t slot) {
    if (col.value[slot] == config::kUnset || col.value[slot] == col.intended[slot]) return;
    const int step_scale = std::max(1, def.domain.size() / 48);
    const double deviation = std::fabs(static_cast<double>(col.value[slot] - col.intended[slot])) /
                             static_cast<double>(step_scale);
    quality -= options.penalty_per_deviation * std::min(3.0, deviation);
  };
  for (std::size_t si = 0; si < state.singular.size(); ++si) {
    penalize(state.singular[si], catalog.at(catalog.singular_ids()[si]),
             static_cast<std::size_t>(carrier));
  }
  const std::size_t begin = topology.edge_offsets[static_cast<std::size_t>(carrier)];
  const std::size_t end = topology.edge_offsets[static_cast<std::size_t>(carrier) + 1];
  for (std::size_t pi = 0; pi < state.pairwise.size(); ++pi) {
    const config::ParamDef& def = catalog.at(catalog.pairwise_ids()[pi]);
    for (std::size_t e = begin; e < end; ++e) penalize(state.pairwise[pi], def, e);
  }
  return std::max(options.min_quality, quality);
}

}  // namespace

double OperationReplay::mean_network_kpi() const {
  const KpiModel kpi(*topology_, *catalog_, state_);
  double total = 0.0;
  for (double q : kpi.all_qualities()) total += q;
  return total / static_cast<double>(topology_->carrier_count());
}

ReplayReport OperationReplay::run() {
  obs::ScopedSpan run_span("replay.run");
  ReplayMetrics& metrics = replay_metrics();
  ReplayReport report;

  const bool persist = !options_.state_dir.empty();
  track_delta_ = persist;
  const io::LaunchStateStore store(options_.state_dir.empty() ? "." : options_.state_dir);

  // Launch order: a seeded shuffle; each carrier launches at most once.
  util::Rng rng(options_.seed);
  std::vector<netsim::CarrierId> queue;
  queue.reserve(topology_->carrier_count());
  for (std::size_t c = 0; c < topology_->carrier_count(); ++c) {
    queue.push_back(static_cast<netsim::CarrierId>(c));
  }
  rng.shuffle(queue);
  std::size_t cursor = 0;

  EmsSimulator ems(topology_->carrier_count(), options_.ems);
  RobustPushExecutor naive_executor(ems, options_.robust_executor);
  std::vector<netsim::CarrierId> deferred;
  const config::Rulebook rulebook(*ground_truth_, *catalog_);

  // Robust pushes route through a RobustLaunchController so replayed
  // launches share the KPI gate / rollback / quarantine semantics with the
  // pipeline. The gate owns the executor in that mode; `executor` points at
  // whichever instance is live so the checkpoint/resume plumbing below is
  // mode-agnostic.
  std::unique_ptr<KpiModel> gate_kpi;
  std::unique_ptr<RobustLaunchController> gate;
  RobustPushExecutor* executor = &naive_executor;

  // Engine + controller are rebuilt on the re-learn cadence so Auric keeps
  // learning from the evolving network.
  std::unique_ptr<core::AuricEngine> engine;
  std::unique_ptr<LaunchController> controller;
  const auto rebuild_engine = [&] {
    engine = std::make_unique<core::AuricEngine>(*topology_, *schema_, *catalog_, state_);
    controller = std::make_unique<LaunchController>(*engine, rulebook, state_,
                                                    options_.vendor_faults,
                                                    options_.push_policy, options_.seed);
    if (options_.robust) {
      if (gate == nullptr) {
        // The gate's KPI oracle is controller->launch_quality (per carrier);
        // the model reference the constructor wants is only consulted on
        // paths the replay never takes (empty plans, internal deferral), so
        // one build at window start suffices.
        gate_kpi = std::make_unique<KpiModel>(*topology_, *catalog_, state_);
        RobustPipelineOptions gate_options;
        gate_options.premature_unlock_prob = 0.0;  // the replay draws its own
        gate_options.seed = options_.seed;
        gate_options.executor = options_.robust_executor;
        gate_options.rollback = options_.rollback;
        gate = std::make_unique<RobustLaunchController>(*controller, ems, *gate_kpi,
                                                        gate_options);
        executor = &gate->executor_mutable();
      } else {
        gate->rebind(*controller);
      }
    }
  };
  const auto relearn = [&] {
    obs::ScopedSpan relearn_span("replay.relearn");
    obs::ScopedTimer relearn_timer(metrics.relearn_seconds);
    rebuild_engine();
    relearn_delta_ = delta_;
    ++report.engine_relearns;
  };

  WeeklySummary week;
  week.week = 1;
  double week_quality = 0.0;
  std::size_t week_quality_n = 0;
  const auto flush_week = [&] {
    week.mean_launched_kpi =
        week_quality_n > 0 ? week_quality / static_cast<double>(week_quality_n) : 0.0;
    report.weeks.push_back(week);
    week = WeeklySummary{};
    week.week = static_cast<int>(report.weeks.size()) + 1;
    week_quality = 0.0;
    week_quality_n = 0;
  };

  // Writes one delta cell back into the evolving state (resume path).
  const auto write_cell = [&](const io::LaunchState::SlotWrite& w) {
    auto& columns = w.pairwise ? state_.pairwise : state_.singular;
    if (w.param_pos >= columns.size()) {
      throw std::invalid_argument(store.dir() + ": persisted slot write names column " +
                                  std::to_string(w.param_pos) + " of " +
                                  std::to_string(columns.size()));
    }
    config::ParamColumn& col = columns[w.param_pos];
    if (w.entity >= col.value.size()) {
      throw std::invalid_argument(store.dir() + ": persisted slot write names entity " +
                                  std::to_string(w.entity) + " of " +
                                  std::to_string(col.value.size()));
    }
    col.value[w.entity] = w.value;
    col.cause[w.entity] = config::Cause::kDefault;
  };

  int start_day = 0;
  int start_launch = 0;
  if (persist && options_.resume && store.exists()) {
    metrics.resumes.inc();
    const io::LaunchState state = store.load();
    const auto progress_value = [&](const std::string& key) -> const std::string& {
      const std::string* value = state.find_progress(key);
      if (value == nullptr) {
        throw std::invalid_argument(store.dir() + "/progress.csv: missing key '" + key + "'");
      }
      return *value;
    };
    const auto p_int = [&](const std::string& key) {
      return std::stoll(progress_value(key));
    };
    const auto p_size = [&](const std::string& key) {
      return static_cast<std::size_t>(p_int(key));
    };
    const auto p_double = [&](const std::string& key) {
      return std::stod(progress_value(key));  // hexfloat: bit-exact round trip
    };

    // Rebuild the engine from the state it actually learned from (the delta
    // frozen at the last re-learn), then fast-forward the evolving state to
    // the checkpoint. The re-learn counter comes from the checkpoint, so the
    // rebuild is not double-counted.
    for (const io::LaunchState::SlotWrite& w : state.relearn_applied_slots) {
      write_cell(w);
      relearn_delta_[{w.pairwise, w.param_pos, static_cast<std::size_t>(w.entity)}] = w.value;
    }
    rebuild_engine();
    for (const io::LaunchState::SlotWrite& w : state.applied_slots) {
      write_cell(w);
      delta_[{w.pairwise, w.param_pos, static_cast<std::size_t>(w.entity)}] = w.value;
    }

    ems.restore(ems_state_from_io(state.ems));
    executor->restore_journal(state.journal);
    executor->restore_breaker(state.breaker);
    if (gate != nullptr) gate->restore_quarantine(state.quarantine);
    deferred = state.deferred;

    start_day = static_cast<int>(p_int("day"));
    start_launch = static_cast<int>(p_int("launch"));
    cursor = p_size("cursor");
    report.engine_relearns = static_cast<int>(p_int("relearns"));
    report.initial_network_kpi = p_double("initial_network_kpi");
    report.totals.launches = p_size("totals.launches");
    report.totals.change_recommended = p_size("totals.change_recommended");
    report.totals.implemented = p_size("totals.implemented");
    report.totals.fallout_unlocked = p_size("totals.fallout_unlocked");
    report.totals.fallout_timeout = p_size("totals.fallout_timeout");
    report.totals.parameters_changed = p_size("totals.parameters_changed");
    report.robust.recovered = p_size("robust.recovered");
    report.robust.chunked = p_size("robust.chunked");
    report.robust.queued_degraded = p_size("robust.queued_degraded");
    report.robust.drained = p_size("robust.drained");
    report.robust.aborted_unlocked = p_size("robust.aborted_unlocked");
    report.robust.fallout_terminal = p_size("robust.fallout_terminal");
    report.robust.rolled_back = p_size("robust.rolled_back");
    report.robust.rollbacks = p_size("robust.rollbacks");
    report.robust.rollback_retries = p_size("robust.rollback_retries");
    report.robust.rollback_failed = p_size("robust.rollback_failed");
    report.robust.reattempts = p_size("robust.reattempts");
    report.robust.quarantined = p_size("robust.quarantined");
    report.robust.retries = p_size("robust.retries");
    const std::size_t weeks_done = p_size("weeks");
    for (std::size_t wk = 0; wk < weeks_done; ++wk) {
      const std::string prefix = "week." + std::to_string(wk + 1) + ".";
      WeeklySummary done;
      done.week = static_cast<int>(wk) + 1;
      done.launches = p_size(prefix + "launches");
      done.change_recommended = p_size(prefix + "change_recommended");
      done.implemented = p_size(prefix + "implemented");
      done.fallouts = p_size(prefix + "fallouts");
      done.rolled_back = p_size(prefix + "rolled_back");
      done.quarantined = p_size(prefix + "quarantined");
      done.parameters_changed = p_size(prefix + "parameters_changed");
      done.mean_launched_kpi = p_double(prefix + "kpi");
      report.weeks.push_back(done);
    }
    week.week = static_cast<int>(p_int("week.number"));
    week.launches = p_size("week.launches");
    week.change_recommended = p_size("week.change_recommended");
    week.implemented = p_size("week.implemented");
    week.fallouts = p_size("week.fallouts");
    week.rolled_back = p_size("week.rolled_back");
    week.quarantined = p_size("week.quarantined");
    week.parameters_changed = p_size("week.parameters_changed");
    week_quality = p_double("week.quality");
    week_quality_n = p_size("week.quality_n");
  } else {
    report.initial_network_kpi = mean_network_kpi();
    relearn();
  }

  const auto checkpoint = [&](int day, int launch_in_day) {
    io::LaunchState state;
    for (const auto& [carrier, applied] : executor->journal()) {
      state.journal.emplace_back(carrier, static_cast<std::uint64_t>(applied));
    }
    std::sort(state.journal.begin(), state.journal.end());
    state.deferred = deferred;
    if (gate != nullptr) {
      state.quarantine.assign(gate->quarantine().begin(), gate->quarantine().end());
      std::sort(state.quarantine.begin(), state.quarantine.end());
    }
    state.breaker = executor->breaker().snapshot();
    state.ems = ems_state_to_io(ems.snapshot());
    const auto to_writes = [](const std::map<SlotKey, config::ValueIndex>& delta) {
      std::vector<io::LaunchState::SlotWrite> writes;
      writes.reserve(delta.size());
      for (const auto& [key, value] : delta) {
        writes.push_back({std::get<0>(key), static_cast<std::uint32_t>(std::get<1>(key)),
                          static_cast<std::uint64_t>(std::get<2>(key)), value});
      }
      return writes;
    };
    state.applied_slots = to_writes(delta_);
    state.relearn_applied_slots = to_writes(relearn_delta_);

    auto& p = state.progress;
    const auto put = [&](const std::string& key, std::size_t value) {
      p.emplace_back(key, std::to_string(value));
    };
    p.emplace_back("day", std::to_string(day));
    p.emplace_back("launch", std::to_string(launch_in_day));
    put("cursor", cursor);
    p.emplace_back("relearns", std::to_string(report.engine_relearns));
    p.emplace_back("initial_network_kpi", util::format("%a", report.initial_network_kpi));
    put("totals.launches", report.totals.launches);
    put("totals.change_recommended", report.totals.change_recommended);
    put("totals.implemented", report.totals.implemented);
    put("totals.fallout_unlocked", report.totals.fallout_unlocked);
    put("totals.fallout_timeout", report.totals.fallout_timeout);
    put("totals.parameters_changed", report.totals.parameters_changed);
    put("robust.recovered", report.robust.recovered);
    put("robust.chunked", report.robust.chunked);
    put("robust.queued_degraded", report.robust.queued_degraded);
    put("robust.drained", report.robust.drained);
    put("robust.aborted_unlocked", report.robust.aborted_unlocked);
    put("robust.fallout_terminal", report.robust.fallout_terminal);
    put("robust.rolled_back", report.robust.rolled_back);
    put("robust.rollbacks", report.robust.rollbacks);
    put("robust.rollback_retries", report.robust.rollback_retries);
    put("robust.rollback_failed", report.robust.rollback_failed);
    put("robust.reattempts", report.robust.reattempts);
    put("robust.quarantined", report.robust.quarantined);
    put("robust.retries", report.robust.retries);
    put("weeks", report.weeks.size());
    for (const WeeklySummary& done : report.weeks) {
      const std::string prefix = "week." + std::to_string(done.week) + ".";
      put(prefix + "launches", done.launches);
      put(prefix + "change_recommended", done.change_recommended);
      put(prefix + "implemented", done.implemented);
      put(prefix + "fallouts", done.fallouts);
      put(prefix + "rolled_back", done.rolled_back);
      put(prefix + "quarantined", done.quarantined);
      put(prefix + "parameters_changed", done.parameters_changed);
      p.emplace_back(prefix + "kpi", util::format("%a", done.mean_launched_kpi));
    }
    p.emplace_back("week.number", std::to_string(week.week));
    put("week.launches", week.launches);
    put("week.change_recommended", week.change_recommended);
    put("week.implemented", week.implemented);
    put("week.fallouts", week.fallouts);
    put("week.rolled_back", week.rolled_back);
    put("week.quarantined", week.quarantined);
    put("week.parameters_changed", week.parameters_changed);
    p.emplace_back("week.quality", util::format("%a", week_quality));
    put("week.quality_n", week_quality_n);
    store.save(state);
  };

  bool stopped = false;
  for (int day = start_day; day < options_.days && !stopped; ++day) {
    obs::ScopedSpan day_span("replay.day");
    const int first_launch = day == start_day ? start_launch : 0;
    // A checkpoint taken mid-day (first_launch > 0) implies this day's
    // re-learn already happened before the checkpoint.
    if (first_launch == 0 && day > 0 && day % options_.relearn_every_days == 0) relearn();

    for (int l = first_launch; l < options_.launches_per_day && cursor < queue.size(); ++l) {
      obs::ScopedSpan launch_span("replay.launch");
      metrics.launches.inc();
      const netsim::CarrierId carrier = queue[cursor++];

      // Vendor integration: the carrier goes on air with the vendor config
      // plus whatever Auric corrections land before unlock.
      std::vector<LaunchController::PlannedChange> vendor;
      const std::vector<LaunchController::PlannedChange> changes =
          controller->plan_changes_detailed(carrier, &vendor);

      ++report.totals.launches;
      ++week.launches;

      ems.lock(carrier);
      LaunchOutcome outcome = LaunchOutcome::kNoChangeNeeded;
      std::size_t applied = 0;
      if (!changes.empty()) {
        ++report.totals.change_recommended;
        ++week.change_recommended;
        if (options_.robust && executor->should_defer()) {
          // Breaker open: the carrier goes on air vendor-only and its
          // corrections wait in the deferred queue (outcome stays
          // kNoChangeNeeded so it counts as neither implemented nor
          // fall-out until the drain resolves it).
          deferred.push_back(carrier);
          ++report.robust.queued_degraded;
        } else {
          const double u =
              static_cast<double>(util::hash_combine({options_.seed, 0x0B0BULL,
                                                      static_cast<std::uint64_t>(carrier)}) >>
                                  11) *
              0x1.0p-53;
          if (u < options_.pipeline.premature_unlock_prob) ems.unlock_out_of_band(carrier);
          if (options_.robust) {
            // KPI-gated push: the gate runs the quarantine check, forward
            // push, rollback loop and unlock, and owns the journal cleanup
            // for terminal outcomes.
            const RobustLaunchRecord rec = gate->push_gated_launch(carrier, changes);
            applied = rec.changes_applied;
            report.robust.retries += static_cast<std::size_t>(rec.retries);
            if (rec.chunks > 1) ++report.robust.chunked;
            report.robust.rollbacks += static_cast<std::size_t>(rec.rollbacks);
            report.robust.rollback_retries += static_cast<std::size_t>(rec.rollback_retries);
            report.robust.reattempts += static_cast<std::size_t>(rec.reattempts);
            if (rec.rollback_failed) ++report.robust.rollback_failed;
            if (rec.quarantined) {
              ++report.robust.quarantined;
              ++week.quarantined;
            }
            switch (rec.outcome) {
              case RobustOutcome::kRecovered: ++report.robust.recovered; [[fallthrough]];
              case RobustOutcome::kImplemented:
                outcome = LaunchOutcome::kImplemented;
                break;
              case RobustOutcome::kAbortedUnlocked:
                ++report.robust.aborted_unlocked;
                outcome = LaunchOutcome::kFalloutUnlocked;
                break;
              case RobustOutcome::kFalloutTerminal:
                ++report.robust.fallout_terminal;
                outcome = LaunchOutcome::kFalloutTimeout;
                break;
              case RobustOutcome::kRolledBack:
                // Reverted to vendor values (or quarantine-skipped): neither
                // implemented nor an EMS fall-out — the gate withdrew the
                // changes on purpose. Counted in its own column.
                ++report.robust.rolled_back;
                ++week.rolled_back;
                break;
              case RobustOutcome::kNoChangeNeeded:
              case RobustOutcome::kQueuedDegraded:  // gate never returns this
                break;
            }
          } else {
            std::vector<config::MoSetting> settings;
            settings.reserve(changes.size());
            for (const auto& change : changes) {
              settings.push_back({change.slot.mo_path, change.slot.param, change.new_value});
            }
            const PushResult push = ems.push(carrier, settings);
            applied = push.applied;
            switch (push.status) {
              case PushStatus::kApplied: outcome = LaunchOutcome::kImplemented; break;
              case PushStatus::kRejectedUnlocked:
              case PushStatus::kAbortedLockFlap:
                outcome = LaunchOutcome::kFalloutUnlocked;
                break;
              case PushStatus::kTimeout: outcome = LaunchOutcome::kFalloutTimeout; break;
            }
          }
        }
      }
      ems.unlock(carrier);

      // The network state evolves: vendor values everywhere, plus the
      // corrections that actually landed (settings apply in order).
      for (const auto& slot_value : vendor) apply_slot(slot_value.slot, slot_value.new_value);
      for (std::size_t i = 0; i < applied && i < changes.size(); ++i) {
        apply_slot(changes[i].slot, changes[i].new_value);
      }

      switch (outcome) {
        case LaunchOutcome::kImplemented:
          ++report.totals.implemented;
          ++week.implemented;
          report.totals.parameters_changed += applied;
          week.parameters_changed += applied;
          break;
        case LaunchOutcome::kFalloutUnlocked:
          ++report.totals.fallout_unlocked;
          ++week.fallouts;
          break;
        case LaunchOutcome::kFalloutTimeout:
          ++report.totals.fallout_timeout;
          ++week.fallouts;
          break;
        case LaunchOutcome::kNoChangeNeeded: break;
      }

      // Post-check KPI of the launched carrier under the evolved state.
      week_quality += carrier_quality(*topology_, *catalog_, state_, carrier);
      ++week_quality_n;

      if (persist) checkpoint(day, l + 1);
      if (options_.stop_after_launches > 0 &&
          report.totals.launches >= static_cast<std::size_t>(options_.stop_after_launches)) {
        stopped = true;
        break;
      }
    }
    if (stopped) break;

    // End-of-day maintenance window: once the breaker has closed again,
    // drain the deferred queue — re-lock each queued carrier (the simulator
    // counts the disruptive cycle), re-plan against the current engine, and
    // push with the same chunk/retry/journal machinery.
    std::optional<obs::ScopedSpan> drain_span;
    if (options_.robust && !deferred.empty() &&
        executor->breaker().state() == util::CircuitBreaker::State::kClosed) {
      drain_span.emplace("replay.drain");
    }
    while (options_.robust && !deferred.empty() &&
           executor->breaker().state() == util::CircuitBreaker::State::kClosed) {
      const netsim::CarrierId carrier = deferred.front();
      deferred.erase(deferred.begin());
      ems.lock(carrier);
      const std::vector<LaunchController::PlannedChange> changes =
          controller->plan_changes_detailed(carrier);
      if (changes.empty()) {
        // The engine re-learned since the deferral and no longer flags the
        // carrier: the queue entry resolves with nothing to push.
        ems.unlock(carrier);
        ++report.robust.drained;
        ++report.totals.implemented;
        ++week.implemented;
        if (persist) checkpoint(day, options_.launches_per_day);
        continue;
      }
      // Same KPI-gated path as the main launch stream (unlocks internally).
      const RobustLaunchRecord rec = gate->push_gated_launch(carrier, changes);
      report.robust.retries += static_cast<std::size_t>(rec.retries);
      report.robust.rollbacks += static_cast<std::size_t>(rec.rollbacks);
      report.robust.rollback_retries += static_cast<std::size_t>(rec.rollback_retries);
      report.robust.reattempts += static_cast<std::size_t>(rec.reattempts);
      if (rec.rollback_failed) ++report.robust.rollback_failed;
      if (rec.quarantined) {
        ++report.robust.quarantined;
        ++week.quarantined;
      }
      for (std::size_t i = 0; i < rec.changes_applied && i < changes.size(); ++i) {
        apply_slot(changes[i].slot, changes[i].new_value);
      }
      if (rec.outcome == RobustOutcome::kImplemented ||
          rec.outcome == RobustOutcome::kRecovered) {
        if (rec.outcome == RobustOutcome::kRecovered) ++report.robust.recovered;
        ++report.robust.drained;
        ++report.totals.implemented;
        ++week.implemented;
        report.totals.parameters_changed += rec.changes_applied;
        week.parameters_changed += rec.changes_applied;
      } else if (rec.outcome == RobustOutcome::kFalloutTerminal) {
        ++report.robust.fallout_terminal;
        ++report.totals.fallout_timeout;
        ++week.fallouts;
      } else if (rec.outcome == RobustOutcome::kAbortedUnlocked) {
        ++report.robust.aborted_unlocked;
        ++report.totals.fallout_unlocked;
        ++week.fallouts;
      } else if (rec.outcome == RobustOutcome::kRolledBack) {
        ++report.robust.rolled_back;
        ++week.rolled_back;
      }
      if (persist) checkpoint(day, options_.launches_per_day);
    }
    drain_span.reset();

    if ((day + 1) % 7 == 0 || day + 1 == options_.days) flush_week();
    if (persist) checkpoint(day + 1, 0);
  }
  report.robust.breaker_trips = executor->breaker().trips();
  report.robust.still_queued = deferred.size();

  report.final_network_kpi = mean_network_kpi();
  return report;
}

}  // namespace auric::smartlaunch
