#include "smartlaunch/replay.h"

#include <algorithm>
#include <cmath>

#include "core/engine.h"
#include "smartlaunch/kpi.h"
#include "util/rng.h"

namespace auric::smartlaunch {

OperationReplay::OperationReplay(const netsim::Topology& topology,
                                 const netsim::AttributeSchema& schema,
                                 const config::ParamCatalog& catalog,
                                 const config::GroundTruthModel& ground_truth,
                                 config::ConfigAssignment assignment, ReplayOptions options)
    : topology_(&topology),
      schema_(&schema),
      catalog_(&catalog),
      ground_truth_(&ground_truth),
      state_(std::move(assignment)),
      options_(options) {}

void OperationReplay::apply_slot(const SlotRef& slot, config::ValueIndex value) {
  const config::ParamDef& def = catalog_->at(slot.param);
  const bool pairwise = def.kind == config::ParamKind::kPairwise;
  const auto& ids = pairwise ? catalog_->pairwise_ids() : catalog_->singular_ids();
  const std::size_t pos =
      static_cast<std::size_t>(std::find(ids.begin(), ids.end(), slot.param) - ids.begin());
  config::ParamColumn& col = pairwise ? state_.pairwise[pos] : state_.singular[pos];
  col.value[slot.entity] = value;
  // Intent is unchanged: the launch config is what the network RUNS, not
  // what engineering ultimately wants; cause tracking is reset to neutral.
  col.cause[slot.entity] = config::Cause::kDefault;
}

namespace {

/// Quality of one carrier under `state` — same math as KpiModel, computed
/// over the carrier's own slots only (KpiModel scans the whole network,
/// which would be quadratic across a launch stream).
double carrier_quality(const netsim::Topology& topology, const config::ParamCatalog& catalog,
                       const config::ConfigAssignment& state, netsim::CarrierId carrier,
                       const KpiOptions& options = {}) {
  double quality = 1.0;
  const auto penalize = [&](const config::ParamColumn& col, const config::ParamDef& def,
                            std::size_t slot) {
    if (col.value[slot] == config::kUnset || col.value[slot] == col.intended[slot]) return;
    const int step_scale = std::max(1, def.domain.size() / 48);
    const double deviation = std::fabs(static_cast<double>(col.value[slot] - col.intended[slot])) /
                             static_cast<double>(step_scale);
    quality -= options.penalty_per_deviation * std::min(3.0, deviation);
  };
  for (std::size_t si = 0; si < state.singular.size(); ++si) {
    penalize(state.singular[si], catalog.at(catalog.singular_ids()[si]),
             static_cast<std::size_t>(carrier));
  }
  const std::size_t begin = topology.edge_offsets[static_cast<std::size_t>(carrier)];
  const std::size_t end = topology.edge_offsets[static_cast<std::size_t>(carrier) + 1];
  for (std::size_t pi = 0; pi < state.pairwise.size(); ++pi) {
    const config::ParamDef& def = catalog.at(catalog.pairwise_ids()[pi]);
    for (std::size_t e = begin; e < end; ++e) penalize(state.pairwise[pi], def, e);
  }
  return std::max(options.min_quality, quality);
}

}  // namespace

double OperationReplay::mean_network_kpi() const {
  const KpiModel kpi(*topology_, *catalog_, state_);
  double total = 0.0;
  for (double q : kpi.all_qualities()) total += q;
  return total / static_cast<double>(topology_->carrier_count());
}

ReplayReport OperationReplay::run() {
  ReplayReport report;
  report.initial_network_kpi = mean_network_kpi();

  // Launch order: a seeded shuffle; each carrier launches at most once.
  util::Rng rng(options_.seed);
  std::vector<netsim::CarrierId> queue;
  queue.reserve(topology_->carrier_count());
  for (std::size_t c = 0; c < topology_->carrier_count(); ++c) {
    queue.push_back(static_cast<netsim::CarrierId>(c));
  }
  rng.shuffle(queue);
  std::size_t cursor = 0;

  EmsSimulator ems(topology_->carrier_count(), options_.ems);
  RobustPushExecutor executor(ems, options_.robust_executor);
  std::vector<netsim::CarrierId> deferred;
  const config::Rulebook rulebook(*ground_truth_, *catalog_);

  // Engine + controller are rebuilt on the re-learn cadence so Auric keeps
  // learning from the evolving network.
  std::unique_ptr<core::AuricEngine> engine;
  std::unique_ptr<LaunchController> controller;
  const auto relearn = [&] {
    engine = std::make_unique<core::AuricEngine>(*topology_, *schema_, *catalog_, state_);
    controller = std::make_unique<LaunchController>(*engine, rulebook, state_,
                                                    options_.vendor_faults,
                                                    options_.push_policy, options_.seed);
    ++report.engine_relearns;
  };
  relearn();

  WeeklySummary week;
  week.week = 1;
  double week_quality = 0.0;
  std::size_t week_quality_n = 0;
  const auto flush_week = [&] {
    week.mean_launched_kpi =
        week_quality_n > 0 ? week_quality / static_cast<double>(week_quality_n) : 0.0;
    report.weeks.push_back(week);
    week = WeeklySummary{};
    week.week = static_cast<int>(report.weeks.size()) + 1;
    week_quality = 0.0;
    week_quality_n = 0;
  };

  for (int day = 0; day < options_.days; ++day) {
    if (day > 0 && day % options_.relearn_every_days == 0) relearn();

    for (int l = 0; l < options_.launches_per_day && cursor < queue.size(); ++l) {
      const netsim::CarrierId carrier = queue[cursor++];

      // Vendor integration: the carrier goes on air with the vendor config
      // plus whatever Auric corrections land before unlock.
      std::vector<LaunchController::PlannedChange> vendor;
      const std::vector<LaunchController::PlannedChange> changes =
          controller->plan_changes_detailed(carrier, &vendor);

      ++report.totals.launches;
      ++week.launches;

      ems.lock(carrier);
      LaunchOutcome outcome = LaunchOutcome::kNoChangeNeeded;
      std::size_t applied = 0;
      if (!changes.empty()) {
        ++report.totals.change_recommended;
        ++week.change_recommended;
        if (options_.robust && executor.should_defer()) {
          // Breaker open: the carrier goes on air vendor-only and its
          // corrections wait in the deferred queue (outcome stays
          // kNoChangeNeeded so it counts as neither implemented nor
          // fall-out until the drain resolves it).
          deferred.push_back(carrier);
          ++report.robust.queued_degraded;
        } else {
          const double u =
              static_cast<double>(util::hash_combine({options_.seed, 0x0B0BULL,
                                                      static_cast<std::uint64_t>(carrier)}) >>
                                  11) *
              0x1.0p-53;
          if (u < options_.pipeline.premature_unlock_prob) ems.unlock_out_of_band(carrier);
          std::vector<config::MoSetting> settings;
          settings.reserve(changes.size());
          for (const auto& change : changes) {
            settings.push_back({change.slot.mo_path, change.slot.param, change.new_value});
          }
          if (options_.robust) {
            const RobustPushExecutor::Result push = executor.execute(carrier, settings);
            applied = push.applied;
            report.robust.retries += static_cast<std::size_t>(push.retries);
            if (push.chunks > 1) ++report.robust.chunked;
            switch (push.outcome) {
              case RobustOutcome::kRecovered: ++report.robust.recovered; [[fallthrough]];
              case RobustOutcome::kImplemented:
                outcome = LaunchOutcome::kImplemented;
                break;
              case RobustOutcome::kAbortedUnlocked:
                ++report.robust.aborted_unlocked;
                outcome = LaunchOutcome::kFalloutUnlocked;
                break;
              case RobustOutcome::kFalloutTerminal:
                ++report.robust.fallout_terminal;
                outcome = LaunchOutcome::kFalloutTimeout;
                break;
              case RobustOutcome::kNoChangeNeeded:
              case RobustOutcome::kQueuedDegraded:
                break;
            }
          } else {
            const PushResult push = ems.push(carrier, settings);
            applied = push.applied;
            switch (push.status) {
              case PushStatus::kApplied: outcome = LaunchOutcome::kImplemented; break;
              case PushStatus::kRejectedUnlocked:
              case PushStatus::kAbortedLockFlap:
                outcome = LaunchOutcome::kFalloutUnlocked;
                break;
              case PushStatus::kTimeout: outcome = LaunchOutcome::kFalloutTimeout; break;
            }
          }
        }
      }
      ems.unlock(carrier);

      // The network state evolves: vendor values everywhere, plus the
      // corrections that actually landed (settings apply in order).
      for (const auto& slot_value : vendor) apply_slot(slot_value.slot, slot_value.new_value);
      for (std::size_t i = 0; i < applied && i < changes.size(); ++i) {
        apply_slot(changes[i].slot, changes[i].new_value);
      }

      switch (outcome) {
        case LaunchOutcome::kImplemented:
          ++report.totals.implemented;
          ++week.implemented;
          report.totals.parameters_changed += applied;
          week.parameters_changed += applied;
          break;
        case LaunchOutcome::kFalloutUnlocked:
          ++report.totals.fallout_unlocked;
          ++week.fallouts;
          break;
        case LaunchOutcome::kFalloutTimeout:
          ++report.totals.fallout_timeout;
          ++week.fallouts;
          break;
        case LaunchOutcome::kNoChangeNeeded: break;
      }

      // Post-check KPI of the launched carrier under the evolved state.
      week_quality += carrier_quality(*topology_, *catalog_, state_, carrier);
      ++week_quality_n;
    }

    // End-of-day maintenance window: once the breaker has closed again,
    // drain the deferred queue — re-lock each queued carrier (the simulator
    // counts the disruptive cycle), re-plan against the current engine, and
    // push with the same chunk/retry/journal machinery.
    while (options_.robust && !deferred.empty() &&
           executor.breaker().state() == util::CircuitBreaker::State::kClosed) {
      const netsim::CarrierId carrier = deferred.front();
      deferred.erase(deferred.begin());
      ems.lock(carrier);
      const std::vector<LaunchController::PlannedChange> changes =
          controller->plan_changes_detailed(carrier);
      if (changes.empty()) {
        // The engine re-learned since the deferral and no longer flags the
        // carrier: the queue entry resolves with nothing to push.
        ems.unlock(carrier);
        ++report.robust.drained;
        ++report.totals.implemented;
        ++week.implemented;
        continue;
      }
      std::vector<config::MoSetting> settings;
      settings.reserve(changes.size());
      for (const auto& change : changes) {
        settings.push_back({change.slot.mo_path, change.slot.param, change.new_value});
      }
      const RobustPushExecutor::Result push = executor.execute(carrier, settings);
      ems.unlock(carrier);
      report.robust.retries += static_cast<std::size_t>(push.retries);
      for (std::size_t i = 0; i < push.applied && i < changes.size(); ++i) {
        apply_slot(changes[i].slot, changes[i].new_value);
      }
      if (push.outcome == RobustOutcome::kImplemented ||
          push.outcome == RobustOutcome::kRecovered) {
        ++report.robust.drained;
        ++report.totals.implemented;
        ++week.implemented;
        report.totals.parameters_changed += push.applied;
        week.parameters_changed += push.applied;
      } else if (push.outcome == RobustOutcome::kFalloutTerminal) {
        ++report.robust.fallout_terminal;
        ++report.totals.fallout_timeout;
        ++week.fallouts;
      } else if (push.outcome == RobustOutcome::kAbortedUnlocked) {
        ++report.robust.aborted_unlocked;
        ++report.totals.fallout_unlocked;
        ++week.fallouts;
      }
    }

    if ((day + 1) % 7 == 0 || day + 1 == options_.days) flush_week();
  }
  report.robust.breaker_trips = executor.breaker().trips();
  report.robust.still_queued = deferred.size();

  report.final_network_kpi = mean_network_kpi();
  return report;
}

}  // namespace auric::smartlaunch
