#include "smartlaunch/ems.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/rng.h"

namespace auric::smartlaunch {

/// Injected-fault counters by taxonomy plus push/lock totals, one set per
/// EMS shard (every series carries a `shard` label; unlabeled selectors
/// aggregate across shards). Resolved once per simulator at construction;
/// the push hot path only does relaxed increments.
struct EmsSimulator::Metrics {
  obs::Counter& pushes;
  obs::Counter& settings_applied;
  obs::Counter& lock_cycles;
  obs::Counter& fault_persistent;
  obs::Counter& fault_structural;
  obs::Counter& fault_transient;
  obs::Counter& fault_burst;
  obs::Counter& fault_lock_flap;
  obs::Counter& rejected_unlocked;
};

namespace {

EmsSimulator::Metrics& ems_metrics(int shard) {
  static std::mutex mu;
  static std::unordered_map<int, std::unique_ptr<EmsSimulator::Metrics>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[shard];
  if (slot == nullptr) {
    auto& reg = obs::MetricsRegistry::global();
    const std::string k = std::to_string(shard);
    const auto fault = [&](const char* kind) -> obs::Counter& {
      return reg.counter("auric_ems_faults_total", "EMS faults injected, by taxonomy class",
                         {{"kind", kind}, {"shard", k}});
    };
    slot = std::make_unique<EmsSimulator::Metrics>(EmsSimulator::Metrics{
        reg.counter("auric_ems_pushes_total", "pushes that reached execution", {{"shard", k}}),
        reg.counter("auric_ems_settings_applied_total", "settings written by the EMS",
                    {{"shard", k}}),
        reg.counter("auric_ems_lock_cycles_total", "disruptive re-locks of on-air carriers",
                    {{"shard", k}}),
        fault("persistent"),
        fault("structural_timeout"),
        fault("transient_timeout"),
        fault("burst_timeout"),
        fault("lock_flap"),
        reg.counter("auric_ems_rejected_unlocked_total", "pushes refused: carrier unlocked",
                    {{"shard", k}})});
  }
  return *slot;
}

}  // namespace

const char* push_status_name(PushStatus status) {
  switch (status) {
    case PushStatus::kApplied: return "applied";
    case PushStatus::kRejectedUnlocked: return "rejected-unlocked";
    case PushStatus::kTimeout: return "timeout";
    case PushStatus::kAbortedLockFlap: return "aborted-lock-flap";
  }
  return "?";
}

EmsSimulator::EmsSimulator(std::size_t carrier_count, EmsOptions options)
    : options_(options),
      metrics_(&ems_metrics(options.shard)),
      states_(carrier_count, CarrierState::kLocked),
      fault_stream_(options.seed),
      flap_stream_(options.seed ^ 0xF1A9F1A9F1A9F1A9ULL),
      burst_stream_(options.seed ^ 0xB0857B0857B0857BULL) {}

CarrierState EmsSimulator::state(netsim::CarrierId carrier) const {
  return states_.at(static_cast<std::size_t>(carrier));
}

void EmsSimulator::lock(netsim::CarrierId carrier) {
  auto& state = states_.at(static_cast<std::size_t>(carrier));
  if (state == CarrierState::kUnlocked) {
    ++lock_cycles_;
    metrics_->lock_cycles.inc();
  }
  state = CarrierState::kLocked;
}

void EmsSimulator::unlock(netsim::CarrierId carrier) {
  states_.at(static_cast<std::size_t>(carrier)) = CarrierState::kUnlocked;
}

void EmsSimulator::unlock_out_of_band(netsim::CarrierId carrier) { unlock(carrier); }

bool EmsSimulator::persistent_fault(netsim::CarrierId carrier) const {
  if (options_.faults.persistent_fault_prob <= 0.0) return false;
  if (repaired_.count(carrier) > 0) return false;
  const double u = static_cast<double>(
                       util::hash_combine({options_.seed, 0x5157C4ULL,
                                           static_cast<std::uint64_t>(carrier)}) >>
                       11) *
                   0x1.0p-53;
  return u < options_.faults.persistent_fault_prob;
}

void EmsSimulator::repair_carrier(netsim::CarrierId carrier) { repaired_.insert(carrier); }

EmsSimulator::Snapshot EmsSimulator::snapshot() const {
  Snapshot snap;
  snap.pushes_executed = pushes_executed_;
  snap.lock_cycles = lock_cycles_;
  snap.fault_stream = fault_stream_;
  snap.flap_stream = flap_stream_;
  snap.burst_stream = burst_stream_;
  for (std::size_t c = 0; c < states_.size(); ++c) {
    if (states_[c] == CarrierState::kUnlocked) {
      snap.unlocked.push_back(static_cast<netsim::CarrierId>(c));
    }
  }
  snap.repaired.assign(repaired_.begin(), repaired_.end());
  std::sort(snap.repaired.begin(), snap.repaired.end());
  return snap;
}

void EmsSimulator::restore(const Snapshot& snapshot) {
  const auto check = [&](netsim::CarrierId carrier) {
    if (carrier < 0 || static_cast<std::size_t>(carrier) >= states_.size()) {
      throw std::invalid_argument("EmsSimulator::restore: unknown carrier " +
                                  std::to_string(carrier));
    }
  };
  for (netsim::CarrierId c : snapshot.unlocked) check(c);
  for (netsim::CarrierId c : snapshot.repaired) check(c);
  pushes_executed_ = snapshot.pushes_executed;
  lock_cycles_ = snapshot.lock_cycles;
  fault_stream_ = snapshot.fault_stream;
  flap_stream_ = snapshot.flap_stream;
  burst_stream_ = snapshot.burst_stream;
  std::fill(states_.begin(), states_.end(), CarrierState::kLocked);
  for (netsim::CarrierId c : snapshot.unlocked) {
    states_[static_cast<std::size_t>(c)] = CarrierState::kUnlocked;
  }
  repaired_.clear();
  repaired_.insert(snapshot.repaired.begin(), snapshot.repaired.end());
}

std::size_t EmsSimulator::max_settings_per_push() const {
  const auto waves = static_cast<std::size_t>(options_.deadline_ms / options_.command_ms);
  return waves * static_cast<std::size_t>(options_.concurrency);
}

PushResult EmsSimulator::push(netsim::CarrierId carrier,
                              const std::vector<config::MoSetting>& settings) {
  Metrics& metrics = *metrics_;
  PushResult result;
  if (state(carrier) != CarrierState::kLocked) {
    result.status = PushStatus::kRejectedUnlocked;
    metrics.rejected_unlocked.inc();
    return result;
  }
  if (settings.empty()) return result;
  metrics.pushes.inc();

  // Commands execute in waves of `concurrency`.
  const auto concurrency = static_cast<std::size_t>(options_.concurrency);
  const auto waves = (settings.size() + concurrency - 1) / concurrency;
  const double needed_ms = static_cast<double>(waves) * options_.command_ms;

  const std::size_t push_index = pushes_executed_++;
  // The legacy transient-fault stream is consumed exactly once per executing
  // push, before any new-fault stream, so the default configuration (all
  // EmsFaultOptions probabilities zero) reproduces the seed's push-status
  // sequence bit for bit.
  const double fault_draw =
      static_cast<double>(util::splitmix64(fault_stream_) >> 11) * 0x1.0p-53;

  // A transient abort point: the fault fired after a uniform fraction of the
  // waves, derived from the fault draw itself (u / prob is uniform in [0, 1)
  // conditioned on the fault firing).
  const auto transient_applied = [&](double u, double prob) {
    const auto waves_done = static_cast<std::size_t>(u / prob * static_cast<double>(waves));
    return std::min(settings.size(), waves_done * concurrency);
  };

  if (persistent_fault(carrier)) {
    // Wedged EMS agent / broken transport: the push stalls from the start
    // and nothing lands. Retries hit the same wall until repair_carrier().
    result.status = PushStatus::kTimeout;
    result.applied = 0;
    result.elapsed_ms = options_.deadline_ms;
    result.transient = false;
    metrics.fault_persistent.inc();
    return result;
  }

  if (needed_ms > options_.deadline_ms) {
    // Structural timeout: the change set cannot fit the deadline at this
    // concurrency. Partial application up to the deadline; retrying the
    // same set can only fail again (callers must chunk).
    const auto waves_done = static_cast<std::size_t>(options_.deadline_ms / options_.command_ms);
    result.status = PushStatus::kTimeout;
    result.applied = std::min(settings.size(), waves_done * concurrency);
    result.elapsed_ms = options_.deadline_ms;
    result.transient = false;
    metrics.fault_structural.inc();
    metrics.settings_applied.inc(result.applied);
    return result;
  }

  if (fault_draw < options_.flaky_timeout_prob) {
    result.status = PushStatus::kTimeout;
    result.applied = transient_applied(fault_draw, options_.flaky_timeout_prob);
    result.elapsed_ms = options_.deadline_ms;
    result.transient = true;
    metrics.fault_transient.inc();
    metrics.settings_applied.inc(result.applied);
    return result;
  }

  const EmsFaultOptions& faults = options_.faults;
  if (faults.burst_every > 0 &&
      static_cast<int>(push_index % static_cast<std::size_t>(faults.burst_every)) <
          faults.burst_length) {
    const double burst_draw =
        static_cast<double>(util::splitmix64(burst_stream_) >> 11) * 0x1.0p-53;
    if (burst_draw < faults.burst_timeout_prob) {
      result.status = PushStatus::kTimeout;
      result.applied = transient_applied(burst_draw, faults.burst_timeout_prob);
      result.elapsed_ms = options_.deadline_ms;
      result.transient = true;
      metrics.fault_burst.inc();
      metrics.settings_applied.inc(result.applied);
      return result;
    }
  }

  if (faults.lock_flap_prob > 0.0) {
    const double flap_draw =
        static_cast<double>(util::splitmix64(flap_stream_) >> 11) * 0x1.0p-53;
    if (flap_draw < faults.lock_flap_prob) {
      // The carrier dropped out of the locked state mid-push: half the
      // waves landed, the rest were refused, and the carrier is unlocked.
      const std::size_t waves_done = waves / 2;
      result.status = PushStatus::kAbortedLockFlap;
      result.applied = std::min(settings.size(), waves_done * concurrency);
      result.elapsed_ms = static_cast<double>(waves_done) * options_.command_ms;
      result.transient = false;
      metrics.fault_lock_flap.inc();
      metrics.settings_applied.inc(result.applied);
      unlock(carrier);
      return result;
    }
  }

  result.applied = settings.size();
  result.elapsed_ms = needed_ms;
  metrics.settings_applied.inc(result.applied);
  return result;
}

}  // namespace auric::smartlaunch
