#include "smartlaunch/ems.h"

#include <stdexcept>

#include "util/rng.h"

namespace auric::smartlaunch {

const char* push_status_name(PushStatus status) {
  switch (status) {
    case PushStatus::kApplied: return "applied";
    case PushStatus::kRejectedUnlocked: return "rejected-unlocked";
    case PushStatus::kTimeout: return "timeout";
  }
  return "?";
}

EmsSimulator::EmsSimulator(std::size_t carrier_count, EmsOptions options)
    : options_(options),
      states_(carrier_count, CarrierState::kLocked),
      fault_stream_(options.seed) {}

CarrierState EmsSimulator::state(netsim::CarrierId carrier) const {
  return states_.at(static_cast<std::size_t>(carrier));
}

void EmsSimulator::lock(netsim::CarrierId carrier) {
  auto& state = states_.at(static_cast<std::size_t>(carrier));
  if (state == CarrierState::kUnlocked) ++lock_cycles_;
  state = CarrierState::kLocked;
}

void EmsSimulator::unlock(netsim::CarrierId carrier) {
  states_.at(static_cast<std::size_t>(carrier)) = CarrierState::kUnlocked;
}

void EmsSimulator::unlock_out_of_band(netsim::CarrierId carrier) { unlock(carrier); }

PushResult EmsSimulator::push(netsim::CarrierId carrier,
                              const std::vector<config::MoSetting>& settings) {
  PushResult result;
  if (state(carrier) != CarrierState::kLocked) {
    result.status = PushStatus::kRejectedUnlocked;
    return result;
  }
  if (settings.empty()) return result;

  // Commands execute in waves of `concurrency`.
  const auto waves =
      (settings.size() + static_cast<std::size_t>(options_.concurrency) - 1) /
      static_cast<std::size_t>(options_.concurrency);
  const double needed_ms = static_cast<double>(waves) * options_.command_ms;

  const double fault_draw =
      static_cast<double>(util::splitmix64(fault_stream_) >> 11) * 0x1.0p-53;
  if (needed_ms > options_.deadline_ms || fault_draw < options_.flaky_timeout_prob) {
    // Partial application up to the deadline; remaining settings are lost.
    const auto waves_done = static_cast<std::size_t>(options_.deadline_ms / options_.command_ms);
    result.status = PushStatus::kTimeout;
    result.applied = std::min(settings.size(),
                              waves_done * static_cast<std::size_t>(options_.concurrency));
    result.elapsed_ms = options_.deadline_ms;
    return result;
  }

  result.applied = settings.size();
  result.elapsed_ms = needed_ms;
  return result;
}

}  // namespace auric::smartlaunch
