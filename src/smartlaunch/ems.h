// Element Management System (EMS) simulator.
//
// §5 of the paper: configuration reaches the base-station hardware through
// the vendor's EMS, which (a) only allows certain parameter changes while
// the carrier is locked (off-air), and (b) limits how many concurrent
// parameter executions a push can use, so very large change sets time out.
// Engineers can also unlock carriers out-of-band ("prematurely"), at which
// point the controller must refuse to push to avoid service disruption.
//
// The simulator models carrier lock state, per-command execution cost
// against a concurrency budget, deterministic fault injection for flaky
// executions, and an out-of-band unlock hook.
//
// Fault taxonomy (all deterministic and seedable; see EmsFaultOptions):
//   transient timeout   the legacy flaky_timeout_prob fault: one push stalls
//                       and times out, a retry of the remainder may succeed.
//   persistent fault    a per-carrier condition (broken transport, wedged
//                       EMS agent): every push to that carrier times out
//                       until repair; retries cannot help.
//   lock flap           the carrier drops out of the locked state mid-push
//                       (EMS-side glitch); the push aborts partially applied
//                       and the carrier is left unlocked.
//   burst window        correlated outage: pushes that land inside a
//                       deterministic window see an elevated transient
//                       fault probability (models an EMS brown-out).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "config/managed_object.h"
#include "netsim/topology.h"

namespace auric::smartlaunch {

enum class CarrierState : std::uint8_t { kLocked = 0, kUnlocked = 1 };

enum class PushStatus : std::uint8_t {
  kApplied = 0,          ///< all settings written
  kRejectedUnlocked,     ///< carrier was unlocked; push refused
  kTimeout,              ///< execution exceeded the EMS time budget
  kAbortedLockFlap,      ///< carrier lock flapped mid-push; partial apply
};

const char* push_status_name(PushStatus status);

struct PushResult {
  PushStatus status = PushStatus::kApplied;
  std::size_t applied = 0;   ///< settings written before completion/abort
  double elapsed_ms = 0.0;   ///< simulated execution time
  /// True when the failure was a transient fault: retrying the remaining
  /// settings may succeed. False for structural timeouts (change set too
  /// large for the deadline) and persistent per-carrier faults.
  bool transient = false;
};

/// Expanded fault model. All probabilities default to zero so the simulator
/// behaves exactly like the legacy flaky-timeout-only model unless a fault
/// class is explicitly enabled; each class draws from its own SplitMix64
/// stream, so enabling one never perturbs another.
struct EmsFaultOptions {
  /// Per-carrier probability the carrier suffers a persistent fault: every
  /// push to it times out (non-transient) until repair_carrier() is called.
  double persistent_fault_prob = 0.0;
  /// Per-push probability the carrier lock flaps mid-push: roughly half the
  /// settings land, the push aborts, and the carrier is left unlocked.
  double lock_flap_prob = 0.0;
  /// Burst windows: when burst_every > 0, pushes whose (0-based) execution
  /// index i satisfies i % burst_every < burst_length land in a correlated
  /// fault window with transient-timeout probability burst_timeout_prob.
  int burst_every = 0;
  int burst_length = 0;
  double burst_timeout_prob = 0.9;
};

struct EmsOptions {
  /// Per-setting execution time (vendor CLI round trip).
  double command_ms = 180.0;
  /// Concurrent executions the EMS grants one push.
  int concurrency = 4;
  /// Push deadline; command_count/concurrency * command_ms above this aborts
  /// with kTimeout ("our setup based on EMS restrictions limited us in how
  /// many concurrent executions of parameters were supported", §5).
  double deadline_ms = 1500.0;
  /// Probability a push hits a transient EMS fault and times out anyway.
  double flaky_timeout_prob = 0.06;
  std::uint64_t seed = 99;
  /// EMS shard index this simulator represents; stamped as a `shard` label
  /// on its metric series (a single-EMS deployment is shard 0).
  int shard = 0;
  EmsFaultOptions faults;
};

class EmsSimulator {
 public:
  /// Full dynamic state of the simulator: lock states, the per-class fault
  /// stream positions and the push counter that drives burst windows.
  /// Restoring a snapshot into a simulator built with the same options
  /// reproduces the exact fault sequence the snapshotted run would have
  /// seen — the basis of the crash-safe replay resume.
  struct Snapshot {
    std::uint64_t pushes_executed = 0;
    std::uint64_t lock_cycles = 0;
    std::uint64_t fault_stream = 0;
    std::uint64_t flap_stream = 0;
    std::uint64_t burst_stream = 0;
    std::vector<netsim::CarrierId> unlocked;  ///< carriers currently on air
    std::vector<netsim::CarrierId> repaired;  ///< persistent faults cleared
  };

  /// Shard-labeled instrument set (defined in ems.cpp; public only so the
  /// per-shard interning helper can construct it).
  struct Metrics;

  /// All carriers start locked (newly integrated, not yet on air).
  EmsSimulator(std::size_t carrier_count, EmsOptions options = {});

  Snapshot snapshot() const;
  /// Throws std::invalid_argument if the snapshot names unknown carriers.
  void restore(const Snapshot& snapshot);

  CarrierState state(netsim::CarrierId carrier) const;

  /// Locking an unlocked carrier is the disruptive reboot-equivalent
  /// operation the paper avoids; the simulator allows it but counts it.
  void lock(netsim::CarrierId carrier);
  void unlock(netsim::CarrierId carrier);

  /// Out-of-band unlock (engineer bypassing the pipeline). Same effect as
  /// unlock(); kept separate so tests and the pipeline can distinguish it.
  void unlock_out_of_band(netsim::CarrierId carrier);

  /// Pushes a change set to a carrier. Refused unless the carrier is locked.
  PushResult push(netsim::CarrierId carrier, const std::vector<config::MoSetting>& settings);

  /// True when `carrier` drew a persistent fault (pushes to it always time
  /// out, non-transiently).
  bool persistent_fault(netsim::CarrierId carrier) const;

  /// Clears a persistent fault (field tech swapped the transport card).
  void repair_carrier(netsim::CarrierId carrier);

  /// Largest change set guaranteed to fit one push deadline when no fault
  /// fires: floor(deadline / command_ms) waves of `concurrency` settings.
  std::size_t max_settings_per_push() const;

  const EmsOptions& options() const { return options_; }

  std::size_t lock_cycles() const { return lock_cycles_; }
  /// Pushes that reached execution (locked carrier, non-empty change set).
  std::size_t pushes_executed() const { return pushes_executed_; }

 private:
  EmsOptions options_;
  Metrics* metrics_;  ///< shard-labeled instruments, resolved at construction
  std::vector<CarrierState> states_;
  std::size_t lock_cycles_ = 0;
  std::size_t pushes_executed_ = 0;
  std::uint64_t fault_stream_;       ///< legacy transient-timeout stream
  std::uint64_t flap_stream_;        ///< lock-flap stream
  std::uint64_t burst_stream_;       ///< burst-window stream
  std::unordered_set<netsim::CarrierId> repaired_;
};

}  // namespace auric::smartlaunch
