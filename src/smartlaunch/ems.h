// Element Management System (EMS) simulator.
//
// §5 of the paper: configuration reaches the base-station hardware through
// the vendor's EMS, which (a) only allows certain parameter changes while
// the carrier is locked (off-air), and (b) limits how many concurrent
// parameter executions a push can use, so very large change sets time out.
// Engineers can also unlock carriers out-of-band ("prematurely"), at which
// point the controller must refuse to push to avoid service disruption.
//
// The simulator models carrier lock state, per-command execution cost
// against a concurrency budget, deterministic fault injection for flaky
// executions, and an out-of-band unlock hook.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "config/managed_object.h"
#include "netsim/topology.h"

namespace auric::smartlaunch {

enum class CarrierState : std::uint8_t { kLocked = 0, kUnlocked = 1 };

enum class PushStatus : std::uint8_t {
  kApplied = 0,          ///< all settings written
  kRejectedUnlocked,     ///< carrier was unlocked; push refused
  kTimeout,              ///< execution exceeded the EMS time budget
};

const char* push_status_name(PushStatus status);

struct PushResult {
  PushStatus status = PushStatus::kApplied;
  std::size_t applied = 0;   ///< settings written before completion/abort
  double elapsed_ms = 0.0;   ///< simulated execution time
};

struct EmsOptions {
  /// Per-setting execution time (vendor CLI round trip).
  double command_ms = 180.0;
  /// Concurrent executions the EMS grants one push.
  int concurrency = 4;
  /// Push deadline; command_count/concurrency * command_ms above this aborts
  /// with kTimeout ("our setup based on EMS restrictions limited us in how
  /// many concurrent executions of parameters were supported", §5).
  double deadline_ms = 1500.0;
  /// Probability a push hits a transient EMS fault and times out anyway.
  double flaky_timeout_prob = 0.06;
  std::uint64_t seed = 99;
};

class EmsSimulator {
 public:
  /// All carriers start locked (newly integrated, not yet on air).
  EmsSimulator(std::size_t carrier_count, EmsOptions options = {});

  CarrierState state(netsim::CarrierId carrier) const;

  /// Locking an unlocked carrier is the disruptive reboot-equivalent
  /// operation the paper avoids; the simulator allows it but counts it.
  void lock(netsim::CarrierId carrier);
  void unlock(netsim::CarrierId carrier);

  /// Out-of-band unlock (engineer bypassing the pipeline). Same effect as
  /// unlock(); kept separate so tests and the pipeline can distinguish it.
  void unlock_out_of_band(netsim::CarrierId carrier);

  /// Pushes a change set to a carrier. Refused unless the carrier is locked.
  PushResult push(netsim::CarrierId carrier, const std::vector<config::MoSetting>& settings);

  std::size_t lock_cycles() const { return lock_cycles_; }

 private:
  EmsOptions options_;
  std::vector<CarrierState> states_;
  std::size_t lock_cycles_ = 0;
  std::uint64_t fault_stream_;
};

}  // namespace auric::smartlaunch
