#include "smartlaunch/robust_pipeline.h"

#include <algorithm>

#include "util/rng.h"

namespace auric::smartlaunch {

const char* robust_outcome_name(RobustOutcome outcome) {
  switch (outcome) {
    case RobustOutcome::kNoChangeNeeded: return "no-change";
    case RobustOutcome::kImplemented: return "implemented";
    case RobustOutcome::kRecovered: return "recovered";
    case RobustOutcome::kQueuedDegraded: return "queued-degraded";
    case RobustOutcome::kAbortedUnlocked: return "aborted-unlocked";
    case RobustOutcome::kFalloutTerminal: return "fallout-terminal";
  }
  return "?";
}

RobustPushExecutor::RobustPushExecutor(EmsSimulator& ems)
    : RobustPushExecutor(ems, Options{}) {}

RobustPushExecutor::RobustPushExecutor(EmsSimulator& ems, Options options)
    : ems_(&ems), options_(options), breaker_(options.breaker) {}

std::size_t RobustPushExecutor::chunk_size() const {
  std::size_t limit = ems_->max_settings_per_push();
  const EmsOptions& ems = ems_->options();
  if (options_.retry.attempt_deadline_ms > 0.0 &&
      options_.retry.attempt_deadline_ms < ems.deadline_ms) {
    const auto waves =
        static_cast<std::size_t>(options_.retry.attempt_deadline_ms / ems.command_ms);
    limit = std::min(limit, waves * static_cast<std::size_t>(ems.concurrency));
  }
  limit = limit > options_.chunk_margin ? limit - options_.chunk_margin : 1;
  return std::max<std::size_t>(1, limit);
}

std::size_t RobustPushExecutor::journal_applied(netsim::CarrierId carrier) const {
  const auto it = journal_.find(carrier);
  return it == journal_.end() ? 0 : it->second;
}

bool RobustPushExecutor::should_defer() { return !breaker_.allow(); }

RobustPushExecutor::Result RobustPushExecutor::execute(
    netsim::CarrierId carrier, const std::vector<config::MoSetting>& settings) {
  Result result;
  const std::size_t max_chunk = chunk_size();
  std::size_t landed = journal_applied(carrier);
  const bool resumed = landed > 0;
  result.chunks = static_cast<int>((settings.size() + max_chunk - 1) / max_chunk);

  // Consecutive failed pushes on this launch; RetryPolicy::max_attempts
  // bounds it. Any successful (even partial-progress) push resets it.
  int consecutive_failures = 0;

  while (landed < settings.size()) {
    // Re-check lock state before every attempt: an engineer may have
    // unlocked the carrier out-of-band while we were backing off, and
    // pushing to a live carrier would disrupt service.
    if (ems_->state(carrier) != CarrierState::kLocked) {
      result.outcome = RobustOutcome::kAbortedUnlocked;
      result.applied = landed;
      journal_[carrier] = landed;  // durable partial progress
      return result;
    }

    const std::size_t take = std::min(max_chunk, settings.size() - landed);
    const std::vector<config::MoSetting> chunk(settings.begin() + static_cast<std::ptrdiff_t>(landed),
                                               settings.begin() +
                                                   static_cast<std::ptrdiff_t>(landed + take));
    const PushResult push = ems_->push(carrier, chunk);
    ++result.attempts;

    switch (push.status) {
      case PushStatus::kApplied:
        landed += chunk.size();
        consecutive_failures = 0;
        continue;

      case PushStatus::kRejectedUnlocked:
        // Unlock raced the push: same clean abort as the pre-attempt check.
        result.outcome = RobustOutcome::kAbortedUnlocked;
        result.applied = landed;
        journal_[carrier] = landed;
        return result;

      case PushStatus::kAbortedLockFlap:
      case PushStatus::kTimeout: {
        landed += push.applied;  // settings written before the abort stay
        if (push.status == PushStatus::kTimeout && !push.transient) {
          // Structural or persistent fault: retrying the same settings can
          // only fail again.
          result.outcome = RobustOutcome::kFalloutTerminal;
          result.applied = landed;
          journal_[carrier] = landed;
          breaker_.record_failure();
          return result;
        }
        ++consecutive_failures;
        if (consecutive_failures >= options_.retry.max_attempts) {
          result.outcome = RobustOutcome::kFalloutTerminal;
          result.applied = landed;
          journal_[carrier] = landed;
          breaker_.record_failure();
          return result;
        }
        ++result.retries;
        result.backoff_ms +=
            util::backoff_ms(options_.retry, consecutive_failures,
                             options_.seed ^ static_cast<std::uint64_t>(carrier));
        if (push.status == PushStatus::kAbortedLockFlap) {
          // EMS-side flap, not an engineer: re-locking is safe (the carrier
          // was never meant to be on air yet) and counted by the simulator.
          ems_->lock(carrier);
        }
        continue;
      }
    }
  }

  result.outcome =
      (result.retries > 0 || resumed) ? RobustOutcome::kRecovered : RobustOutcome::kImplemented;
  result.applied = landed;
  journal_.erase(carrier);
  breaker_.record_success();
  return result;
}

RobustLaunchController::RobustLaunchController(const LaunchController& controller,
                                               EmsSimulator& ems, const KpiModel& kpi,
                                               RobustPipelineOptions options)
    : controller_(&controller),
      ems_(&ems),
      kpi_(&kpi),
      options_(options),
      executor_(ems, options.executor) {}

RobustLaunchRecord RobustLaunchController::launch(netsim::CarrierId carrier) {
  RobustLaunchRecord record;
  record.carrier = carrier;

  ems_->lock(carrier);
  const std::vector<config::MoSetting> changes = controller_->plan_changes(carrier);
  record.changes_planned = changes.size();

  if (changes.empty()) {
    ems_->unlock(carrier);
    record.post_quality = kpi_->quality(carrier);
    return record;
  }

  if (executor_.should_defer()) {
    // Degraded mode: the carrier launches with the vendor configuration
    // only; Auric's corrections wait in the queue for the breaker to close.
    ems_->unlock(carrier);
    deferred_.push_back(carrier);
    record.outcome = RobustOutcome::kQueuedDegraded;
    record.post_quality = kpi_->quality(carrier);
    return record;
  }

  // Same engineer-behavior fault draw as SmartLaunchPipeline::launch, so a
  // naive-vs-robust comparison differs only in the pipeline's response.
  const double u = static_cast<double>(
                       util::hash_combine({options_.seed, 0x0B0BULL,
                                           static_cast<std::uint64_t>(carrier)}) >>
                       11) *
                   0x1.0p-53;
  if (u < options_.premature_unlock_prob) ems_->unlock_out_of_band(carrier);

  const RobustPushExecutor::Result push = executor_.execute(carrier, changes);
  record.outcome = push.outcome;
  record.changes_applied = push.applied;
  record.attempts = push.attempts;
  record.chunks = push.chunks;
  record.retries = push.retries;
  record.backoff_ms = push.backoff_ms;

  ems_->unlock(carrier);
  record.post_quality = kpi_->quality(carrier);
  return record;
}

void RobustLaunchController::tally(const RobustLaunchRecord& record,
                                   RobustLaunchReport& report) const {
  ++report.launches;
  if (record.changes_planned > 0) ++report.change_recommended;
  report.retries += static_cast<std::size_t>(record.retries);
  if (record.chunks > 1) ++report.chunked;
  switch (record.outcome) {
    case RobustOutcome::kImplemented:
      ++report.implemented;
      report.parameters_changed += record.changes_applied;
      break;
    case RobustOutcome::kRecovered:
      ++report.implemented;
      ++report.recovered;
      report.parameters_changed += record.changes_applied;
      break;
    case RobustOutcome::kQueuedDegraded: ++report.queued_degraded; break;
    case RobustOutcome::kAbortedUnlocked: ++report.aborted_unlocked; break;
    case RobustOutcome::kFalloutTerminal: ++report.fallout_terminal; break;
    case RobustOutcome::kNoChangeNeeded: break;
  }
}

void RobustLaunchController::drain(
    RobustLaunchReport& report,
    std::unordered_map<netsim::CarrierId, std::size_t>& record_index) {
  std::vector<netsim::CarrierId> queue;
  queue.swap(deferred_);
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (executor_.breaker().state() != util::CircuitBreaker::State::kClosed) {
      // The breaker tripped again mid-drain: re-queue the remainder.
      deferred_.insert(deferred_.end(), queue.begin() + static_cast<std::ptrdiff_t>(i),
                       queue.end());
      return;
    }
    const netsim::CarrierId carrier = queue[i];
    // Maintenance window: re-locking an on-air carrier is the disruptive
    // operation the paper avoids during launches; the simulator counts it.
    ems_->lock(carrier);
    const std::vector<config::MoSetting> changes = controller_->plan_changes(carrier);
    RobustLaunchRecord* record = nullptr;
    if (const auto it = record_index.find(carrier); it != record_index.end()) {
      record = &report.records[it->second];
    }
    if (changes.empty()) {
      // The re-plan came back empty (changes landed earlier or were
      // superseded): the queue entry is resolved with nothing to push.
      ems_->unlock(carrier);
      ++report.drained;
      ++report.implemented;
      if (record != nullptr) record->drained_late = true;
      continue;
    }
    const RobustPushExecutor::Result push = executor_.execute(carrier, changes);
    ems_->unlock(carrier);
    report.retries += static_cast<std::size_t>(push.retries);
    if (push.outcome == RobustOutcome::kImplemented ||
        push.outcome == RobustOutcome::kRecovered) {
      ++report.drained;
      ++report.implemented;
      report.parameters_changed += push.applied;
      if (record != nullptr) {
        record->drained_late = true;
        record->changes_applied = push.applied;
        record->post_quality = kpi_->quality(carrier);
      }
    } else if (push.outcome == RobustOutcome::kFalloutTerminal) {
      ++report.fallout_terminal;
      if (record != nullptr) record->outcome = RobustOutcome::kFalloutTerminal;
    } else if (push.outcome == RobustOutcome::kAbortedUnlocked) {
      ++report.aborted_unlocked;
      if (record != nullptr) record->outcome = RobustOutcome::kAbortedUnlocked;
    }
  }
}

RobustLaunchReport RobustLaunchController::run(std::span<const netsim::CarrierId> carriers) {
  RobustLaunchReport report;
  report.records.reserve(carriers.size());
  std::unordered_map<netsim::CarrierId, std::size_t> record_index;
  for (netsim::CarrierId carrier : carriers) {
    RobustLaunchRecord record = launch(carrier);
    report.total_backoff_ms += record.backoff_ms;
    tally(record, report);
    record_index[carrier] = report.records.size();
    report.records.push_back(record);
    // Drain as soon as the breaker closes again (successful half-open
    // probe) rather than waiting for the end of the cohort.
    if (!deferred_.empty() &&
        executor_.breaker().state() == util::CircuitBreaker::State::kClosed) {
      drain(report, record_index);
    }
  }
  if (!deferred_.empty() &&
      executor_.breaker().state() == util::CircuitBreaker::State::kClosed) {
    drain(report, record_index);
  }
  report.breaker_trips = executor_.breaker().trips();
  report.still_queued = deferred_.size();
  return report;
}

}  // namespace auric::smartlaunch
