#include "smartlaunch/robust_pipeline.h"

#include <algorithm>
#include <array>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace auric::smartlaunch {

namespace {

constexpr int kOutcomeCount = 7;  // RobustOutcome enumerators

}  // namespace

/// Executor-layer instruments: per-attempt simulated push latency, retry,
/// backoff and outcome accounting. One set per EMS shard (every series
/// carries a `shard` label; unlabeled selectors aggregate across shards);
/// resolved at construction so execute() only touches relaxed atomics.
struct RobustPushExecutor::Metrics {
  obs::Histogram& push_latency_ms;
  obs::Histogram& backoff_ms;
  obs::Counter& attempts;
  obs::Counter& retries;
  std::array<obs::Counter*, kOutcomeCount> outcomes;

  obs::Counter& outcome(RobustOutcome o) { return *outcomes[static_cast<std::size_t>(o)]; }
};

/// Controller-layer instruments: KPI-gate decisions, rollback and quarantine
/// accounting, deferred-queue flow and per-launch outcomes. Shard-labeled
/// like the executor's.
struct RobustLaunchController::Metrics {
  obs::Counter& gate_pass;
  obs::Counter& gate_breach;
  obs::Counter& rollbacks;
  obs::Counter& rollback_failed;
  obs::Counter& quarantines;
  obs::Counter& deferred;
  obs::Counter& drained;
  std::array<obs::Counter*, kOutcomeCount> outcomes;

  obs::Counter& outcome(RobustOutcome o) { return *outcomes[static_cast<std::size_t>(o)]; }
};

namespace {

std::array<obs::Counter*, kOutcomeCount> outcome_counters(const char* name, const char* help,
                                                          const std::string& shard) {
  std::array<obs::Counter*, kOutcomeCount> a{};
  auto& reg = obs::MetricsRegistry::global();
  for (int i = 0; i < kOutcomeCount; ++i) {
    a[static_cast<std::size_t>(i)] = &reg.counter(
        name, help,
        {{"outcome", robust_outcome_name(static_cast<RobustOutcome>(i))}, {"shard", shard}});
  }
  return a;
}

RobustPushExecutor::Metrics& executor_metrics(int shard) {
  static std::mutex mu;
  static std::unordered_map<int, std::unique_ptr<RobustPushExecutor::Metrics>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[shard];
  if (slot == nullptr) {
    auto& reg = obs::MetricsRegistry::global();
    const std::string k = std::to_string(shard);
    slot = std::make_unique<RobustPushExecutor::Metrics>(RobustPushExecutor::Metrics{
        reg.histogram("auric_push_latency_ms", obs::default_latency_bounds_ms(),
                      "simulated EMS push latency per attempt (ms)", {{"shard", k}}),
        reg.histogram("auric_push_backoff_ms", obs::default_latency_bounds_ms(),
                      "backoff injected before each executor retry (ms)", {{"shard", k}}),
        reg.counter("auric_push_attempts_total", "EMS push attempts issued by the executor",
                    {{"shard", k}}),
        reg.counter("auric_push_retries_total", "executor retries after transient faults",
                    {{"shard", k}}),
        outcome_counters("auric_push_outcomes_total", "executor push results by outcome", k)});
  }
  return *slot;
}

RobustLaunchController::Metrics& controller_metrics(int shard) {
  static std::mutex mu;
  static std::unordered_map<int, std::unique_ptr<RobustLaunchController::Metrics>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = cache[shard];
  if (slot == nullptr) {
    auto& reg = obs::MetricsRegistry::global();
    const std::string k = std::to_string(shard);
    slot = std::make_unique<RobustLaunchController::Metrics>(RobustLaunchController::Metrics{
        reg.counter("auric_kpi_gate_total", "KPI gate evaluations",
                    {{"decision", "pass"}, {"shard", k}}),
        reg.counter("auric_kpi_gate_total", "KPI gate evaluations",
                    {{"decision", "breach"}, {"shard", k}}),
        reg.counter("auric_rollbacks_total", "completed KPI-gate rollbacks", {{"shard", k}}),
        reg.counter("auric_rollback_failed_total", "rollback pushes that themselves faulted",
                    {{"shard", k}}),
        reg.counter("auric_quarantines_total", "carriers quarantined after repeated breaches",
                    {{"shard", k}}),
        reg.counter("auric_deferred_total", "launches deferred while the breaker was open",
                    {{"shard", k}}),
        reg.counter("auric_drained_total", "deferred launches drained after breaker close",
                    {{"shard", k}}),
        outcome_counters("auric_launch_outcomes_total", "robust launch results by outcome", k)});
  }
  return *slot;
}

}  // namespace

const char* robust_outcome_name(RobustOutcome outcome) {
  switch (outcome) {
    case RobustOutcome::kNoChangeNeeded: return "no-change";
    case RobustOutcome::kImplemented: return "implemented";
    case RobustOutcome::kRecovered: return "recovered";
    case RobustOutcome::kQueuedDegraded: return "queued-degraded";
    case RobustOutcome::kAbortedUnlocked: return "aborted-unlocked";
    case RobustOutcome::kFalloutTerminal: return "fallout-terminal";
    case RobustOutcome::kRolledBack: return "rolled-back";
  }
  return "?";
}

io::LaunchState::EmsState ems_state_to_io(const EmsSimulator::Snapshot& snapshot) {
  io::LaunchState::EmsState state;
  state.pushes_executed = snapshot.pushes_executed;
  state.lock_cycles = snapshot.lock_cycles;
  state.fault_stream = snapshot.fault_stream;
  state.flap_stream = snapshot.flap_stream;
  state.burst_stream = snapshot.burst_stream;
  state.unlocked = snapshot.unlocked;
  state.repaired = snapshot.repaired;
  return state;
}

EmsSimulator::Snapshot ems_state_from_io(const io::LaunchState::EmsState& state) {
  EmsSimulator::Snapshot snapshot;
  snapshot.pushes_executed = state.pushes_executed;
  snapshot.lock_cycles = state.lock_cycles;
  snapshot.fault_stream = state.fault_stream;
  snapshot.flap_stream = state.flap_stream;
  snapshot.burst_stream = state.burst_stream;
  snapshot.unlocked = state.unlocked;
  snapshot.repaired = state.repaired;
  return snapshot;
}

RobustPushExecutor::RobustPushExecutor(EmsSimulator& ems)
    : RobustPushExecutor(ems, Options{}) {}

RobustPushExecutor::RobustPushExecutor(EmsSimulator& ems, Options options)
    : ems_(&ems),
      options_(options),
      metrics_(&executor_metrics(options.shard)),
      breaker_([&options] {
        // One shard knob labels the whole stack: the executor stamps its
        // shard on the breaker it owns.
        auto breaker = options.breaker;
        breaker.shard = options.shard;
        return breaker;
      }()) {
  options_.breaker.shard = options_.shard;
}

std::size_t RobustPushExecutor::chunk_size() const {
  std::size_t limit = ems_->max_settings_per_push();
  const EmsOptions& ems = ems_->options();
  if (options_.retry.attempt_deadline_ms > 0.0 &&
      options_.retry.attempt_deadline_ms < ems.deadline_ms) {
    const auto waves =
        static_cast<std::size_t>(options_.retry.attempt_deadline_ms / ems.command_ms);
    limit = std::min(limit, waves * static_cast<std::size_t>(ems.concurrency));
  }
  limit = limit > options_.chunk_margin ? limit - options_.chunk_margin : 1;
  return std::max<std::size_t>(1, limit);
}

std::size_t RobustPushExecutor::journal_applied(netsim::CarrierId carrier) const {
  const auto it = journal_.find(carrier);
  return it == journal_.end() ? 0 : it->second;
}

void RobustPushExecutor::restore_journal(
    const std::vector<std::pair<netsim::CarrierId, std::uint64_t>>& entries) {
  journal_.clear();
  for (const auto& [carrier, applied] : entries) {
    journal_[carrier] = static_cast<std::size_t>(applied);
  }
}

bool RobustPushExecutor::should_defer() { return !breaker_.allow(); }

RobustPushExecutor::Result RobustPushExecutor::execute(
    netsim::CarrierId carrier, const std::vector<config::MoSetting>& settings) {
  obs::ScopedSpan span("push");
  Metrics& metrics = *metrics_;
  Result result;
  const std::size_t max_chunk = chunk_size();
  std::size_t landed = journal_applied(carrier);
  const bool resumed = landed > 0;
  result.chunks = static_cast<int>((settings.size() + max_chunk - 1) / max_chunk);

  // Consecutive failed pushes on this launch; RetryPolicy::max_attempts
  // bounds it. Any successful (even partial-progress) push resets it.
  int consecutive_failures = 0;

  while (landed < settings.size()) {
    // Re-check lock state before every attempt: an engineer may have
    // unlocked the carrier out-of-band while we were backing off, and
    // pushing to a live carrier would disrupt service.
    if (ems_->state(carrier) != CarrierState::kLocked) {
      result.outcome = RobustOutcome::kAbortedUnlocked;
      result.applied = landed;
      journal_[carrier] = landed;  // durable partial progress
      metrics.outcome(result.outcome).inc();
      return result;
    }

    const std::size_t take = std::min(max_chunk, settings.size() - landed);
    const std::vector<config::MoSetting> chunk(settings.begin() + static_cast<std::ptrdiff_t>(landed),
                                               settings.begin() +
                                                   static_cast<std::ptrdiff_t>(landed + take));
    const PushResult push = ems_->push(carrier, chunk);
    ++result.attempts;
    metrics.attempts.inc();
    metrics.push_latency_ms.observe(push.elapsed_ms);

    switch (push.status) {
      case PushStatus::kApplied:
        landed += chunk.size();
        consecutive_failures = 0;
        continue;

      case PushStatus::kRejectedUnlocked:
        // Unlock raced the push: same clean abort as the pre-attempt check.
        result.outcome = RobustOutcome::kAbortedUnlocked;
        result.applied = landed;
        journal_[carrier] = landed;
        metrics.outcome(result.outcome).inc();
        return result;

      case PushStatus::kAbortedLockFlap:
      case PushStatus::kTimeout: {
        landed += push.applied;  // settings written before the abort stay
        if (push.status == PushStatus::kTimeout && !push.transient) {
          // Structural or persistent fault: retrying the same settings can
          // only fail again.
          result.outcome = RobustOutcome::kFalloutTerminal;
          result.applied = landed;
          journal_[carrier] = landed;
          breaker_.record_failure();
          metrics.outcome(result.outcome).inc();
          return result;
        }
        ++consecutive_failures;
        if (consecutive_failures >= options_.retry.max_attempts) {
          result.outcome = RobustOutcome::kFalloutTerminal;
          result.applied = landed;
          journal_[carrier] = landed;
          breaker_.record_failure();
          metrics.outcome(result.outcome).inc();
          return result;
        }
        ++result.retries;
        metrics.retries.inc();
        const double backoff =
            util::backoff_ms(options_.retry, consecutive_failures,
                             options_.seed ^ static_cast<std::uint64_t>(carrier));
        result.backoff_ms += backoff;
        metrics.backoff_ms.observe(backoff);
        if (push.status == PushStatus::kAbortedLockFlap) {
          // EMS-side flap, not an engineer: re-locking is safe (the carrier
          // was never meant to be on air yet) and counted by the simulator.
          ems_->lock(carrier);
        }
        continue;
      }
    }
  }

  result.outcome =
      (result.retries > 0 || resumed) ? RobustOutcome::kRecovered : RobustOutcome::kImplemented;
  result.applied = landed;
  journal_.erase(carrier);
  breaker_.record_success();
  metrics.outcome(result.outcome).inc();
  return result;
}

RobustLaunchController::RobustLaunchController(const LaunchController& controller,
                                               EmsSimulator& ems, const KpiModel& kpi,
                                               RobustPipelineOptions options)
    : controller_(&controller),
      ems_(&ems),
      kpi_(&kpi),
      options_(options),
      metrics_(&controller_metrics(options.shard)),
      executor_(ems, [&options] {
        auto executor = options.executor;
        executor.shard = options.shard;
        return executor;
      }()) {
  options_.executor.shard = options_.shard;
}

RobustLaunchRecord RobustLaunchController::launch(netsim::CarrierId carrier) {
  obs::ScopedSpan span("launch");
  RobustLaunchRecord record;
  record.carrier = carrier;

  ems_->lock(carrier);
  const std::vector<LaunchController::PlannedChange> changes =
      controller_->plan_changes_detailed(carrier);
  record.changes_planned = changes.size();

  if (changes.empty()) {
    ems_->unlock(carrier);
    record.pre_quality = record.post_quality = kpi_->quality(carrier);
    metrics_->outcome(record.outcome).inc();
    return record;
  }

  record.pre_quality =
      controller_->launch_quality(carrier, changes, 0, options_.rollback.kpi);

  if (options_.rollback.enabled) {
    if (const auto it = quarantine_.find(carrier);
        it != quarantine_.end() && it->second >= options_.rollback.max_rollbacks) {
      // Quarantined: an earlier launch of this carrier breached the KPI gate
      // max_rollbacks times. It goes on air vendor-only; no further pushes
      // this run.
      ems_->unlock(carrier);
      record.outcome = RobustOutcome::kRolledBack;
      record.quarantine_skipped = true;
      record.post_quality = record.pre_quality;
      metrics_->outcome(record.outcome).inc();
      return record;
    }
  }

  if (executor_.should_defer()) {
    // Degraded mode: the carrier launches with the vendor configuration
    // only; Auric's corrections wait in the queue for the breaker to close.
    ems_->unlock(carrier);
    deferred_.push_back(carrier);
    record.outcome = RobustOutcome::kQueuedDegraded;
    record.post_quality = kpi_->quality(carrier);
    metrics_->deferred.inc();
    metrics_->outcome(record.outcome).inc();
    return record;
  }

  // Same engineer-behavior fault draw as SmartLaunchPipeline::launch, so a
  // naive-vs-robust comparison differs only in the pipeline's response.
  const double u = static_cast<double>(
                       util::hash_combine({options_.seed, 0x0B0BULL,
                                           static_cast<std::uint64_t>(carrier)}) >>
                       11) *
                   0x1.0p-53;
  if (u < options_.premature_unlock_prob) ems_->unlock_out_of_band(carrier);

  push_gated(carrier, changes, record);

  // A launch whose outcome is terminal for this run gives up its journal
  // entry: a later manual relaunch must re-plan from scratch rather than
  // resume a stale partial apply against a plan that may have changed.
  if (record.outcome == RobustOutcome::kFalloutTerminal ||
      record.outcome == RobustOutcome::kAbortedUnlocked) {
    executor_.clear_journal(carrier);
  }
  metrics_->outcome(record.outcome).inc();
  return record;
}

RobustLaunchRecord RobustLaunchController::push_gated_launch(
    netsim::CarrierId carrier, const std::vector<LaunchController::PlannedChange>& changes) {
  RobustLaunchRecord record;
  record.carrier = carrier;
  record.changes_planned = changes.size();

  if (changes.empty()) {
    ems_->unlock(carrier);
    record.pre_quality = record.post_quality = kpi_->quality(carrier);
    metrics_->outcome(record.outcome).inc();
    return record;
  }

  record.pre_quality =
      controller_->launch_quality(carrier, changes, 0, options_.rollback.kpi);

  if (options_.rollback.enabled) {
    if (const auto it = quarantine_.find(carrier);
        it != quarantine_.end() && it->second >= options_.rollback.max_rollbacks) {
      ems_->unlock(carrier);
      record.outcome = RobustOutcome::kRolledBack;
      record.quarantine_skipped = true;
      record.post_quality = record.pre_quality;
      metrics_->outcome(record.outcome).inc();
      return record;
    }
  }

  push_gated(carrier, changes, record);

  if (record.outcome == RobustOutcome::kFalloutTerminal ||
      record.outcome == RobustOutcome::kAbortedUnlocked) {
    executor_.clear_journal(carrier);
  }
  metrics_->outcome(record.outcome).inc();
  return record;
}

void RobustLaunchController::restore_quarantine(
    const std::vector<std::pair<netsim::CarrierId, int>>& entries) {
  quarantine_.clear();
  for (const auto& [carrier, rollbacks] : entries) quarantine_[carrier] = rollbacks;
}

void RobustLaunchController::push_gated(
    netsim::CarrierId carrier, const std::vector<LaunchController::PlannedChange>& changes,
    RobustLaunchRecord& record) {
  std::vector<config::MoSetting> settings;
  settings.reserve(changes.size());
  for (const auto& change : changes) {
    settings.push_back({change.slot.mo_path, change.slot.param, change.new_value});
  }
  const RollbackOptions& gate = options_.rollback;
  // Quality the plan promises when every change lands. A clean full apply
  // reproduces this value exactly, so the gate below can only arm on a
  // launch that underperforms its own plan — a fault-damaged partial apply
  // — never on a healthy full push whose recommendations happen to score
  // poorly (that is the re-learn loop's concern, not the push layer's).
  const double planned_quality =
      controller_->launch_quality(carrier, changes, changes.size(), gate.kpi);

  for (;;) {
    const RobustPushExecutor::Result push = executor_.execute(carrier, settings);
    record.outcome = push.outcome;
    record.changes_applied = push.applied;
    record.attempts += push.attempts;
    record.chunks = push.chunks;
    record.retries += push.retries;
    record.backoff_ms += push.backoff_ms;

    // Unlock step: the carrier goes on air in whatever state the push left.
    if (ems_->state(carrier) == CarrierState::kLocked) ems_->unlock(carrier);
    record.post_quality =
        controller_->launch_quality(carrier, changes, push.applied, gate.kpi);

    // The KPI gate. kAbortedUnlocked is exempt: an engineer owns the
    // carrier out-of-band, and a rollback push would be refused anyway.
    const bool gated = gate.enabled && push.applied > 0 &&
                       (push.outcome == RobustOutcome::kImplemented ||
                        push.outcome == RobustOutcome::kRecovered ||
                        push.outcome == RobustOutcome::kFalloutTerminal);
    const bool breach =
        gated && record.post_quality < planned_quality &&
        record.post_quality < record.pre_quality &&
        (record.post_quality < gate.min_quality ||
         record.post_quality < record.pre_quality * (1.0 - gate.max_relative_drop));
    if (gated) (breach ? metrics_->gate_breach : metrics_->gate_pass).inc();
    if (!breach) return;

    // Roll back: reverse-replay the applied prefix with the vendor values
    // through the same executor — chunked, retried and breaker-accounted,
    // because a rollback push can itself fault and must recover.
    ems_->lock(carrier);  // counted cycle: the carrier was already on air
    executor_.clear_journal(carrier);
    std::vector<config::MoSetting> reverse;
    reverse.reserve(push.applied);
    for (std::size_t i = push.applied; i-- > 0;) {
      reverse.push_back({changes[i].slot.mo_path, changes[i].slot.param,
                         changes[i].vendor_value});
    }
    RobustPushExecutor::Result undo;
    {
      obs::ScopedSpan rollback_span("rollback");
      undo = executor_.execute(carrier, reverse);
    }
    record.attempts += undo.attempts;
    record.rollback_retries += undo.retries;
    record.backoff_ms += undo.backoff_ms;

    if (undo.outcome != RobustOutcome::kImplemented &&
        undo.outcome != RobustOutcome::kRecovered) {
      // The rollback itself failed. The reverse push undid a suffix of the
      // applied prefix (it replays in reverse order), so `applied - undone`
      // settings remain on air as a contiguous prefix of the plan.
      record.rollback_failed = true;
      metrics_->rollback_failed.inc();
      record.outcome = undo.outcome == RobustOutcome::kAbortedUnlocked
                           ? RobustOutcome::kAbortedUnlocked
                           : RobustOutcome::kFalloutTerminal;
      record.changes_applied = push.applied - std::min(push.applied, undo.applied);
      executor_.clear_journal(carrier);
      if (ems_->state(carrier) == CarrierState::kLocked) ems_->unlock(carrier);
      record.post_quality =
          controller_->launch_quality(carrier, changes, record.changes_applied, gate.kpi);
      return;
    }

    ++record.rollbacks;
    metrics_->rollbacks.inc();
    record.outcome = RobustOutcome::kRolledBack;
    record.changes_applied = 0;
    record.post_quality = record.pre_quality;
    executor_.clear_journal(carrier);
    const int count = ++quarantine_[carrier];
    if (count >= gate.max_rollbacks) {
      record.quarantined = true;
      metrics_->quarantines.inc();
      ems_->unlock(carrier);
      return;
    }
    // Immediate re-attempt in the same maintenance window (still locked);
    // the quarantine count caps how often this can repeat.
    ++record.reattempts;
  }
}

void RobustLaunchController::tally(const RobustLaunchRecord& record,
                                   RobustLaunchReport& report) const {
  ++report.launches;
  if (record.changes_planned > 0) ++report.change_recommended;
  report.retries += static_cast<std::size_t>(record.retries);
  if (record.chunks > 1) ++report.chunked;
  report.rollbacks += static_cast<std::size_t>(record.rollbacks);
  report.rollback_retries += static_cast<std::size_t>(record.rollback_retries);
  report.reattempted += static_cast<std::size_t>(record.reattempts);
  if (record.rollback_failed) ++report.rollback_failed;
  if (record.quarantined) ++report.quarantined;
  switch (record.outcome) {
    case RobustOutcome::kImplemented:
      ++report.implemented;
      report.parameters_changed += record.changes_applied;
      break;
    case RobustOutcome::kRecovered:
      ++report.implemented;
      ++report.recovered;
      report.parameters_changed += record.changes_applied;
      break;
    case RobustOutcome::kQueuedDegraded: ++report.queued_degraded; break;
    case RobustOutcome::kAbortedUnlocked: ++report.aborted_unlocked; break;
    case RobustOutcome::kFalloutTerminal: ++report.fallout_terminal; break;
    case RobustOutcome::kRolledBack: ++report.rolled_back; break;
    case RobustOutcome::kNoChangeNeeded: break;
  }
}

void RobustLaunchController::drain(
    RobustLaunchReport& report,
    std::unordered_map<netsim::CarrierId, std::size_t>& record_index) {
  std::vector<netsim::CarrierId> queue;
  queue.swap(deferred_);
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (executor_.breaker().state() != util::CircuitBreaker::State::kClosed) {
      // The breaker tripped again mid-drain: re-queue the remainder.
      deferred_.insert(deferred_.end(), queue.begin() + static_cast<std::ptrdiff_t>(i),
                       queue.end());
      return;
    }
    const netsim::CarrierId carrier = queue[i];
    RobustLaunchRecord* record = nullptr;
    if (const auto it = record_index.find(carrier); it != record_index.end()) {
      record = &report.records[it->second];
    }
    if (options_.rollback.enabled) {
      if (const auto it = quarantine_.find(carrier);
          it != quarantine_.end() && it->second >= options_.rollback.max_rollbacks) {
        // Quarantined since the deferral (possible on a resumed run): the
        // carrier stays vendor-only and the queue entry resolves as a
        // rollback fall-out.
        ++report.rolled_back;
        if (record != nullptr) {
          record->outcome = RobustOutcome::kRolledBack;
          record->quarantine_skipped = true;
        }
        continue;
      }
    }
    // Maintenance window: re-locking an on-air carrier is the disruptive
    // operation the paper avoids during launches; the simulator counts it.
    ems_->lock(carrier);
    const std::vector<LaunchController::PlannedChange> changes =
        controller_->plan_changes_detailed(carrier);
    if (changes.empty()) {
      // The re-plan came back empty (changes landed earlier or were
      // superseded): the queue entry is resolved with nothing to push.
      ems_->unlock(carrier);
      ++report.drained;
      metrics_->drained.inc();
      ++report.implemented;
      if (record != nullptr) record->drained_late = true;
      continue;
    }
    RobustLaunchRecord late;
    late.carrier = carrier;
    late.pre_quality = controller_->launch_quality(carrier, changes, 0, options_.rollback.kpi);
    push_gated(carrier, changes, late);
    if (late.outcome == RobustOutcome::kFalloutTerminal ||
        late.outcome == RobustOutcome::kAbortedUnlocked) {
      executor_.clear_journal(carrier);
    }
    report.retries += static_cast<std::size_t>(late.retries);
    report.rollbacks += static_cast<std::size_t>(late.rollbacks);
    report.rollback_retries += static_cast<std::size_t>(late.rollback_retries);
    report.reattempted += static_cast<std::size_t>(late.reattempts);
    if (late.rollback_failed) ++report.rollback_failed;
    if (late.quarantined) ++report.quarantined;
    metrics_->outcome(late.outcome).inc();
    if (late.outcome == RobustOutcome::kImplemented ||
        late.outcome == RobustOutcome::kRecovered) {
      ++report.drained;
      metrics_->drained.inc();
      ++report.implemented;
      report.parameters_changed += late.changes_applied;
      if (record != nullptr) {
        record->drained_late = true;
        record->changes_applied = late.changes_applied;
        record->post_quality = kpi_->quality(carrier);
      }
    } else if (late.outcome == RobustOutcome::kFalloutTerminal) {
      ++report.fallout_terminal;
      if (record != nullptr) record->outcome = RobustOutcome::kFalloutTerminal;
    } else if (late.outcome == RobustOutcome::kAbortedUnlocked) {
      ++report.aborted_unlocked;
      if (record != nullptr) record->outcome = RobustOutcome::kAbortedUnlocked;
    } else if (late.outcome == RobustOutcome::kRolledBack) {
      ++report.rolled_back;
      if (record != nullptr) {
        record->outcome = RobustOutcome::kRolledBack;
        record->rollbacks += late.rollbacks;
        record->quarantined = late.quarantined;
      }
    }
  }
}

RobustLaunchReport RobustLaunchController::run(std::span<const netsim::CarrierId> carriers) {
  RobustLaunchReport report;
  report.records.reserve(carriers.size());
  const bool persist = !options_.state_dir.empty();
  io::LaunchStateStore store(options_.state_dir);
  if (persist && options_.resume && store.exists()) restore_state(store.load());
  std::unordered_map<netsim::CarrierId, std::size_t> record_index;
  for (netsim::CarrierId carrier : carriers) {
    RobustLaunchRecord record = launch(carrier);
    report.total_backoff_ms += record.backoff_ms;
    tally(record, report);
    record_index[carrier] = report.records.size();
    report.records.push_back(record);
    // Drain as soon as the breaker closes again (successful half-open
    // probe) rather than waiting for the end of the cohort.
    if (!deferred_.empty() &&
        executor_.breaker().state() == util::CircuitBreaker::State::kClosed) {
      drain(report, record_index);
    }
    if (persist) save_state(store);
  }
  if (!deferred_.empty() &&
      executor_.breaker().state() == util::CircuitBreaker::State::kClosed) {
    drain(report, record_index);
  }
  if (persist) save_state(store);
  report.breaker_trips = executor_.breaker().trips();
  report.still_queued = deferred_.size();
  return report;
}

void RobustLaunchController::save_state(const io::LaunchStateStore& store) const {
  io::LaunchState state;
  for (const auto& [carrier, applied] : executor_.journal()) {
    state.journal.emplace_back(carrier, static_cast<std::uint64_t>(applied));
  }
  std::sort(state.journal.begin(), state.journal.end());
  state.deferred = deferred_;
  state.quarantine.assign(quarantine_.begin(), quarantine_.end());
  std::sort(state.quarantine.begin(), state.quarantine.end());
  state.breaker = executor_.breaker().snapshot();
  state.ems = ems_state_to_io(ems_->snapshot());
  state.progress.emplace_back("kind", "pipeline");
  store.save(state);
}

void RobustLaunchController::restore_state(const io::LaunchState& state) {
  executor_.restore_journal(state.journal);
  executor_.restore_breaker(state.breaker);
  deferred_ = state.deferred;
  quarantine_.clear();
  for (const auto& [carrier, rollbacks] : state.quarantine) quarantine_[carrier] = rollbacks;
  ems_->restore(ems_state_from_io(state.ems));
}

}  // namespace auric::smartlaunch
