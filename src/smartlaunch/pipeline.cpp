#include "smartlaunch/pipeline.h"

#include "util/rng.h"

namespace auric::smartlaunch {

const char* launch_outcome_name(LaunchOutcome outcome) {
  switch (outcome) {
    case LaunchOutcome::kNoChangeNeeded: return "no-change";
    case LaunchOutcome::kImplemented: return "implemented";
    case LaunchOutcome::kFalloutUnlocked: return "fallout-unlocked";
    case LaunchOutcome::kFalloutTimeout: return "fallout-timeout";
  }
  return "?";
}

SmartLaunchPipeline::SmartLaunchPipeline(const LaunchController& controller, EmsSimulator& ems,
                                         const KpiModel& kpi, PipelineOptions options)
    : controller_(&controller), ems_(&ems), kpi_(&kpi), options_(options) {}

LaunchRecord SmartLaunchPipeline::launch(netsim::CarrierId carrier) {
  LaunchRecord record;
  record.carrier = carrier;

  // Pre-check: the carrier must be integrated and still locked.
  ems_->lock(carrier);

  // Auric configuration step: diff the recommendation against the vendor's
  // initial configuration; only mismatches are pushed.
  const std::vector<config::MoSetting> changes = controller_->plan_changes(carrier);
  record.changes_planned = changes.size();

  if (!changes.empty()) {
    // Fall-out mode (a): an engineer unlocked the carrier through an
    // off-band interface; pushing now would disrupt live traffic, so the
    // controller refuses (§5).
    const double u = static_cast<double>(
                         util::hash_combine({options_.seed, 0x0B0BULL,
                                             static_cast<std::uint64_t>(carrier)}) >>
                         11) *
                     0x1.0p-53;
    if (u < options_.premature_unlock_prob) {
      ems_->unlock_out_of_band(carrier);
    }

    const PushResult push = ems_->push(carrier, changes);
    record.changes_applied = push.applied;
    switch (push.status) {
      case PushStatus::kApplied:
        record.outcome = LaunchOutcome::kImplemented;
        break;
      case PushStatus::kRejectedUnlocked:
      case PushStatus::kAbortedLockFlap:
        // The naive pipeline has no re-lock path: a mid-push lock flap is
        // indistinguishable from an out-of-band unlock and falls out.
        record.outcome = LaunchOutcome::kFalloutUnlocked;
        break;
      case PushStatus::kTimeout:
        record.outcome = LaunchOutcome::kFalloutTimeout;
        break;
    }
  }

  // Unlock and post-check KPIs.
  ems_->unlock(carrier);
  record.post_quality = kpi_->quality(carrier);
  return record;
}

SmartLaunchReport SmartLaunchPipeline::run(std::span<const netsim::CarrierId> carriers) {
  SmartLaunchReport report;
  report.records.reserve(carriers.size());
  for (netsim::CarrierId carrier : carriers) {
    const LaunchRecord record = launch(carrier);
    ++report.launches;
    if (record.changes_planned > 0) ++report.change_recommended;
    switch (record.outcome) {
      case LaunchOutcome::kImplemented:
        ++report.implemented;
        report.parameters_changed += record.changes_applied;
        break;
      case LaunchOutcome::kFalloutUnlocked: ++report.fallout_unlocked; break;
      case LaunchOutcome::kFalloutTimeout: ++report.fallout_timeout; break;
      case LaunchOutcome::kNoChangeNeeded: break;
    }
    report.records.push_back(record);
  }
  return report;
}

}  // namespace auric::smartlaunch
