// Multi-EMS sharding façade.
//
// Real RANs are not managed by one EMS: each vendor/market pairing runs its
// own management plane, and §5's push constraints (lock discipline,
// concurrency budget, fault behavior) apply per EMS instance. ShardedEms
// models that: carriers are partitioned across N EmsSimulator instances
// keyed by market — consistent with X2 locality, since the topology
// generator only creates inter-site neighbor relations inside one market,
// so a carrier, its X2 edges and its EMS always live on the same shard.
//
// Each shard is a full, independent EmsSimulator: its own deterministic
// fault streams (shard 0 keeps the caller's seed bit-for-bit, so N=1 is
// byte-compatible with the single-EMS model; shard k > 0 derives its seed
// from (seed, k)), its own lock state, its own push counters, and a
// `shard="k"` label on every metric series it emits. Fault domains are
// shard-local by construction: a burst window or flaky streak on one shard
// never perturbs another shard's stream.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/topology.h"
#include "smartlaunch/ems.h"

namespace auric::smartlaunch {

/// Market → shard mapping: a pure function of the market id and the shard
/// count (never of the topology's market list), so the mapping of existing
/// markets is stable when markets are added or the inventory is reordered.
int shard_of_market(netsim::MarketId market, int shards);

class ShardedEms {
 public:
  /// Builds `shards` EmsSimulators (>= 1; values < 1 are clamped to 1).
  /// Every shard spans the full carrier id space so carrier ids index
  /// directly; a carrier only ever touches the shard its market maps to.
  /// Shard 0 runs with `options` verbatim — same seed, same streams — and
  /// shard k > 0 with a seed derived from (options.seed, k); each shard's
  /// EmsOptions::shard is set to its index for metric labeling.
  ShardedEms(const netsim::Topology& topology, int shards, EmsOptions options = {});

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// The shard `carrier` belongs to (resolved once at construction from the
  /// carrier's market).
  int shard_of(netsim::CarrierId carrier) const {
    return carrier_shard_[static_cast<std::size_t>(carrier)];
  }

  EmsSimulator& shard(int k) { return shards_[static_cast<std::size_t>(k)]; }
  const EmsSimulator& shard(int k) const { return shards_[static_cast<std::size_t>(k)]; }

  /// The simulator managing `carrier`.
  EmsSimulator& ems_for(netsim::CarrierId carrier) { return shard(shard_of(carrier)); }
  const EmsSimulator& ems_for(netsim::CarrierId carrier) const {
    return shards_[static_cast<std::size_t>(shard_of(carrier))];
  }

  /// Aggregates across shards (the single-EMS counters, summed).
  std::size_t lock_cycles() const;
  std::size_t pushes_executed() const;

  /// Per-shard snapshots, index k = shard k (for per-shard checkpointing).
  std::vector<EmsSimulator::Snapshot> snapshot() const;
  /// Throws std::invalid_argument when the snapshot count does not match
  /// shard_count() — a checkpoint taken at a different N cannot be resumed.
  void restore(const std::vector<EmsSimulator::Snapshot>& snapshots);

  /// Seed of shard `shard` under base seed `seed` (shard 0 = `seed`).
  static std::uint64_t shard_seed(std::uint64_t seed, int shard);

 private:
  std::vector<EmsSimulator> shards_;
  std::vector<int> carrier_shard_;  ///< carrier id -> shard index
};

}  // namespace auric::smartlaunch
