#include "smartlaunch/kpi.h"

#include <algorithm>
#include <cmath>

namespace auric::smartlaunch {

KpiModel::KpiModel(const netsim::Topology& topology, const config::ParamCatalog& catalog,
                   const config::ConfigAssignment& assignment, KpiOptions options) {
  quality_.assign(topology.carrier_count(), 1.0);

  const auto apply_column = [&](const config::ParamColumn& col, const config::ParamDef& def,
                                bool pairwise) {
    const int step_scale = std::max(1, def.domain.size() / 48);
    for (std::size_t i = 0; i < col.value.size(); ++i) {
      if (col.value[i] == config::kUnset || col.value[i] == col.intended[i]) continue;
      const netsim::CarrierId subject =
          pairwise ? topology.edges[i].from : static_cast<netsim::CarrierId>(i);
      const double deviation =
          std::fabs(static_cast<double>(col.value[i] - col.intended[i])) /
          static_cast<double>(step_scale);
      quality_[static_cast<std::size_t>(subject)] -=
          options.penalty_per_deviation * std::min(3.0, deviation);
    }
  };

  for (std::size_t si = 0; si < assignment.singular.size(); ++si) {
    apply_column(assignment.singular[si], catalog.at(catalog.singular_ids()[si]), false);
  }
  for (std::size_t pi = 0; pi < assignment.pairwise.size(); ++pi) {
    apply_column(assignment.pairwise[pi], catalog.at(catalog.pairwise_ids()[pi]), true);
  }
  for (double& q : quality_) q = std::max(options.min_quality, q);
}

double KpiModel::quality(netsim::CarrierId carrier) const {
  return quality_.at(static_cast<std::size_t>(carrier));
}

}  // namespace auric::smartlaunch
