// Simple service-KPI model for post-checks and the §6 performance-feedback
// extension.
//
// The paper monitors data throughput and voice call admissions after
// configuration changes. We model a carrier's service quality as a score in
// [0, 1] that degrades with the configured values' distance from the
// engineering-intent values: intent is, by construction of the ground-truth
// model, the configuration the engineers converged to for best performance.
#pragma once

#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "netsim/topology.h"

namespace auric::smartlaunch {

struct KpiOptions {
  /// Quality penalty per step-scale unit of deviation on one parameter.
  double penalty_per_deviation = 0.02;
  /// Floor so even badly misconfigured carriers keep a positive score.
  double min_quality = 0.1;
  /// Extra penalty per *unapplied* planned change when a push landed only
  /// part of its change set (0 < applied < planned). A half-configured
  /// carrier is worse than either endpoint — the applied settings were tuned
  /// to work together with the ones that never landed (think a lowered
  /// handover threshold without the matching hysteresis widening). A clean
  /// full apply or a clean no-op never pays this, which is what lets the
  /// rollback gate stay silent at fault rate zero.
  double partial_apply_penalty = 0.04;
};

class KpiModel {
 public:
  KpiModel(const netsim::Topology& topology, const config::ParamCatalog& catalog,
           const config::ConfigAssignment& assignment, KpiOptions options = {});

  /// Quality score of `carrier` under its current configuration.
  double quality(netsim::CarrierId carrier) const;

  /// Quality scores for every carrier (voting weights for the
  /// performance-feedback extension).
  const std::vector<double>& all_qualities() const { return quality_; }

 private:
  std::vector<double> quality_;
};

}  // namespace auric::smartlaunch
