#include "core/voting.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace auric::core {

std::size_t GroupKeyHash::operator()(const GroupKey& key) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::int32_t v : key) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return static_cast<std::size_t>(h);
}

namespace {

/// Appends the dependent codes for (carrier, neighbor) to `key`.
void fill_key(GroupKey& key, std::span<const AttrRef> deps,
              const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
              netsim::CarrierId carrier, netsim::CarrierId neighbor) {
  key.clear();
  for (const AttrRef& ref : deps) {
    const netsim::CarrierId subject = ref.neighbor_side ? neighbor : carrier;
    if (subject == netsim::kInvalidCarrier) {
      throw std::logic_error("voting: neighbor-side dependency without a neighbor");
    }
    key.push_back(attr_codes[ref.attr][static_cast<std::size_t>(subject)]);
  }
}

}  // namespace

VotingModel::VotingModel(const ParamView& view, std::span<const AttrRef> deps,
                         const std::vector<std::vector<netsim::AttrCode>>& attr_codes)
    : deps_(deps.begin(), deps.end()), attr_codes_(&attr_codes) {
  GroupKey key;
  for (std::size_t r = 0; r < view.rows(); ++r) {
    fill_key(key, deps_, attr_codes, view.carrier[r], view.neighbor[r]);
    Group& group = groups_[key];
    ++group.total;
    bool found = false;
    for (auto& [label, count] : group.counts) {
      if (label == view.label[r]) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) group.counts.emplace_back(view.label[r], 1);
  }
}

GroupKey VotingModel::key_for(netsim::CarrierId carrier, netsim::CarrierId neighbor) const {
  GroupKey key;
  fill_key(key, deps_, *attr_codes_, carrier, neighbor);
  return key;
}

std::optional<Vote> VotingModel::winner(const Group& group, ml::ClassLabel excluded,
                                        bool exclude_one, double threshold) {
  std::int32_t total = group.total;
  Vote best;
  for (const auto& [label, count] : group.counts) {
    std::int32_t c = count;
    if (exclude_one && label == excluded) --c;
    if (c > best.count || (c == best.count && best.label >= 0 && label < best.label)) {
      best.runner_up = best.count;
      best.label = label;
      best.count = c;
    } else if (c > best.runner_up) {
      best.runner_up = c;
    }
  }
  if (exclude_one) --total;
  best.group_size = total;
  if (total <= 0 || best.count <= 0) return std::nullopt;
  if (best.support() < threshold) return std::nullopt;
  return best;
}

std::vector<VotingModel::GroupSummary> VotingModel::group_summaries() const {
  std::vector<GroupSummary> out;
  out.reserve(groups_.size());
  for (const auto& [key, group] : groups_) {
    GroupSummary summary;
    summary.key = key;
    summary.total = group.total;
    for (const auto& [label, count] : group.counts) {
      if (count > summary.winner_count ||
          (count == summary.winner_count && summary.winner >= 0 && label < summary.winner)) {
        summary.winner = label;
        summary.winner_count = count;
      }
    }
    out.push_back(std::move(summary));
  }
  // Deterministic order independent of hash-map iteration.
  std::sort(out.begin(), out.end(),
            [](const GroupSummary& a, const GroupSummary& b) { return a.key < b.key; });
  return out;
}

void VotingModel::adjust(const GroupKey& key, ml::ClassLabel label, std::int32_t delta) {
  const auto it = groups_.find(key);
  if (it == groups_.end()) {
    if (delta < 0) throw std::logic_error("VotingModel::adjust: removing from an absent group");
    if (delta == 0) return;
    Group& group = groups_[key];
    group.total = delta;
    group.counts.emplace_back(label, delta);
    return;
  }
  Group& group = it->second;
  group.total += delta;
  bool found = false;
  for (auto pair = group.counts.begin(); pair != group.counts.end(); ++pair) {
    if (pair->first != label) continue;
    pair->second += delta;
    if (pair->second < 0) throw std::logic_error("VotingModel::adjust: vote count went negative");
    if (pair->second == 0) group.counts.erase(pair);
    found = true;
    break;
  }
  if (!found) {
    if (delta < 0) throw std::logic_error("VotingModel::adjust: removing an absent label");
    if (delta > 0) group.counts.emplace_back(label, delta);
  }
  if (group.total < 0) throw std::logic_error("VotingModel::adjust: group size went negative");
  if (group.total == 0) groups_.erase(it);
}

void VotingModel::remap_labels(std::span<const ml::ClassLabel> old_to_new) {
  for (auto& [key, group] : groups_) {
    for (auto& [label, count] : group.counts) {
      const ml::ClassLabel next = old_to_new[static_cast<std::size_t>(label)];
      if (next < 0) throw std::logic_error("VotingModel::remap_labels: dropping a live label");
      label = next;
    }
  }
}

void VotingModel::reorder_deps(std::span<const AttrRef> new_deps) {
  if (new_deps.size() != deps_.size()) {
    throw std::logic_error("VotingModel::reorder_deps: dependent count changed");
  }
  std::vector<std::size_t> perm(new_deps.size());
  for (std::size_t i = 0; i < new_deps.size(); ++i) {
    const auto it = std::find(deps_.begin(), deps_.end(), new_deps[i]);
    if (it == deps_.end()) {
      throw std::logic_error("VotingModel::reorder_deps: not a permutation of deps()");
    }
    perm[i] = static_cast<std::size_t>(it - deps_.begin());
  }
  std::unordered_map<GroupKey, Group, GroupKeyHash> next;
  next.reserve(groups_.size());
  GroupKey tupled;
  for (auto& [key, group] : groups_) {
    tupled.resize(key.size());
    for (std::size_t i = 0; i < perm.size(); ++i) tupled[i] = key[perm[i]];
    next.emplace(tupled, std::move(group));
  }
  groups_ = std::move(next);
  deps_.assign(new_deps.begin(), new_deps.end());
}

std::optional<Vote> VotingModel::vote(const GroupKey& key, double threshold) const {
  const auto it = groups_.find(key);
  if (it == groups_.end()) return std::nullopt;
  return winner(it->second, -1, false, threshold);
}

std::optional<Vote> VotingModel::vote_excluding(const GroupKey& key, ml::ClassLabel own_label,
                                                double threshold) const {
  const auto it = groups_.find(key);
  if (it == groups_.end()) return std::nullopt;
  return winner(it->second, own_label, true, threshold);
}

std::optional<Vote> local_vote(const ParamView& view, std::span<const AttrRef> deps,
                               const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
                               const GroupKey& key,
                               std::span<const netsim::CarrierId> candidates,
                               std::int64_t exclude_row, double threshold,
                               std::span<const double> carrier_weights) {
  // Tally matching rows across the candidate carriers. Neighborhoods are
  // small (tens of carriers), so a flat scan with a small count vector beats
  // any indexing.
  std::vector<std::pair<ml::ClassLabel, double>> counts;
  double total = 0.0;
  std::int32_t voters = 0;
  GroupKey row_key;
  for (netsim::CarrierId cand : candidates) {
    for (std::uint32_t row : view.rows_of(cand)) {
      if (static_cast<std::int64_t>(row) == exclude_row) continue;
      fill_key(row_key, deps, attr_codes, view.carrier[row], view.neighbor[row]);
      if (row_key != key) continue;
      const double weight =
          carrier_weights.empty()
              ? 1.0
              : carrier_weights[static_cast<std::size_t>(view.carrier[row])];
      total += weight;
      ++voters;
      bool found = false;
      for (auto& [label, count] : counts) {
        if (label == view.label[row]) {
          count += weight;
          found = true;
          break;
        }
      }
      if (!found) counts.emplace_back(view.label[row], weight);
    }
  }
  if (voters == 0 || total <= 0.0) return std::nullopt;
  ml::ClassLabel best_label = -1;
  double best_weight = 0.0;
  double runner_weight = 0.0;
  for (const auto& [label, count] : counts) {
    if (count > best_weight || (count == best_weight && best_label >= 0 && label < best_label)) {
      runner_weight = best_weight;
      best_label = label;
      best_weight = count;
    } else if (count > runner_weight) {
      runner_weight = count;
    }
  }
  if (best_weight / total < threshold) return std::nullopt;
  Vote best;
  best.label = best_label;
  best.count = static_cast<std::int32_t>(std::lround(best_weight));
  best.runner_up = static_cast<std::int32_t>(std::lround(runner_weight));
  best.group_size = voters;
  // Vote::support() reports count/group_size; for weighted votes the
  // decisive quantity is the weight fraction, so re-derive counts such that
  // support() reflects it as closely as integer fields allow.
  if (!carrier_weights.empty()) {
    best.count = static_cast<std::int32_t>(std::lround(best_weight / total * voters));
    best.runner_up = static_cast<std::int32_t>(std::lround(runner_weight / total * voters));
  }
  return best;
}

BackoffVoting::BackoffVoting(const ParamView& view, std::span<const AttrRef> deps,
                             const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
                             int levels, int min_voters)
    : deps_(deps.begin(), deps.end()), attr_codes_(&attr_codes), min_voters_(min_voters) {
  if (levels < 1) throw std::invalid_argument("BackoffVoting: levels must be >= 1");
  // Level k matches on the strongest (|deps| - k) attributes; never go below
  // one attribute unless there are none at all.
  const int max_levels =
      deps_.empty() ? 1 : std::min<int>(levels, static_cast<int>(deps_.size()));
  models_.reserve(static_cast<std::size_t>(max_levels));
  for (int level = 0; level < max_levels; ++level) {
    const std::span<const AttrRef> prefix(deps_.data(), deps_.size() - static_cast<std::size_t>(level));
    models_.emplace_back(view, prefix, attr_codes);
  }
}

void BackoffVoting::adjust(netsim::CarrierId carrier, netsim::CarrierId neighbor,
                           ml::ClassLabel label, std::int32_t delta) {
  for (VotingModel& model : models_) {
    model.adjust(model.key_for(carrier, neighbor), label, delta);
  }
}

void BackoffVoting::remap_labels(std::span<const ml::ClassLabel> old_to_new) {
  for (VotingModel& model : models_) model.remap_labels(old_to_new);
}

void BackoffVoting::reorder_deps(const ParamView& view, std::span<const AttrRef> new_deps) {
  if (new_deps.size() != deps_.size() ||
      !std::is_permutation(new_deps.begin(), new_deps.end(), deps_.begin())) {
    throw std::logic_error("BackoffVoting::reorder_deps: dependent sets differ");
  }
  for (std::size_t level = 0; level < models_.size(); ++level) {
    const std::size_t len = deps_.size() - level;
    const std::span<const AttrRef> prefix(new_deps.data(), len);
    const std::span<const AttrRef> old_prefix(deps_.data(), len);
    if (std::is_permutation(prefix.begin(), prefix.end(), old_prefix.begin())) {
      models_[level].reorder_deps(prefix);
    } else {
      models_[level] = VotingModel(view, prefix, *attr_codes_);
    }
  }
  deps_.assign(new_deps.begin(), new_deps.end());
}

std::span<const AttrRef> BackoffVoting::deps_at(int level) const {
  return {deps_.data(), deps_.size() - static_cast<std::size_t>(level)};
}

bool BackoffVoting::accept(const Vote& vote, int level) const {
  return level + 1 >= level_count() || vote.group_size >= min_voters_;
}

std::optional<BackoffVoting::Decision> BackoffVoting::vote(netsim::CarrierId carrier,
                                                           netsim::CarrierId neighbor,
                                                           double threshold) const {
  for (int level = 0; level < level_count(); ++level) {
    const VotingModel& model = models_[static_cast<std::size_t>(level)];
    if (const auto v = model.vote(model.key_for(carrier, neighbor), threshold)) {
      if (accept(*v, level)) return Decision{*v, level};
    }
  }
  return std::nullopt;
}

namespace {

/// Key for explicit carrier-side codes; neighbor-side codes resolve against
/// the topology's encoding.
core::GroupKey key_from_codes(std::span<const AttrRef> deps,
                              const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
                              std::span<const netsim::AttrCode> carrier_codes,
                              netsim::CarrierId neighbor) {
  core::GroupKey key;
  key.reserve(deps.size());
  for (const AttrRef& ref : deps) {
    if (ref.neighbor_side) {
      if (neighbor == netsim::kInvalidCarrier) {
        throw std::logic_error("voting: neighbor-side dependency without a neighbor");
      }
      key.push_back(attr_codes[ref.attr][static_cast<std::size_t>(neighbor)]);
    } else {
      key.push_back(carrier_codes[ref.attr]);
    }
  }
  return key;
}

}  // namespace

std::optional<BackoffVoting::Decision> BackoffVoting::vote_codes(
    std::span<const netsim::AttrCode> carrier_codes, netsim::CarrierId neighbor,
    double threshold) const {
  for (int level = 0; level < level_count(); ++level) {
    const VotingModel& model = models_[static_cast<std::size_t>(level)];
    const GroupKey key = key_from_codes(deps_at(level), *attr_codes_, carrier_codes, neighbor);
    if (const auto v = model.vote(key, threshold)) {
      if (accept(*v, level)) return Decision{*v, level};
    }
  }
  return std::nullopt;
}

std::optional<BackoffVoting::Decision> BackoffVoting::local_codes(
    const ParamView& view, std::span<const netsim::CarrierId> candidates,
    std::span<const netsim::AttrCode> carrier_codes, netsim::CarrierId neighbor,
    double threshold) const {
  for (int level = 0; level < level_count(); ++level) {
    const auto deps = deps_at(level);
    const GroupKey key = key_from_codes(deps, *attr_codes_, carrier_codes, neighbor);
    if (const auto v = local_vote(view, deps, *attr_codes_, key, candidates, -1, threshold)) {
      if (v->group_size >= min_voters_) return Decision{*v, level};
    }
  }
  return std::nullopt;
}

std::optional<BackoffVoting::Decision> BackoffVoting::vote_excluding(
    netsim::CarrierId carrier, netsim::CarrierId neighbor, ml::ClassLabel own_label,
    double threshold) const {
  for (int level = 0; level < level_count(); ++level) {
    const VotingModel& model = models_[static_cast<std::size_t>(level)];
    if (const auto v =
            model.vote_excluding(model.key_for(carrier, neighbor), own_label, threshold)) {
      if (accept(*v, level)) return Decision{*v, level};
    }
  }
  return std::nullopt;
}

std::optional<BackoffVoting::Decision> BackoffVoting::local(
    const ParamView& view, std::span<const netsim::CarrierId> candidates,
    netsim::CarrierId carrier, netsim::CarrierId neighbor, std::int64_t exclude_row,
    double threshold, std::span<const double> carrier_weights) const {
  GroupKey key;
  for (int level = 0; level < level_count(); ++level) {
    const auto deps = deps_at(level);
    key.clear();
    for (const AttrRef& ref : deps) {
      const netsim::CarrierId subject = ref.neighbor_side ? neighbor : carrier;
      key.push_back((*attr_codes_)[ref.attr][static_cast<std::size_t>(subject)]);
    }
    if (const auto v = local_vote(view, deps, *attr_codes_, key, candidates, exclude_row,
                                  threshold, carrier_weights)) {
      // Neighborhoods are small by construction; require the quorum at every
      // level here — the global vote is the backstop for thin neighborhoods.
      if (v->group_size >= min_voters_) return Decision{*v, level};
    }
  }
  return std::nullopt;
}

}  // namespace auric::core
