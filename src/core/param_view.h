// ParamView: the per-parameter learning population.
//
// For a singular parameter this is one row per carrier where the parameter
// is configured; for a pair-wise parameter, one row per configured X2
// relation (Y_{j,k} in §3.1's notation). Each row carries the subject
// carrier, the neighbor (pair-wise only), the entity index into the backing
// ConfigAssignment column, and the configured value with its dense class
// code. A CSR index over subject carriers supports the local learner's
// 1-hop candidate lookups in O(|neighborhood|).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "ml/dataset.h"
#include "netsim/attributes.h"
#include "netsim/topology.h"

namespace auric::core {

struct ParamView {
  config::ParamId param = 0;
  bool pairwise = false;

  std::vector<netsim::CarrierId> carrier;   ///< subject carrier per row
  std::vector<netsim::CarrierId> neighbor;  ///< neighbor per row (pair-wise only)
  std::vector<std::size_t> entity;          ///< carrier id / edge index per row
  std::vector<config::ValueIndex> value;    ///< configured value per row

  ml::LabelDictionary labels;               ///< distinct configured values
  std::vector<ml::ClassLabel> label;        ///< dense class code per row

  /// CSR index: rows_of(carrier) lists this view's rows whose subject is
  /// that carrier.
  std::vector<std::uint32_t> rows_by_carrier;
  std::vector<std::uint32_t> carrier_offsets;  // size = carrier_count + 1

  std::size_t rows() const { return value.size(); }

  std::span<const std::uint32_t> rows_of(netsim::CarrierId id) const {
    const auto c = static_cast<std::size_t>(id);
    return {rows_by_carrier.data() + carrier_offsets[c],
            carrier_offsets[c + 1] - carrier_offsets[c]};
  }
};

/// Position of `param` within its kind's id list — the index of its column
/// in ConfigAssignment::singular (singular params) or ::pairwise.
std::size_t kind_position(const config::ParamCatalog& catalog, config::ParamId param);

/// Recomputes rows_by_carrier/carrier_offsets from the row arrays (counting
/// sort, O(rows + carriers)). build_param_view and the incremental relearn
/// path share this so a delta-maintained view indexes rows exactly like a
/// fresh build.
void rebuild_carrier_index(ParamView& view, std::size_t carrier_count);

/// Builds the view for catalog parameter `param` over the configured slots
/// of `assignment`. When `market` is set, only rows whose subject carrier
/// belongs to that market are included (per-market evaluation).
ParamView build_param_view(const netsim::Topology& topology, const config::ParamCatalog& catalog,
                           const config::ConfigAssignment& assignment, config::ParamId param,
                           std::optional<netsim::MarketId> market = std::nullopt);

/// Materializes a ParamView as a CategoricalDataset for the baseline
/// learners: one column per carrier attribute, plus — for pair-wise
/// parameters — one "nbr_"-prefixed column per neighbor attribute (§4.1:
/// "for pair-wise parameters, we use both the attributes of the carriers and
/// their corresponding neighbors").
ml::CategoricalDataset to_categorical_dataset(
    const ParamView& view, const netsim::AttributeSchema& schema,
    const std::vector<std::vector<netsim::AttrCode>>& attr_codes);

}  // namespace auric::core
