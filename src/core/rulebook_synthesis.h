// Rule-book synthesis: exporting Auric's learned structure as the artifact
// operations teams already know how to review.
//
// The paper's pitch (§1): "Instead of having domain experts define and
// maintain the rule-books ... our idea in Auric is to automatically learn
// the rules based on existing carrier configurations." This module closes
// that loop in the other direction: it renders the learned dependency models
// and peer-group majorities as a conventional rule-book —
//
//   IF carrier_frequency = 700 MHz AND morphology = rural
//   THEN capacityThreshold = 62        (support 98%, 412 carriers)
//
// — so engineers can diff Auric's learned knowledge against their
// hand-maintained documents (and spot what the documents are missing).
#pragma once

#include <string>
#include <vector>

#include "core/engine.h"

namespace auric::core {

struct SynthesizedRule {
  config::ParamId param = 0;
  /// Conditions: (attribute ref, attribute code), in dependency-rank order.
  std::vector<std::pair<AttrRef, netsim::AttrCode>> conditions;
  config::ValueIndex value = config::kUnset;
  double support = 0.0;
  std::int32_t carriers = 0;  ///< peers behind the rule

  /// True when the rule's value differs from the national default — the
  /// rules worth writing down.
  bool overrides_default(const config::ParamCatalog& catalog) const;
};

struct RulebookSynthesisOptions {
  /// Minimum voting support for a group to become a rule (paper's 75%).
  double min_support = 0.75;
  /// Minimum peers behind a rule; smaller groups are anecdotes, not rules.
  std::int32_t min_carriers = 8;
  /// Keep rules whose value equals the default (usually noise; off).
  bool include_default_rules = false;
};

struct SynthesizedRulebook {
  std::vector<SynthesizedRule> rules;

  /// Renders the rule-book as text, grouped by parameter.
  std::string render(const netsim::AttributeSchema& schema,
                     const config::ParamCatalog& catalog) const;

  /// Rules for one parameter, in synthesis order.
  std::vector<const SynthesizedRule*> rules_for(config::ParamId param) const;
};

/// Exports every parameter's level-0 peer groups that pass the options'
/// support and size gates.
SynthesizedRulebook synthesize_rulebook(const AuricEngine& engine,
                                        RulebookSynthesisOptions options = {});

}  // namespace auric::core
