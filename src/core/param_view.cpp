#include "core/param_view.h"

#include <algorithm>
#include <stdexcept>

namespace auric::core {

std::size_t kind_position(const config::ParamCatalog& catalog, config::ParamId param) {
  const auto& ids = catalog.at(param).kind == config::ParamKind::kSingular
                        ? catalog.singular_ids()
                        : catalog.pairwise_ids();
  const auto it = std::find(ids.begin(), ids.end(), param);
  if (it == ids.end()) throw std::logic_error("param not present in catalog kind list");
  return static_cast<std::size_t>(it - ids.begin());
}

ParamView build_param_view(const netsim::Topology& topology, const config::ParamCatalog& catalog,
                           const config::ConfigAssignment& assignment, config::ParamId param,
                           std::optional<netsim::MarketId> market) {
  ParamView view;
  view.param = param;
  view.pairwise = catalog.at(param).kind == config::ParamKind::kPairwise;
  const std::size_t pos = kind_position(catalog, param);

  const auto want_carrier = [&](netsim::CarrierId id) {
    return !market || topology.carrier(id).market == *market;
  };

  if (!view.pairwise) {
    const config::ParamColumn& col = assignment.singular.at(pos);
    for (std::size_t c = 0; c < col.value.size(); ++c) {
      if (col.value[c] == config::kUnset) continue;
      const auto id = static_cast<netsim::CarrierId>(c);
      if (!want_carrier(id)) continue;
      view.carrier.push_back(id);
      view.neighbor.push_back(netsim::kInvalidCarrier);
      view.entity.push_back(c);
      view.value.push_back(col.value[c]);
    }
  } else {
    const config::ParamColumn& col = assignment.pairwise.at(pos);
    for (std::size_t e = 0; e < col.value.size(); ++e) {
      if (col.value[e] == config::kUnset) continue;
      const netsim::X2Edge& edge = topology.edges[e];
      if (!want_carrier(edge.from)) continue;
      view.carrier.push_back(edge.from);
      view.neighbor.push_back(edge.to);
      view.entity.push_back(e);
      view.value.push_back(col.value[e]);
    }
  }

  view.labels = ml::LabelDictionary::build(view.value);
  view.label.reserve(view.value.size());
  for (config::ValueIndex v : view.value) view.label.push_back(view.labels.code_of(v));

  rebuild_carrier_index(view, topology.carrier_count());
  return view;
}

void rebuild_carrier_index(ParamView& view, std::size_t carrier_count) {
  // CSR over subject carriers.
  view.carrier_offsets.assign(carrier_count + 1, 0);
  for (netsim::CarrierId c : view.carrier) ++view.carrier_offsets[static_cast<std::size_t>(c) + 1];
  for (std::size_t c = 0; c < carrier_count; ++c) {
    view.carrier_offsets[c + 1] += view.carrier_offsets[c];
  }
  view.rows_by_carrier.resize(view.rows());
  std::vector<std::uint32_t> cursor(view.carrier_offsets.begin(), view.carrier_offsets.end() - 1);
  for (std::size_t r = 0; r < view.rows(); ++r) {
    view.rows_by_carrier[cursor[static_cast<std::size_t>(view.carrier[r])]++] =
        static_cast<std::uint32_t>(r);
  }
}

ml::CategoricalDataset to_categorical_dataset(
    const ParamView& view, const netsim::AttributeSchema& schema,
    const std::vector<std::vector<netsim::AttrCode>>& attr_codes) {
  ml::CategoricalDataset data;
  const std::size_t num_attrs = schema.attribute_count();
  const std::size_t total_cols = view.pairwise ? 2 * num_attrs : num_attrs;
  data.columns.resize(total_cols);
  data.cardinality.resize(total_cols);
  data.column_names.resize(total_cols);
  for (std::size_t a = 0; a < num_attrs; ++a) {
    data.cardinality[a] = schema.cardinality(a);
    data.column_names[a] = schema.name(a);
    data.columns[a].reserve(view.rows());
    if (view.pairwise) {
      data.cardinality[num_attrs + a] = schema.cardinality(a);
      data.column_names[num_attrs + a] = "nbr_" + schema.name(a);
      data.columns[num_attrs + a].reserve(view.rows());
    }
  }
  for (std::size_t r = 0; r < view.rows(); ++r) {
    const auto c = static_cast<std::size_t>(view.carrier[r]);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      data.columns[a].push_back(attr_codes[a][c]);
    }
    if (view.pairwise) {
      const auto nb = static_cast<std::size_t>(view.neighbor[r]);
      for (std::size_t a = 0; a < num_attrs; ++a) {
        data.columns[num_attrs + a].push_back(attr_codes[a][nb]);
      }
    }
  }
  data.labels = view.label;
  data.class_values = view.labels.values;
  return data;
}

}  // namespace auric::core
