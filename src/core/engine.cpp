#include "core/engine.h"

#include <array>
#include <stdexcept>

#include "core/model_watch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace auric::core {

namespace {

/// Learning-phase timings (§4–5: dependency learning, matching, voting
/// model build) plus a learn counter. One histogram per phase so a relearn
/// regression is attributable to the phase that slowed down.
struct EngineMetrics {
  obs::Histogram& phase_param_view;
  obs::Histogram& phase_dependency;
  obs::Histogram& phase_voting;
  obs::Counter& learns;
};

EngineMetrics& engine_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  const auto phase = [&reg](const char* name) -> obs::Histogram& {
    return reg.histogram("auric_engine_phase_seconds", obs::default_seconds_bounds(),
                         "engine learning time by phase, per parameter (s)", {{"phase", name}});
  };
  static EngineMetrics m{phase("param_view"), phase("dependency"), phase("voting"),
                         reg.counter("auric_engine_learns_total", "full engine (re)learns")};
  return m;
}

obs::Counter& recommendation_counter(RecommendationSource source) {
  static const auto counters = [] {
    std::array<obs::Counter*, 3> a{};
    auto& reg = obs::MetricsRegistry::global();
    for (int i = 0; i < 3; ++i) {
      a[static_cast<std::size_t>(i)] = &reg.counter(
          "auric_engine_recommendations_total", "recommendations served, by decision source",
          {{"source", recommendation_source_name(static_cast<RecommendationSource>(i))}});
    }
    return a;
  }();
  return *counters[static_cast<std::size_t>(source)];
}

}  // namespace

const char* recommendation_source_name(RecommendationSource source) {
  switch (source) {
    case RecommendationSource::kLocalVote: return "local-vote";
    case RecommendationSource::kGlobalVote: return "global-vote";
    case RecommendationSource::kRulebookDefault: return "rulebook-default";
  }
  return "?";
}

AuricEngine::AuricEngine(const netsim::Topology& topology, const netsim::AttributeSchema& schema,
                         const config::ParamCatalog& catalog,
                         const config::ConfigAssignment& assignment, AuricOptions options)
    : topology_(&topology), schema_(&schema), catalog_(&catalog), options_(options) {
  obs::ScopedSpan span("engine.learn");
  EngineMetrics& metrics = engine_metrics();
  attr_codes_ = schema.encode_all(topology);
  views_.reserve(catalog.size());
  dependencies_.reserve(catalog.size());
  voting_.reserve(catalog.size());
  DependencyOptions dep_options;
  dep_options.p_value = options_.p_value;
  dep_options.max_dependent = options_.max_dependent;
  for (std::size_t p = 0; p < catalog.size(); ++p) {
    const auto param = static_cast<config::ParamId>(p);
    {
      obs::ScopedTimer timer(metrics.phase_param_view);
      views_.push_back(build_param_view(topology, catalog, assignment, param));
    }
    {
      obs::ScopedTimer timer(metrics.phase_dependency);
      dependencies_.push_back(learn_dependencies(views_.back(), attr_codes_, schema, dep_options));
    }
    {
      obs::ScopedTimer timer(metrics.phase_voting);
      voting_.emplace_back(views_.back(), dependencies_.back().dependent, attr_codes_,
                           options_.backoff_levels);
    }
  }
  metrics.learns.inc();
}

const ParamView& AuricEngine::view(config::ParamId param) const {
  return views_.at(static_cast<std::size_t>(param));
}

const DependencyModel& AuricEngine::dependencies(config::ParamId param) const {
  return dependencies_.at(static_cast<std::size_t>(param));
}

const BackoffVoting& AuricEngine::voting(config::ParamId param) const {
  return voting_.at(static_cast<std::size_t>(param));
}

std::int64_t AuricEngine::own_row(config::ParamId param, netsim::CarrierId carrier,
                                  netsim::CarrierId neighbor) const {
  const ParamView& v = view(param);
  for (std::uint32_t row : v.rows_of(carrier)) {
    if (v.neighbor[row] == neighbor) return static_cast<std::int64_t>(row);
  }
  return -1;
}

Recommendation AuricEngine::recommend(config::ParamId param, netsim::CarrierId carrier,
                                      netsim::CarrierId neighbor, bool exclude_self) const {
  const config::ParamDef& def = catalog_->at(param);
  const bool pairwise = def.kind == config::ParamKind::kPairwise;
  if (pairwise == (neighbor == netsim::kInvalidCarrier)) {
    throw std::invalid_argument("recommend: neighbor must be given exactly for pair-wise params");
  }

  const ParamView& v = view(param);
  const BackoffVoting& model = voting(param);

  Recommendation rec;
  rec.param = param;

  const std::int64_t self_row = exclude_self ? own_row(param, carrier, neighbor) : -1;

  const auto adopt = [&](const Vote& vote, RecommendationSource source) {
    rec.value = v.labels.values[static_cast<std::size_t>(vote.label)];
    rec.votes = vote.count;
    rec.group_size = vote.group_size;
    rec.support = vote.support();
    rec.margin = vote.margin();
    rec.source = source;
    recommendation_counter(source).inc();
    if (watch_ != nullptr) watch_->record(rec);
  };

  if (options_.use_proximity) {
    std::optional<BackoffVoting::Decision> decision;
    if (options_.proximity_hops == 1) {
      decision = model.local(v, topology_->neighborhood(carrier), carrier, neighbor, self_row,
                             options_.vote_threshold);
    } else {
      const std::vector<netsim::CarrierId> hood =
          topology_->neighborhood_hops(carrier, options_.proximity_hops);
      decision = model.local(v, hood, carrier, neighbor, self_row, options_.vote_threshold);
    }
    if (decision) {
      adopt(decision->vote, RecommendationSource::kLocalVote);
      return rec;
    }
  }

  const std::optional<BackoffVoting::Decision> global =
      self_row >= 0 ? model.vote_excluding(carrier, neighbor,
                                           v.label[static_cast<std::size_t>(self_row)],
                                           options_.vote_threshold)
                    : model.vote(carrier, neighbor, options_.vote_threshold);
  if (global) {
    adopt(global->vote, RecommendationSource::kGlobalVote);
    return rec;
  }

  // Bootstrap fallback (§6): no peer group with sufficient support — stick
  // with the rule-book default.
  rec.value = def.default_index;
  rec.source = RecommendationSource::kRulebookDefault;
  recommendation_counter(rec.source).inc();
  if (watch_ != nullptr) watch_->record(rec);
  return rec;
}

std::vector<Recommendation> AuricEngine::recommend_singular(netsim::CarrierId carrier,
                                                            bool exclude_self) const {
  std::vector<Recommendation> out;
  out.reserve(catalog_->singular_ids().size());
  for (config::ParamId param : catalog_->singular_ids()) {
    out.push_back(recommend(param, carrier, netsim::kInvalidCarrier, exclude_self));
  }
  return out;
}

std::vector<Recommendation> AuricEngine::recommend_pairwise(netsim::CarrierId carrier,
                                                            netsim::CarrierId neighbor,
                                                            bool exclude_self) const {
  std::vector<Recommendation> out;
  out.reserve(catalog_->pairwise_ids().size());
  for (config::ParamId param : catalog_->pairwise_ids()) {
    out.push_back(recommend(param, carrier, neighbor, exclude_self));
  }
  return out;
}

Recommendation AuricEngine::recommend_for(const netsim::Carrier& new_carrier,
                                          std::span<const netsim::CarrierId> x2_neighbors,
                                          config::ParamId param,
                                          netsim::CarrierId neighbor) const {
  const config::ParamDef& def = catalog_->at(param);
  const bool pairwise = def.kind == config::ParamKind::kPairwise;
  if (pairwise == (neighbor == netsim::kInvalidCarrier)) {
    throw std::invalid_argument(
        "recommend_for: neighbor must be given exactly for pair-wise params");
  }

  const ParamView& v = view(param);
  const BackoffVoting& model = voting(param);
  const std::vector<netsim::AttrCode> codes = schema_->encode(new_carrier);

  Recommendation rec;
  rec.param = param;
  const auto adopt = [&](const Vote& vote, RecommendationSource source) {
    rec.value = v.labels.values[static_cast<std::size_t>(vote.label)];
    rec.votes = vote.count;
    rec.group_size = vote.group_size;
    rec.support = vote.support();
    rec.margin = vote.margin();
    rec.source = source;
    recommendation_counter(source).inc();
    if (watch_ != nullptr) watch_->record(rec);
  };

  if (options_.use_proximity) {
    if (const auto decision =
            model.local_codes(v, x2_neighbors, codes, neighbor, options_.vote_threshold)) {
      adopt(decision->vote, RecommendationSource::kLocalVote);
      return rec;
    }
  }
  if (const auto decision = model.vote_codes(codes, neighbor, options_.vote_threshold)) {
    adopt(decision->vote, RecommendationSource::kGlobalVote);
    return rec;
  }
  rec.value = def.default_index;
  rec.source = RecommendationSource::kRulebookDefault;
  recommendation_counter(rec.source).inc();
  if (watch_ != nullptr) watch_->record(rec);
  return rec;
}

std::vector<Recommendation> AuricEngine::recommend_for_all_singular(
    const netsim::Carrier& new_carrier,
    std::span<const netsim::CarrierId> x2_neighbors) const {
  std::vector<Recommendation> out;
  out.reserve(catalog_->singular_ids().size());
  for (config::ParamId param : catalog_->singular_ids()) {
    out.push_back(recommend_for(new_carrier, x2_neighbors, param));
  }
  return out;
}

std::string AuricEngine::explain(const Recommendation& rec, netsim::CarrierId carrier,
                                 netsim::CarrierId neighbor) const {
  const config::ParamDef& def = catalog_->at(rec.param);
  std::string out = def.name + " = ";
  out += rec.value == config::kUnset ? "<none>"
                                     : util::format_fixed(def.domain.value(rec.value), 1);
  out += util::format(" [%s", recommendation_source_name(rec.source));
  if (rec.group_size > 0) {
    out += util::format(", support %d/%d (%.0f%%)", rec.votes, rec.group_size,
                        100.0 * rec.support);
  }
  out += "]";
  const DependencyModel& deps = dependencies(rec.param);
  if (!deps.dependent.empty()) {
    out += " matched on ";
    bool first = true;
    for (const AttrRef& ref : deps.dependent) {
      const netsim::CarrierId subject = ref.neighbor_side ? neighbor : carrier;
      if (subject == netsim::kInvalidCarrier) continue;
      if (!first) out += ", ";
      first = false;
      const netsim::AttrCode code = attr_codes_[ref.attr][static_cast<std::size_t>(subject)];
      out += attr_ref_name(ref, *schema_) + "=" + schema_->value_label(ref.attr, code);
    }
  }
  return out;
}

}  // namespace auric::core
