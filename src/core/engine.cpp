#include "core/engine.h"

#include <algorithm>
#include <array>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "core/model_watch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace auric::core {

namespace {

/// Learning-phase timings (§4–5: dependency learning, matching, voting
/// model build) plus a learn counter. One histogram per phase so a relearn
/// regression is attributable to the phase that slowed down.
struct EngineMetrics {
  obs::Histogram& phase_param_view;
  obs::Histogram& phase_dependency;
  obs::Histogram& phase_voting;
  obs::Counter& learns;
  obs::Counter& incremental_relearns;
  obs::Histogram& incremental_seconds;
};

EngineMetrics& engine_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  const auto phase = [&reg](const char* name) -> obs::Histogram& {
    return reg.histogram("auric_engine_phase_seconds", obs::default_seconds_bounds(),
                         "engine learning time by phase, per parameter (s)", {{"phase", name}});
  };
  static EngineMetrics m{
      phase("param_view"), phase("dependency"), phase("voting"),
      reg.counter("auric_engine_learns_total", "full engine (re)learns"),
      reg.counter("auric_engine_incremental_relearns_total", "in-place delta relearns"),
      reg.histogram("auric_engine_incremental_relearn_seconds", obs::default_seconds_bounds(),
                    "incremental relearn wall time (s)")};
  return m;
}

obs::Counter& recommendation_counter(RecommendationSource source) {
  static const auto counters = [] {
    std::array<obs::Counter*, 3> a{};
    auto& reg = obs::MetricsRegistry::global();
    for (int i = 0; i < 3; ++i) {
      a[static_cast<std::size_t>(i)] = &reg.counter(
          "auric_engine_recommendations_total", "recommendations served, by decision source",
          {{"source", recommendation_source_name(static_cast<RecommendationSource>(i))}});
    }
    return a;
  }();
  return *counters[static_cast<std::size_t>(source)];
}

}  // namespace

const char* recommendation_source_name(RecommendationSource source) {
  switch (source) {
    case RecommendationSource::kLocalVote: return "local-vote";
    case RecommendationSource::kGlobalVote: return "global-vote";
    case RecommendationSource::kRulebookDefault: return "rulebook-default";
  }
  return "?";
}

const char* relearn_mode_name(RelearnMode mode) {
  switch (mode) {
    case RelearnMode::kFull: return "full";
    case RelearnMode::kIncremental: return "incremental";
  }
  return "?";
}

AuricEngine::AuricEngine(const netsim::Topology& topology, const netsim::AttributeSchema& schema,
                         const config::ParamCatalog& catalog,
                         const config::ConfigAssignment& assignment, AuricOptions options)
    : topology_(&topology), schema_(&schema), catalog_(&catalog), options_(options) {
  obs::ScopedSpan span("engine.learn");
  EngineMetrics& metrics = engine_metrics();
  attr_codes_ = std::make_shared<const std::vector<std::vector<netsim::AttrCode>>>(
      schema.encode_all(topology));
  const std::size_t n = catalog.size();
  views_.resize(n);
  dependencies_.resize(n);
  contingency_.resize(n);
  DependencyOptions dep_options;
  dep_options.p_value = options_.p_value;
  dep_options.max_dependent = options_.max_dependent;
  // Parameters are independent; every build writes its own pre-sized slot,
  // so the fan-out below is byte-identical to the serial loop at any width.
  std::vector<std::optional<BackoffVoting>> voting_slots(n);
  if (options_.learn_threads > 1 && n > 1) {
    // A private pool: the shared() pool's width belongs to the sharded
    // launch stream and must not steer how wide the learn fan-out runs.
    util::TaskPool pool(static_cast<std::size_t>(options_.learn_threads) - 1);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t p = 0; p < n; ++p) {
      tasks.push_back([this, p, &assignment, &dep_options, &voting_slots] {
        learn_param(p, assignment, dep_options, voting_slots);
      });
    }
    pool.run(std::move(tasks));
  } else {
    for (std::size_t p = 0; p < n; ++p) learn_param(p, assignment, dep_options, voting_slots);
  }
  voting_.reserve(n);
  for (std::size_t p = 0; p < n; ++p) voting_.push_back(std::move(*voting_slots[p]));
  metrics.learns.inc();
}

void AuricEngine::learn_param(std::size_t p, const config::ConfigAssignment& assignment,
                              const DependencyOptions& dep_options,
                              std::vector<std::optional<BackoffVoting>>& voting_slots) {
  EngineMetrics& metrics = engine_metrics();
  const auto param = static_cast<config::ParamId>(p);
  {
    obs::ScopedTimer timer(metrics.phase_param_view);
    views_[p] = build_param_view(*topology_, *catalog_, assignment, param);
  }
  {
    obs::ScopedTimer timer(metrics.phase_dependency);
    contingency_[p] = build_contingency(views_[p], *attr_codes_, *schema_);
    dependencies_[p] = dependencies_from_contingency(contingency_[p], dep_options);
  }
  {
    obs::ScopedTimer timer(metrics.phase_voting);
    voting_slots[p].emplace(views_[p], dependencies_[p].dependent, *attr_codes_,
                            options_.backoff_levels);
  }
}

void AuricEngine::incremental_relearn(const config::ConfigAssignment& assignment,
                                      const IncrementalRelearnOptions& options,
                                      IncrementalRelearnStats* stats) {
  obs::ScopedSpan span("engine.incremental_relearn");
  EngineMetrics& metrics = engine_metrics();
  obs::ScopedTimer timer(metrics.incremental_seconds);
  if (assignment.singular.size() != catalog_->singular_ids().size() ||
      assignment.pairwise.size() != catalog_->pairwise_ids().size()) {
    throw std::invalid_argument("incremental_relearn: assignment does not match the catalog");
  }
  const std::size_t n = catalog_->size();
  std::vector<IncrementalRelearnStats> per_param(n);
  if (options.threads > 1 && n > 1) {
    util::TaskPool pool(static_cast<std::size_t>(options.threads) - 1);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t p = 0; p < n; ++p) {
      tasks.push_back([this, p, &assignment, &options, &per_param] {
        relearn_param(p, assignment, options, per_param[p]);
      });
    }
    pool.run(std::move(tasks));
  } else {
    for (std::size_t p = 0; p < n; ++p) relearn_param(p, assignment, options, per_param[p]);
  }
  metrics.incremental_relearns.inc();
  if (stats != nullptr) {
    IncrementalRelearnStats total;
    for (const IncrementalRelearnStats& s : per_param) {
      total.params_touched += s.params_touched;
      total.params_retested += s.params_retested;
      total.params_rebuilt += s.params_rebuilt;
      total.params_remapped += s.params_remapped;
      total.rows_added += s.rows_added;
      total.rows_erased += s.rows_erased;
      total.rows_updated += s.rows_updated;
    }
    *stats = total;
  }
}

bool AuricEngine::relearn_param(std::size_t p, const config::ConfigAssignment& assignment,
                                const IncrementalRelearnOptions& options,
                                IncrementalRelearnStats& stats) {
  const auto param = static_cast<config::ParamId>(p);
  ParamView& view = views_[p];
  const std::size_t pos = kind_position(*catalog_, param);
  const config::ParamColumn& col =
      view.pairwise ? assignment.pairwise.at(pos) : assignment.singular.at(pos);

  // Slot deltas in entity order. View rows are maintained entity-ascending —
  // the order build_param_view scans — so one merge pass over the column and
  // the rows finds every add/update/erase.
  struct Change {
    std::size_t entity = 0;
    config::ValueIndex old_value = config::kUnset;  ///< kUnset = slot was unconfigured (add)
    config::ValueIndex new_value = config::kUnset;  ///< kUnset = slot got erased
  };
  std::vector<Change> changes;
  {
    std::size_t r = 0;
    for (std::size_t e = 0; e < col.value.size(); ++e) {
      config::ValueIndex old_value = config::kUnset;
      if (r < view.rows() && view.entity[r] == e) {
        old_value = view.value[r];
        ++r;
      }
      if (col.value[e] == old_value) continue;
      changes.push_back({e, old_value, col.value[e]});
    }
    if (r != view.rows()) {
      throw std::invalid_argument("incremental_relearn: assignment entity space mismatch");
    }
  }
  if (changes.empty()) return false;  // untouched parameter: models already exact

  const std::size_t rows_before = view.rows();
  stats.params_touched = 1;
  bool rows_changed = false;
  bool labels_changed = false;
  // Per-label row counts after the delta decide whether the value alphabet
  // changed: a brand-new value or a vanished one shifts every dense label
  // code (the dictionary is sorted), which is the one thing deltas cannot
  // patch — those parameters rebuild below.
  std::vector<std::int64_t> label_rows(view.labels.size(), 0);
  for (ml::ClassLabel l : view.label) ++label_rows[static_cast<std::size_t>(l)];
  for (const Change& ch : changes) {
    if (ch.old_value == config::kUnset) {
      ++stats.rows_added;
      rows_changed = true;
    } else if (ch.new_value == config::kUnset) {
      ++stats.rows_erased;
      rows_changed = true;
    } else {
      ++stats.rows_updated;
    }
    if (ch.old_value != config::kUnset) {
      --label_rows[static_cast<std::size_t>(view.labels.code_of(ch.old_value))];
    }
    if (ch.new_value != config::kUnset) {
      const ml::ClassLabel code = view.labels.code_of(ch.new_value);
      if (code < 0) {
        labels_changed = true;
      } else {
        ++label_rows[static_cast<std::size_t>(code)];
      }
    }
  }
  if (!labels_changed) {
    labels_changed = std::any_of(label_rows.begin(), label_rows.end(),
                                 [](std::int64_t c) { return c == 0; });
  }

  // Capture the old label codes before mutating the view: the contingency
  // and voting deltas below subtract the outgoing observation.
  struct Delta {
    netsim::CarrierId carrier = netsim::kInvalidCarrier;
    netsim::CarrierId neighbor = netsim::kInvalidCarrier;
    ml::ClassLabel old_label = -1;  ///< -1 = add
    ml::ClassLabel new_label = -1;  ///< -1 = erase
  };
  std::vector<Delta> deltas;
  if (!labels_changed) {
    deltas.reserve(changes.size());
    for (const Change& ch : changes) {
      Delta d;
      if (view.pairwise) {
        const netsim::X2Edge& edge = topology_->edges[ch.entity];
        d.carrier = edge.from;
        d.neighbor = edge.to;
      } else {
        d.carrier = static_cast<netsim::CarrierId>(ch.entity);
      }
      if (ch.old_value != config::kUnset) d.old_label = view.labels.code_of(ch.old_value);
      if (ch.new_value != config::kUnset) d.new_label = view.labels.code_of(ch.new_value);
      deltas.push_back(d);
    }
  }

  // 1. Bring the view rows up to date, preserving entity order.
  if (rows_changed) {
    ParamView next;
    const std::size_t expected = rows_before + stats.rows_added - stats.rows_erased;
    next.carrier.reserve(expected);
    next.neighbor.reserve(expected);
    next.entity.reserve(expected);
    next.value.reserve(expected);
    for (std::size_t e = 0; e < col.value.size(); ++e) {
      if (col.value[e] == config::kUnset) continue;
      if (view.pairwise) {
        const netsim::X2Edge& edge = topology_->edges[e];
        next.carrier.push_back(edge.from);
        next.neighbor.push_back(edge.to);
      } else {
        next.carrier.push_back(static_cast<netsim::CarrierId>(e));
        next.neighbor.push_back(netsim::kInvalidCarrier);
      }
      next.entity.push_back(e);
      next.value.push_back(col.value[e]);
    }
    view.carrier = std::move(next.carrier);
    view.neighbor = std::move(next.neighbor);
    view.entity = std::move(next.entity);
    view.value = std::move(next.value);
  } else {
    for (const Change& ch : changes) {
      const auto it = std::lower_bound(view.entity.begin(), view.entity.end(), ch.entity);
      view.value[static_cast<std::size_t>(it - view.entity.begin())] = ch.new_value;
    }
  }

  DependencyOptions dep_options;
  dep_options.p_value = options_.p_value;
  dep_options.max_dependent = options_.max_dependent;

  if (labels_changed) {
    // The value alphabet moved: splice the label dimension in place instead
    // of re-tallying the parameter. The dictionary is sorted, so the new
    // coding is a monotone renumbering of the old: merge first-seen values
    // into a mid dictionary, apply the day's deltas in mid coding, then
    // drop the values whose last row vanished. The integer tables come out
    // exactly what a fresh tally would produce, and a monotone relabeling
    // preserves every smallest-label tie-break — bit-identical models at
    // O(cells + votes + delta), not O(rows x attributes).
    std::vector<config::ValueIndex> added;
    for (const Change& ch : changes) {
      if (ch.new_value != config::kUnset && view.labels.code_of(ch.new_value) < 0) {
        added.push_back(ch.new_value);
      }
    }
    std::sort(added.begin(), added.end());
    added.erase(std::unique(added.begin(), added.end()), added.end());

    ml::LabelDictionary mid;
    mid.values.reserve(view.labels.size() + added.size());
    std::merge(view.labels.values.begin(), view.labels.values.end(), added.begin(), added.end(),
               std::back_inserter(mid.values));
    std::vector<ml::ClassLabel> old_to_mid(view.labels.size());
    for (std::size_t c = 0; c < view.labels.size(); ++c) {
      old_to_mid[c] = mid.code_of(view.labels.values[c]);
    }

    // Post-delta row counts per mid label: label_rows already tracked the
    // old codes through the change arithmetic; first-seen values tally here.
    std::vector<std::int64_t> mid_rows(mid.size(), 0);
    for (std::size_t c = 0; c < label_rows.size(); ++c) {
      mid_rows[static_cast<std::size_t>(old_to_mid[c])] = label_rows[c];
    }
    for (const Change& ch : changes) {
      if (ch.new_value != config::kUnset && view.labels.code_of(ch.new_value) < 0) {
        ++mid_rows[static_cast<std::size_t>(mid.code_of(ch.new_value))];
      }
    }

    ml::LabelDictionary final_labels;
    std::vector<ml::ClassLabel> mid_to_final(mid.size(), -1);
    for (std::size_t c = 0; c < mid.size(); ++c) {
      if (mid_rows[c] > 0) {
        mid_to_final[c] = static_cast<ml::ClassLabel>(final_labels.values.size());
        final_labels.values.push_back(mid.values[c]);
      }
    }

    // Contingency: widen old -> mid, apply the deltas, compact mid -> final.
    const auto remap_columns = [](ml::ContingencyTable& table,
                                  std::span<const ml::ClassLabel> map, std::size_t new_cols) {
      for (std::vector<std::int64_t>& row : table.counts) {
        std::vector<std::int64_t> next(new_cols, 0);
        for (std::size_t c = 0; c < row.size(); ++c) {
          if (map[c] >= 0) next[static_cast<std::size_t>(map[c])] = row[c];
        }
        row = std::move(next);
      }
    };
    const auto entity_ends = [&](std::size_t e) {
      if (view.pairwise) {
        const netsim::X2Edge& edge = topology_->edges[e];
        return std::pair<netsim::CarrierId, netsim::CarrierId>(edge.from, edge.to);
      }
      return std::pair<netsim::CarrierId, netsim::CarrierId>(static_cast<netsim::CarrierId>(e),
                                                             netsim::kInvalidCarrier);
    };
    for (ml::ContingencyTable& table : contingency_[p].tables) {
      remap_columns(table, old_to_mid, mid.size());
    }
    voting_[p].remap_labels(old_to_mid);
    for (const Change& ch : changes) {
      const auto [carrier, neighbor] = entity_ends(ch.entity);
      if (ch.old_value != config::kUnset) {
        const ml::ClassLabel l = mid.code_of(ch.old_value);
        contingency_[p].apply(*attr_codes_, carrier, neighbor, l, -1);
        voting_[p].adjust(carrier, neighbor, l, -1);
      }
      if (ch.new_value != config::kUnset) {
        const ml::ClassLabel l = mid.code_of(ch.new_value);
        contingency_[p].apply(*attr_codes_, carrier, neighbor, l, 1);
        voting_[p].adjust(carrier, neighbor, l, 1);
      }
    }
    for (ml::ContingencyTable& table : contingency_[p].tables) {
      remap_columns(table, mid_to_final, final_labels.size());
    }
    voting_[p].remap_labels(mid_to_final);

    // Re-code the rows in the final dictionary. When the row set is stable,
    // every surviving row's label moves through the composed old -> final
    // map and the changed rows are patched directly — no per-row dictionary
    // lookups.
    std::vector<ml::ClassLabel> old_to_final(old_to_mid.size());
    for (std::size_t c = 0; c < old_to_mid.size(); ++c) {
      old_to_final[c] = mid_to_final[static_cast<std::size_t>(old_to_mid[c])];
    }
    view.labels = std::move(final_labels);
    if (rows_changed) {
      view.label.clear();
      view.label.reserve(view.value.size());
      for (config::ValueIndex v : view.value) view.label.push_back(view.labels.code_of(v));
      rebuild_carrier_index(view, topology_->carrier_count());
    } else {
      for (ml::ClassLabel& l : view.label) l = old_to_final[static_cast<std::size_t>(l)];
      for (const Change& ch : changes) {
        const auto it = std::lower_bound(view.entity.begin(), view.entity.end(), ch.entity);
        view.label[static_cast<std::size_t>(it - view.entity.begin())] =
            view.labels.code_of(ch.new_value);
      }
    }
    stats.params_remapped = 1;
  } else if (rows_changed) {
    // Label space unchanged: re-code rows and refresh the carrier index only
    // when the row set itself moved.
    view.label.clear();
    view.label.reserve(view.value.size());
    for (config::ValueIndex v : view.value) view.label.push_back(view.labels.code_of(v));
    rebuild_carrier_index(view, topology_->carrier_count());
  } else {
    for (const Change& ch : changes) {
      const auto it = std::lower_bound(view.entity.begin(), view.entity.end(), ch.entity);
      view.label[static_cast<std::size_t>(it - view.entity.begin())] =
          view.labels.code_of(ch.new_value);
    }
  }

  // 2. Contingency deltas: the maintained tables now hold exactly the
  // integer counts a from-scratch tally of the new population would.
  for (const Delta& d : deltas) {
    if (d.old_label >= 0) {
      contingency_[p].apply(*attr_codes_, d.carrier, d.neighbor, d.old_label, -1);
    }
    if (d.new_label >= 0) {
      contingency_[p].apply(*attr_codes_, d.carrier, d.neighbor, d.new_label, 1);
    }
  }

  // 3. Drift-gated dependency re-test (auric_model_drift_chi2_p is the
  // union trigger when a ModelWatch rides along). A spliced alphabet always
  // re-tests: the contingency dimensions moved, so the cached p-values no
  // longer describe these tables.
  const double fraction = static_cast<double>(changes.size()) /
                          static_cast<double>(std::max<std::size_t>(rows_before, 1));
  bool retest = labels_changed || options.drift_threshold <= 0.0 ||
                fraction >= options.drift_threshold;
  if (!retest && options.watch != nullptr &&
      options.watch->drift_p(param) < options.watch_alpha) {
    retest = true;
  }
  if (retest) {
    DependencyModel next = dependencies_from_contingency(contingency_[p], dep_options);
    stats.params_retested = 1;
    if (next.dependent != dependencies_[p].dependent) {
      const bool same_set =
          next.dependent.size() == dependencies_[p].dependent.size() &&
          std::is_permutation(next.dependent.begin(), next.dependent.end(),
                              dependencies_[p].dependent.begin());
      if (same_set) {
        // The re-test only re-ranked the same dependent set: apply the day's
        // votes in the old key order, then re-tuple the group keys into the
        // new order (O(groups)) — no O(rows) rebuild. Votes ride first so a
        // backoff level whose prefix membership shifted (rebuilt inside
        // reorder_deps from the already-updated view) is not adjusted twice.
        for (const Delta& d : deltas) {
          if (d.old_label >= 0) voting_[p].adjust(d.carrier, d.neighbor, d.old_label, -1);
          if (d.new_label >= 0) voting_[p].adjust(d.carrier, d.neighbor, d.new_label, 1);
        }
        voting_[p].reorder_deps(view, next.dependent);
        dependencies_[p] = std::move(next);
        return true;
      } else {
        dependencies_[p] = std::move(next);
        voting_[p] = BackoffVoting(view, dependencies_[p].dependent, *attr_codes_,
                                   options_.backoff_levels);
        stats.params_rebuilt = 1;
        return true;
      }
    } else {
      dependencies_[p] = std::move(next);
    }
  }

  // 4. Dependent set unchanged: the day's votes ride the existing tables.
  for (const Delta& d : deltas) {
    if (d.old_label >= 0) voting_[p].adjust(d.carrier, d.neighbor, d.old_label, -1);
    if (d.new_label >= 0) voting_[p].adjust(d.carrier, d.neighbor, d.new_label, 1);
  }
  return true;
}

const ParamView& AuricEngine::view(config::ParamId param) const {
  return views_.at(static_cast<std::size_t>(param));
}

const DependencyModel& AuricEngine::dependencies(config::ParamId param) const {
  return dependencies_.at(static_cast<std::size_t>(param));
}

const BackoffVoting& AuricEngine::voting(config::ParamId param) const {
  return voting_.at(static_cast<std::size_t>(param));
}

std::int64_t AuricEngine::own_row(config::ParamId param, netsim::CarrierId carrier,
                                  netsim::CarrierId neighbor) const {
  const ParamView& v = view(param);
  for (std::uint32_t row : v.rows_of(carrier)) {
    if (v.neighbor[row] == neighbor) return static_cast<std::int64_t>(row);
  }
  return -1;
}

Recommendation AuricEngine::recommend(config::ParamId param, netsim::CarrierId carrier,
                                      netsim::CarrierId neighbor, bool exclude_self) const {
  const config::ParamDef& def = catalog_->at(param);
  const bool pairwise = def.kind == config::ParamKind::kPairwise;
  if (pairwise == (neighbor == netsim::kInvalidCarrier)) {
    throw std::invalid_argument("recommend: neighbor must be given exactly for pair-wise params");
  }

  const ParamView& v = view(param);
  const BackoffVoting& model = voting(param);

  Recommendation rec;
  rec.param = param;

  const std::int64_t self_row = exclude_self ? own_row(param, carrier, neighbor) : -1;

  const auto adopt = [&](const Vote& vote, RecommendationSource source) {
    rec.value = v.labels.values[static_cast<std::size_t>(vote.label)];
    rec.votes = vote.count;
    rec.group_size = vote.group_size;
    rec.support = vote.support();
    rec.margin = vote.margin();
    rec.source = source;
    recommendation_counter(source).inc();
    if (watch_ != nullptr) watch_->record(rec);
  };

  if (options_.use_proximity) {
    std::optional<BackoffVoting::Decision> decision;
    if (options_.proximity_hops == 1) {
      decision = model.local(v, topology_->neighborhood(carrier), carrier, neighbor, self_row,
                             options_.vote_threshold);
    } else {
      const std::vector<netsim::CarrierId> hood =
          topology_->neighborhood_hops(carrier, options_.proximity_hops);
      decision = model.local(v, hood, carrier, neighbor, self_row, options_.vote_threshold);
    }
    if (decision) {
      adopt(decision->vote, RecommendationSource::kLocalVote);
      return rec;
    }
  }

  const std::optional<BackoffVoting::Decision> global =
      self_row >= 0 ? model.vote_excluding(carrier, neighbor,
                                           v.label[static_cast<std::size_t>(self_row)],
                                           options_.vote_threshold)
                    : model.vote(carrier, neighbor, options_.vote_threshold);
  if (global) {
    adopt(global->vote, RecommendationSource::kGlobalVote);
    return rec;
  }

  // Bootstrap fallback (§6): no peer group with sufficient support — stick
  // with the rule-book default.
  rec.value = def.default_index;
  rec.source = RecommendationSource::kRulebookDefault;
  recommendation_counter(rec.source).inc();
  if (watch_ != nullptr) watch_->record(rec);
  return rec;
}

std::vector<Recommendation> AuricEngine::recommend_singular(netsim::CarrierId carrier,
                                                            bool exclude_self) const {
  std::vector<Recommendation> out;
  out.reserve(catalog_->singular_ids().size());
  for (config::ParamId param : catalog_->singular_ids()) {
    out.push_back(recommend(param, carrier, netsim::kInvalidCarrier, exclude_self));
  }
  return out;
}

std::vector<Recommendation> AuricEngine::recommend_pairwise(netsim::CarrierId carrier,
                                                            netsim::CarrierId neighbor,
                                                            bool exclude_self) const {
  std::vector<Recommendation> out;
  out.reserve(catalog_->pairwise_ids().size());
  for (config::ParamId param : catalog_->pairwise_ids()) {
    out.push_back(recommend(param, carrier, neighbor, exclude_self));
  }
  return out;
}

Recommendation AuricEngine::recommend_for(const netsim::Carrier& new_carrier,
                                          std::span<const netsim::CarrierId> x2_neighbors,
                                          config::ParamId param,
                                          netsim::CarrierId neighbor) const {
  const config::ParamDef& def = catalog_->at(param);
  const bool pairwise = def.kind == config::ParamKind::kPairwise;
  if (pairwise == (neighbor == netsim::kInvalidCarrier)) {
    throw std::invalid_argument(
        "recommend_for: neighbor must be given exactly for pair-wise params");
  }

  const ParamView& v = view(param);
  const BackoffVoting& model = voting(param);
  const std::vector<netsim::AttrCode> codes = schema_->encode(new_carrier);

  Recommendation rec;
  rec.param = param;
  const auto adopt = [&](const Vote& vote, RecommendationSource source) {
    rec.value = v.labels.values[static_cast<std::size_t>(vote.label)];
    rec.votes = vote.count;
    rec.group_size = vote.group_size;
    rec.support = vote.support();
    rec.margin = vote.margin();
    rec.source = source;
    recommendation_counter(source).inc();
    if (watch_ != nullptr) watch_->record(rec);
  };

  if (options_.use_proximity) {
    if (const auto decision =
            model.local_codes(v, x2_neighbors, codes, neighbor, options_.vote_threshold)) {
      adopt(decision->vote, RecommendationSource::kLocalVote);
      return rec;
    }
  }
  if (const auto decision = model.vote_codes(codes, neighbor, options_.vote_threshold)) {
    adopt(decision->vote, RecommendationSource::kGlobalVote);
    return rec;
  }
  rec.value = def.default_index;
  rec.source = RecommendationSource::kRulebookDefault;
  recommendation_counter(rec.source).inc();
  if (watch_ != nullptr) watch_->record(rec);
  return rec;
}

std::vector<Recommendation> AuricEngine::recommend_for_all_singular(
    const netsim::Carrier& new_carrier,
    std::span<const netsim::CarrierId> x2_neighbors) const {
  std::vector<Recommendation> out;
  out.reserve(catalog_->singular_ids().size());
  for (config::ParamId param : catalog_->singular_ids()) {
    out.push_back(recommend_for(new_carrier, x2_neighbors, param));
  }
  return out;
}

std::string AuricEngine::explain(const Recommendation& rec, netsim::CarrierId carrier,
                                 netsim::CarrierId neighbor) const {
  const config::ParamDef& def = catalog_->at(rec.param);
  std::string out = def.name + " = ";
  out += rec.value == config::kUnset ? "<none>"
                                     : util::format_fixed(def.domain.value(rec.value), 1);
  out += util::format(" [%s", recommendation_source_name(rec.source));
  if (rec.group_size > 0) {
    out += util::format(", support %d/%d (%.0f%%)", rec.votes, rec.group_size,
                        100.0 * rec.support);
  }
  out += "]";
  const DependencyModel& deps = dependencies(rec.param);
  if (!deps.dependent.empty()) {
    out += " matched on ";
    bool first = true;
    for (const AttrRef& ref : deps.dependent) {
      const netsim::CarrierId subject = ref.neighbor_side ? neighbor : carrier;
      if (subject == netsim::kInvalidCarrier) continue;
      if (!first) out += ", ";
      first = false;
      const netsim::AttrCode code = (*attr_codes_)[ref.attr][static_cast<std::size_t>(subject)];
      out += attr_ref_name(ref, *schema_) + "=" + schema_->value_label(ref.attr, code);
    }
  }
  return out;
}

}  // namespace auric::core
