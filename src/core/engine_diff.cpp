#include "core/engine_diff.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"
#include "util/strings.h"

namespace auric::core {

namespace {

void append_churn_json(std::string& out, const EngineDiffReport::ParamChurn& churn) {
  out += util::format("{\"param\":\"%s\",\"flips\":%zu,\"source_changes\":%zu}",
                      churn.name.c_str(), churn.flips, churn.source_changes);
}

}  // namespace

std::string EngineDiffReport::json(std::size_t top) const {
  std::string out = util::format(
      "{\"carriers_sampled\":%zu,\"slots_compared\":%zu,\"flips\":%zu,"
      "\"source_changes\":%zu,\"flip_rate\":%.6g,\"mean_support_delta\":%.6g,"
      "\"top_churn\":[",
      carriers_sampled, slots_compared, flips, source_changes, flip_rate, mean_support_delta);
  const std::size_t n = top == 0 ? churn.size() : std::min(top, churn.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out += ",";
    append_churn_json(out, churn[i]);
  }
  out += "]}";
  return out;
}

std::string EngineDiffReport::text(std::size_t top) const {
  std::string out;
  out += util::format("carriers sampled   %zu\n", carriers_sampled);
  out += util::format("slots compared     %zu\n", slots_compared);
  out += util::format("value flips        %zu (flip rate %.4f)\n", flips, flip_rate);
  out += util::format("source changes     %zu\n", source_changes);
  out += util::format("mean support delta %+.4f\n", mean_support_delta);
  const std::size_t n = top == 0 ? churn.size() : std::min(top, churn.size());
  if (n > 0) {
    out += "churned parameters (flips / source changes):\n";
    for (std::size_t i = 0; i < n; ++i) {
      out += util::format("  %-28s %6zu %6zu\n", churn[i].name.c_str(), churn[i].flips,
                          churn[i].source_changes);
    }
  }
  return out;
}

EngineDiffReport diff_engines(const AuricEngine& prev, const AuricEngine& next,
                              std::size_t sample, std::uint64_t seed) {
  if (prev.catalog().size() != next.catalog().size()) {
    throw std::invalid_argument("diff_engines: engines use different parameter catalogs");
  }
  const std::size_t carriers = prev.topology().carrier_count();
  if (carriers != next.topology().carrier_count()) {
    throw std::invalid_argument("diff_engines: engines cover different carrier id spaces");
  }

  // Seeded sample without replacement: shuffle the id space and take the
  // prefix, so the audited set is stable for a given (sample, seed).
  std::vector<netsim::CarrierId> ids(carriers);
  for (std::size_t i = 0; i < carriers; ++i) ids[i] = static_cast<netsim::CarrierId>(i);
  if (sample > 0 && sample < carriers) {
    util::Rng rng(seed);
    rng.shuffle(ids);
    ids.resize(sample);
    std::sort(ids.begin(), ids.end());
  }

  EngineDiffReport report;
  report.carriers_sampled = ids.size();
  const auto& singular = prev.catalog().singular_ids();
  std::vector<EngineDiffReport::ParamChurn> churn(prev.catalog().size());
  double support_delta_sum = 0.0;
  for (netsim::CarrierId carrier : ids) {
    const std::vector<Recommendation> before = prev.recommend_singular(carrier);
    const std::vector<Recommendation> after = next.recommend_singular(carrier);
    for (std::size_t i = 0; i < singular.size(); ++i) {
      ++report.slots_compared;
      support_delta_sum += after[i].support - before[i].support;
      const bool flip = before[i].value != after[i].value;
      const bool source_change = before[i].source != after[i].source;
      if (flip) {
        ++report.flips;
        ++churn[static_cast<std::size_t>(singular[i])].flips;
      }
      if (source_change) {
        ++report.source_changes;
        ++churn[static_cast<std::size_t>(singular[i])].source_changes;
      }
    }
  }
  if (report.slots_compared > 0) {
    report.flip_rate =
        static_cast<double>(report.flips) / static_cast<double>(report.slots_compared);
    report.mean_support_delta = support_delta_sum / static_cast<double>(report.slots_compared);
  }
  for (std::size_t p = 0; p < churn.size(); ++p) {
    if (churn[p].flips == 0 && churn[p].source_changes == 0) continue;
    churn[p].param = static_cast<config::ParamId>(p);
    churn[p].name = prev.catalog().at(static_cast<config::ParamId>(p)).name;
    report.churn.push_back(std::move(churn[p]));
  }
  std::sort(report.churn.begin(), report.churn.end(),
            [](const EngineDiffReport::ParamChurn& a, const EngineDiffReport::ParamChurn& b) {
              if (a.flips != b.flips) return a.flips > b.flips;
              return a.param < b.param;
            });
  return report;
}

}  // namespace auric::core
