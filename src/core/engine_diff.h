// EngineDiff: the relearn shadow-audit (DESIGN.md §17).
//
// A relearn swaps the serving engine wholesale; before that flip the operator
// needs evidence of what the new model would change. diff_engines replays a
// deterministic sample of carriers through both engines' singular
// recommendation paths and reports the disagreement surface: how many slots
// flip value, how many change provenance, how support moved, and which
// parameters churn most. Serve runs it inside POST /relearn (a flip rate
// above ServeOptions::max_flip_rate refuses the swap into degraded mode);
// `auric modeldiff` runs the same comparison offline over two checkpointed
// inventories.
//
// The sample is seeded, so the same (engines, sample, seed) triple always
// audits the same carriers — audits are reproducible evidence, not spot
// checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/catalog.h"
#include "core/engine.h"

namespace auric::core {

struct EngineDiffReport {
  std::size_t carriers_sampled = 0;
  std::size_t slots_compared = 0;    ///< carriers x singular parameters
  std::size_t flips = 0;             ///< slots whose recommended value changed
  std::size_t source_changes = 0;    ///< slots whose provenance changed
  double flip_rate = 0.0;            ///< flips / slots_compared
  double mean_support_delta = 0.0;   ///< mean(new support - old support)

  struct ParamChurn {
    config::ParamId param = 0;
    std::string name;
    std::size_t flips = 0;
    std::size_t source_changes = 0;
  };
  /// Parameters with any churn, most flips first (ties: lower id first).
  std::vector<ParamChurn> churn;

  /// JSON object (the /relearn and /modelz "audit" payload); `top` caps the
  /// churn list (0 = all).
  std::string json(std::size_t top = 10) const;
  /// Human-readable table for the modeldiff CLI.
  std::string text(std::size_t top = 10) const;
};

/// Compares `next` against `prev` on a seeded sample of up to `sample`
/// carriers (0 = all). Both engines must be built over the same parameter
/// catalog and the same carrier id space; throws std::invalid_argument when
/// the catalogs or carrier counts disagree.
EngineDiffReport diff_engines(const AuricEngine& prev, const AuricEngine& next,
                              std::size_t sample, std::uint64_t seed);

}  // namespace auric::core
