#include "core/model_watch.h"

#include <algorithm>
#include <cmath>

#include "ml/chi_square.h"
#include "util/strings.h"

namespace auric::core {

namespace {

/// Support/margin live in [0, 1]; ten even buckets line the histograms up
/// with the PSI bucketing so dashboards read off the same grid.
const std::vector<double>& unit_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (int i = 1; i <= 10; ++i) b.push_back(0.1 * i);
    return b;
  }();
  return bounds;
}

constexpr const char* kGateOutcomeNames[2] = {"rolled_back", "accepted"};

}  // namespace

ModelWatch::ModelWatch(const config::ParamCatalog& catalog, obs::MetricsRegistry& registry,
                       Options options)
    : catalog_(&catalog), options_(options) {
  if (options_.support_buckets < 2) options_.support_buckets = 2;
  param_count_ = catalog.size();
  params_ = std::make_unique<ParamState[]>(param_count_);
  for (std::size_t p = 0; p < catalog.size(); ++p) {
    const config::ParamDef& def = catalog.at(static_cast<config::ParamId>(p));
    ParamState& st = params_[p];
    const obs::Labels param_label = {{"param", def.name}};
    for (int s = 0; s < 3; ++s) {
      st.sources[static_cast<std::size_t>(s)] = &registry.counter(
          "auric_model_recommendations_total",
          "recommendations by parameter and decision source",
          {{"param", def.name},
           {"source", recommendation_source_name(static_cast<RecommendationSource>(s))}});
    }
    st.gate_accepted =
        &registry.counter("auric_model_gate_outcomes_total",
                          "KPI-gate verdicts joined to the recommending parameter",
                          {{"param", def.name}, {"outcome", kGateOutcomeNames[1]}});
    st.gate_rolled_back =
        &registry.counter("auric_model_gate_outcomes_total",
                          "KPI-gate verdicts joined to the recommending parameter",
                          {{"param", def.name}, {"outcome", kGateOutcomeNames[0]}});
    st.support = &registry.histogram("auric_model_support", unit_bounds(),
                                     "vote support per recommendation", param_label);
    st.margin = &registry.histogram("auric_model_margin", unit_bounds(),
                                    "vote margin (winner - runner-up fraction)", param_label);
    st.coverage = &registry.gauge("auric_model_coverage",
                                  "voted fraction of the day's recommendations", param_label);
    st.drift_p = &registry.gauge("auric_model_drift_chi2_p",
                                 "day-over-day chi-square p-value of recommended values",
                                 param_label);
    st.drift_p->set(1.0);
    st.domain = def.domain.size();
    st.day_counts = std::make_unique<std::atomic<std::uint32_t>[]>(st.domain);
    for (std::size_t i = 0; i < st.domain; ++i) {
      st.day_counts[i].store(0, std::memory_order_relaxed);
    }
  }
  const auto buckets = static_cast<std::size_t>(options_.support_buckets);
  support_day_ = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    support_day_[i].store(0, std::memory_order_relaxed);
  }
  psi_gauge_ = &registry.gauge("auric_model_drift_psi",
                               "day-over-day PSI of the vote-support distribution");
  drifted_gauge_ = &registry.gauge("auric_model_drift_params_flagged",
                                   "parameters whose value distribution drifted (p < alpha)");
  days_counter_ = &registry.counter("auric_model_days_total", "days rolled by the model watch");
}

void ModelWatch::record(const Recommendation& rec) const {
  const auto p = static_cast<std::size_t>(rec.param);
  if (p >= param_count_) return;
  const ParamState& st = params_[p];
  st.sources[static_cast<std::size_t>(rec.source)]->inc();
  st.support->observe(rec.support);
  st.margin->observe(rec.margin);
  st.day_total.fetch_add(1, std::memory_order_relaxed);
  if (rec.source != RecommendationSource::kRulebookDefault) {
    st.day_voted.fetch_add(1, std::memory_order_relaxed);
  }
  if (rec.value != config::kUnset && rec.value >= 0 &&
      static_cast<std::size_t>(rec.value) < st.domain) {
    st.day_counts[static_cast<std::size_t>(rec.value)].fetch_add(1, std::memory_order_relaxed);
  }
  const int buckets = options_.support_buckets;
  const auto bucket = static_cast<std::size_t>(
      std::min(buckets - 1, std::max(0, static_cast<int>(rec.support * buckets))));
  support_day_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void ModelWatch::record_gate_outcome(config::ParamId param, bool accepted) const {
  const auto p = static_cast<std::size_t>(param);
  if (p >= param_count_) return;
  (accepted ? params_[p].gate_accepted : params_[p].gate_rolled_back)->inc();
}

void ModelWatch::roll_day() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t flagged = 0;
  for (std::size_t pi = 0; pi < param_count_; ++pi) {
    ParamState& st = params_[pi];
    std::vector<std::int64_t> today(st.domain, 0);
    std::int64_t today_total = 0;
    for (std::size_t i = 0; i < st.domain; ++i) {
      today[i] = static_cast<std::int64_t>(st.day_counts[i].exchange(0, std::memory_order_relaxed));
      today_total += today[i];
    }
    const std::uint32_t total = st.day_total.exchange(0, std::memory_order_relaxed);
    const std::uint32_t voted = st.day_voted.exchange(0, std::memory_order_relaxed);
    if (total > 0) {
      st.last_coverage = static_cast<double>(voted) / static_cast<double>(total);
      st.coverage->set(st.last_coverage);
    }
    double p_value = 1.0;
    std::int64_t prev_total = 0;
    for (std::int64_t c : st.prev_counts) prev_total += c;
    if (prev_total > 0 && today_total > 0) {
      ml::ContingencyTable table;
      table.counts = {st.prev_counts, today};
      table.total = prev_total + today_total;
      p_value = ml::chi_square_test(table).p_value;
    }
    st.last_p = p_value;
    st.drift_p->set(p_value);
    if (p_value < options_.drift_alpha) ++flagged;
    if (today_total > 0) st.prev_counts = std::move(today);
  }

  const auto buckets = static_cast<std::size_t>(options_.support_buckets);
  std::vector<double> today_support(buckets, 0.0);
  double today_total = 0.0;
  for (std::size_t i = 0; i < buckets; ++i) {
    today_support[i] =
        static_cast<double>(support_day_[i].exchange(0, std::memory_order_relaxed));
    today_total += today_support[i];
  }
  double prev_total = 0.0;
  for (double c : prev_support_) prev_total += c;
  if (prev_total > 0.0 && today_total > 0.0) {
    // PSI with Laplace smoothing so empty buckets stay finite: psi =
    // sum_i (q_i - p_i) ln(q_i / p_i) over smoothed bucket fractions.
    double psi = 0.0;
    const double k = static_cast<double>(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      const double p = (prev_support_[i] + 0.5) / (prev_total + 0.5 * k);
      const double q = (today_support[i] + 0.5) / (today_total + 0.5 * k);
      psi += (q - p) * std::log(q / p);
    }
    last_psi_ = psi;
    psi_gauge_->set(psi);
  }
  if (today_total > 0.0) prev_support_ = std::move(today_support);
  drifted_gauge_->set(static_cast<double>(flagged));
  ++days_;
  days_counter_->inc();
}

int ModelWatch::days_rolled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return days_;
}

double ModelWatch::psi() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_psi_;
}

double ModelWatch::drift_p(config::ParamId param) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto p = static_cast<std::size_t>(param);
  if (p >= param_count_) return 1.0;
  return params_[p].last_p;
}

std::size_t ModelWatch::drifted_params() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t flagged = 0;
  for (std::size_t pi = 0; pi < param_count_; ++pi) {
    if (params_[pi].last_p < options_.drift_alpha) ++flagged;
  }
  return flagged;
}

std::string ModelWatch::modelz_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t flagged = 0;
  for (std::size_t pi = 0; pi < param_count_; ++pi) {
    if (params_[pi].last_p < options_.drift_alpha) ++flagged;
  }
  std::string out = util::format("{\"days\":%d,\"psi\":%.6g,\"drift_alpha\":%g,", days_,
                                 last_psi_, options_.drift_alpha);
  out += util::format("\"drifted_params\":%zu,\"params\":[", flagged);
  for (std::size_t p = 0; p < param_count_; ++p) {
    const ParamState& st = params_[p];
    const std::uint64_t local = st.sources[0]->value();
    const std::uint64_t global = st.sources[1]->value();
    const std::uint64_t fallback = st.sources[2]->value();
    if (p > 0) out += ",";
    out += util::format(
        "{\"param\":\"%s\",\"local\":%llu,\"global\":%llu,\"fallback\":%llu,"
        "\"coverage\":%.4f,\"gate_accepted\":%llu,\"gate_rolled_back\":%llu,"
        "\"drift_p\":%.6g}",
        catalog_->at(static_cast<config::ParamId>(p)).name.c_str(),
        static_cast<unsigned long long>(local), static_cast<unsigned long long>(global),
        static_cast<unsigned long long>(fallback), st.last_coverage,
        static_cast<unsigned long long>(st.gate_accepted->value()),
        static_cast<unsigned long long>(st.gate_rolled_back->value()), st.last_p);
  }
  out += "]}";
  return out;
}

}  // namespace auric::core
