#include "core/rulebook_synthesis.h"

#include "util/strings.h"

namespace auric::core {

bool SynthesizedRule::overrides_default(const config::ParamCatalog& catalog) const {
  return value != catalog.at(param).default_index;
}

SynthesizedRulebook synthesize_rulebook(const AuricEngine& engine,
                                        RulebookSynthesisOptions options) {
  SynthesizedRulebook book;
  const config::ParamCatalog& catalog = engine.catalog();
  for (std::size_t p = 0; p < catalog.size(); ++p) {
    const auto param = static_cast<config::ParamId>(p);
    const ParamView& view = engine.view(param);
    const BackoffVoting& voting = engine.voting(param);
    if (voting.level_count() == 0) continue;
    const auto deps = voting.deps_at(0);

    // Re-aggregate the level-0 groups (the full dependent-attribute match).
    const VotingModel model(view, deps, engine.attr_codes());
    for (const VotingModel::GroupSummary& group : model.group_summaries()) {
      if (group.total < options.min_carriers) continue;
      if (group.support() < options.min_support) continue;
      SynthesizedRule rule;
      rule.param = param;
      rule.value = view.labels.values[static_cast<std::size_t>(group.winner)];
      rule.support = group.support();
      rule.carriers = group.total;
      for (std::size_t d = 0; d < deps.size(); ++d) {
        rule.conditions.emplace_back(deps[d], group.key[d]);
      }
      if (!options.include_default_rules && !rule.overrides_default(catalog)) continue;
      book.rules.push_back(std::move(rule));
    }
  }
  return book;
}

std::vector<const SynthesizedRule*> SynthesizedRulebook::rules_for(
    config::ParamId param) const {
  std::vector<const SynthesizedRule*> out;
  for (const SynthesizedRule& rule : rules) {
    if (rule.param == param) out.push_back(&rule);
  }
  return out;
}

std::string SynthesizedRulebook::render(const netsim::AttributeSchema& schema,
                                        const config::ParamCatalog& catalog) const {
  std::string out;
  config::ParamId current = -1;
  for (const SynthesizedRule& rule : rules) {
    const config::ParamDef& def = catalog.at(rule.param);
    if (rule.param != current) {
      current = rule.param;
      out += util::format("\n%s (default %s):\n", def.name.c_str(),
                          util::format_fixed(def.domain.value(def.default_index), 1).c_str());
    }
    out += "  IF ";
    for (std::size_t i = 0; i < rule.conditions.size(); ++i) {
      if (i != 0) out += " AND ";
      const auto& [ref, code] = rule.conditions[i];
      out += attr_ref_name(ref, schema) + " = " + schema.value_label(ref.attr, code);
    }
    out += util::format(" THEN %s = %s   (support %.0f%%, %d carriers)\n", def.name.c_str(),
                        util::format_fixed(def.domain.value(rule.value), 1).c_str(),
                        100.0 * rule.support, rule.carriers);
  }
  return out;
}

}  // namespace auric::core
