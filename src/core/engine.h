// AuricEngine: the end-to-end recommender of Fig. 5.
//
// Learning phase (construction): for every one of the 65 range parameters,
// build the learning population over existing carriers, run the chi-square
// dependency scan, and aggregate the collaborative-filtering peer groups.
//
// Recommendation phase: for a (new) carrier — and a neighbor, for pair-wise
// parameters — produce a value per parameter using, in order:
//   1. local voting over the 1-hop X2 neighborhood (geographical proximity,
//      §3.3), when enabled;
//   2. global voting over all matching carriers;
//   3. the national rule-book default (§6's bootstrap fallback for carriers
//      whose peer group is empty or fails the 75% support threshold).
// Every recommendation carries its provenance and voting evidence so
// engineers can audit it (§5 "trust and interpretability").
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "core/dependency.h"
#include "core/param_view.h"
#include "core/voting.h"
#include "netsim/attributes.h"
#include "netsim/topology.h"

namespace auric::core {

struct AuricOptions {
  /// Chi-square significance level for dependency learning (paper: 0.01).
  double p_value = 0.01;
  /// Minimum voting support to emit a recommendation (paper: 0.75).
  double vote_threshold = 0.75;
  /// Use geographical proximity (local learner). When false the engine is
  /// the paper's "global learner".
  bool use_proximity = true;
  /// Neighborhood radius in X2 hops (paper: 1).
  int proximity_hops = 1;
  /// Dependent attributes retained, strongest first (see DependencyOptions).
  int max_dependent = 14;
  /// Support-driven backoff depth (see BackoffVoting).
  int backoff_levels = 5;
  /// Width of the per-parameter learn fan-out: > 1 builds the parameter
  /// tables on a private util::TaskPool of that many runners. Parameters are
  /// independent (the X2-locality argument of DESIGN.md §13 covers the learn
  /// path) and every build writes into its own pre-sized slot, so any width
  /// produces byte-identical models to the serial loop (CI-enforced).
  int learn_threads = 1;
};

/// How a relearn refreshes the engine — shared by `auric replay
/// --relearn-mode` and the serve daemon's POST /relearn.
enum class RelearnMode {
  kFull = 0,     ///< rebuild every parameter table from scratch
  kIncremental,  ///< apply slot deltas in place (AuricEngine::incremental_relearn)
};

const char* relearn_mode_name(RelearnMode mode);

enum class RecommendationSource {
  kLocalVote = 0,     ///< 1-hop X2 neighborhood vote met the threshold
  kGlobalVote,        ///< network-wide peer-group vote met the threshold
  kRulebookDefault,   ///< bootstrap fallback: no vote met the threshold
};

const char* recommendation_source_name(RecommendationSource source);

struct Recommendation {
  config::ParamId param = 0;
  config::ValueIndex value = config::kUnset;
  RecommendationSource source = RecommendationSource::kRulebookDefault;
  std::int32_t votes = 0;       ///< votes for the winning value
  std::int32_t group_size = 0;  ///< peers that voted
  double support = 0.0;         ///< votes / group_size
  double margin = 0.0;          ///< (votes - runner-up) / group_size; 0 for defaults
};

class ModelWatch;

/// Knobs of AuricEngine::incremental_relearn.
struct IncrementalRelearnOptions {
  /// Re-test gate: a touched parameter re-runs its chi-square dependency
  /// scan when its changed-observation fraction (slot deltas / previous
  /// rows) reaches this. <= 0 re-tests every touched parameter — the exact
  /// mode, which makes incremental relearn bit-identical to a full rebuild
  /// (DESIGN.md §18). Parameters whose label set changed rebuild regardless.
  double drift_threshold = 0.0;
  /// Optional union trigger: with a watch attached, a parameter whose
  /// ModelWatch day-over-day drift p-value (auric_model_drift_chi2_p) falls
  /// below `watch_alpha` re-tests even below drift_threshold — the served
  /// distribution moved even if the inventory barely did.
  const ModelWatch* watch = nullptr;
  double watch_alpha = 0.01;
  /// Fan the per-parameter delta application across this many runners
  /// (private pool; indexed slots keep any width byte-identical to 1).
  int threads = 1;
};

/// What an incremental relearn actually did, for logs and tests.
struct IncrementalRelearnStats {
  std::size_t params_touched = 0;   ///< parameters with any slot delta
  std::size_t params_retested = 0;  ///< chi-square dependency scan re-ran
  std::size_t params_rebuilt = 0;   ///< voting tables rebuilt (dependent set changed)
  std::size_t params_remapped = 0;  ///< label alphabet spliced in place (value appeared/vanished)
  std::size_t rows_added = 0;
  std::size_t rows_erased = 0;
  std::size_t rows_updated = 0;
};

class AuricEngine {
 public:
  /// Learns dependency and voting models for every parameter. O(total
  /// configured values) work; ~1s for the default benchmark topology.
  /// Engines are copyable: a copy shares the immutable attribute encoding
  /// and owns its own tables, so a clone can be incrementally relearned and
  /// shadow-audited against the original (the serve relearn path).
  AuricEngine(const netsim::Topology& topology, const netsim::AttributeSchema& schema,
              const config::ParamCatalog& catalog, const config::ConfigAssignment& assignment,
              AuricOptions options = {});

  /// Re-learns in place from the current `assignment`, touching only the
  /// parameters whose configured slots differ from the learned population:
  /// slot deltas (add/update/erase) are applied to the maintained view rows,
  /// contingency tables and voting groups; a value appearing or vanishing
  /// splices the label alphabet in place (an exact monotone re-coding, no
  /// re-tally); the chi-square dependency scan re-runs only per `options`
  /// (see IncrementalRelearnOptions), and voting tables rebuild only when a
  /// parameter's dependent-set membership changed — a re-test that merely
  /// re-ranks the same set re-tuples the existing group keys. With the
  /// default options the result is bit-identical to
  /// constructing a fresh engine over `assignment` — O(day's delta) instead
  /// of O(inventory). The assignment must describe the same topology and
  /// catalog the engine was built over.
  void incremental_relearn(const config::ConfigAssignment& assignment,
                           const IncrementalRelearnOptions& options = {},
                           IncrementalRelearnStats* stats = nullptr);

  const AuricOptions& options() const { return options_; }
  const netsim::Topology& topology() const { return *topology_; }
  const netsim::AttributeSchema& schema() const { return *schema_; }
  const config::ParamCatalog& catalog() const { return *catalog_; }

  const ParamView& view(config::ParamId param) const;
  const DependencyModel& dependencies(config::ParamId param) const;
  const BackoffVoting& voting(config::ParamId param) const;
  const std::vector<std::vector<netsim::AttrCode>>& attr_codes() const { return *attr_codes_; }

  /// Recommends a value for one parameter on `carrier` (singular) or on the
  /// relation carrier -> neighbor (pair-wise). When `exclude_self` is true
  /// and the slot is currently configured, the carrier's own observation is
  /// removed from the vote — this is the §4.2 protocol of treating each
  /// existing carrier as if it were new.
  Recommendation recommend(config::ParamId param, netsim::CarrierId carrier,
                           netsim::CarrierId neighbor = netsim::kInvalidCarrier,
                           bool exclude_self = true) const;

  /// All singular-parameter recommendations for `carrier`.
  std::vector<Recommendation> recommend_singular(netsim::CarrierId carrier,
                                                 bool exclude_self = true) const;

  /// All pair-wise recommendations for the relation carrier -> neighbor.
  std::vector<Recommendation> recommend_pairwise(netsim::CarrierId carrier,
                                                 netsim::CarrierId neighbor,
                                                 bool exclude_self = true) const;

  /// True cold start (§3 of the paper): recommends for a carrier that is
  /// NOT in the learned inventory — a carrier being planned or integrated.
  /// `new_carrier` supplies the attributes; `x2_neighbors` is its planned
  /// X2 neighborhood (existing carrier ids) used for the local vote; for a
  /// pair-wise `param`, `neighbor` names the relation target. Attribute
  /// values never observed in the inventory match no peer group and fall to
  /// the rule-book default (§6 "bootstrapping the unobserved").
  Recommendation recommend_for(const netsim::Carrier& new_carrier,
                               std::span<const netsim::CarrierId> x2_neighbors,
                               config::ParamId param,
                               netsim::CarrierId neighbor = netsim::kInvalidCarrier) const;

  /// All singular recommendations for an out-of-inventory carrier.
  std::vector<Recommendation> recommend_for_all_singular(
      const netsim::Carrier& new_carrier,
      std::span<const netsim::CarrierId> x2_neighbors) const;

  /// Human-readable audit trail: dependent attributes with the carrier's
  /// values, vote counts and provenance.
  std::string explain(const Recommendation& rec, netsim::CarrierId carrier,
                      netsim::CarrierId neighbor = netsim::kInvalidCarrier) const;

  /// Attaches a per-parameter telemetry sink: every recommendation produced
  /// by recommend*/recommend_for* is mirrored into `watch` (see
  /// core/model_watch.h). Pass nullptr to detach. The watch must outlive the
  /// engine; recording is lock-free, so a watched engine stays safe to share
  /// across reader threads.
  void set_watch(const ModelWatch* watch) { watch_ = watch; }
  const ModelWatch* watch() const { return watch_; }

 private:
  const netsim::Topology* topology_;
  const netsim::AttributeSchema* schema_;
  const config::ParamCatalog* catalog_;
  AuricOptions options_;

  /// Shared, immutable after construction: voting models keep raw pointers
  /// into this vector, so engine copies must alias the same storage for a
  /// clone's models to stay valid after the original is destroyed.
  std::shared_ptr<const std::vector<std::vector<netsim::AttrCode>>> attr_codes_;
  std::vector<ParamView> views_;              // by catalog param id
  std::vector<DependencyModel> dependencies_;
  std::vector<ContingencyState> contingency_;  ///< re-test sufficient statistics
  std::vector<BackoffVoting> voting_;
  const ModelWatch* watch_ = nullptr;

  /// Builds view + contingency + dependencies + voting for parameter `p`
  /// into the pre-sized slots (thread-safe across distinct `p`).
  void learn_param(std::size_t p, const config::ConfigAssignment& assignment,
                   const DependencyOptions& dep_options,
                   std::vector<std::optional<BackoffVoting>>& voting_slots);

  /// Diffs parameter `p` against `assignment` and applies the delta.
  /// Returns true when the parameter was touched.
  bool relearn_param(std::size_t p, const config::ConfigAssignment& assignment,
                     const IncrementalRelearnOptions& options, IncrementalRelearnStats& stats);

  /// Row of `view(param)` holding the carrier's own current observation for
  /// this exact slot, or -1.
  std::int64_t own_row(config::ParamId param, netsim::CarrierId carrier,
                       netsim::CarrierId neighbor) const;
};

}  // namespace auric::core
