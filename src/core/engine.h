// AuricEngine: the end-to-end recommender of Fig. 5.
//
// Learning phase (construction): for every one of the 65 range parameters,
// build the learning population over existing carriers, run the chi-square
// dependency scan, and aggregate the collaborative-filtering peer groups.
//
// Recommendation phase: for a (new) carrier — and a neighbor, for pair-wise
// parameters — produce a value per parameter using, in order:
//   1. local voting over the 1-hop X2 neighborhood (geographical proximity,
//      §3.3), when enabled;
//   2. global voting over all matching carriers;
//   3. the national rule-book default (§6's bootstrap fallback for carriers
//      whose peer group is empty or fails the 75% support threshold).
// Every recommendation carries its provenance and voting evidence so
// engineers can audit it (§5 "trust and interpretability").
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "core/dependency.h"
#include "core/param_view.h"
#include "core/voting.h"
#include "netsim/attributes.h"
#include "netsim/topology.h"

namespace auric::core {

struct AuricOptions {
  /// Chi-square significance level for dependency learning (paper: 0.01).
  double p_value = 0.01;
  /// Minimum voting support to emit a recommendation (paper: 0.75).
  double vote_threshold = 0.75;
  /// Use geographical proximity (local learner). When false the engine is
  /// the paper's "global learner".
  bool use_proximity = true;
  /// Neighborhood radius in X2 hops (paper: 1).
  int proximity_hops = 1;
  /// Dependent attributes retained, strongest first (see DependencyOptions).
  int max_dependent = 14;
  /// Support-driven backoff depth (see BackoffVoting).
  int backoff_levels = 5;
};

enum class RecommendationSource {
  kLocalVote = 0,     ///< 1-hop X2 neighborhood vote met the threshold
  kGlobalVote,        ///< network-wide peer-group vote met the threshold
  kRulebookDefault,   ///< bootstrap fallback: no vote met the threshold
};

const char* recommendation_source_name(RecommendationSource source);

struct Recommendation {
  config::ParamId param = 0;
  config::ValueIndex value = config::kUnset;
  RecommendationSource source = RecommendationSource::kRulebookDefault;
  std::int32_t votes = 0;       ///< votes for the winning value
  std::int32_t group_size = 0;  ///< peers that voted
  double support = 0.0;         ///< votes / group_size
  double margin = 0.0;          ///< (votes - runner-up) / group_size; 0 for defaults
};

class ModelWatch;

class AuricEngine {
 public:
  /// Learns dependency and voting models for every parameter. O(total
  /// configured values) work; ~1s for the default benchmark topology.
  AuricEngine(const netsim::Topology& topology, const netsim::AttributeSchema& schema,
              const config::ParamCatalog& catalog, const config::ConfigAssignment& assignment,
              AuricOptions options = {});

  const AuricOptions& options() const { return options_; }
  const netsim::Topology& topology() const { return *topology_; }
  const netsim::AttributeSchema& schema() const { return *schema_; }
  const config::ParamCatalog& catalog() const { return *catalog_; }

  const ParamView& view(config::ParamId param) const;
  const DependencyModel& dependencies(config::ParamId param) const;
  const BackoffVoting& voting(config::ParamId param) const;
  const std::vector<std::vector<netsim::AttrCode>>& attr_codes() const { return attr_codes_; }

  /// Recommends a value for one parameter on `carrier` (singular) or on the
  /// relation carrier -> neighbor (pair-wise). When `exclude_self` is true
  /// and the slot is currently configured, the carrier's own observation is
  /// removed from the vote — this is the §4.2 protocol of treating each
  /// existing carrier as if it were new.
  Recommendation recommend(config::ParamId param, netsim::CarrierId carrier,
                           netsim::CarrierId neighbor = netsim::kInvalidCarrier,
                           bool exclude_self = true) const;

  /// All singular-parameter recommendations for `carrier`.
  std::vector<Recommendation> recommend_singular(netsim::CarrierId carrier,
                                                 bool exclude_self = true) const;

  /// All pair-wise recommendations for the relation carrier -> neighbor.
  std::vector<Recommendation> recommend_pairwise(netsim::CarrierId carrier,
                                                 netsim::CarrierId neighbor,
                                                 bool exclude_self = true) const;

  /// True cold start (§3 of the paper): recommends for a carrier that is
  /// NOT in the learned inventory — a carrier being planned or integrated.
  /// `new_carrier` supplies the attributes; `x2_neighbors` is its planned
  /// X2 neighborhood (existing carrier ids) used for the local vote; for a
  /// pair-wise `param`, `neighbor` names the relation target. Attribute
  /// values never observed in the inventory match no peer group and fall to
  /// the rule-book default (§6 "bootstrapping the unobserved").
  Recommendation recommend_for(const netsim::Carrier& new_carrier,
                               std::span<const netsim::CarrierId> x2_neighbors,
                               config::ParamId param,
                               netsim::CarrierId neighbor = netsim::kInvalidCarrier) const;

  /// All singular recommendations for an out-of-inventory carrier.
  std::vector<Recommendation> recommend_for_all_singular(
      const netsim::Carrier& new_carrier,
      std::span<const netsim::CarrierId> x2_neighbors) const;

  /// Human-readable audit trail: dependent attributes with the carrier's
  /// values, vote counts and provenance.
  std::string explain(const Recommendation& rec, netsim::CarrierId carrier,
                      netsim::CarrierId neighbor = netsim::kInvalidCarrier) const;

  /// Attaches a per-parameter telemetry sink: every recommendation produced
  /// by recommend*/recommend_for* is mirrored into `watch` (see
  /// core/model_watch.h). Pass nullptr to detach. The watch must outlive the
  /// engine; recording is lock-free, so a watched engine stays safe to share
  /// across reader threads.
  void set_watch(const ModelWatch* watch) { watch_ = watch; }
  const ModelWatch* watch() const { return watch_; }

 private:
  const netsim::Topology* topology_;
  const netsim::AttributeSchema* schema_;
  const config::ParamCatalog* catalog_;
  AuricOptions options_;

  std::vector<std::vector<netsim::AttrCode>> attr_codes_;
  std::vector<ParamView> views_;              // by catalog param id
  std::vector<DependencyModel> dependencies_;
  std::vector<BackoffVoting> voting_;
  const ModelWatch* watch_ = nullptr;

  /// Row of `view(param)` holding the carrier's own current observation for
  /// this exact slot, or -1.
  std::int64_t own_row(config::ParamId param, netsim::CarrierId carrier,
                       netsim::CarrierId neighbor) const;
};

}  // namespace auric::core
