#include "core/dependency.h"

#include <algorithm>

namespace auric::core {

DependencyModel learn_dependencies(const ParamView& view,
                                   const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
                                   const netsim::AttributeSchema& schema,
                                   DependencyOptions options) {
  DependencyModel model;
  const std::size_t num_attrs = schema.attribute_count();
  const std::size_t rows = view.rows();

  std::vector<std::int32_t> x(rows);
  const auto test_side = [&](bool neighbor_side) {
    const auto& subject = neighbor_side ? view.neighbor : view.carrier;
    for (std::size_t a = 0; a < num_attrs; ++a) {
      const auto& codes = attr_codes[a];
      for (std::size_t r = 0; r < rows; ++r) {
        x[r] = codes[static_cast<std::size_t>(subject[r])];
      }
      DependencyTest test;
      test.ref = {neighbor_side, a};
      test.result = ml::chi_square_independence(x, view.label, schema.cardinality(a),
                                                view.labels.size());
      model.tests.push_back(std::move(test));
    }
  };
  test_side(false);
  if (view.pairwise) test_side(true);

  // Rejected tests, strongest association first.
  std::vector<const DependencyTest*> rejected;
  for (const DependencyTest& test : model.tests) {
    if (test.result.dependent(options.p_value)) rejected.push_back(&test);
  }
  std::stable_sort(rejected.begin(), rejected.end(),
                   [](const DependencyTest* a, const DependencyTest* b) {
                     if (a->result.p_value != b->result.p_value) {
                       return a->result.p_value < b->result.p_value;
                     }
                     return a->result.statistic > b->result.statistic;
                   });
  if (options.max_dependent > 0 &&
      rejected.size() > static_cast<std::size_t>(options.max_dependent)) {
    rejected.resize(static_cast<std::size_t>(options.max_dependent));
  }
  for (const DependencyTest* test : rejected) model.dependent.push_back(test->ref);
  return model;
}

std::string attr_ref_name(const AttrRef& ref, const netsim::AttributeSchema& schema) {
  return (ref.neighbor_side ? "nbr_" : "") + schema.name(ref.attr);
}

}  // namespace auric::core
