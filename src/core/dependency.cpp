#include "core/dependency.h"

#include <algorithm>
#include <stdexcept>

namespace auric::core {

void ContingencyState::apply(const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
                             netsim::CarrierId carrier, netsim::CarrierId neighbor,
                             ml::ClassLabel label, std::int64_t delta) {
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const AttrRef& ref = refs[i];
    const netsim::CarrierId subject = ref.neighbor_side ? neighbor : carrier;
    if (subject == netsim::kInvalidCarrier) {
      throw std::logic_error("ContingencyState: neighbor-side ref without a neighbor");
    }
    tables[i].apply(attr_codes[ref.attr][static_cast<std::size_t>(subject)], label, delta);
  }
}

ContingencyState build_contingency(const ParamView& view,
                                   const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
                                   const netsim::AttributeSchema& schema) {
  ContingencyState state;
  const std::size_t num_attrs = schema.attribute_count();
  state.refs.reserve(view.pairwise ? 2 * num_attrs : num_attrs);
  for (std::size_t a = 0; a < num_attrs; ++a) state.refs.push_back({false, a});
  if (view.pairwise) {
    for (std::size_t a = 0; a < num_attrs; ++a) state.refs.push_back({true, a});
  }
  state.tables.reserve(state.refs.size());
  for (const AttrRef& ref : state.refs) {
    state.tables.push_back(
        ml::ContingencyTable::zeros(schema.cardinality(ref.attr), view.labels.size()));
  }
  for (std::size_t r = 0; r < view.rows(); ++r) {
    state.apply(attr_codes, view.carrier[r], view.neighbor[r], view.label[r], 1);
  }
  return state;
}

DependencyModel dependencies_from_contingency(const ContingencyState& state,
                                              DependencyOptions options) {
  DependencyModel model;
  model.tests.reserve(state.refs.size());
  for (std::size_t i = 0; i < state.refs.size(); ++i) {
    DependencyTest test;
    test.ref = state.refs[i];
    test.result = ml::chi_square_test(state.tables[i]);
    model.tests.push_back(std::move(test));
  }

  // Rejected tests, strongest association first.
  std::vector<const DependencyTest*> rejected;
  for (const DependencyTest& test : model.tests) {
    if (test.result.dependent(options.p_value)) rejected.push_back(&test);
  }
  std::stable_sort(rejected.begin(), rejected.end(),
                   [](const DependencyTest* a, const DependencyTest* b) {
                     if (a->result.p_value != b->result.p_value) {
                       return a->result.p_value < b->result.p_value;
                     }
                     return a->result.statistic > b->result.statistic;
                   });
  if (options.max_dependent > 0 &&
      rejected.size() > static_cast<std::size_t>(options.max_dependent)) {
    rejected.resize(static_cast<std::size_t>(options.max_dependent));
  }
  for (const DependencyTest* test : rejected) model.dependent.push_back(test->ref);
  return model;
}

DependencyModel learn_dependencies(const ParamView& view,
                                   const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
                                   const netsim::AttributeSchema& schema,
                                   DependencyOptions options) {
  return dependencies_from_contingency(build_contingency(view, attr_codes, schema), options);
}

std::string attr_ref_name(const AttrRef& ref, const netsim::AttributeSchema& schema) {
  return (ref.neighbor_side ? "nbr_" : "") + schema.name(ref.attr);
}

}  // namespace auric::core
