// Collaborative filtering by voting (§3.2).
//
// Carriers that match a target exactly on the dependent attributes form its
// peer group; the recommendation is the group's modal value, emitted only
// when its support reaches the voting threshold (75% in the paper).
// VotingModel pre-aggregates the peer groups so a global recommendation (or
// a leave-one-out evaluation pass over millions of slots) is a hash lookup;
// local (1-hop X2) voting scans the small neighborhood row set directly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/dependency.h"
#include "core/param_view.h"

namespace auric::core {

/// A peer-group key: the codes of the dependent attributes, in model order.
using GroupKey = std::vector<std::int32_t>;

struct GroupKeyHash {
  std::size_t operator()(const GroupKey& key) const;
};

struct Vote {
  ml::ClassLabel label = -1;     ///< winning class (ParamView label space)
  std::int32_t count = 0;        ///< votes for the winner
  std::int32_t runner_up = 0;    ///< votes for the second-placed class (0 if unanimous)
  std::int32_t group_size = 0;   ///< total voters
  double support() const {
    return group_size > 0 ? static_cast<double>(count) / static_cast<double>(group_size) : 0.0;
  }
  /// Decisiveness of the win: (winner - runner-up) / group. 1.0 when the
  /// group is unanimous, -> 0 when the top two classes are nearly tied.
  double margin() const {
    return group_size > 0
               ? static_cast<double>(count - runner_up) / static_cast<double>(group_size)
               : 0.0;
  }
};

class VotingModel {
 public:
  /// Aggregates `view` into peer groups keyed by the dependent attributes of
  /// `deps`. `attr_codes` must be the same encoding the dependency scan used.
  VotingModel(const ParamView& view, std::span<const AttrRef> deps,
              const std::vector<std::vector<netsim::AttrCode>>& attr_codes);

  /// Key for a (carrier, neighbor) subject; neighbor may be kInvalidCarrier
  /// for singular parameters (then neighbor-side refs must be absent).
  GroupKey key_for(netsim::CarrierId carrier, netsim::CarrierId neighbor) const;

  /// Winning vote of the peer group, if the group exists and the winner's
  /// support is >= `threshold`.
  std::optional<Vote> vote(const GroupKey& key, double threshold) const;

  /// Leave-one-out vote: as `vote` but with one observation of `own_label`
  /// removed from the group (evaluation treats each carrier as new, §4.2).
  std::optional<Vote> vote_excluding(const GroupKey& key, ml::ClassLabel own_label,
                                     double threshold) const;

  /// Applies a signed vote delta for one observation: +1 adds a voter with
  /// `label` to the group (created when absent), -1 removes one. Pairs that
  /// reach zero votes and groups that reach zero voters are erased, so a
  /// delta-maintained model holds exactly the groups a from-scratch build
  /// over the same population would (winner/runner-up scans are
  /// order-independent over the (label, count) multiset, so equal multisets
  /// mean equal votes — DESIGN.md §18). Throws std::logic_error when a count
  /// would go negative.
  void adjust(const GroupKey& key, ml::ClassLabel label, std::int32_t delta);

  /// Rewrites every stored vote's label through `old_to_new` (index = old
  /// label code). Used when the label dictionary is re-coded in place — a
  /// value appeared or vanished and every dense code shifted. The map must
  /// be monotone over live labels so smallest-label tie-breaks survive the
  /// renumbering; a negative entry asserts that label holds no votes (it was
  /// dropped from the dictionary) and trips std::logic_error otherwise.
  void remap_labels(std::span<const ml::ClassLabel> old_to_new);

  /// Re-orders the dependent list to `new_deps`, which must be a permutation
  /// of deps(): every group key is re-tupled into the new attribute order —
  /// O(groups), not O(rows) — with group contents untouched. The re-ranked
  /// model equals a from-scratch build over the same population because peer
  /// grouping is a function of the dependent *set*; only the key tuple order
  /// follows the ranking. Throws std::logic_error on a non-permutation.
  void reorder_deps(std::span<const AttrRef> new_deps);

  std::size_t group_count() const { return groups_.size(); }

  /// The dependent attribute refs this model keys on.
  std::span<const AttrRef> deps() const { return deps_; }

  /// One peer group's aggregate: its key, the modal value and the counts.
  /// Used by rule-book synthesis to export the learned structure.
  struct GroupSummary {
    GroupKey key;
    ml::ClassLabel winner = -1;
    std::int32_t winner_count = 0;
    std::int32_t total = 0;
    double support() const {
      return total > 0 ? static_cast<double>(winner_count) / static_cast<double>(total) : 0.0;
    }
  };
  std::vector<GroupSummary> group_summaries() const;

 private:
  struct Group {
    // (label, count), unsorted; peer groups have few distinct values.
    std::vector<std::pair<ml::ClassLabel, std::int32_t>> counts;
    std::int32_t total = 0;
  };

  std::vector<AttrRef> deps_;
  const std::vector<std::vector<netsim::AttrCode>>* attr_codes_;
  std::unordered_map<GroupKey, Group, GroupKeyHash> groups_;

  static std::optional<Vote> winner(const Group& group, ml::ClassLabel excluded,
                                    bool exclude_one, double threshold);
};

/// Voting with support-driven backoff.
///
/// The dependency scan orders attributes strongest-first; when the exact
/// match on all dependents yields no group or a vote below the threshold,
/// the weakest dependent is dropped and the (coarser, larger) group is
/// retried, up to `levels` times, before giving up. This keeps the 75%-vote
/// semantics of the paper while preventing inter-correlated attributes from
/// fragmenting peer groups below statistical usefulness (DESIGN.md §5).
class BackoffVoting {
 public:
  /// `deps` must be sorted strongest-first (learn_dependencies output).
  /// levels >= 1; level k matches on the first (|deps| - k) dependents.
  /// A vote at any level before the last also needs at least `min_voters`
  /// peers — a unanimous "vote" of one or two carriers is no evidence, and
  /// accepting it would let isolated noisy peers decide; the final level
  /// accepts any non-empty group (the best available evidence).
  BackoffVoting(const ParamView& view, std::span<const AttrRef> deps,
                const std::vector<std::vector<netsim::AttrCode>>& attr_codes, int levels = 3,
                int min_voters = 3);

  struct Decision {
    Vote vote;
    int level = 0;  ///< 0 = full dependent set, 1 = one dropped, ...
  };

  /// Global vote for (carrier, neighbor); tries levels in order.
  std::optional<Decision> vote(netsim::CarrierId carrier, netsim::CarrierId neighbor,
                               double threshold) const;

  /// Global vote for a carrier NOT present in the topology: carrier-side
  /// dependent attributes are read from `carrier_codes` (one code per schema
  /// attribute, AttributeSchema::encode output; kUnseen codes simply match
  /// no peer group, which realizes §6's bootstrap fallback). Neighbor-side
  /// refs still resolve against the topology via `neighbor`.
  std::optional<Decision> vote_codes(std::span<const netsim::AttrCode> carrier_codes,
                                     netsim::CarrierId neighbor, double threshold) const;

  /// Local vote for a carrier not present in the topology (see vote_codes);
  /// `candidates` is the new carrier's planned X2 neighborhood.
  std::optional<Decision> local_codes(const ParamView& view,
                                      std::span<const netsim::CarrierId> candidates,
                                      std::span<const netsim::AttrCode> carrier_codes,
                                      netsim::CarrierId neighbor, double threshold) const;

  /// Leave-one-out global vote (one observation of own_label removed).
  std::optional<Decision> vote_excluding(netsim::CarrierId carrier, netsim::CarrierId neighbor,
                                         ml::ClassLabel own_label, double threshold) const;

  /// Local vote over `candidates` with the same backoff ladder.
  std::optional<Decision> local(const ParamView& view,
                                std::span<const netsim::CarrierId> candidates,
                                netsim::CarrierId carrier, netsim::CarrierId neighbor,
                                std::int64_t exclude_row, double threshold,
                                std::span<const double> carrier_weights = {}) const;

  /// Applies a signed vote delta for one observation of (carrier, neighbor)
  /// across every backoff level (see VotingModel::adjust). The incremental
  /// relearn path uses this to keep all levels consistent with the day's
  /// slot deltas without rebuilding.
  void adjust(netsim::CarrierId carrier, netsim::CarrierId neighbor, ml::ClassLabel label,
              std::int32_t delta);

  /// Applies a label renumbering to every backoff level (see
  /// VotingModel::remap_labels).
  void remap_labels(std::span<const ml::ClassLabel> old_to_new);

  /// Adopts a re-ranked dependent list (`new_deps` must be a permutation of
  /// the current set). Backoff levels whose key prefix spans the same
  /// attribute set keep their aggregated groups with keys re-tupled in the
  /// new order; levels whose prefix membership shifted (the dropped-weakest
  /// tail changed) rebuild from `view`. The incremental relearn path uses
  /// this when a drift re-test re-ranks an unchanged dependent set — the
  /// common case — so an O(rows) voting rebuild becomes O(groups).
  void reorder_deps(const ParamView& view, std::span<const AttrRef> new_deps);

  /// Dependent refs used at backoff level `level`.
  std::span<const AttrRef> deps_at(int level) const;

  /// The voting model at backoff `level` (0 = full dependent set); exposed
  /// for structural equality checks in tests and diagnostics.
  const VotingModel& model_at(int level) const {
    return models_.at(static_cast<std::size_t>(level));
  }

  int level_count() const { return static_cast<int>(models_.size()); }

 private:
  std::vector<AttrRef> deps_;
  const std::vector<std::vector<netsim::AttrCode>>* attr_codes_;
  std::vector<VotingModel> models_;  // [level] -> model on the prefix
  int min_voters_ = 3;

  bool accept(const Vote& vote, int level) const;
};

/// Local (geographical-proximity) vote: peers are the rows of `view` whose
/// subject carrier lies in `candidates` (typically the 1-hop X2 neighborhood
/// of the target, §3.3) and whose dependent attribute codes equal `key`.
/// `exclude_row` (the target's own row during evaluation) is skipped when
/// >= 0. Returns the winning vote if support >= threshold.
///
/// `carrier_weights`, when non-empty (one weight per topology carrier),
/// implements the §6 performance-feedback extension: each voter contributes
/// its carrier's weight instead of 1, so carriers whose past configuration
/// changes improved service performance count for more. Vote counts are
/// then rounded weight totals and support is the weight fraction.
std::optional<Vote> local_vote(const ParamView& view, std::span<const AttrRef> deps,
                               const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
                               const GroupKey& key,
                               std::span<const netsim::CarrierId> candidates,
                               std::int64_t exclude_row, double threshold,
                               std::span<const double> carrier_weights = {});

}  // namespace auric::core
