// Dependency learning: chi-square attribute selection (§3.2).
//
// For each configuration parameter, test every carrier attribute (and, for
// pair-wise parameters, every neighbor attribute) for independence against
// the parameter's values. Attributes for which independence is rejected at
// the configured significance level form the dependent set D(i); carriers
// matching a new carrier exactly on D(i) are its collaborative-filtering
// peers. Eliminating non-dependent attributes is what protects Auric from
// the irrelevant-attribute dilution that hurts k-NN (§3.2).
#pragma once

#include <string>
#include <vector>

#include "core/param_view.h"
#include "ml/chi_square.h"

namespace auric::core {

/// Reference to one attribute column: carrier-side or neighbor-side.
struct AttrRef {
  bool neighbor_side = false;
  std::size_t attr = 0;

  bool operator==(const AttrRef&) const = default;
};

struct DependencyTest {
  AttrRef ref;
  ml::ChiSquareResult result;
};

struct DependencyOptions {
  /// Chi-square significance level (the paper uses 0.01).
  double p_value = 0.01;
  /// Maximum dependent attributes retained, strongest first (<= 0 keeps
  /// all). Carrier attributes are heavily inter-correlated (MIMO mode
  /// follows hardware and band, cell size follows morphology, ...), so the
  /// chi-square scan legitimately flags correlated proxies alongside the
  /// causal attributes; matching exactly on every flagged attribute then
  /// fragments the peer groups below what a 75% vote can survive at
  /// sub-production dataset sizes. Capping at the strongest few keeps the
  /// groups statistically meaningful (see DESIGN.md §5).
  int max_dependent = 14;
};

struct DependencyModel {
  /// Attributes on which the parameter depends, strongest association first
  /// (ascending p-value, descending statistic), capped per options.
  std::vector<AttrRef> dependent;
  /// Every test that was run (for explainability and diagnostics).
  std::vector<DependencyTest> tests;
};

/// The sufficient statistics of one parameter's dependency scan: for every
/// attribute column (carrier side first, then — for pair-wise views — the
/// neighbor side, in schema order) the (attr code x class label) contingency
/// table over the learning population. Incremental relearn maintains this
/// per parameter so a drift-triggered re-test costs O(codes x labels) per
/// attribute instead of a fresh O(rows) scan; the integer counts are exactly
/// what a from-scratch scan would tally, so the re-test result is
/// bit-identical (DESIGN.md §18).
struct ContingencyState {
  std::vector<AttrRef> refs;              ///< test order of learn_dependencies
  std::vector<ml::ContingencyTable> tables;  ///< one per ref

  /// Adds (`delta` = +1) or removes (-1) one observation of `label` for the
  /// (carrier, neighbor) subject across every table.
  void apply(const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
             netsim::CarrierId carrier, netsim::CarrierId neighbor, ml::ClassLabel label,
             std::int64_t delta);
};

/// Tallies `view` into fresh contingency tables (label dimension =
/// view.labels.size(), row dimension = the schema cardinality of each attr).
ContingencyState build_contingency(const ParamView& view,
                                   const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
                                   const netsim::AttributeSchema& schema);

/// Runs the chi-square scan over maintained contingency state. This is THE
/// scan: learn_dependencies composes build_contingency with this function,
/// so a re-test over delta-maintained tables and a full rebuild share every
/// floating-point operation.
DependencyModel dependencies_from_contingency(const ContingencyState& state,
                                              DependencyOptions options = {});

/// Runs the chi-square scan for `view` per `options`.
/// `attr_codes` is AttributeSchema::encode_all output for the full topology.
DependencyModel learn_dependencies(const ParamView& view,
                                   const std::vector<std::vector<netsim::AttrCode>>& attr_codes,
                                   const netsim::AttributeSchema& schema,
                                   DependencyOptions options = {});

/// Human-readable name of an attribute reference ("morphology" or
/// "nbr_carrier_frequency").
std::string attr_ref_name(const AttrRef& ref, const netsim::AttributeSchema& schema);

}  // namespace auric::core
