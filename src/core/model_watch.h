// ModelWatch: per-parameter telemetry and drift detection for the Fig. 5
// recommender (DESIGN.md §17).
//
// The system plane (metrics, traces, profiles) says nothing about *model*
// quality: which parameters vote vs. fall back to the rule book, how decisive
// those votes are, and whether the distribution the engine recommends from is
// shifting under it. ModelWatch closes that gap. Attach one to an engine
// (AuricEngine::set_watch) and every recommendation is mirrored into labeled
// instruments keyed by parameter name:
//
//   auric_model_recommendations_total{param,source}   decision provenance
//   auric_model_support / auric_model_margin{param}   vote-quality histograms
//   auric_model_coverage{param}                       voted / total, per day
//   auric_model_gate_outcomes_total{param,outcome}    KPI-gate verdict joined
//                                                     back to the parameter
//
// The 65-parameter catalog lands every name comfortably under the registry's
// 256-label-set cardinality cap (worst case: 195 sets for the 3-source
// counter). Against a capped registry the instruments degrade to the shared
// sink, so record() stays safe either way.
//
// Drift: roll_day() closes a day of counts and compares it against the
// previous day — a 2xK chi-square (ml/chi_square, the same machinery that
// learned the dependencies) on each parameter's recommended-value counts,
// and a PSI score on the pooled vote-support distribution — exported as the
// auric_model_drift_* gauges the incremental-relearn roadmap item consumes.
//
// Threading: record()/record_gate_outcome() are lock-free (pre-resolved
// instruments + relaxed atomics), safe from sharded replay workers and serve
// request threads. roll_day()/modelz_json() serialize on an internal mutex.
// Recording never touches replay output, so watched runs stay byte-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "config/catalog.h"
#include "core/engine.h"
#include "obs/metrics.h"

namespace auric::core {

struct ModelWatchOptions {
  /// Significance level for flagging a parameter as drifted (the
  /// auric_model_drift_params_flagged gauge); matches the engine's
  /// dependency-learning alpha by default.
  double drift_alpha = 0.01;
  /// PSI resolution over the [0, 1] support range.
  int support_buckets = 10;
};

class ModelWatch {
 public:
  using Options = ModelWatchOptions;

  /// Registers every instrument eagerly (one registry pass at construction,
  /// zero registry traffic afterwards). The catalog must outlive the watch.
  explicit ModelWatch(const config::ParamCatalog& catalog,
                      obs::MetricsRegistry& registry = obs::MetricsRegistry::global(),
                      Options options = {});

  ModelWatch(const ModelWatch&) = delete;
  ModelWatch& operator=(const ModelWatch&) = delete;

  /// Mirrors one recommendation into the per-parameter instruments and the
  /// current day's drift counts. Lock-free; called from the engine hot path.
  void record(const Recommendation& rec) const;

  /// Joins a KPI-gate verdict back to the parameter that recommended the
  /// change: `accepted` covers implemented/recovered launches, rolled-back
  /// ones land in the rolled_back series. Lock-free.
  void record_gate_outcome(config::ParamId param, bool accepted) const;

  /// Closes the current day: per-parameter day-over-day chi-square on the
  /// recommended-value counts, PSI on the pooled support distribution,
  /// coverage gauges. Call at day granularity (replay day roll, serve
  /// relearn). Thread-safe, but intended for one driver thread.
  void roll_day();

  int days_rolled() const;
  /// Day-over-day PSI of the pooled vote-support distribution (0 until two
  /// days have rolled).
  double psi() const;
  /// Latest day-over-day chi-square p-value for `param` (1.0 until two days
  /// of counts exist; low = the recommended-value distribution moved).
  double drift_p(config::ParamId param) const;
  /// Parameters whose latest p-value falls below drift_alpha.
  std::size_t drifted_params() const;

  /// The /modelz document: per-parameter cumulative counters, coverage and
  /// drift state plus the global drift summary, as a JSON object.
  std::string modelz_json() const;

  const config::ParamCatalog& catalog() const { return *catalog_; }

 private:
  struct ParamState {
    obs::Counter* sources[3] = {nullptr, nullptr, nullptr};  // by RecommendationSource
    obs::Counter* gate_accepted = nullptr;
    obs::Counter* gate_rolled_back = nullptr;
    obs::Histogram* support = nullptr;
    obs::Histogram* margin = nullptr;
    obs::Gauge* coverage = nullptr;
    obs::Gauge* drift_p = nullptr;
    std::size_t domain = 0;
    /// Today's recommended-value counts, one slot per domain index; mutable
    /// because record() is const on the watch (relaxed atomics only).
    std::unique_ptr<std::atomic<std::uint32_t>[]> day_counts;
    mutable std::atomic<std::uint32_t> day_total{0};
    mutable std::atomic<std::uint32_t> day_voted{0};
    // Previous closed day + latest test result; guarded by mu_.
    std::vector<std::int64_t> prev_counts;
    double last_p = 1.0;
    double last_coverage = 0.0;
  };

  const config::ParamCatalog* catalog_;
  Options options_;
  // Fixed array (ParamState holds atomics, so it is neither copyable nor
  // movable); indexed by ParamId.
  std::unique_ptr<ParamState[]> params_;
  std::size_t param_count_ = 0;

  /// Today's pooled support-bucket counts (PSI input).
  std::unique_ptr<std::atomic<std::uint64_t>[]> support_day_;

  obs::Gauge* psi_gauge_ = nullptr;
  obs::Gauge* drifted_gauge_ = nullptr;
  obs::Counter* days_counter_ = nullptr;

  mutable std::mutex mu_;
  std::vector<double> prev_support_;  // previous day's bucket counts
  double last_psi_ = 0.0;
  int days_ = 0;
};

}  // namespace auric::core
