#include "serve/daemon.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/engine_diff.h"
#include "obs/rules.h"
#include "obs/server.h"
#include "obs/trace.h"
#include "smartlaunch/sharded_ems.h"
#include "util/drain.h"
#include "util/log.h"
#include "util/strings.h"

namespace auric::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now().time_since_epoch())
      .count();
}

/// Value of `key` in an HTTP query string ("a=1&b=2"), or empty.
std::string_view query_param(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    std::string_view pair = amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{} : query.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
  }
  return {};
}

/// Strict integer parse; nullopt on garbage or empty.
std::optional<std::int64_t> parse_int(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

obs::HttpResponse json_response(int status, std::string body) {
  return {status, "application/json", std::move(body), {}};
}

obs::HttpResponse shed_response(const char* why) {
  return {503,
          "application/json",
          std::string("{\"status\":\"shed\",\"reason\":\"") + why + "\"}",
          {{"Retry-After", "1"}}};
}

/// The outcome slot a listener thread waits on while the pool computes.
struct Job {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  obs::HttpResponse response;
};

}  // namespace

ServeDaemon::ServeDaemon(const netsim::Topology& topology,
                         const netsim::AttributeSchema& schema,
                         const config::ParamCatalog& catalog,
                         const config::ConfigAssignment& assignment,
                         const config::GroundTruthModel& ground_truth, Options options,
                         obs::MetricsRegistry& registry)
    : topology_(&topology),
      schema_(&schema),
      catalog_(&catalog),
      assignment_(&assignment),
      rulebook_(ground_truth, catalog),
      options_(std::move(options)),
      registry_(&registry),
      watch_(catalog, registry),
      pool_(static_cast<std::size_t>(std::max(1, options_.workers))),
      bulk_used_(static_cast<std::size_t>(std::max(1, options_.bulkheads)), 0),
      requests_recommend_(registry.counter("auric_serve_requests_total", "serve requests",
                                           {{"endpoint", "recommend"}})),
      requests_diff_(registry.counter("auric_serve_requests_total", "serve requests",
                                      {{"endpoint", "diff"}})),
      requests_healthz_(registry.counter("auric_serve_requests_total", "serve requests",
                                         {{"endpoint", "healthz"}})),
      shed_total_(registry.counter("auric_serve_shed_total",
                                   "requests shed at admission (503 + Retry-After)")),
      deadline_expired_total_(registry.counter(
          "auric_serve_deadline_expired_total",
          "requests whose deadline expired before dispatch (pre-dispatch 504)")),
      timeouts_total_(registry.counter("auric_serve_timeouts_total",
                                       "requests that timed out mid-flight (504)")),
      engine_swaps_total_(
          registry.counter("auric_serve_engine_swaps_total", "successful hot engine swaps")),
      relearn_failures_total_(registry.counter("auric_serve_relearn_failures_total",
                                               "relearns that failed (last-good kept)")),
      relearn_refused_total_(registry.counter(
          "auric_serve_relearn_refused_total",
          "relearns the shadow-audit refused (flip rate over max_flip_rate)")),
      errors_total_(registry.counter("auric_serve_errors_total",
                                     "requests answered 500 (handler threw)")),
      queue_depth_(registry.gauge("auric_serve_queue_depth", "requests in the admission window")),
      degraded_gauge_(
          registry.gauge("auric_serve_degraded", "1 while serving a stale last-good engine")),
      up_gauge_(registry.gauge("auric_serve_up", "1 while the daemon accepts requests")),
      generation_gauge_(
          registry.gauge("auric_serve_engine_generation", "generation of the served engine")),
      flip_rate_gauge_(registry.gauge("auric_serve_relearn_flip_rate",
                                      "flip rate of the last relearn shadow-audit")),
      latency_recommend_(registry.histogram("auric_serve_latency_ms",
                                            obs::default_latency_bounds_ms(),
                                            "serve latency", {{"endpoint", "recommend"}})),
      latency_diff_(registry.histogram("auric_serve_latency_ms",
                                       obs::default_latency_bounds_ms(), "serve latency",
                                       {{"endpoint", "diff"}})) {
  // Exemplars link a scraped latency bucket to the trace that landed there:
  // the p99 bucket on /metrics names a trace_id /tracez can expand.
  latency_recommend_.enable_exemplars();
  latency_diff_.enable_exemplars();
  pool_.set_pending_limit(options_.pool_pending_limit);
  builder_ = [this] {
    return std::make_unique<core::AuricEngine>(*topology_, *schema_, *catalog_, *assignment_);
  };
  if (options_.http.name == "http listener") {
    options_.http.name = "serve daemon";
  }
}

ServeDaemon::~ServeDaemon() { drain(); }

void ServeDaemon::set_engine_builder(EngineBuilder builder) {
  std::lock_guard<std::mutex> lock(relearn_mu_);
  builder_ = std::move(builder);
}

std::shared_ptr<const ServeDaemon::EngineBundle> ServeDaemon::snapshot() const {
  std::lock_guard<std::mutex> lock(bundle_mu_);
  return bundle_;
}

std::uint64_t ServeDaemon::generation() const {
  const auto bundle = snapshot();
  return bundle == nullptr ? 0 : bundle->generation;
}

std::unique_ptr<ServeDaemon::EngineBundle> ServeDaemon::build_bundle() {
  auto bundle = std::make_unique<EngineBundle>();
  bundle->engine = builder_();
  if (bundle->engine == nullptr) {
    throw std::runtime_error("serve: engine builder returned null");
  }
  // Every bundle records into the daemon-lifetime watch, so per-parameter
  // telemetry survives hot swaps (the audit's own recommend calls record too
  // — model counters measure engine traffic, not client traffic).
  bundle->engine->set_watch(&watch_);
  bundle->controller = std::make_unique<smartlaunch::LaunchController>(
      *bundle->engine, rulebook_, *assignment_, smartlaunch::VendorFaultOptions{},
      smartlaunch::PushPolicy{}, options_.seed);
  return bundle;
}

void ServeDaemon::warm_up() {
  std::lock_guard<std::mutex> relearn_lock(relearn_mu_);
  {
    std::lock_guard<std::mutex> lock(bundle_mu_);
    if (bundle_ != nullptr) {
      return;
    }
  }
  std::unique_ptr<EngineBundle> bundle = build_bundle();  // throws on failure: no
                                                          // last-good to fall back to
  bundle->generation = 1;
  std::lock_guard<std::mutex> lock(bundle_mu_);
  bundle_ = std::move(bundle);
  generation_gauge_.set(1.0);
}

bool ServeDaemon::relearn() { return relearn_audited(nullptr) == RelearnOutcome::kSwapped; }

ServeDaemon::RelearnOutcome ServeDaemon::relearn_audited(std::string* audit_json,
                                                         core::RelearnMode mode) {
  std::lock_guard<std::mutex> relearn_lock(relearn_mu_);
  const std::shared_ptr<const EngineBundle> current = snapshot();
  const std::uint64_t next_generation = (current == nullptr ? 0 : current->generation) + 1;
  // Incremental needs a serving engine to delta-update; before the first
  // warm-up the full builder is the only option.
  const bool incremental = mode == core::RelearnMode::kIncremental && current != nullptr &&
                           current->engine != nullptr;
  std::unique_ptr<EngineBundle> fresh;
  try {
    if (incremental) {
      // Clone-and-update off to the side: engines are copyable (the attribute
      // code table is shared, so the clone's internal pointers stay valid
      // after the RCU flip frees the original), and the clone absorbs the
      // inventory's slot deltas in O(delta) instead of a from-scratch learn.
      // The clone goes through the same audit gate as a full rebuild below.
      fresh = std::make_unique<EngineBundle>();
      fresh->engine = std::make_unique<core::AuricEngine>(*current->engine);
      fresh->engine->incremental_relearn(*assignment_);
      fresh->engine->set_watch(&watch_);
      fresh->controller = std::make_unique<smartlaunch::LaunchController>(
          *fresh->engine, rulebook_, *assignment_, smartlaunch::VendorFaultOptions{},
          smartlaunch::PushPolicy{}, options_.seed);
    } else {
      fresh = build_bundle();
    }
  } catch (const std::exception& e) {
    // Graceful degradation: the last-good bundle keeps serving; /healthz
    // flips to degraded until a later relearn succeeds.
    relearn_failures_total_.inc();
    degraded_.store(true);
    degraded_gauge_.set(1.0);
    util::log(util::LogLevel::kError,
              util::format("serve: %s relearn failed (%s); serving last-good engine",
                           core::relearn_mode_name(mode), e.what()));
    return RelearnOutcome::kFailed;
  }
  fresh->generation = next_generation;

  // Shadow-audit (DESIGN.md §17): replay a seeded carrier sample through the
  // serving and fresh engines BEFORE the flip. A flip rate over the cap means
  // the new model disagrees with the serving one on too much of the network
  // to trust a hot swap — keep last-good, surface degraded, leave the audit
  // on /modelz as the evidence an operator needs to adjudicate.
  if (current != nullptr && current->engine != nullptr) {
    try {
      const core::EngineDiffReport report = core::diff_engines(
          *current->engine, *fresh->engine, options_.audit_sample, options_.seed);
      flip_rate_gauge_.set(report.flip_rate);
      std::string audit = report.json();
      if (audit_json != nullptr) {
        *audit_json = audit;
      }
      {
        std::lock_guard<std::mutex> lock(audit_mu_);
        last_audit_ = std::move(audit);
      }
      if (report.flip_rate > options_.max_flip_rate) {
        relearn_refused_total_.inc();
        degraded_.store(true);
        degraded_gauge_.set(1.0);
        util::log(util::LogLevel::kError,
                  util::format("serve: relearn refused (flip rate %.4f > %.4f); "
                               "serving last-good engine",
                               report.flip_rate, options_.max_flip_rate));
        return RelearnOutcome::kRefused;
      }
    } catch (const std::exception& e) {
      // A test-injected builder may produce an engine the audit cannot
      // compare (different catalog or carrier space). The engine itself is
      // usable, so swap unaudited rather than fail the relearn.
      util::log(util::LogLevel::kWarn,
                util::format("serve: relearn audit skipped (%s)", e.what()));
    }
  }
  {
    // RCU-style flip: in-flight requests hold their own shared_ptr and
    // finish on the bundle they started with.
    std::lock_guard<std::mutex> lock(bundle_mu_);
    bundle_ = std::move(fresh);
  }
  engine_swaps_total_.inc();
  degraded_.store(false);
  degraded_gauge_.set(0.0);
  generation_gauge_.set(static_cast<double>(next_generation));
  // Each swapped relearn closes a ModelWatch drift day: the drift gauges
  // compare recommendation traffic between relearn epochs.
  watch_.roll_day();
  return RelearnOutcome::kSwapped;
}

std::string ServeDaemon::modelz_json() const {
  std::string audit;
  {
    std::lock_guard<std::mutex> lock(audit_mu_);
    audit = last_audit_;
  }
  std::string body = "{\"generation\":" + std::to_string(generation()) +
                     ",\"degraded\":" + (degraded_.load() ? "true" : "false") +
                     ",\"audit\":" + (audit.empty() ? "null" : audit) +
                     ",\"model\":" + watch_.modelz_json() + "}";
  return body;
}

void ServeDaemon::start() {
  if (running()) {
    return;
  }
  warm_up();
  draining_.store(false);
  listener_ = std::make_unique<obs::HttpListener>(
      [this](const obs::HttpRequest& request) { return handle(request); }, options_.http);
  listener_->start();
  up_gauge_.set(1.0);
}

void ServeDaemon::drain() {
  draining_.store(true);
  // Admitted requests finish (their listener thread is blocked inside
  // handle(), which never checks draining_ after admission)...
  while (admitted_.load() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // ...then abandoned (timed-out) jobs still queued or running on the pool.
  pool_.wait_idle();
  // Connections still queued in the listener get a prompt 503 "draining"
  // terminal response while stop() drains the fd queue.
  if (listener_ != nullptr) {
    listener_->stop();
  }
  up_gauge_.set(0.0);
}

obs::HttpResponse ServeDaemon::healthz() const {
  const char* status = "ok";
  int code = 200;
  if (draining_.load()) {
    status = "draining";
    code = 503;
  } else if (degraded_.load()) {
    status = "degraded";
    code = 503;
  } else if (recently_shed()) {
    status = "overloaded";
    code = 503;
  } else if (rules_ != nullptr && !rules_->healthy()) {
    status = "alerting";
    code = 503;
  }
  std::string body = std::string("{\"status\":\"") + status +
                     "\",\"generation\":" + std::to_string(generation()) +
                     ",\"admitted\":" + std::to_string(admitted_.load()) + "}";
  return json_response(code, std::move(body));
}

void ServeDaemon::note_shed() {
  shed_total_.inc();
  last_shed_ms_.store(now_ms(), std::memory_order_relaxed);
}

bool ServeDaemon::recently_shed() const {
  const std::int64_t last = last_shed_ms_.load(std::memory_order_relaxed);
  return last >= 0 && now_ms() - last < options_.overload_grace_ms;
}

obs::HttpResponse ServeDaemon::handle(const obs::HttpRequest& request) {
  const std::string_view path = request.path();
  // Control plane: never admission-gated, so health and metrics stay
  // observable under overload — exactly when they matter most.
  if (request.method == "GET") {
    if (path == "/healthz") {
      requests_healthz_.inc();
      return healthz();
    }
    if (path == "/metrics") {
      return {200, "text/plain; version=0.0.4; charset=utf-8", registry_->prometheus_text(), {}};
    }
    if (path == "/varz") {
      return json_response(200, registry_->json_text());
    }
    if (path == "/tracez") {
      return {200, "application/x-ndjson",
              obs::tracez_text(obs::TraceRecorder::global(), request.query()), {}};
    }
    if (path == "/profilez") {
      int status = 200;
      std::string body = obs::profilez_text(request.query(), &status);
      return {status, "text/plain; charset=utf-8", std::move(body), {}};
    }
    if (path == "/modelz") {
      return json_response(200, modelz_json());
    }
    if (path == "/" || path.empty()) {
      return {200,
              "text/plain; charset=utf-8",
              "auric serve\nGET /recommend?carrier=N[&neighbor=M]  GET /diff?carrier=N\n"
              "GET /healthz /metrics /varz /tracez /profilez /modelz   POST /relearn /quit\n",
              {}};
    }
    if (path == "/recommend" || path == "/diff") {
      return handle_data(request, std::string(path.substr(1)));
    }
    return {404, "text/plain; charset=utf-8", "unknown endpoint\n", {}};
  }
  if (request.method == "POST") {
    if (path == "/relearn") {
      core::RelearnMode mode = options_.relearn_mode;
      const std::string_view mode_arg = query_param(request.query(), "mode");
      if (mode_arg == "full") {
        mode = core::RelearnMode::kFull;
      } else if (mode_arg == "incremental") {
        mode = core::RelearnMode::kIncremental;
      } else if (!mode_arg.empty()) {
        return json_response(400, "{\"error\":\"mode must be full or incremental\"}");
      }
      std::string audit;
      const RelearnOutcome outcome = relearn_audited(&audit, mode);
      if (audit.empty()) {
        audit = "null";
      }
      const char* status = outcome == RelearnOutcome::kSwapped   ? "swapped"
                           : outcome == RelearnOutcome::kRefused ? "refused"
                                                                 : "degraded";
      const int code = outcome == RelearnOutcome::kSwapped ? 200 : 503;
      return json_response(code, std::string("{\"status\":\"") + status + "\",\"mode\":\"" +
                                     core::relearn_mode_name(mode) +
                                     "\",\"generation\":" + std::to_string(generation()) +
                                     ",\"audit\":" + audit + "}");
    }
    if (path == "/quit") {
      util::request_drain();
      return json_response(200, "{\"status\":\"draining\"}");
    }
    return {404, "text/plain; charset=utf-8", "unknown endpoint\n", {}};
  }
  return {405, "text/plain; charset=utf-8", "unsupported method\n", {}};
}

obs::HttpResponse ServeDaemon::handle_data(const obs::HttpRequest& request,
                                           const std::string& endpoint) {
  const Clock::time_point arrival = Clock::now();
  // Child of the listener's http.<path> root span; phases below (admission,
  // bulkhead, engine) nest under it, so one request reads as one tree.
  obs::ScopedSpan request_span(std::string("serve.") += endpoint);
  obs::Counter& endpoint_counter =
      endpoint == "recommend" ? requests_recommend_ : requests_diff_;
  endpoint_counter.inc();

  if (draining_.load()) {
    obs::TraceRecorder::global().mark_trace_error();
    return shed_response("draining");
  }

  // Phase spans: optional so one slot can close admission before opening
  // bulkhead without nesting scopes around every early return.
  std::optional<obs::ScopedSpan> phase_span;
  phase_span.emplace("serve.admission");

  // Admission: a bounded count of requests in the admission window. Shed
  // BEFORE doing any work — the point of load shedding is that rejected
  // requests are nearly free.
  const std::size_t in_flight = admitted_.fetch_add(1, std::memory_order_acq_rel) + 1;
  queue_depth_.set(static_cast<double>(in_flight));
  if (in_flight > options_.queue_high_water) {
    admitted_.fetch_sub(1, std::memory_order_acq_rel);
    queue_depth_.set(static_cast<double>(admitted_.load()));
    note_shed();
    obs::TraceRecorder::global().mark_trace_error();
    return shed_response("admission queue full");
  }
  struct AdmissionGuard {
    ServeDaemon* daemon;
    ~AdmissionGuard() {
      daemon->admitted_.fetch_sub(1, std::memory_order_acq_rel);
      daemon->queue_depth_.set(static_cast<double>(daemon->admitted_.load()));
    }
  } admission_guard{this};

  // Deadline: the client's budget, clamped; default when absent.
  std::int64_t deadline_ms = options_.default_deadline_ms;
  const std::string_view header = request.header("x-auric-deadline-ms");
  if (!header.empty()) {
    const std::optional<std::int64_t> parsed = parse_int(header);
    if (!parsed.has_value() || *parsed <= 0) {
      return json_response(400, "{\"error\":\"bad X-Auric-Deadline-Ms\"}");
    }
    deadline_ms = std::min<std::int64_t>(*parsed, options_.max_deadline_ms);
  }
  const Clock::time_point expiry = arrival + std::chrono::milliseconds(deadline_ms);

  // Parse the target carrier before burning a bulkhead slot on it.
  const std::optional<std::int64_t> carrier = parse_int(query_param(request.query(), "carrier"));
  if (!carrier.has_value() || *carrier < 0 ||
      static_cast<std::size_t>(*carrier) >= topology_->carrier_count()) {
    return json_response(400, "{\"error\":\"carrier must name a carrier in the inventory\"}");
  }

  // Bulkhead: per-market-shard concurrency cap. The same stable mapping the
  // sharded EMS uses, so a hot market saturates its own lane only.
  phase_span.reset();
  phase_span.emplace("serve.bulkhead");
  const int bulkheads = static_cast<int>(bulk_used_.size());
  const std::size_t lane = static_cast<std::size_t>(smartlaunch::shard_of_market(
      topology_->carriers[static_cast<std::size_t>(*carrier)].market, bulkheads));
  {
    std::unique_lock<std::mutex> lock(bulk_mu_);
    const bool got = bulk_cv_.wait_until(
        lock, expiry, [&] { return bulk_used_[lane] < options_.bulkhead_width; });
    if (!got) {
      // Expired waiting for a lane: dropped BEFORE dispatch, per the
      // deadline contract — no engine work was spent on it.
      deadline_expired_total_.inc();
      obs::TraceRecorder::global().mark_trace_error();
      return json_response(504, "{\"error\":\"deadline expired before dispatch\"}");
    }
    ++bulk_used_[lane];
  }
  phase_span.reset();

  // Dispatch onto the pool against a pinned engine snapshot.
  auto job = std::make_shared<Job>();
  std::shared_ptr<const EngineBundle> bundle = snapshot();
  const bool submitted = pool_.try_submit([this, job, bundle, request, endpoint, lane] {
    obs::HttpResponse response;
    try {
      // Runs under the submitter's trace context (TaskPool re-establishes
      // it), so this span parents under serve.<endpoint> across the pool
      // hop.
      obs::ScopedSpan engine_span("serve.engine");
      if (options_.work_delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(options_.work_delay_ms));
      }
      response = compute(request, endpoint, *bundle);
    } catch (const std::exception& e) {
      errors_total_.inc();
      obs::TraceRecorder::global().mark_trace_error();
      response = json_response(
          500, std::string("{\"error\":\"") + json_escape(e.what()) + "\"}");
    }
    {
      std::lock_guard<std::mutex> lock(bulk_mu_);
      --bulk_used_[lane];
    }
    bulk_cv_.notify_all();
    {
      std::lock_guard<std::mutex> lock(job->mu);
      job->response = std::move(response);
      job->done = true;
    }
    job->cv.notify_all();
  });
  if (!submitted) {
    {
      std::lock_guard<std::mutex> lock(bulk_mu_);
      --bulk_used_[lane];
    }
    bulk_cv_.notify_all();
    note_shed();
    obs::TraceRecorder::global().mark_trace_error();
    return shed_response("worker queue full");
  }

  obs::HttpResponse response;
  {
    std::unique_lock<std::mutex> lock(job->mu);
    if (!job->cv.wait_until(lock, expiry, [&] { return job->done; })) {
      // Mid-flight timeout: the client gets a terminal 504 now; the worker
      // finishes the abandoned job harmlessly (it only touches the job slot
      // and the bulkhead counter) — no thread is poisoned or cancelled.
      timeouts_total_.inc();
      obs::TraceRecorder::global().mark_trace_error();
      return json_response(504, "{\"error\":\"deadline expired in flight\"}");
    }
    response = std::move(job->response);
  }
  const double latency_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(Clock::now() -
                                                                            arrival)
          .count();
  (endpoint == "recommend" ? latency_recommend_ : latency_diff_).observe(latency_ms);
  return response;
}

obs::HttpResponse ServeDaemon::compute(const obs::HttpRequest& request,
                                       const std::string& endpoint,
                                       const EngineBundle& bundle) const {
  const std::int64_t carrier_id = *parse_int(query_param(request.query(), "carrier"));
  const auto carrier = static_cast<netsim::CarrierId>(carrier_id);

  if (endpoint == "recommend") {
    const std::string_view neighbor_raw = query_param(request.query(), "neighbor");
    std::vector<core::Recommendation> recs;
    netsim::CarrierId neighbor = netsim::kInvalidCarrier;
    if (!neighbor_raw.empty()) {
      const std::optional<std::int64_t> parsed = parse_int(neighbor_raw);
      if (!parsed.has_value() || *parsed < 0 ||
          static_cast<std::size_t>(*parsed) >= topology_->carrier_count()) {
        return json_response(400, "{\"error\":\"neighbor must name a carrier\"}");
      }
      neighbor = static_cast<netsim::CarrierId>(*parsed);
      recs = bundle.engine->recommend_pairwise(carrier, neighbor);
    } else {
      recs = bundle.engine->recommend_singular(carrier);
    }
    std::string body = "{\"carrier\":" + std::to_string(carrier_id) +
                       ",\"generation\":" + std::to_string(bundle.generation) +
                       ",\"recommendations\":[";
    bool first = true;
    for (const core::Recommendation& rec : recs) {
      const config::ParamDef& def = catalog_->at(rec.param);
      if (!first) {
        body += ',';
      }
      first = false;
      body += "{\"param\":\"" + json_escape(def.name) + "\"";
      if (rec.value != config::kUnset) {
        body += ",\"value\":" + util::format("%g", def.domain.value(rec.value));
      }
      body += std::string(",\"source\":\"") + core::recommendation_source_name(rec.source) +
              "\",\"votes\":" + std::to_string(rec.votes) +
              ",\"group_size\":" + std::to_string(rec.group_size) +
              ",\"support\":" + util::format("%.4f", rec.support) +
              ",\"margin\":" + util::format("%.4f", rec.margin) + "}";
    }
    body += "]}";
    return json_response(200, std::move(body));
  }

  // /diff: the SmartLaunch plan — vendor launch config vs Auric corrections.
  std::vector<smartlaunch::LaunchController::PlannedChange> vendor;
  const std::vector<smartlaunch::LaunchController::PlannedChange> changes =
      bundle.controller->plan_changes_detailed(carrier, &vendor);
  std::string body = "{\"carrier\":" + std::to_string(carrier_id) +
                     ",\"generation\":" + std::to_string(bundle.generation) +
                     ",\"slots\":" + std::to_string(vendor.size()) + ",\"changes\":[";
  bool first = true;
  for (const auto& change : changes) {
    const config::ParamDef& def = catalog_->at(change.slot.param);
    if (!first) {
      body += ',';
    }
    first = false;
    body += "{\"param\":\"" + json_escape(def.name) + "\",\"mo_path\":\"" +
            json_escape(change.slot.mo_path) + "\"";
    if (change.vendor_value != config::kUnset) {
      body += ",\"vendor\":" + util::format("%g", def.domain.value(change.vendor_value));
    }
    if (change.new_value != config::kUnset) {
      body += ",\"new\":" + util::format("%g", def.domain.value(change.new_value));
    }
    body += "}";
  }
  body += "]}";
  return json_response(200, std::move(body));
}

}  // namespace auric::serve
