#include "serve/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#include "obs/trace_context.h"
#include "util/rng.h"

namespace auric::serve {

namespace {

using Clock = std::chrono::steady_clock;

enum class Outcome { kOk, kShed, kExpired, kClientError, kServerError, kRefused, kNoResponse };

int connect_to(const std::string& host, std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads to connection close; returns the raw response.
std::string read_response(int fd) {
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

/// Status code of a complete response, or -1 when the response is not a
/// complete HTTP message (header + full Content-Length body).
int parse_status(const std::string& response) {
  if (response.rfind("HTTP/1.1 ", 0) != 0 || response.size() < 12) {
    return -1;
  }
  const int status = std::atoi(response.c_str() + 9);
  if (status < 100 || status > 599) {
    return -1;
  }
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return -1;
  }
  const std::size_t cl_pos = response.find("Content-Length: ");
  if (cl_pos == std::string::npos || cl_pos > header_end) {
    return -1;
  }
  const std::size_t body_len =
      static_cast<std::size_t>(std::atoll(response.c_str() + cl_pos + 16));
  if (response.size() - (header_end + 4) < body_len) {
    return -1;  // truncated body: the connection died mid-response
  }
  return status;
}

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kShed: return "shed";
    case Outcome::kExpired: return "expired";
    case Outcome::kClientError: return "client-error";
    case Outcome::kServerError: return "server-error";
    case Outcome::kRefused: return "refused";
    case Outcome::kNoResponse: return "no-response";
  }
  return "?";
}

/// The 32-hex trace id out of the response's Traceparent header, or empty.
std::string response_trace_id(const std::string& response) {
  const std::size_t header_end = response.find("\r\n\r\n");
  const std::size_t pos = response.find("\r\nTraceparent: ");
  if (pos == std::string::npos || (header_end != std::string::npos && pos > header_end)) {
    return {};
  }
  const std::size_t start = pos + 15;
  std::size_t end = response.find("\r\n", start);
  if (end == std::string::npos) end = response.size();
  const auto parsed =
      obs::parse_traceparent(std::string_view(response).substr(start, end - start));
  if (!parsed.has_value()) return {};
  return obs::trace_id_hex(parsed->trace_id);
}

/// One completed (non-fault) request, for per-outcome quantiles and the
/// slowest-N report.
struct RequestSample {
  Outcome outcome = Outcome::kOk;
  double latency_ms = 0.0;
  std::string target;
  std::string trace_id;
};

struct ClientTotals {
  LoadGenStats stats;
  std::vector<double> ok_latencies_ms;
  std::vector<RequestSample> samples;
};

void run_client(const LoadGenOptions& options, int client_index, ClientTotals* totals) {
  util::Rng rng(options.seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(client_index));
  const double weights[] = {options.recommend_weight, options.diff_weight,
                            options.healthz_weight};
  for (int i = 0; i < options.requests_per_client; ++i) {
    ++totals->stats.sent;
    const bool fault = options.fault_prob > 0.0 && rng.bernoulli(options.fault_prob);
    const std::size_t kind = rng.weighted_index(weights);
    const std::int64_t carrier =
        rng.uniform_int(0, std::max(0, options.carrier_universe - 1));
    std::string target;
    if (kind == 0) {
      target = "/recommend?carrier=" + std::to_string(carrier);
    } else if (kind == 1) {
      target = "/diff?carrier=" + std::to_string(carrier);
    } else {
      target = "/healthz";
    }
    std::string request = "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n";
    if (kind != 2) {
      request += "X-Auric-Deadline-Ms: " + std::to_string(options.deadline_ms) + "\r\n";
      // Client-originated trace: the daemon adopts this id, so the
      // Traceparent echoed in the response (and the server-side spans) carry
      // a trace the client chose — exactly how a real upstream calls us.
      const obs::TraceId tid{rng() | 1ULL, rng() | 1ULL};
      request += "Traceparent: " + obs::format_traceparent(tid, rng() | 1ULL) + "\r\n";
    }
    request += "\r\n";

    const int fd = connect_to(options.host, options.port);
    if (fd < 0) {
      ++totals->stats.refused;
      continue;
    }

    if (fault) {
      // Misbehave on purpose; any outcome short of wedging the daemon is
      // acceptable, so faults are counted separately and never as lost.
      ++totals->stats.faults_injected;
      const std::size_t mode = static_cast<std::size_t>(rng.uniform_int(0, 2));
      if (mode == 0) {
        // Slam: send half the request, close immediately.
        send_all(fd, request.substr(0, request.size() / 2));
      } else if (mode == 1) {
        // Garbage request line.
        send_all(fd, "XYZZY\r\n\r\n");
        read_response(fd);
      } else {
        // Slow trickle: a few bytes, a pause, then give up (exercises the
        // per-connection read deadline).
        send_all(fd, request.substr(0, 4));
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        read_response(fd);
      }
      ::close(fd);
      continue;
    }

    const Clock::time_point t0 = Clock::now();
    send_all(fd, request);
    const std::string response = read_response(fd);
    ::close(fd);
    const double latency_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(Clock::now() - t0)
            .count();

    const int status = parse_status(response);
    Outcome outcome;
    if (status < 0) {
      outcome = Outcome::kNoResponse;
    } else if (status == 503) {
      outcome = Outcome::kShed;
    } else if (status == 504 || status == 408) {
      outcome = Outcome::kExpired;
    } else if (status >= 200 && status < 300) {
      outcome = Outcome::kOk;
    } else if (status >= 500) {
      outcome = Outcome::kServerError;
    } else {
      outcome = Outcome::kClientError;
    }
    totals->samples.push_back(
        RequestSample{outcome, latency_ms, target, response_trace_id(response)});
    switch (outcome) {
      case Outcome::kOk:
        ++totals->stats.ok;
        totals->ok_latencies_ms.push_back(latency_ms);
        break;
      case Outcome::kShed:
        ++totals->stats.shed;
        break;
      case Outcome::kExpired:
        ++totals->stats.expired;
        break;
      case Outcome::kClientError:
        ++totals->stats.client_error;
        break;
      case Outcome::kServerError:
        ++totals->stats.server_error;
        break;
      case Outcome::kRefused:
        ++totals->stats.refused;
        break;
      case Outcome::kNoResponse:
        ++totals->stats.no_response;
        break;
    }
  }
}

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

LoadGenStats run_loadgen(const LoadGenOptions& options) {
  const int clients = std::max(1, options.clients);
  std::vector<ClientTotals> per_client(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(run_client, std::cref(options), c,
                         &per_client[static_cast<std::size_t>(c)]);
  }
  for (std::thread& t : threads) {
    t.join();
  }

  LoadGenStats total;
  std::vector<double> latencies;
  std::vector<RequestSample> samples;
  for (ClientTotals& ct : per_client) {
    total.sent += ct.stats.sent;
    total.ok += ct.stats.ok;
    total.shed += ct.stats.shed;
    total.expired += ct.stats.expired;
    total.client_error += ct.stats.client_error;
    total.server_error += ct.stats.server_error;
    total.refused += ct.stats.refused;
    total.no_response += ct.stats.no_response;
    total.faults_injected += ct.stats.faults_injected;
    latencies.insert(latencies.end(), ct.ok_latencies_ms.begin(), ct.ok_latencies_ms.end());
    samples.insert(samples.end(), std::make_move_iterator(ct.samples.begin()),
                   std::make_move_iterator(ct.samples.end()));
  }
  std::sort(latencies.begin(), latencies.end());
  total.p50_ms = quantile(latencies, 0.50);
  total.p99_ms = quantile(latencies, 0.99);
  total.max_ms = latencies.empty() ? 0.0 : latencies.back();

  // Per-outcome quantiles: a shed request should cost microseconds, an
  // expired one its deadline — the split makes both visible.
  std::map<std::string, std::vector<double>> by_outcome;
  for (const RequestSample& s : samples) {
    by_outcome[outcome_name(s.outcome)].push_back(s.latency_ms);
  }
  for (auto& [name, lats] : by_outcome) {
    std::sort(lats.begin(), lats.end());
    OutcomeLatency entry;
    entry.outcome = name;
    entry.count = lats.size();
    entry.p50_ms = quantile(lats, 0.50);
    entry.p99_ms = quantile(lats, 0.99);
    entry.max_ms = lats.back();
    total.by_outcome.push_back(std::move(entry));
  }

  // Slowest-N with trace ids: the handle into /tracez?trace_id= for the
  // requests most worth explaining.
  std::sort(samples.begin(), samples.end(),
            [](const RequestSample& a, const RequestSample& b) {
              return a.latency_ms > b.latency_ms;
            });
  const std::size_t keep =
      std::min<std::size_t>(samples.size(),
                            options.slowest < 0 ? 0 : static_cast<std::size_t>(options.slowest));
  for (std::size_t i = 0; i < keep; ++i) {
    total.slowest.push_back(SlowRequest{samples[i].latency_ms, outcome_name(samples[i].outcome),
                                        std::move(samples[i].target),
                                        std::move(samples[i].trace_id)});
  }
  return total;
}

}  // namespace auric::serve
