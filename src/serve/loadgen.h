// Seeded closed-loop load generator for the serve plane.
//
// N client threads each run a fixed request budget against a ServeDaemon
// port: send one request, wait for the full response (or connection close),
// repeat. Closed-loop clients self-throttle, so "2x capacity" is expressed
// as more concurrent clients than the daemon admits — exactly the shape the
// admission queue is built to shed.
//
// The request mix (recommend / diff / healthz, carrier choice) is drawn from
// a per-client seeded Rng, so a run is reproducible bit-for-bit. Optional
// fault injection makes a seeded fraction of clients misbehave on purpose
// (close before reading, send garbage, trickle the request slowly) to prove
// the socket hardening: a faulty client may get any terminal status or a
// slammed connection, but must never wedge the daemon.
//
// Outcome taxonomy (Stats):
//   ok           2xx with a complete response
//   shed         503 (admission/listener/draining shed)
//   expired      504 (deadline before dispatch or mid-flight)
//   client_error 4xx
//   refused      connect() failed — the daemon was gone (drain/stop); the
//                request was never admitted, so this is not a lost request
//   no_response  connected and sent, but the connection closed without a
//                complete response — the ONLY bucket that counts as a lost
//                request (must stay 0 for non-fault requests)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace auric::serve {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int clients = 4;
  int requests_per_client = 50;
  /// X-Auric-Deadline-Ms sent with every data request.
  int deadline_ms = 1000;
  /// Probability a request is replaced by a fault-injection behavior.
  double fault_prob = 0.0;
  /// Weights of the request mix (normalized internally).
  double recommend_weight = 0.6;
  double diff_weight = 0.3;
  double healthz_weight = 0.1;
  /// Carriers are drawn uniformly from [0, carrier_universe).
  int carrier_universe = 100;
  std::uint64_t seed = 1;
  /// How many of the slowest requests to report with their trace ids.
  int slowest = 5;
};

/// Latency quantiles for one outcome bucket (ok, shed, expired, ...).
struct OutcomeLatency {
  std::string outcome;
  std::uint64_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// One of the N slowest requests, linked to its server-side trace via the
/// Traceparent response header — feed the id to /tracez?trace_id= to see
/// where the time went.
struct SlowRequest {
  double latency_ms = 0.0;
  std::string outcome;
  std::string target;
  std::string trace_id;  ///< 32 hex chars; empty when no header came back
};

struct LoadGenStats {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t client_error = 0;
  std::uint64_t server_error = 0;
  std::uint64_t refused = 0;
  std::uint64_t no_response = 0;
  std::uint64_t faults_injected = 0;
  /// Latency of ok responses, milliseconds.
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Latency quantiles for every outcome that occurred (sorted by outcome
  /// name) — shed/expired latency is the cost of a rejection, and it should
  /// be far below ok latency if admission control is doing its job.
  std::vector<OutcomeLatency> by_outcome;
  /// The LoadGenOptions::slowest slowest requests, slowest first.
  std::vector<SlowRequest> slowest;

  /// Requests that were admitted (or refusable) and still ended without a
  /// terminal response. Zero on a healthy daemon, even under overload,
  /// relearn and drain.
  std::uint64_t lost() const { return no_response; }
};

/// Runs the closed loop to completion and aggregates per-client stats.
LoadGenStats run_loadgen(const LoadGenOptions& options);

}  // namespace auric::serve
