// ServeDaemon: the overload-safe online request plane ("Auric-as-a-service").
//
// A long-lived daemon hosting a resident AuricEngine + inventory behind the
// shared obs::HttpListener, answering
//
//   GET  /recommend?carrier=N[&neighbor=M]   vote-backed recommendations, JSON
//   GET  /diff?carrier=N                     SmartLaunch plan (vendor vs Auric)
//   GET  /healthz                            ok|degraded|overloaded|draining
//   GET  /metrics, /varz                     registry exposition
//   GET  /modelz                             model-quality plane: ModelWatch
//                                            telemetry + the last relearn audit
//   POST /relearn                            rebuild, shadow-audit, hot-swap
//   POST /quit                               request a graceful drain
//
// Robustness is layered in request order (DESIGN.md §15):
//   admission   a bounded count of in-flight requests; past the high-water
//               mark new work is shed with 503 + Retry-After instead of
//               queueing without bound
//   deadline    every request carries a budget (X-Auric-Deadline-Ms header,
//               clamped); requests that expire while waiting for a bulkhead
//               slot are dropped BEFORE dispatch (504), and requests that
//               expire mid-flight return 504 while the worker finishes the
//               abandoned job harmlessly in the background
//   bulkhead    per-market-shard concurrency caps (smartlaunch's
//               shard_of_market) so one hot market cannot starve the rest
//   snapshot    handlers run against an RCU-style engine snapshot
//               (std::shared_ptr<const EngineBundle>); relearn builds a new
//               bundle off to the side and flips the pointer, so in-flight
//               requests finish on the engine they started with, and a
//               FAILED relearn keeps serving the last-good bundle with
//               /healthz flipped to degraded
//   audit       before a relearn flips the bundle, core::diff_engines replays
//               a seeded carrier sample through the old and new engines; a
//               flip rate above ServeOptions::max_flip_rate REFUSES the swap
//               (last-good kept, degraded) — the shadow-audit of DESIGN.md
//               §17. The audit report rides the /relearn response and /modelz.
//   drain       stop admitting, finish in-flight work, answer stragglers
//               with 503, exit 0 (SIGTERM/SIGINT via util::drain)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "config/assignment.h"
#include "config/catalog.h"
#include "config/ground_truth.h"
#include "config/rulebook.h"
#include "core/engine.h"
#include "core/model_watch.h"
#include "netsim/attributes.h"
#include "netsim/topology.h"
#include "obs/http_listener.h"
#include "obs/metrics.h"
#include "smartlaunch/controller.h"
#include "util/parallel.h"

namespace auric::obs {
class RuleEngine;
class Sampler;
}  // namespace auric::obs

namespace auric::serve {

struct ServeOptions {
  obs::HttpListenerOptions http;  // threads defaulted in the constructor
  /// Engine-side worker threads (the daemon owns its pool; TaskPool::shared()
  /// has zero threads on a 1-core host, which would strand dispatched jobs).
  int workers = 2;
  /// Admission high-water mark: requests in flight past this are shed with
  /// 503 + Retry-After.
  std::size_t queue_high_water = 64;
  /// Bound for the pool's detached-task queue; a full queue sheds too.
  std::size_t pool_pending_limit = 128;
  /// Per-market-shard bulkheads and the concurrency cap of each.
  int bulkheads = 4;
  int bulkhead_width = 8;
  /// Request deadline when the client sends no X-Auric-Deadline-Ms header,
  /// and the clamp applied when it does.
  int default_deadline_ms = 1000;
  int max_deadline_ms = 10000;
  /// Artificial per-request service delay (capacity shaping for overload
  /// tests and the CI soak; 0 in production).
  int work_delay_ms = 0;
  /// A shed inside this trailing window makes /healthz report "overloaded".
  int overload_grace_ms = 2000;
  /// Vendor-fault seed for the LaunchController behind /diff.
  std::uint64_t seed = 4242;
  /// Shadow-audit breadth: carriers replayed through the old AND new engine
  /// before a relearn flips the bundle (0 = every carrier). Seeded by `seed`,
  /// so repeated relearns audit the same sample.
  std::size_t audit_sample = 48;
  /// Relearns whose audited flip rate EXCEEDS this refuse the swap: the
  /// last-good bundle keeps serving and /healthz reports degraded until a
  /// later relearn passes. 1.0 (the default) disables the guard — a rate can
  /// equal but never exceed it.
  double max_flip_rate = 1.0;
  /// Default relearn path. kIncremental clones the serving engine and applies
  /// the inventory's slot deltas in place (AuricEngine::incremental_relearn)
  /// instead of relearning every table from scratch; the clone still rides
  /// the full shadow-audit + flip-rate gate before the RCU flip. Overridable
  /// per request with POST /relearn?mode=full|incremental.
  core::RelearnMode relearn_mode = core::RelearnMode::kFull;
};

class ServeDaemon {
 public:
  using Options = ServeOptions;
  /// Builds fresh engine bundles; injectable so tests can fail a relearn.
  using EngineBuilder = std::function<std::unique_ptr<core::AuricEngine>()>;

  ServeDaemon(const netsim::Topology& topology, const netsim::AttributeSchema& schema,
              const config::ParamCatalog& catalog, const config::ConfigAssignment& assignment,
              const config::GroundTruthModel& ground_truth, Options options = {},
              obs::MetricsRegistry& registry = obs::MetricsRegistry::global());
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Replaces the engine builder (test hook for relearn failures). The
  /// default builder learns an AuricEngine from the resident inventory.
  void set_engine_builder(EngineBuilder builder);

  /// Optional health sources: when set, firing alert rules flip /healthz to
  /// 503 "alerting". Set before start().
  void set_rule_engine(const obs::RuleEngine* rules) { rules_ = rules; }

  /// Builds the initial engine bundle (generation 1) if none exists yet.
  /// start() calls this; exposed so tests and benches can exercise handle()
  /// without a socket.
  void warm_up();

  /// warm_up() + bind the listener and start answering. Throws
  /// std::runtime_error when the port cannot be bound.
  void start();

  /// Graceful drain: stop admitting, wait for in-flight requests and
  /// abandoned background jobs, answer queued stragglers with 503, stop the
  /// listener. Idempotent.
  void drain();

  bool running() const { return listener_ != nullptr && listener_->running(); }
  bool draining() const { return draining_.load(); }
  bool degraded() const { return degraded_.load(); }
  std::uint16_t port() const { return listener_ == nullptr ? 0 : listener_->port(); }
  const Options& options() const { return options_; }

  /// Engine generation currently served (0 before warm_up()).
  std::uint64_t generation() const;

  /// How a relearn ended: swapped in, builder threw (last-good kept), or the
  /// shadow-audit refused the swap (last-good kept, degraded).
  enum class RelearnOutcome { kSwapped, kFailed, kRefused };

  /// Rebuilds the engine via the builder, shadow-audits the fresh bundle
  /// against the serving one (core::diff_engines over a seeded carrier
  /// sample), and hot-swaps it in unless the audited flip rate exceeds
  /// Options::max_flip_rate. `audit_json`, when non-null, receives the
  /// EngineDiffReport JSON (empty when no audit ran — first warm-up or a
  /// failed build). Serialized; callable while serving.
  RelearnOutcome relearn_audited(std::string* audit_json) {
    return relearn_audited(audit_json, options_.relearn_mode);
  }

  /// Same, with an explicit path: kFull rebuilds through the builder;
  /// kIncremental clones the serving engine and delta-updates it against the
  /// resident inventory (which the owner may have refreshed in place — the
  /// daemon reads it, never writes it). Falls back to a full build when no
  /// engine is serving yet. Either way the fresh bundle is shadow-audited and
  /// the flip-rate cap enforced before the swap.
  RelearnOutcome relearn_audited(std::string* audit_json, core::RelearnMode mode);

  /// relearn_audited() == kSwapped. Kept for callers that only care whether
  /// a usable engine is being served.
  bool relearn();

  /// The per-parameter model telemetry every served recommendation records
  /// into (DESIGN.md §17). Relearn rolls its drift day.
  const core::ModelWatch& model_watch() const { return watch_; }

  /// The /modelz document: generation, degraded flag, the last relearn audit
  /// (null before the first relearn) and the ModelWatch snapshot.
  std::string modelz_json() const;

  /// Requests in the admission window right now.
  std::size_t admitted() const { return admitted_.load(); }

  /// Responses written over the socket path (0 when handle() is driven
  /// directly).
  std::uint64_t requests_served() const {
    return listener_ == nullptr ? 0 : listener_->requests_served();
  }

  /// The full request path (admission -> deadline -> bulkhead -> snapshot),
  /// shared by the socket path, tests, and benches.
  obs::HttpResponse handle(const obs::HttpRequest& request);

 private:
  /// One resident engine + its controller; flipped atomically on relearn.
  struct EngineBundle {
    std::unique_ptr<core::AuricEngine> engine;
    std::unique_ptr<smartlaunch::LaunchController> controller;
    std::uint64_t generation = 0;
  };

  std::shared_ptr<const EngineBundle> snapshot() const;
  std::unique_ptr<EngineBundle> build_bundle();

  obs::HttpResponse handle_data(const obs::HttpRequest& request, const std::string& endpoint);
  obs::HttpResponse compute(const obs::HttpRequest& request, const std::string& endpoint,
                            const EngineBundle& bundle) const;
  obs::HttpResponse healthz() const;
  void note_shed();
  bool recently_shed() const;

  const netsim::Topology* topology_;
  const netsim::AttributeSchema* schema_;
  const config::ParamCatalog* catalog_;
  const config::ConfigAssignment* assignment_;
  config::Rulebook rulebook_;
  Options options_;
  obs::MetricsRegistry* registry_;
  core::ModelWatch watch_;  ///< attached to every bundle in build_bundle()
  const obs::RuleEngine* rules_ = nullptr;

  /// Last relearn audit JSON (empty until the first audited relearn).
  mutable std::mutex audit_mu_;
  std::string last_audit_;

  mutable std::mutex bundle_mu_;
  std::shared_ptr<const EngineBundle> bundle_;
  std::mutex relearn_mu_;  ///< serializes concurrent relearns
  EngineBuilder builder_;

  util::TaskPool pool_;
  std::unique_ptr<obs::HttpListener> listener_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> degraded_{false};
  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::int64_t> last_shed_ms_{-1};  ///< steady-clock ms; -1 = never

  std::mutex bulk_mu_;
  std::condition_variable bulk_cv_;
  std::vector<int> bulk_used_;

  // Instruments (all owned by the registry).
  obs::Counter& requests_recommend_;
  obs::Counter& requests_diff_;
  obs::Counter& requests_healthz_;
  obs::Counter& shed_total_;
  obs::Counter& deadline_expired_total_;
  obs::Counter& timeouts_total_;
  obs::Counter& engine_swaps_total_;
  obs::Counter& relearn_failures_total_;
  obs::Counter& relearn_refused_total_;
  obs::Counter& errors_total_;
  obs::Gauge& queue_depth_;
  obs::Gauge& degraded_gauge_;
  obs::Gauge& up_gauge_;
  obs::Gauge& generation_gauge_;
  obs::Gauge& flip_rate_gauge_;
  obs::Histogram& latency_recommend_;
  obs::Histogram& latency_diff_;
};

}  // namespace auric::serve
