#include "config/managed_object.h"

#include <algorithm>

#include "util/strings.h"

namespace auric::config {

std::string cell_mo_path(const netsim::Carrier& carrier) {
  return util::format("ENodeBFunction=%d/EUtranCellFDD=%d-%d-%d", carrier.enodeb,
                      carrier.enodeb, carrier.face, carrier.frequency_mhz);
}

std::string freq_relation_mo_path(const netsim::Carrier& carrier,
                                  const netsim::Carrier& neighbor) {
  return cell_mo_path(carrier) +
         util::format("/EUtranFreqRelation=%d", neighbor.frequency_mhz);
}

std::string cell_relation_mo_path(const netsim::Carrier& carrier,
                                  const netsim::Carrier& neighbor) {
  return freq_relation_mo_path(carrier, neighbor) +
         util::format("/EUtranCellRelation=%d", neighbor.id);
}

std::vector<std::string> render_config_commands(const CarrierConfig& config,
                                                const ParamCatalog& catalog) {
  std::vector<std::string> lines;
  lines.reserve(config.settings.size());
  for (const MoSetting& s : config.settings) {
    const ParamDef& def = catalog.at(s.param);
    const double raw = def.domain.value(s.value);
    // Integer-valued domains print without a fraction, stepped reals with
    // one decimal (vendor CLIs are strict about numeric formats).
    const bool integral = def.domain.step() == static_cast<double>(
                              static_cast<long long>(def.domain.step())) &&
                          def.domain.min() == static_cast<double>(
                              static_cast<long long>(def.domain.min()));
    lines.push_back("set " + s.mo_path + " " + def.name + " " +
                    (integral ? std::to_string(static_cast<long long>(raw))
                              : util::format_fixed(raw, 1)));
  }
  return lines;
}

namespace {
bool setting_order(const MoSetting& a, const MoSetting& b) {
  if (a.mo_path != b.mo_path) return a.mo_path < b.mo_path;
  return a.param < b.param;
}
}  // namespace

void canonicalize(CarrierConfig& config) {
  std::sort(config.settings.begin(), config.settings.end(), setting_order);
}

std::vector<MoSetting> diff_config(const CarrierConfig& current, const CarrierConfig& desired) {
  std::vector<MoSetting> out;
  auto cur = current.settings.begin();
  for (const MoSetting& want : desired.settings) {
    while (cur != current.settings.end() && setting_order(*cur, want)) ++cur;
    const bool same = cur != current.settings.end() && cur->mo_path == want.mo_path &&
                      cur->param == want.param && cur->value == want.value;
    if (!same) out.push_back(want);
  }
  return out;
}

}  // namespace auric::config
