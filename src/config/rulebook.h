// The operational rule-book: the codified, attribute-keyed portion of
// engineering knowledge (§2.4 of the paper).
//
// A rule-book knows the national default for every parameter and the
// attribute-driven rules domain experts wrote down. It deliberately does NOT
// know market tuning styles, local pockets, terrain effects, or trial state —
// that uncodified "tribal knowledge" is exactly the gap Auric fills. The
// rule-book is what equipment vendors use to produce a new carrier's initial
// configuration (§5), and what Auric falls back to when voting support is
// insufficient or an attribute value was never observed (§6 "bootstrapping
// the unobserved").
#pragma once

#include "config/assignment.h"
#include "config/catalog.h"
#include "config/ground_truth.h"
#include "netsim/topology.h"

namespace auric::config {

class Rulebook {
 public:
  /// Exports the codified rules from the ground-truth model (defaults +
  /// attribute rules + interactions; nothing local or hidden).
  Rulebook(const GroundTruthModel& model, const ParamCatalog& catalog);

  /// National default for `param`.
  ValueIndex default_value(ParamId param) const;

  /// Rule-book value of a singular parameter for `carrier`.
  ValueIndex lookup(ParamId param, const netsim::Carrier& carrier) const;

  /// Rule-book value of a pair-wise parameter for relation (carrier ->
  /// neighbor).
  ValueIndex lookup(ParamId param, const netsim::Carrier& carrier,
                    const netsim::Carrier& neighbor) const;

 private:
  const GroundTruthModel* model_;
  const ParamCatalog* catalog_;
};

}  // namespace auric::config
