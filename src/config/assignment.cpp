#include "config/assignment.h"

namespace auric::config {

const char* cause_name(Cause cause) {
  switch (cause) {
    case Cause::kDefault: return "default";
    case Cause::kAttributeRule: return "attribute-rule";
    case Cause::kMarketStyle: return "market-style";
    case Cause::kLocalPocket: return "local-pocket";
    case Cause::kHiddenTerrain: return "hidden-terrain";
    case Cause::kTrial: return "trial";
    case Cause::kStaleLeftover: return "stale-leftover";
    case Cause::kNoise: return "noise";
  }
  return "?";
}

std::size_t ParamColumn::configured_count() const {
  std::size_t count = 0;
  for (ValueIndex v : value) {
    if (v != kUnset) ++count;
  }
  return count;
}

std::size_t ConfigAssignment::total_configured() const {
  std::size_t total = 0;
  for (const ParamColumn& col : singular) total += col.configured_count();
  for (const ParamColumn& col : pairwise) total += col.configured_count();
  return total;
}

}  // namespace auric::config
