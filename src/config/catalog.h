// The configuration parameter catalog.
//
// §2.6 of the paper: out of 3000+ parameters per carrier, 65 take values
// within a *range* (the rest are enumerations covered by rule-books); 39 of
// the 65 are singular (one value per carrier) and 26 are pair-wise (one
// value per carrier/X2-neighbor relation, used for mobility and handovers).
// The six parameters the paper names (sFreqPrio, hysA3Offset, pMax,
// qRxLevMin, inactivityTimer — actInterFreqLB is an enumeration and
// therefore a feature gate, not one of the 65) appear here with the paper's
// exact ranges and step sizes; the remainder are modeled on standard LTE
// vendor MOM parameters with realistic domains.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace auric::config {

/// Index of a parameter in the catalog.
using ParamId = std::int32_t;

/// A configuration value, represented as an index into the parameter's
/// ValueDomain. Index representation (not the raw double) is what voting,
/// contingency tables and equality tests operate on, so step-quantized reals
/// like hysA3Offset (step 0.5) and pMax (step 0.6) compare exactly.
using ValueIndex = std::int32_t;

/// Marks a (carrier, parameter) or (edge, parameter) slot where the
/// governing feature is not activated — no value is configured there and the
/// slot contributes no sample to learning or evaluation.
inline constexpr ValueIndex kUnset = -1;

/// Singular parameters are set per carrier; pair-wise parameters are set per
/// (carrier, X2-neighbor) relation (Y_{j,k} in the paper's notation).
enum class ParamKind : std::uint8_t { kSingular = 0, kPairwise = 1 };

/// Which X2 relations a pair-wise parameter applies to. Intra-frequency
/// relations connect same-frequency cells on adjacent sites (A3-style
/// handover tuning); inter-frequency relations connect different-frequency
/// cells (IFLB / coverage-triggered mobility).
enum class RelationClass : std::uint8_t { kIntraFrequency = 0, kInterFrequency = 1 };

/// Granularity of a pair-wise parameter, mirroring vendor MOM structure:
/// most relation parameters live per frequency relation (one value per
/// target frequency, applied on the representative lowest-id neighbor of
/// that frequency), a few live per individual cell relation (one value per
/// X2 edge, e.g. cellIndividualOffset).
enum class PairScope : std::uint8_t { kPerFrequencyRelation = 0, kPerEdge = 1 };

/// Functional family (§2.2 lists the categories).
enum class ParamFunction : std::uint8_t {
  kRadioConnection = 0,
  kPowerControl,
  kLinkAdaptation,
  kScheduling,
  kCapacityManagement,
  kLayerManagement,
  kMobility,
  kInterference,
};

const char* param_function_name(ParamFunction function);

/// An arithmetic value domain: {min + k*step : k in [0, count)}.
class ValueDomain {
 public:
  ValueDomain(double min, double step, std::int32_t count);

  std::int32_t size() const { return count_; }
  double min() const { return min_; }
  double step() const { return step_; }
  double max() const { return value(count_ - 1); }

  /// Raw value at `index`; index must be in [0, size).
  double value(ValueIndex index) const;

  /// Index of the domain point nearest to `raw`, clamped into the domain.
  ValueIndex nearest_index(double raw) const;

  /// Clamps an index into [0, size).
  ValueIndex clamp(std::int64_t index) const;

  /// True when `index` identifies a point of this domain.
  bool contains(ValueIndex index) const { return index >= 0 && index < count_; }

 private:
  double min_;
  double step_;
  std::int32_t count_;
};

struct ParamDef {
  std::string name;
  ParamKind kind = ParamKind::kSingular;
  RelationClass relation = RelationClass::kIntraFrequency;  // pairwise only
  PairScope scope = PairScope::kPerFrequencyRelation;       // pairwise only
  ParamFunction function = ParamFunction::kMobility;
  ValueDomain domain{0, 1, 2};
  /// National rule-book default (index into domain).
  ValueIndex default_index = 0;
  /// Probability that the governing feature is activated on a given site
  /// (inactive -> the parameter is simply not configured there). This is
  /// what makes per-carrier value counts land near the paper's ~38
  /// values/carrier rather than the full 65.
  double activation = 1.0;
  /// Tuning richness: how many distinct offset levels engineering practice
  /// uses for this parameter (drives the Fig. 2 variability spectrum; the
  /// paper's most-tuned parameter shows ~200 distinct values).
  std::int32_t richness = 4;
};

class ParamCatalog {
 public:
  /// The standard 65-parameter catalog (39 singular + 26 pair-wise).
  static ParamCatalog standard();

  /// Builds a catalog from explicit definitions (tests use this).
  explicit ParamCatalog(std::vector<ParamDef> defs);

  std::size_t size() const { return defs_.size(); }
  const ParamDef& operator[](std::size_t i) const { return defs_[i]; }
  const ParamDef& at(ParamId id) const { return defs_.at(static_cast<std::size_t>(id)); }

  /// Ids of all singular / all pair-wise parameters, in catalog order.
  const std::vector<ParamId>& singular_ids() const { return singular_; }
  const std::vector<ParamId>& pairwise_ids() const { return pairwise_; }

  /// Id of the parameter named `name`; throws std::out_of_range if absent.
  ParamId id_of(const std::string& name) const;

 private:
  std::vector<ParamDef> defs_;
  std::vector<ParamId> singular_;
  std::vector<ParamId> pairwise_;
};

}  // namespace auric::config
