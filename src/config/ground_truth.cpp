#include "config/ground_truth.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "util/rng.h"

namespace auric::config {

namespace {

using netsim::AttrCode;
using netsim::Carrier;
using netsim::CarrierId;
using netsim::ENodeBId;
using netsim::Terrain;
using netsim::X2Edge;
using util::hash_combine;

// Domain tags keeping the per-purpose hash streams independent.
constexpr std::uint64_t kTagActive = 0xAC71F3ULL;
constexpr std::uint64_t kTagSlot = 0x510717ULL;
constexpr std::uint64_t kTagStaleOff = 0x57A1E0ULL;
constexpr std::uint64_t kTagNoiseOff = 0x4015E0ULL;

/// Signed tuning level in [-max_level, -1] U [1, max_level] from a hash.
/// `sign_mode` biases the direction: +1 = upward only (defaults near the
/// bottom of the domain can only be tuned up, e.g. timers), -1 = downward
/// only, 0 = both directions.
int signed_level(std::uint64_t h, int max_level, int sign_mode = 0) {
  const int level = 1 + static_cast<int>(h % static_cast<std::uint64_t>(std::max(1, max_level)));
  if (sign_mode > 0) return level;
  if (sign_mode < 0) return -level;
  return ((h >> 32) & 1) != 0 ? level : -level;
}

}  // namespace

GroundTruthModel::GroundTruthModel(const netsim::Topology& topology,
                                   const netsim::AttributeSchema& schema,
                                   const ParamCatalog& catalog, GroundTruthParams params)
    : topology_(topology), schema_(schema), catalog_(catalog), params_(params) {
  attr_codes_ = schema_.encode_all(topology_);
  plans_.reserve(catalog_.size());
  for (std::size_t p = 0; p < catalog_.size(); ++p) {
    plans_.push_back(build_plan(static_cast<ParamId>(p)));
  }
}

double GroundTruthModel::hash01(std::initializer_list<std::uint64_t> parts) const {
  return static_cast<double>(hash_combine(parts) >> 11) * 0x1.0p-53;
}

GroundTruthModel::ParamPlan GroundTruthModel::build_plan(ParamId p) {
  const ParamDef& def = catalog_.at(p);
  ParamPlan plan;
  plan.step_scale = std::max(1, def.domain.size() / 48);

  // Tuning direction: defaults parked near a domain boundary leave room in
  // only one direction (timers near the bottom are tuned up, thresholds near
  // the top are tuned down). Without this, large offsets clamp onto the
  // boundary and the value population collapses.
  plan.sign_mode = def.default_index < def.domain.size() / 4
                       ? 1
                       : (def.default_index > 3 * def.domain.size() / 4 ? -1 : 0);
  const int sign_mode = plan.sign_mode;

  util::Rng rng(hash_combine({params_.seed, 0x9AA7ULL, static_cast<std::uint64_t>(p)}));

  // Engineering practice tunes most parameters predominantly in one
  // direction (raise a timer, lower a threshold); the per-parameter
  // dominant direction drives the heavy skewness of Fig. 4.
  const int dominant_sign = rng.bernoulli(0.5) ? 1 : -1;
  const auto draw_level = [&](int max_level) {
    if (sign_mode != 0) return signed_level(rng(), max_level, sign_mode);
    const int sign = rng.bernoulli(0.85) ? dominant_sign : -dominant_sign;
    return signed_level(rng(), max_level, sign);
  };

  // --- Dependent carrier attributes ---
  // Pool excludes market / tracking_area_code (market tuning is modeled
  // separately as "market styles") and the dynamic neighbor count.
  struct Candidate {
    const char* name;
    double weight;
  };
  static constexpr Candidate kPool[] = {
      {"carrier_frequency", 3.0}, {"morphology", 3.0},     {"channel_bandwidth", 2.0},
      {"carrier_type", 1.5},      {"hardware", 1.5},       {"cell_size", 1.5},
      {"dl_mimo_mode", 1.0},      {"software_version", 1.0}, {"vendor", 1.0},
      {"carrier_info", 1.0},      {"neighbor_channel", 1.0},
  };
  const int want = static_cast<int>(
      rng.uniform_int(params_.attrs_per_param_min, params_.attrs_per_param_max));
  std::vector<double> weights;
  for (const auto& cand : kPool) weights.push_back(cand.weight);
  while (static_cast<int>(plan.dep_attrs.size()) < want) {
    const std::size_t pick = rng.weighted_index(weights);
    if (weights[pick] == 0.0) continue;
    weights[pick] = 0.0;  // without replacement
    plan.dep_attrs.push_back(schema_.index_of(kPool[pick].name));
  }
  std::sort(plan.dep_attrs.begin(), plan.dep_attrs.end());

  // Pairwise parameters can additionally depend on the neighbor's layer.
  if (def.kind == ParamKind::kPairwise && rng.bernoulli(0.6)) {
    plan.dep_neighbor_attrs.push_back(schema_.index_of(
        rng.bernoulli(0.7) ? "carrier_frequency" : "morphology"));
  }

  const int attr_level = std::clamp(def.richness / 3, 1, 14);
  const auto make_offsets = [&](std::size_t attr) {
    std::vector<int> offsets(schema_.cardinality(attr), 0);
    for (std::size_t code = 0; code < offsets.size(); ++code) {
      if (rng.bernoulli(params_.attr_value_rule_prob)) {
        offsets[code] = draw_level(attr_level) * plan.step_scale;
      }
    }
    return offsets;
  };
  for (std::size_t attr : plan.dep_attrs) plan.attr_offsets.push_back(make_offsets(attr));
  for (std::size_t attr : plan.dep_neighbor_attrs) {
    plan.neighbor_attr_offsets.push_back(make_offsets(attr));
  }

  // Interaction rules over the first two dependent attributes ("urban AND
  // high band"-style engineering rules).
  if (plan.dep_attrs.size() >= 2) {
    const std::size_t c0 = schema_.cardinality(plan.dep_attrs[0]);
    const std::size_t c1 = schema_.cardinality(plan.dep_attrs[1]);
    plan.interaction_offsets.assign(c0, std::vector<int>(c1, 0));
    for (std::size_t i = 0; i < c0; ++i) {
      for (std::size_t j = 0; j < c1; ++j) {
        if (rng.bernoulli(params_.interaction_prob)) {
          plan.interaction_offsets[i][j] = draw_level(attr_level) * plan.step_scale;
        }
      }
    }
  }

  // --- Market styles ---
  // Engineering teams do not invent arbitrary values: per parameter there is
  // a small menu of alternative tuning levels in circulation (richer menus
  // for heavily hand-tuned parameters), and each tuning market picks one.
  // This keeps low-richness parameters near the paper's <=10 distinct values
  // while letting high-richness ones spread (Fig. 2).
  const int market_level = std::clamp(def.richness / 2, 1, 21);
  std::vector<int> level_menu(static_cast<std::size_t>(
      std::clamp(def.richness / 3, 2, 48)));
  for (int& level : level_menu) level = draw_level(market_level) * plan.step_scale;

  // Sub-market location styles, keyed by tracking area (see
  // GroundTruthParams::tac_style_prob).
  std::size_t max_tac = 0;
  for (const netsim::Carrier& c : topology_.carriers) {
    max_tac = std::max(max_tac, static_cast<std::size_t>(c.tracking_area_code));
  }
  plan.tac_offsets.assign(max_tac + 1, 0);
  if (def.richness >= params_.tac_style_min_richness) {
    for (int& offset : plan.tac_offsets) {
      if (rng.bernoulli(params_.tac_style_prob)) {
        offset = level_menu[static_cast<std::size_t>(rng()) % level_menu.size()];
      }
    }
  }

  plan.market_offsets.assign(topology_.markets.size(), 0);
  for (std::size_t m = 0; m < topology_.markets.size(); ++m) {
    // Per-market tuning intensity: some engineering teams tune much more
    // aggressively than others (drives the Fig. 3 market variability and the
    // low-accuracy markets of Fig. 11).
    const double intensity =
        0.4 + 1.2 * hash01({params_.seed, 0x1A7E45ULL, static_cast<std::uint64_t>(m)});
    if (rng.bernoulli(std::min(1.0, params_.market_style_base * intensity))) {
      plan.market_offsets[m] =
          level_menu[static_cast<std::size_t>(rng()) % level_menu.size()];
    }
  }

  // --- Geographic pockets: local tuning, and ongoing trials ---
  const auto grow_pocket = [&](ENodeBId seed_site, int max_sites) {
    std::vector<ENodeBId> pocket;
    std::deque<ENodeBId> frontier{seed_site};
    std::unordered_set<ENodeBId> seen{seed_site};
    while (!frontier.empty() && static_cast<int>(pocket.size()) < max_sites) {
      const ENodeBId site = frontier.front();
      frontier.pop_front();
      pocket.push_back(site);
      for (ENodeBId next : topology_.site_neighbors[static_cast<std::size_t>(site)]) {
        if (seen.insert(next).second) frontier.push_back(next);
      }
    }
    return pocket;
  };

  const std::size_t site_count = topology_.enodebs.size();
  if (rng.bernoulli(params_.pocket_param_prob) && site_count > 0) {
    const int target_sites =
        std::max(1, static_cast<int>(std::lround(params_.pocket_site_frac *
                                                 static_cast<double>(site_count))));
    const int seeds = std::max(1, target_sites / std::max(1, params_.pocket_sites));
    for (int s = 0; s < seeds; ++s) {
      const auto seed_site = static_cast<ENodeBId>(
          rng.uniform_int(0, static_cast<std::int64_t>(site_count) - 1));
      // Pockets tune from the same circulating level menu as market teams.
      const int offset = level_menu[static_cast<std::size_t>(rng()) % level_menu.size()];
      for (ENodeBId site : grow_pocket(seed_site, params_.pocket_sites)) {
        plan.pocket_offsets.emplace(site, offset);  // first pocket wins on overlap
      }
    }
  }
  if (rng.bernoulli(params_.trial_param_prob) && site_count > 0) {
    const int target_sites =
        std::max(1, static_cast<int>(std::lround(params_.trial_site_frac *
                                                 static_cast<double>(site_count))));
    const int seeds = std::max(1, target_sites / std::max(1, params_.trial_sites));
    plan.trial_offset = draw_level(std::max(2, attr_level)) * plan.step_scale;
    for (int s = 0; s < seeds; ++s) {
      const auto seed_site = static_cast<ENodeBId>(
          rng.uniform_int(0, static_cast<std::int64_t>(site_count) - 1));
      for (ENodeBId site : grow_pocket(seed_site, params_.trial_sites)) {
        plan.trial_sites.insert(site);
      }
    }
  }

  // --- Hidden terrain dependence ---
  if (rng.bernoulli(params_.terrain_param_prob)) {
    plan.terrain_offsets[static_cast<int>(Terrain::kMountain)] =
        draw_level(attr_level) * plan.step_scale;
    plan.terrain_offsets[static_cast<int>(Terrain::kDenseHighRise)] =
        draw_level(attr_level) * plan.step_scale;
  }

  return plan;
}

bool GroundTruthModel::feature_active(ParamId p, ENodeBId site) const {
  const double activation = catalog_.at(p).activation;
  if (activation >= 1.0) return true;
  return hash01({params_.seed, kTagActive, static_cast<std::uint64_t>(p),
                 static_cast<std::uint64_t>(site)}) < activation;
}

int GroundTruthModel::intent_offset(const ParamPlan& plan, ParamId p, const Carrier& carrier,
                                    const Carrier* neighbor, Cause& cause) const {
  (void)p;
  // Override semantics, mirroring how rule-books actually compose: the most
  // specific applicable rule *replaces* broader ones rather than stacking.
  // Precedence: hidden terrain > local pocket > market style > neighbor
  // attribute rule > attribute interaction > carrier attribute rule.
  const int terrain_offset = plan.terrain_offsets[static_cast<int>(carrier.terrain)];
  if (terrain_offset != 0) {
    cause = Cause::kHiddenTerrain;
    return terrain_offset;
  }
  if (const auto it = plan.pocket_offsets.find(carrier.enodeb); it != plan.pocket_offsets.end()) {
    cause = Cause::kLocalPocket;
    return it->second;
  }
  const int tac_offset = plan.tac_offsets[static_cast<std::size_t>(carrier.tracking_area_code)];
  if (tac_offset != 0) {
    // Sub-market location style; attribute-expressible (tracking area code
    // is in the learner schema), hence tagged like a market style.
    cause = Cause::kMarketStyle;
    return tac_offset;
  }
  const int market_offset = plan.market_offsets[static_cast<std::size_t>(carrier.market)];
  if (market_offset != 0) {
    cause = Cause::kMarketStyle;
    return market_offset;
  }
  if (neighbor != nullptr) {
    for (std::size_t i = 0; i < plan.dep_neighbor_attrs.size(); ++i) {
      const AttrCode code =
          attr_codes_[plan.dep_neighbor_attrs[i]][static_cast<std::size_t>(neighbor->id)];
      if (code >= 0 && plan.neighbor_attr_offsets[i][static_cast<std::size_t>(code)] != 0) {
        cause = Cause::kAttributeRule;
        return plan.neighbor_attr_offsets[i][static_cast<std::size_t>(code)];
      }
    }
  }
  if (!plan.interaction_offsets.empty()) {
    const AttrCode c0 = attr_codes_[plan.dep_attrs[0]][static_cast<std::size_t>(carrier.id)];
    const AttrCode c1 = attr_codes_[plan.dep_attrs[1]][static_cast<std::size_t>(carrier.id)];
    if (c0 >= 0 && c1 >= 0) {
      const int inter =
          plan.interaction_offsets[static_cast<std::size_t>(c0)][static_cast<std::size_t>(c1)];
      if (inter != 0) {
        cause = Cause::kAttributeRule;
        return inter;
      }
    }
  }
  for (std::size_t i = plan.dep_attrs.size(); i-- > 0;) {
    const AttrCode code = attr_codes_[plan.dep_attrs[i]][static_cast<std::size_t>(carrier.id)];
    if (code >= 0 && plan.attr_offsets[i][static_cast<std::size_t>(code)] != 0) {
      cause = Cause::kAttributeRule;
      return plan.attr_offsets[i][static_cast<std::size_t>(code)];
    }
  }
  cause = Cause::kDefault;
  return 0;
}

void GroundTruthModel::assign_slot(ParamId p, const Carrier& carrier, const Carrier* neighbor,
                                   std::uint64_t slot_key, ValueIndex& value,
                                   ValueIndex& intended, Cause& cause) const {
  const ParamDef& def = catalog_.at(p);
  const ParamPlan& plan = plans_[static_cast<std::size_t>(p)];

  if (!feature_active(p, carrier.enodeb)) {
    value = intended = kUnset;
    cause = Cause::kDefault;
    return;
  }

  const int offset = intent_offset(plan, p, carrier, neighbor, cause);
  intended = def.domain.clamp(static_cast<std::int64_t>(def.default_index) + offset);
  value = intended;

  // Ongoing trial pockets: the carrier deliberately runs a non-majority
  // value that engineers are evaluating for network-wide roll-out.
  if (plan.trial_sites.contains(carrier.enodeb)) {
    value = def.domain.clamp(static_cast<std::int64_t>(intended) + plan.trial_offset);
    cause = Cause::kTrial;
    return;
  }

  const double u = hash01({params_.seed, kTagSlot, slot_key});
  if (u < params_.stale_rate) {
    const std::uint64_t h = hash_combine({params_.seed, kTagStaleOff, slot_key});
    value = def.domain.clamp(static_cast<std::int64_t>(intended) +
                             signed_level(h, 3, plan.sign_mode) * plan.step_scale);
    if (value != intended) cause = Cause::kStaleLeftover;
  } else if (u < params_.stale_rate + params_.noise_rate) {
    // Unexplained per-carrier perturbations live on a finer lattice than the
    // tuning rules: heavily hand-tuned parameters (high richness) pick up a
    // long tail of one-off values — this is what drives the paper's
    // ~200-distinct-value outlier parameter in Fig. 2.
    const std::uint64_t h = hash_combine({params_.seed, kTagNoiseOff, slot_key});
    const int noise_unit = std::max(1, plan.step_scale / 8);
    const int noise_span = std::max(2, def.richness / 8);
    value = def.domain.clamp(
        static_cast<std::int64_t>(intended) +
        static_cast<std::int64_t>(signed_level(h, noise_span, plan.sign_mode)) * noise_unit);
    if (value != intended) cause = Cause::kNoise;
  }
}

void GroundTruthModel::assign_singular(std::size_t si, CarrierId carrier, ValueIndex& value,
                                       ValueIndex& intended, Cause& cause) const {
  const ParamId p = catalog_.singular_ids().at(si);
  const Carrier& c = topology_.carrier(carrier);
  const std::uint64_t slot_key =
      hash_combine({static_cast<std::uint64_t>(p), static_cast<std::uint64_t>(carrier)});
  assign_slot(p, c, nullptr, slot_key, value, intended, cause);
}

void GroundTruthModel::assign_pairwise(std::size_t pi, const X2Edge& edge, ValueIndex& value,
                                       ValueIndex& intended, Cause& cause) const {
  const ParamId p = catalog_.pairwise_ids().at(pi);
  const ParamDef& def = catalog_.at(p);
  const Carrier& from = topology_.carrier(edge.from);
  const Carrier& to = topology_.carrier(edge.to);

  const bool intra = from.frequency_mhz == to.frequency_mhz;
  const bool class_match =
      (def.relation == RelationClass::kIntraFrequency) == intra;
  bool applicable = class_match;
  if (applicable && def.scope == PairScope::kPerFrequencyRelation) {
    // Configured only on the representative (lowest-id) neighbor of this
    // frequency; other edges of the same frequency relation are unset.
    for (CarrierId n : topology_.neighborhood(edge.from)) {
      if (topology_.carrier(n).frequency_mhz == to.frequency_mhz) {
        applicable = (n == edge.to);
        break;  // neighbor lists are sorted, so the first hit is the rep
      }
    }
  }
  if (!applicable) {
    value = intended = kUnset;
    cause = Cause::kDefault;
    return;
  }

  const std::uint64_t slot_key =
      hash_combine({static_cast<std::uint64_t>(p), static_cast<std::uint64_t>(edge.from),
                    static_cast<std::uint64_t>(edge.to)});
  assign_slot(p, from, &to, slot_key, value, intended, cause);
}

ConfigAssignment GroundTruthModel::assign() const {
  ConfigAssignment out;
  const std::size_t n_carriers = topology_.carrier_count();
  const std::size_t n_edges = topology_.edge_count();

  out.singular.resize(catalog_.singular_ids().size());
  for (std::size_t si = 0; si < out.singular.size(); ++si) {
    ParamColumn& col = out.singular[si];
    col.value.resize(n_carriers);
    col.intended.resize(n_carriers);
    col.cause.resize(n_carriers);
    for (std::size_t c = 0; c < n_carriers; ++c) {
      assign_singular(si, static_cast<CarrierId>(c), col.value[c], col.intended[c],
                      col.cause[c]);
    }
  }

  out.pairwise.resize(catalog_.pairwise_ids().size());
  for (std::size_t pi = 0; pi < out.pairwise.size(); ++pi) {
    ParamColumn& col = out.pairwise[pi];
    col.value.resize(n_edges);
    col.intended.resize(n_edges);
    col.cause.resize(n_edges);
    for (std::size_t e = 0; e < n_edges; ++e) {
      assign_pairwise(pi, topology_.edges[e], col.value[e], col.intended[e], col.cause[e]);
    }
  }
  return out;
}

const std::vector<std::size_t>& GroundTruthModel::true_dependent_attrs(ParamId p) const {
  return plans_.at(static_cast<std::size_t>(p)).dep_attrs;
}

ValueIndex GroundTruthModel::rulebook_value(ParamId p, const Carrier& carrier) const {
  return rulebook_value(p, carrier, carrier);
}

ValueIndex GroundTruthModel::rulebook_value(ParamId p, const Carrier& carrier,
                                            const Carrier& neighbor) const {
  const ParamDef& def = catalog_.at(p);
  const ParamPlan& plan = plans_[static_cast<std::size_t>(p)];
  // Same override precedence as intent_offset, restricted to the codified
  // (rule-book-expressible) components: attribute rules only.
  int offset = 0;
  if (def.kind == ParamKind::kPairwise) {
    for (std::size_t i = 0; i < plan.dep_neighbor_attrs.size() && offset == 0; ++i) {
      const AttrCode code =
          attr_codes_[plan.dep_neighbor_attrs[i]][static_cast<std::size_t>(neighbor.id)];
      if (code >= 0) offset = plan.neighbor_attr_offsets[i][static_cast<std::size_t>(code)];
    }
  }
  if (offset == 0 && !plan.interaction_offsets.empty()) {
    const AttrCode c0 = attr_codes_[plan.dep_attrs[0]][static_cast<std::size_t>(carrier.id)];
    const AttrCode c1 = attr_codes_[plan.dep_attrs[1]][static_cast<std::size_t>(carrier.id)];
    if (c0 >= 0 && c1 >= 0) {
      offset = plan.interaction_offsets[static_cast<std::size_t>(c0)][static_cast<std::size_t>(c1)];
    }
  }
  for (std::size_t i = plan.dep_attrs.size(); offset == 0 && i-- > 0;) {
    const AttrCode code = attr_codes_[plan.dep_attrs[i]][static_cast<std::size_t>(carrier.id)];
    if (code >= 0) offset = plan.attr_offsets[i][static_cast<std::size_t>(code)];
  }
  return def.domain.clamp(static_cast<std::int64_t>(def.default_index) + offset);
}

}  // namespace auric::config
